"""Content-addressed on-disk cache for sweep results.

Every cache entry is keyed by a stable hash of the job's runner name, its
canonicalised parameters and a *code version* string, so that re-running a
sweep only executes the jobs whose results are not on disk yet, while any
bump of the package (or runner) version transparently invalidates stale
entries.  Entries are small JSON files laid out in two-level fan-out
directories (``ab/abcdef....json``) to keep directories shallow.

The cache is bounded: give :class:`ResultCache` a ``max_bytes`` budget (or
set ``REPRO_CACHE_MAX_MB`` in the environment) and the least-recently-used
entries are evicted whenever a ``put()`` pushes the store over budget.
Recency is tracked through entry mtimes, which ``get()`` refreshes on the
first hit per process (repeat hits skip the metadata write), so hot sweep
results survive while abandoned design points age out.
``prune()`` applies the same policy explicitly (also by entry count), and
the ``repro cache`` CLI sub-command exposes stats/clear/prune.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import tempfile
import time
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.engine.spec import Job, params_key

PathLike = Union[str, pathlib.Path]

#: Shape of a valid content key (sha256 hex digest).  Key-addressed access
#: (the ``repro serve`` HTTP tier) validates against this before touching
#: the filesystem, so a malformed key can never escape the fan-out dirs.
KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")


def is_valid_key(key: object) -> bool:
    """Whether ``key`` is a well-formed content key (sha256 hex digest)."""
    return isinstance(key, str) and KEY_PATTERN.match(key) is not None


def _fanout_path(directory: pathlib.Path, key: str) -> pathlib.Path:
    if not is_valid_key(key):
        raise ValueError(f"malformed content key {key!r}")
    return directory / key[:2] / f"{key}.json"


def _read_fanout_entry(directory: pathlib.Path, key: str) -> Optional[dict]:
    """Raw JSON payload stored under ``key``, or ``None`` (best effort).

    Refreshes the entry's mtime on a hit so key-addressed reads (the HTTP
    tier) keep hot entries alive under LRU eviction exactly like job-keyed
    reads do; corrupt entries are dropped so the next write can replace
    them.
    """
    path = _fanout_path(directory, key)
    try:
        with path.open("r") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise TypeError("entry payload must be a dict")
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError, TypeError):
        try:
            path.unlink()
        except OSError:
            pass
        return None
    try:
        os.utime(path, None)
    except OSError:
        pass
    return payload


def _write_fanout_entry(directory: pathlib.Path, key: str,
                        payload: Mapping) -> Optional[pathlib.Path]:
    """Atomically store a raw payload under ``key`` (``None`` if unwritable)."""
    path = _fanout_path(directory, key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    except OSError:
        return None
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(dict(payload), handle, default=str)
        os.replace(tmp_name, path)
    except (OSError, TypeError, ValueError):
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        return None
    return path

#: Environment variable holding the default cache size budget in megabytes.
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Environment variable holding the default replay-sidecar size budget in
#: megabytes (schedule recordings are pure optimisations, so bounding them
#: costs only re-simulation, never correctness).
REPLAY_MAX_MB_ENV = "REPRO_REPLAY_MAX_MB"

#: Enforce the size budget only every this many writes, so large sweeps do
#: not pay a directory scan per job once the running estimate is warm.
_ENFORCE_EVERY_PUTS = 32

#: Per-process cap on the remembered set of mtime-refreshed entries; a sweep
#: touching more distinct entries than this simply refreshes them again.
_REFRESHED_KEYS_MAX = 65536

#: Automatic enforcement evicts down to this fraction of ``max_bytes`` (a
#: low-water mark), so a cache sitting at its budget does not re-trigger a
#: full prune scan on every subsequent write.
_LOW_WATER_FRACTION = 0.9

#: Sidecar file (in the cache root, outside the ``??/`` entry fan-out)
#: accumulating hit/miss/eviction counters across cache instances, so
#: ``repro cache stats`` can report lifetime hit-rates after the sweeps
#: that produced them have exited.
_STATS_FILENAME = "_stats.json"

_COUNTER_KEYS = ("hits", "misses", "evictions")

#: Lock file taken while merging ``_stats.json`` so concurrent writers (many
#: streaming sweeps sharing one cache directory) never interleave their
#: read-modify-write cycles and lose counter deltas.
_STATS_LOCK_FILENAME = "_stats.lock"

#: How often / how long to retry for the stats lock before giving up (the
#: stats merge is best-effort; a contended miss only defers the fold to the
#: next ``persist_stats()`` call).
_STATS_LOCK_ATTEMPTS = 50
_STATS_LOCK_SLEEP_S = 0.004

#: A lock file older than this is treated as leaked by a dead process and
#: broken (the merge itself takes well under a millisecond).
_STATS_LOCK_STALE_S = 10.0

#: Torn-read retries: a reader that finds ``_stats.json`` half-written
#: (non-POSIX filesystems without atomic replace) re-reads before zeroing.
_STATS_READ_ATTEMPTS = 3

#: Subdirectory of the cache root holding the content-addressed replay
#: sidecar (see :class:`SidecarStore`).  The name is deliberately longer
#: than the two-character entry fan-out dirs so the ``??/*.json`` entry
#: glob -- and therefore LRU eviction and ``clear()`` -- never touches it.
_SIDECAR_DIRNAME = "replay"


class SidecarStore:
    """Content-addressed JSON store for derived artifacts next to a cache.

    Where :class:`ResultCache` stores final result *rows*, the sidecar
    stores reusable *intermediates* -- today the
    :class:`~repro.lap.fastpath.ScheduleTrace` replay records that let a
    warm sweep point skip the scheduler loop entirely.  Keys hash a caller
    ``kind`` tag, an opaque ``material`` string (e.g. the canonicalised
    structural key of a schedule) and the cache's ``code_version``, so a
    version bump invalidates every sidecar record exactly like it
    invalidates result rows.

    All operations are best-effort: a read-only or corrupt sidecar degrades
    to misses, never to exceptions, because the artifacts it holds can
    always be recomputed.  The store is picklable via :meth:`config` /
    :meth:`from_config` so executors can ship it to worker processes.

    ``max_bytes`` bounds the store: writes beyond the budget evict the
    least-recently-used records (reads refresh recency).  ``None`` (the
    default) reads ``REPRO_REPLAY_MAX_MB`` from the environment; when that
    is also unset the store grows without bound.  Evicting a record only
    costs a re-simulation on the next matching sweep point, so the budget
    trades disk for scheduler time.
    """

    def __init__(self, directory: PathLike, code_version: str = "",
                 max_bytes: Optional[int] = None) -> None:
        self.directory = pathlib.Path(directory).expanduser()
        self.code_version = code_version
        self.max_bytes = max_bytes if max_bytes is not None else env_replay_max_bytes()
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None for unlimited)")
        self.evictions = 0
        self._approx_bytes: Optional[int] = None
        self._puts_since_enforce = 0

    @classmethod
    def from_config(cls, config: Mapping) -> "SidecarStore":
        return cls(directory=config["directory"],
                   code_version=config.get("code_version", ""),
                   max_bytes=config.get("max_bytes"))

    def config(self) -> Dict[str, object]:
        """Picklable description, for shipping to worker processes."""
        return {"directory": str(self.directory),
                "code_version": self.code_version,
                "max_bytes": self.max_bytes}

    def key_for(self, kind: str, material: str) -> str:
        blob = f"{kind}\n{material}\n{self.code_version}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, material: str) -> pathlib.Path:
        key = self.key_for(kind, material)
        return self.directory / key[:2] / f"{key}.json"

    def get(self, kind: str, material: str) -> Optional[dict]:
        """The stored payload, or ``None`` on miss/corruption (best effort)."""
        path = self.path_for(kind, material)
        try:
            with path.open("r") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise TypeError("sidecar payload must be a dict")
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            # Refresh recency so hot schedules survive LRU eviction.
            os.utime(path, None)
        except OSError:
            pass
        return payload

    def put(self, kind: str, material: str,
            payload: Mapping) -> Optional[pathlib.Path]:
        """Atomically store a payload; returns ``None`` when unwritable."""
        path = self.path_for(kind, material)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        except OSError:
            return None
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(dict(payload), handle)
            os.replace(tmp_name, path)
        except (OSError, TypeError, ValueError):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return None
        self._account_put(path)
        return path

    def get_by_key(self, key: str) -> Optional[dict]:
        """Raw record payload under a content key (HTTP-tier access)."""
        return _read_fanout_entry(self.directory, key)

    def put_by_key(self, key: str, payload: Mapping) -> Optional[pathlib.Path]:
        """Store a raw record payload under a content key (best effort)."""
        path = _write_fanout_entry(self.directory, key, payload)
        if path is not None:
            self._account_put(path)
        return path

    def _account_put(self, path: pathlib.Path) -> None:
        """Track the approximate store size and enforce the LRU budget."""
        if self.max_bytes is None:
            return
        try:
            entry_bytes = path.stat().st_size
        except OSError:
            entry_bytes = 0
        if self._approx_bytes is None:
            self._approx_bytes = self.size_bytes()
        else:
            self._approx_bytes += entry_bytes
        self._puts_since_enforce += 1
        if self._puts_since_enforce >= _ENFORCE_EVERY_PUTS:
            self._puts_since_enforce = 0
            self._approx_bytes = self.size_bytes()
        if self._approx_bytes > self.max_bytes:
            # Evict to the low-water mark, like the result cache, so a
            # store hovering at the budget does not pay a full prune scan
            # on every subsequent put.
            self.prune(max_bytes=max(1, int(self.max_bytes * _LOW_WATER_FRACTION)))

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used records until the store fits the budget.

        ``max_bytes`` defaults to the instance budget; with neither set the
        call is a no-op.  Returns the number of records removed, and folds
        it into the persisted lifetime eviction counter (so short-lived
        stores -- one is built per :meth:`ResultCache.sidecar` call --
        still report their prunes in ``repro cache stats``).
        """
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        if max_bytes is None:
            return 0
        entries: List[Tuple[float, int, pathlib.Path]] = []
        for path in self.directory.glob("??/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda item: (item[0], str(item[2])))
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self.evictions += removed
        self._approx_bytes = total
        if removed:
            self._persist_evictions(removed)
        return removed

    def _evictions_path(self) -> pathlib.Path:
        # Lives in the sidecar root, outside the ``??/`` record fan-out, so
        # it is never itself evicted (or counted as an entry).
        return self.directory / "_evictions.json"

    def _persist_evictions(self, removed: int) -> None:
        """Fold a prune's removal count into the lifetime counter file.

        Best-effort read-modify-write: concurrent pruners may undercount,
        which is acceptable for telemetry that only feeds ``cache stats``.
        """
        path = self._evictions_path()
        try:
            fd, tmp_name = tempfile.mkstemp(dir=str(self.directory),
                                            suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump({"evictions": self.lifetime_evictions() + removed},
                          handle)
            os.replace(tmp_name, path)
        except OSError:
            pass

    def lifetime_evictions(self) -> int:
        """Records pruned from this directory across all store instances."""
        try:
            with self._evictions_path().open("r") as handle:
                payload = json.load(handle)
            return int(payload["evictions"])
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                KeyError, TypeError, ValueError):
            return 0

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def size_bytes(self) -> int:
        total = 0
        for path in self.directory.glob("??/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        removed = 0
        for path in list(self.directory.glob("??/*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _env_budget_bytes(env_name: str, label: str) -> Optional[int]:
    """A size budget in bytes from a ``<ENV>`` megabyte knob, or ``None``.

    An unparsable or non-positive value degrades to "no limit" with a
    warning, mirroring how the other engine environment knobs behave.
    """
    raw = os.environ.get(env_name)
    if raw is None or not raw.strip():
        return None
    import sys

    try:
        mbytes = float(raw)
    except ValueError:
        print(f"warning: {env_name}='{raw}' is not a number; "
              f"{label} size is unlimited", file=sys.stderr)
        return None
    if mbytes <= 0:
        print(f"warning: {env_name}={mbytes} is not positive; "
              f"{label} size is unlimited", file=sys.stderr)
        return None
    return int(mbytes * 1024 * 1024)


def env_max_bytes() -> Optional[int]:
    """Cache size budget from ``REPRO_CACHE_MAX_MB``, or ``None`` if unset."""
    return _env_budget_bytes(CACHE_MAX_MB_ENV, "cache")


def env_replay_max_bytes() -> Optional[int]:
    """Replay-sidecar budget from ``REPRO_REPLAY_MAX_MB``, or ``None``."""
    return _env_budget_bytes(REPLAY_MAX_MB_ENV, "replay sidecar")


def usable_cache_dir(cache_dir: Optional[PathLike],
                     label: str = "cache directory") -> Optional[str]:
    """Validate a cache directory, degrading to ``None`` with a warning.

    Creates the directory if needed; when that fails (path is a file,
    read-only filesystem, ...), prints a warning to stderr and returns
    ``None`` so callers can run uncached instead of crashing.
    """
    if cache_dir is None:
        return None
    import sys

    path = pathlib.Path(cache_dir).expanduser()
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        print(f"warning: {label} unusable ({exc}); running without cache",
              file=sys.stderr)
        return None
    return str(path)


def default_code_version() -> str:
    """Default cache namespace: the package plus runner versions.

    Bumping ``repro.__version__`` or any entry of
    :data:`repro.engine.runners.RUNNER_VERSIONS` invalidates every cache
    entry produced under the old version, so stale rows are never returned
    after runner code changes — including for callers that construct
    :class:`ResultCache` directly without passing ``code_version``.
    """
    from repro.engine.runners import code_fingerprint

    return code_fingerprint()


class ResultCache:
    """Content-addressed store of one JSON row per executed job.

    Parameters
    ----------
    directory:
        Root of the two-level fan-out store (created if missing).
    code_version:
        Cache namespace; defaults to the package + runner fingerprint.
    max_bytes:
        Size budget for LRU eviction.  ``None`` (the default) reads
        ``REPRO_CACHE_MAX_MB`` from the environment; when that is also
        unset the cache grows without bound and only explicit ``prune()``
        or ``clear()`` calls remove entries.
    """

    def __init__(self, directory: PathLike, code_version: Optional[str] = None,
                 max_bytes: Optional[int] = None) -> None:
        self.directory = pathlib.Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version if code_version is not None else default_code_version()
        self.max_bytes = max_bytes if max_bytes is not None else env_max_bytes()
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None for unlimited)")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._approx_bytes: Optional[int] = None
        self._puts_since_enforce = 0
        #: Counter values already folded into the on-disk lifetime stats
        #: (so repeated ``persist_stats()`` calls never double-count).
        self._persisted = {key: 0 for key in _COUNTER_KEYS}
        #: Entry filenames whose mtime this process has already refreshed
        #: (bounded; cleared wholesale when full).
        self._refreshed: set = set()

    # ---------------------------------------------------------------- keys
    def key_for(self, job: Job) -> str:
        """Stable cache key of a job under the current code version."""
        return params_key(job.runner, job.params_dict, salt=self.code_version)

    def path_for(self, job: Job) -> pathlib.Path:
        key = self.key_for(job)
        return self.directory / key[:2] / f"{key}.json"

    # -------------------------------------------------------------- sidecar
    def sidecar(self) -> SidecarStore:
        """The cache's replay sidecar (``<directory>/replay/``).

        Shares the cache's ``code_version`` namespace, so bumping a runner
        version invalidates stored schedules together with result rows.
        The sidecar lives outside the ``??/`` entry fan-out and is exempt
        from LRU eviction, ``clear()`` and ``prune()``.
        """
        return SidecarStore(self.directory / _SIDECAR_DIRNAME,
                            code_version=self.code_version)

    def sidecar_config(self) -> Dict[str, str]:
        """Picklable sidecar description for worker processes."""
        return self.sidecar().config()

    # ------------------------------------------------------------- storage
    def get(self, job: Job) -> Optional[dict]:
        """The cached result row for ``job``, or ``None`` on a miss."""
        path = self.path_for(job)
        try:
            with path.open("r") as handle:
                payload = json.load(handle)
            row = payload["row"]
            if not isinstance(row, dict):
                raise TypeError("cache row must be a dict")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
            # A truncated, corrupt or foreign-format entry counts as a miss
            # and is dropped so the next put() can rewrite it.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        key = path.name
        if key not in self._refreshed:
            # Refresh the entry's mtime so LRU eviction keeps hot results --
            # but at most once per entry per process: the first hit already
            # marks the entry recently-used for any later eviction scan, and
            # skipping the rest spares one metadata write per hit (measured
            # ~10% of the warm hit path, and all of its disk churn, on
            # sweep re-runs that hit thousands of entries).
            try:
                os.utime(path, None)
            except OSError:
                pass
            if len(self._refreshed) >= _REFRESHED_KEYS_MAX:
                self._refreshed.clear()
            self._refreshed.add(key)
        return row

    def put(self, job: Job, row: Mapping) -> pathlib.Path:
        """Store the result row of an executed job (atomic write)."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "runner": job.runner,
            "params": job.params_dict,
            "code_version": self.code_version,
            "row": dict(row),
        }
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._account_put(path)
        return path

    def _account_put(self, path: pathlib.Path) -> None:
        """Track the approximate store size and enforce the LRU budget."""
        if self.max_bytes is None:
            return
        try:
            entry_bytes = path.stat().st_size
        except OSError:
            entry_bytes = 0
        if self._approx_bytes is None:
            self._approx_bytes = self.size_bytes()
        else:
            self._approx_bytes += entry_bytes
        self._puts_since_enforce += 1
        if self._puts_since_enforce >= _ENFORCE_EVERY_PUTS:
            # Resync periodically: concurrent writers / external deletions
            # drift the running estimate.
            self._puts_since_enforce = 0
            self._approx_bytes = self.size_bytes()
        if self._approx_bytes > self.max_bytes:
            # Evict to the low-water mark, not to the exact budget: a store
            # hovering at max_bytes would otherwise pay a full prune scan on
            # every subsequent put.
            self.prune(max_bytes=max(1, int(self.max_bytes * _LOW_WATER_FRACTION)))

    def __contains__(self, job: Job) -> bool:
        return self.path_for(job).is_file()

    # ------------------------------------------------------- key-addressed
    def get_by_key(self, key: str) -> Optional[dict]:
        """The raw entry payload stored under a content key, or ``None``.

        Key-addressed access for tiers that receive pre-hashed keys (the
        ``repro serve`` HTTP daemon); the payload is the full stored
        document (``runner`` / ``params`` / ``code_version`` / ``row``),
        not just the row.  Counts as a hit/miss like :meth:`get`.
        """
        payload = _read_fanout_entry(self.directory, key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put_by_key(self, key: str, payload: Mapping) -> Optional[pathlib.Path]:
        """Store a raw entry payload under a content key (atomic write).

        Returns ``None`` when the directory is unwritable (key-addressed
        writes are best-effort: the writer computed the row anyway).  The
        entry participates in the LRU budget exactly like job-keyed writes.
        """
        path = _write_fanout_entry(self.directory, key, payload)
        if path is not None:
            self._account_put(path)
        return path

    # ---------------------------------------------------------- management
    def _entry_paths(self) -> Iterator[pathlib.Path]:
        return self.directory.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries (all code versions)."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Remove every entry (all code versions); returns the count removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._approx_bytes = 0
        return removed

    def _entries_oldest_first(self) -> List[Tuple[float, int, pathlib.Path]]:
        """(mtime, size, path) of every entry, least recently used first."""
        entries: List[Tuple[float, int, pathlib.Path]] = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda item: (item[0], str(item[2])))
        return entries

    def prune(self, max_bytes: Optional[int] = None,
              max_entries: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the store fits the limits.

        ``max_bytes`` defaults to the instance budget (``self.max_bytes``);
        ``max_entries`` additionally caps the entry count.  Entries of every
        code version compete in one LRU order — a stale-version entry is
        never refreshed by ``get()``, so stale results age out first.
        Returns the number of entries removed.
        """
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        if max_bytes is None and max_entries is None:
            return 0
        entries = self._entries_oldest_first()
        total_bytes = sum(size for _, size, _ in entries)
        total_entries = len(entries)
        removed = 0
        for _, size, path in entries:
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            over_count = max_entries is not None and total_entries > max_entries
            if not over_bytes and not over_count:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total_bytes -= size
            total_entries -= 1
            removed += 1
        self.evictions += removed
        self._approx_bytes = total_bytes
        return removed

    # ----------------------------------------------------------- telemetry
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups this instance served from disk (0.0 if none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, object]:
        """This instance's live hit/miss counters (no directory scan).

        The cheap snapshot the executor attaches to every
        :class:`~repro.engine.executor.SweepResult`; use :meth:`stats` for
        the full picture including on-disk sizes.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def _stats_path(self) -> pathlib.Path:
        return self.directory / _STATS_FILENAME

    def _read_lifetime(self) -> Dict[str, int]:
        """The persisted lifetime counters (zeros when absent/corrupt).

        Retries a few times on a torn read (decode error) before zeroing:
        writers replace the file atomically on POSIX, but filesystems
        without atomic rename can expose a half-written file briefly, and
        zeroing on the first garbled read would silently discard the
        lifetime history.
        """
        for attempt in range(_STATS_READ_ATTEMPTS):
            try:
                with self._stats_path().open("r") as handle:
                    payload = json.load(handle)
                return {key: int(payload.get(key, 0)) for key in _COUNTER_KEYS}
            except FileNotFoundError:
                break
            except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                    TypeError, ValueError):
                if attempt + 1 < _STATS_READ_ATTEMPTS:
                    time.sleep(_STATS_LOCK_SLEEP_S)
        return {key: 0 for key in _COUNTER_KEYS}

    def _stats_lock_path(self) -> pathlib.Path:
        return self.directory / _STATS_LOCK_FILENAME

    def _acquire_stats_lock(self) -> bool:
        """Take the cross-process stats lock (O_EXCL create), best effort.

        Returns ``False`` when the lock stayed contended through every
        retry or the directory is unwritable -- callers then skip the merge
        and leave the deltas for the next ``persist_stats()`` call.  A lock
        file older than ``_STATS_LOCK_STALE_S`` is treated as leaked by a
        crashed process and broken.
        """
        lock = self._stats_lock_path()
        for attempt in range(_STATS_LOCK_ATTEMPTS):
            try:
                fd = os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return True
            except FileExistsError:
                try:
                    if time.time() - lock.stat().st_mtime > _STATS_LOCK_STALE_S:
                        lock.unlink()
                        continue
                except OSError:
                    pass
                time.sleep(_STATS_LOCK_SLEEP_S)
            except OSError:
                return False
        return False

    def _release_stats_lock(self) -> None:
        try:
            self._stats_lock_path().unlink()
        except OSError:
            pass

    def persist_stats(self) -> None:
        """Fold this instance's unpersisted counters into the lifetime stats.

        Best effort (a read-only cache directory is not an error): the
        executor calls this after every run so ``repro cache stats`` can
        report hit-rates across processes.  Idempotent -- already-persisted
        counts are never folded in twice.  The read-modify-write cycle runs
        under a cross-process lock file so concurrent writers (streaming
        sweeps persisting from many workers at once) merge instead of
        overwriting each other; when the lock cannot be taken the deltas
        simply stay pending for the next call.
        """
        deltas = {key: getattr(self, key) - self._persisted[key]
                  for key in _COUNTER_KEYS}
        if not any(deltas.values()):
            return
        if not self._acquire_stats_lock():
            return
        try:
            lifetime = self._read_lifetime()
            for key, delta in deltas.items():
                lifetime[key] += delta
            try:
                fd, tmp_name = tempfile.mkstemp(dir=str(self.directory),
                                                suffix=".tmp")
                with os.fdopen(fd, "w") as handle:
                    json.dump(lifetime, handle)
                os.replace(tmp_name, self._stats_path())
            except OSError:
                return
            self._persisted = {key: getattr(self, key) for key in _COUNTER_KEYS}
        finally:
            self._release_stats_lock()

    def lifetime_stats(self) -> Dict[str, object]:
        """Cross-process counters: persisted totals plus unpersisted deltas."""
        lifetime = self._read_lifetime()
        for key in _COUNTER_KEYS:
            lifetime[key] += getattr(self, key) - self._persisted[key]
        total = lifetime["hits"] + lifetime["misses"]
        return {**lifetime,
                "hit_rate": lifetime["hits"] / total if total else 0.0}

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters of this cache instance plus the on-disk size.

        ``hits`` / ``misses`` / ``hit_rate`` are this instance's live
        counters; the ``lifetime`` block aggregates them across every
        process that has used the directory (see :meth:`persist_stats`).
        """
        entries = 0
        size_bytes = 0
        for path in self._entry_paths():
            try:
                size_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        sidecar = self.sidecar()
        return {
            "directory": str(self.directory),
            "code_version": self.code_version,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "lifetime": self.lifetime_stats(),
            "entries": entries,
            "size_bytes": size_bytes,
            "max_bytes": self.max_bytes,
            "sidecar": {"entries": len(sidecar),
                        "size_bytes": sidecar.size_bytes(),
                        "max_bytes": sidecar.max_bytes,
                        "evictions": sidecar.lifetime_evictions()},
        }
