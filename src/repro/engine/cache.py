"""Content-addressed on-disk cache for sweep results.

Every cache entry is keyed by a stable hash of the job's runner name, its
canonicalised parameters and a *code version* string, so that re-running a
sweep only executes the jobs whose results are not on disk yet, while any
bump of the package (or runner) version transparently invalidates stale
entries.  Entries are small JSON files laid out in two-level fan-out
directories (``ab/abcdef....json``) to keep directories shallow.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Dict, Iterator, Mapping, Optional, Union

from repro.engine.spec import Job, params_key

PathLike = Union[str, pathlib.Path]


def usable_cache_dir(cache_dir: Optional[PathLike],
                     label: str = "cache directory") -> Optional[str]:
    """Validate a cache directory, degrading to ``None`` with a warning.

    Creates the directory if needed; when that fails (path is a file,
    read-only filesystem, ...), prints a warning to stderr and returns
    ``None`` so callers can run uncached instead of crashing.
    """
    if cache_dir is None:
        return None
    import sys

    path = pathlib.Path(cache_dir).expanduser()
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        print(f"warning: {label} unusable ({exc}); running without cache",
              file=sys.stderr)
        return None
    return str(path)


def default_code_version() -> str:
    """Default cache namespace: the package plus runner versions.

    Bumping ``repro.__version__`` or any entry of
    :data:`repro.engine.runners.RUNNER_VERSIONS` invalidates every cache
    entry produced under the old version, so stale rows are never returned
    after runner code changes — including for callers that construct
    :class:`ResultCache` directly without passing ``code_version``.
    """
    from repro.engine.runners import code_fingerprint

    return code_fingerprint()


class ResultCache:
    """Content-addressed store of one JSON row per executed job."""

    def __init__(self, directory: PathLike, code_version: Optional[str] = None) -> None:
        self.directory = pathlib.Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version if code_version is not None else default_code_version()
        self.hits = 0
        self.misses = 0

    # ---------------------------------------------------------------- keys
    def key_for(self, job: Job) -> str:
        """Stable cache key of a job under the current code version."""
        return params_key(job.runner, job.params_dict, salt=self.code_version)

    def path_for(self, job: Job) -> pathlib.Path:
        key = self.key_for(job)
        return self.directory / key[:2] / f"{key}.json"

    # ------------------------------------------------------------- storage
    def get(self, job: Job) -> Optional[dict]:
        """The cached result row for ``job``, or ``None`` on a miss."""
        path = self.path_for(job)
        try:
            with path.open("r") as handle:
                payload = json.load(handle)
            row = payload["row"]
            if not isinstance(row, dict):
                raise TypeError("cache row must be a dict")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
            # A truncated, corrupt or foreign-format entry counts as a miss
            # and is dropped so the next put() can rewrite it.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, job: Job, row: Mapping) -> pathlib.Path:
        """Store the result row of an executed job (atomic write)."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "runner": job.runner,
            "params": job.params_dict,
            "code_version": self.code_version,
            "row": dict(row),
        }
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, job: Job) -> bool:
        return self.path_for(job).is_file()

    # ---------------------------------------------------------- management
    def _entry_paths(self) -> Iterator[pathlib.Path]:
        return self.directory.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Remove every entry (all code versions); returns the count removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters of this cache instance plus the on-disk size."""
        return {
            "directory": str(self.directory),
            "code_version": self.code_version,
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
        }
