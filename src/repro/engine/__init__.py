"""Parallel, cached design-space sweep engine with Pareto analysis.

The engine turns the repo's hand-rolled sweep loops into declarative,
incremental, parallel runs:

* :mod:`repro.engine.spec` -- :class:`SweepSpec` (grid / zip / filter
  combinators) expanding into hashable :class:`Job` objects,
* :mod:`repro.engine.cache` -- a content-addressed on-disk result cache
  keyed by job parameters plus code version, with an LRU eviction layer
  (``max_bytes`` / ``REPRO_CACHE_MAX_MB`` and an explicit ``prune()``),
* :mod:`repro.engine.executor` -- a streaming work-stealing executor over
  ``concurrent.futures``: ``stream()`` yields rows as they land,
  ``run()`` collects them with deterministic (job-order) result ordering,
* :mod:`repro.engine.analysis` -- Pareto-frontier extraction (batch and
  incremental/streaming) and best-per-metric selection over result rows,
* :mod:`repro.engine.runners` -- adapters exposing the existing design
  evaluation, LAC kernel simulations and experiment registry as runners.

Quickstart
----------
>>> from repro.engine import SweepSpec, sweep
>>> spec = SweepSpec().constants(nr=4).grid(cores=(4, 8), frequency_ghz=(1.0, 1.4))
>>> result = sweep(spec.jobs("design"), mode="serial")
>>> len(result.rows)
4
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.engine.analysis import (DEFAULT_OBJECTIVES, IncrementalPareto,
                                   best_per_metric, dominates, frontier_report,
                                   pareto_frontier)
from repro.engine.cache import (CACHE_MAX_MB_ENV, ResultCache, SidecarStore,
                                default_code_version, env_max_bytes,
                                usable_cache_dir)
from repro.engine.executor import (ProgressCallback, StreamRow, SweepExecutor,
                                   SweepResult, SweepStream, execute_jobs,
                                   stream_jobs)
from repro.engine.runners import (HEAVY_RUNNERS, KNOWN_PARAMS, PARETO_OBJECTIVES,
                                  RUNNERS, code_fingerprint, get_runner,
                                  runner_names)
from repro.engine.spec import Job, Params, SweepSpec, canonical_params, params_key

__all__ = [
    "SweepSpec", "Job", "Params", "canonical_params", "params_key",
    "ResultCache", "SidecarStore", "default_code_version", "usable_cache_dir",
    "CACHE_MAX_MB_ENV", "env_max_bytes",
    "SweepExecutor", "SweepResult", "SweepStream", "StreamRow",
    "ProgressCallback", "execute_jobs", "stream_jobs",
    "pareto_frontier", "best_per_metric", "dominates", "frontier_report",
    "IncrementalPareto",
    "DEFAULT_OBJECTIVES", "PARETO_OBJECTIVES", "RUNNERS", "HEAVY_RUNNERS",
    "KNOWN_PARAMS",
    "runner_names", "get_runner", "code_fingerprint",
    "sweep",
]


def sweep(spec_or_jobs: Union[SweepSpec, Sequence[Job]], runner: Optional[str] = None,
          mode: str = "auto", max_workers: Optional[int] = None,
          batch_size: Optional[int] = None, cache_dir: Optional[str] = None,
          progress: Optional[ProgressCallback] = None) -> SweepResult:
    """Run a sweep end to end: expand, resolve from cache, fan out, collect.

    Accepts either a :class:`SweepSpec` (``runner`` required) or a
    pre-expanded job list.  When ``cache_dir`` is given, results are cached
    on disk under a namespace that folds in the package and runner versions,
    so re-runs only execute jobs that are new or invalidated.
    """
    if isinstance(spec_or_jobs, SweepSpec):
        if runner is None:
            raise ValueError("a runner name is required when passing a SweepSpec")
        jobs = spec_or_jobs.jobs(runner)
    else:
        jobs = list(spec_or_jobs)
        if runner is not None and any(job.runner != runner for job in jobs):
            raise ValueError("explicit runner does not match the jobs' runner")
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return execute_jobs(jobs, mode=mode, max_workers=max_workers,
                        batch_size=batch_size, cache=cache, progress=progress)
