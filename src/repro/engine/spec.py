"""Declarative sweep specifications and hashable jobs.

A :class:`SweepSpec` describes a region of the design space as a set of
constants, grid axes (cartesian product), zip groups (axes that vary
together) and filters.  ``expand()`` turns the spec into a deterministic
list of parameter dictionaries, and ``jobs()`` wraps each point in a
hashable :class:`Job` bound to a named runner (see
:mod:`repro.engine.runners`).

Jobs hash stably: two jobs with the same runner and the same parameters
(regardless of insertion order) share the same ``key``, which is what the
result cache and the executor use to identify work.

Specs serialise: :meth:`SweepSpec.to_payload` renders the constants, grid
axes and zip groups as a schema-tagged JSON document and
:meth:`SweepSpec.from_payload` rebuilds an equivalent spec, so a sweep can
be submitted to a remote design-space service (``POST /sweeps`` on
``repro serve``) exactly as it would run locally.  Filter predicates are
arbitrary callables and therefore refuse to serialise — apply filters
client-side or express the constraint through the axes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple, Union)

#: Parameter values must stay JSON-serialisable scalars so that jobs can be
#: hashed, cached on disk and shipped to worker processes.
ParamValue = Union[int, float, str, bool, None]
Params = Dict[str, ParamValue]

#: Schema identifier stamped into serialised sweep specs (bump on layout
#: changes); :meth:`SweepSpec.from_payload` rejects unknown schemas so a
#: version-skewed client/server pair fails loudly instead of mis-expanding.
SPEC_SCHEMA = "repro.engine.sweep_spec/v1"


def _check_value(name: str, value: object) -> ParamValue:
    if value is not None and not isinstance(value, (int, float, str, bool)):
        raise TypeError(f"sweep parameter '{name}' must be a scalar "
                        f"(int/float/str/bool/None), got {type(value).__name__}")
    return value


def canonical_params(params: Mapping[str, ParamValue]) -> str:
    """Canonical JSON encoding of a parameter mapping (sorted, compact).

    Integral floats are normalised to integers so that ``nr=4`` and
    ``nr=4.0`` describe the same design point.
    """
    normalised = {}
    for name, value in params.items():
        _check_value(name, value)
        if isinstance(value, float) and not isinstance(value, bool) and value == int(value):
            value = int(value)
        normalised[name] = value
    return json.dumps(normalised, sort_keys=True, separators=(",", ":"))


def params_key(runner: str, params: Mapping[str, ParamValue], salt: str = "") -> str:
    """Stable content hash of (runner, params, salt)."""
    material = f"{runner}\n{canonical_params(params)}\n{salt}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Job:
    """One unit of sweep work: a runner name plus its parameters.

    ``params`` is stored as a sorted tuple of pairs so the dataclass stays
    hashable and usable as a dictionary key or set member.
    """

    runner: str
    params: Tuple[Tuple[str, ParamValue], ...]

    @classmethod
    def create(cls, runner: str, params: Mapping[str, ParamValue]) -> "Job":
        for name, value in params.items():
            _check_value(name, value)
        return cls(runner=runner, params=tuple(sorted(params.items())))

    @property
    def params_dict(self) -> Params:
        """Parameters as a plain (mutable) dictionary."""
        return dict(self.params)

    @property
    def key(self) -> str:
        """Content hash identifying the job (independent of code version)."""
        return params_key(self.runner, self.params_dict)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.runner}({inner})"


class SweepSpec:
    """Declarative description of a design-space sweep.

    Combinators return a *new* spec, so partial specs can be shared and
    extended without aliasing:

    >>> base = SweepSpec().constants(nr=4)
    >>> spec = base.grid(cores=(4, 8), frequency_ghz=(1.0, 1.4))
    >>> len(spec)
    4
    """

    def __init__(self) -> None:
        self._constants: Params = {}
        self._grid_axes: List[Tuple[str, Tuple[ParamValue, ...]]] = []
        self._zip_groups: List[List[Tuple[str, Tuple[ParamValue, ...]]]] = []
        self._filters: List[Callable[[Params], bool]] = []

    # -------------------------------------------------------------- helpers
    def _clone(self) -> "SweepSpec":
        clone = SweepSpec()
        clone._constants = dict(self._constants)
        clone._grid_axes = list(self._grid_axes)
        clone._zip_groups = [list(group) for group in self._zip_groups]
        clone._filters = list(self._filters)
        return clone

    def _axis_names(self) -> List[str]:
        names = list(self._constants)
        names.extend(name for name, _ in self._grid_axes)
        for group in self._zip_groups:
            names.extend(name for name, _ in group)
        return names

    def _check_new_axes(self, axes: Mapping[str, object]) -> None:
        existing = set(self._axis_names())
        for name in axes:
            if name in existing:
                raise ValueError(f"sweep axis '{name}' is already defined")

    @staticmethod
    def _as_values(name: str, values: object) -> Tuple[ParamValue, ...]:
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            values = (values,)
        out = tuple(_check_value(name, v) for v in values)
        if not out:
            raise ValueError(f"sweep axis '{name}' has no values")
        return out

    # ---------------------------------------------------------- combinators
    def constants(self, **fixed: ParamValue) -> "SweepSpec":
        """Fix parameters to a single value in every point."""
        self._check_new_axes(fixed)
        clone = self._clone()
        for name, value in fixed.items():
            clone._constants[name] = _check_value(name, value)
        return clone

    def grid(self, **axes: Sequence[ParamValue]) -> "SweepSpec":
        """Add axes combined as a cartesian product (in declaration order)."""
        self._check_new_axes(axes)
        clone = self._clone()
        for name, values in axes.items():
            clone._grid_axes.append((name, self._as_values(name, values)))
        return clone

    def zip(self, **axes: Sequence[ParamValue]) -> "SweepSpec":
        """Add a group of axes that vary together (like :func:`zip`).

        All axes in one ``zip`` call must have the same length; the group as
        a whole is crossed with the grid axes and any other zip groups.
        """
        self._check_new_axes(axes)
        if not axes:
            raise ValueError("zip() needs at least one axis")
        group = [(name, self._as_values(name, values)) for name, values in axes.items()]
        lengths = {len(values) for _, values in group}
        if len(lengths) != 1:
            detail = ", ".join(f"{name}[{len(values)}]" for name, values in group)
            raise ValueError(f"zip axes must have equal lengths: {detail}")
        clone = self._clone()
        clone._zip_groups.append(group)
        return clone

    def filter(self, predicate: Callable[[Params], bool]) -> "SweepSpec":
        """Keep only the points for which ``predicate(params)`` is true."""
        clone = self._clone()
        clone._filters.append(predicate)
        return clone

    # ------------------------------------------------------------ expansion
    def _iter_points(self) -> Iterator[Params]:
        grid_choices = [[(name, value) for value in values]
                        for name, values in self._grid_axes]
        zip_choices = []
        for group in self._zip_groups:
            length = len(group[0][1])
            zip_choices.append([[(name, values[i]) for name, values in group]
                                for i in range(length)])
        for grid_combo in itertools.product(*grid_choices):
            for zip_combo in itertools.product(*zip_choices):
                point = dict(self._constants)
                point.update(grid_combo)
                for pairs in zip_combo:
                    point.update(pairs)
                yield point

    def iter_points(self) -> Iterator[Params]:
        """Lazily yield parameter points in deterministic declaration order.

        Streaming twin of :meth:`expand`: nothing is materialised, so huge
        sweeps can be fed point-by-point into
        :meth:`repro.engine.executor.SweepExecutor.stream`.
        """
        for point in self._iter_points():
            if all(pred(point) for pred in self._filters):
                yield point

    def expand(self) -> List[Params]:
        """All parameter points, in deterministic declaration order."""
        return list(self.iter_points())

    def iter_jobs(self, runner: str) -> Iterator[Job]:
        """Lazily yield every point as a :class:`Job` bound to ``runner``."""
        for point in self.iter_points():
            yield Job.create(runner, point)

    def jobs(self, runner: str) -> List[Job]:
        """Wrap every point into a :class:`Job` bound to ``runner``."""
        return list(self.iter_jobs(runner))

    # --------------------------------------------------------- serialisation
    def to_payload(self) -> Dict[str, object]:
        """Schema-tagged JSON document describing this spec.

        Round-trips through :meth:`from_payload`: the rebuilt spec expands
        to exactly the same parameter points in the same order.  Filter
        predicates are arbitrary callables and cannot be serialised, so a
        filtered spec raises ``ValueError`` — expand it locally or fold the
        constraint into the axes before submitting it to a service.
        """
        if self._filters:
            raise ValueError(
                "a SweepSpec with filter() predicates cannot be serialised; "
                "apply filters client-side or encode the constraint in the "
                "grid/zip axes")
        return {
            "schema": SPEC_SCHEMA,
            "constants": dict(self._constants),
            "grid": [[name, list(values)] for name, values in self._grid_axes],
            "zip": [[[name, list(values)] for name, values in group]
                    for group in self._zip_groups],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SweepSpec":
        """Rebuild a spec serialised by :meth:`to_payload` (validating)."""
        if not isinstance(payload, Mapping):
            raise TypeError("sweep spec payload must be a mapping")
        schema = payload.get("schema")
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unknown sweep spec schema {schema!r} "
                             f"(expected '{SPEC_SCHEMA}')")
        spec = cls()
        constants = payload.get("constants") or {}
        if not isinstance(constants, Mapping):
            raise TypeError("sweep spec 'constants' must be a mapping")
        if constants:
            spec = spec.constants(**constants)
        for entry in payload.get("grid") or ():
            try:
                name, values = entry
            except (TypeError, ValueError):
                raise ValueError("sweep spec 'grid' entries must be "
                                 "[name, values] pairs") from None
            spec = spec.grid(**{str(name): list(values)})
        for group in payload.get("zip") or ():
            try:
                axes = {str(name): list(values) for name, values in group}
            except (TypeError, ValueError):
                raise ValueError("sweep spec 'zip' groups must be lists of "
                                 "[name, values] pairs") from None
            spec = spec.zip(**axes)
        return spec

    def __len__(self) -> int:
        return len(self.expand())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SweepSpec(constants={sorted(self._constants)}, "
                f"grid={[n for n, _ in self._grid_axes]}, "
                f"zip={[[n for n, _ in g] for g in self._zip_groups]}, "
                f"filters={len(self._filters)})")
