"""Sharded job executor with caching, fan-out and deterministic ordering.

The executor takes a list of :class:`~repro.engine.spec.Job` objects,
resolves as many as possible from the result cache, groups the remaining
jobs into shards (batches) and fans the shards out over a
``concurrent.futures`` pool: a *process* pool for heavy simulator jobs, a
*thread* pool or plain serial execution otherwise.  Results are always
returned in job order, so serial and parallel sweeps are byte-identical.

Workers receive only (runner name, parameter dicts); the runner function is
re-resolved inside the worker from :mod:`repro.engine.runners`, which keeps
shards trivially picklable.

Every run also measures its own telemetry -- per-shard wall times, per-job
latency (measured inside the worker) and the cache's hit/miss counters --
carried on the :class:`SweepResult` and exportable as a structured run
manifest through :mod:`repro.obs.manifest`.
"""

from __future__ import annotations

import concurrent.futures
import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.cache import ResultCache
from repro.engine.spec import Job, Params

ProgressCallback = Callable[[int, int], None]

MODES = ("auto", "serial", "thread", "process")


def _run_shard(runner_name: str,
               params_list: List[Params]) -> Tuple[List[dict], List[float]]:
    """Execute one shard of same-runner jobs (also the process-pool target).

    Returns the result rows plus the per-job wall seconds, measured in the
    worker so pool queueing never inflates a job's reported latency.
    """
    from repro.engine.runners import get_runner

    runner = get_runner(runner_name)
    rows: List[dict] = []
    seconds: List[float] = []
    for params in params_list:
        started = time.perf_counter()
        rows.append(runner(params))
        seconds.append(time.perf_counter() - started)
    return rows, seconds


@dataclass
class SweepResult:
    """Outcome of one executor run.

    ``rows`` is aligned with ``jobs``: ``rows[i]`` is the result of
    ``jobs[i]`` regardless of cache state or completion order.  So is
    ``job_latency_s`` -- the worker-side wall seconds of each executed job,
    ``None`` for cache hits.  ``shard_timings`` records one entry per
    executed shard (runner, job count, worker wall seconds) and
    ``cache_stats`` snapshots the result cache's live hit/miss counters
    (``None`` when the run was uncached).
    """

    jobs: List[Job]
    rows: List[dict]
    executed: int
    cached: int
    mode: str
    elapsed_s: float
    shard_timings: List[dict] = field(default_factory=list)
    job_latency_s: List[Optional[float]] = field(default_factory=list)
    cache_stats: Optional[dict] = None

    @property
    def total(self) -> int:
        return len(self.jobs)

    def summary(self) -> str:
        text = (f"{self.total} jobs: {self.executed} executed, "
                f"{self.cached} cached [{self.mode}, {self.elapsed_s:.2f}s]")
        if self.cache_stats is not None:
            text += (f" | cache: {self.cache_stats['hits']} hits, "
                     f"{self.cache_stats['misses']} misses "
                     f"({100.0 * self.cache_stats['hit_rate']:.1f}% hit rate)")
        return text


class SweepExecutor:
    """Runs sweep jobs through an optional cache and a worker pool.

    Parameters
    ----------
    mode:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``.  Auto picks
        a process pool for heavy runners (cycle-level simulations) with
        enough pending jobs, and serial execution for the cheap analytical
        models where pool overhead dominates.
    max_workers:
        Pool size (default: ``os.cpu_count()`` capped at 8).
    batch_size:
        Jobs per shard; by default sized so each worker receives ~4 shards,
        which bounds pool chatter while keeping the pool busy.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are written back after each shard completes.
    progress:
        Optional callback invoked as ``progress(done, total)`` after the
        cache scan and after every completed shard.
    """

    def __init__(self, mode: str = "auto", max_workers: Optional[int] = None,
                 batch_size: Optional[int] = None, cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got '{mode}'")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.mode = mode
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------ internals
    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        import os

        return max(1, min(os.cpu_count() or 1, 8))

    def _resolve_mode(self, pending: Sequence[Tuple[int, Job]], workers: int) -> str:
        if self.mode != "auto":
            return self.mode
        if not pending:
            return "serial"
        from repro.engine.runners import HEAVY_RUNNERS

        heavy = any(job.runner in HEAVY_RUNNERS for _, job in pending)
        if heavy and len(pending) > 1 and workers > 1:
            return "process"
        return "serial"

    def _shards(self, pending: Sequence[Tuple[int, Job]],
                workers: int) -> List[List[Tuple[int, Job]]]:
        """Split pending jobs into same-runner shards, preserving order."""
        if not pending:
            return []
        size = self.batch_size
        if size is None:
            size = max(1, math.ceil(len(pending) / (workers * 4)))
        shards: List[List[Tuple[int, Job]]] = []
        current: List[Tuple[int, Job]] = []
        for item in pending:
            if current and (len(current) >= size or current[0][1].runner != item[1].runner):
                shards.append(current)
                current = []
            current.append(item)
        if current:
            shards.append(current)
        return shards

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    # ------------------------------------------------------------------ run
    def run(self, jobs: Sequence[Job]) -> SweepResult:
        """Execute all jobs, resolving cache hits first."""
        jobs = list(jobs)
        started = time.perf_counter()
        rows: List[Optional[dict]] = [None] * len(jobs)
        latencies: List[Optional[float]] = [None] * len(jobs)
        shard_timings: List[dict] = []
        cached = 0
        if self.cache is not None:
            for index, job in enumerate(jobs):
                hit = self.cache.get(job)
                if hit is not None:
                    rows[index] = hit
                    cached += 1
        pending = [(i, job) for i, job in enumerate(jobs) if rows[i] is None]
        self._report(cached, len(jobs))

        workers = self._resolve_workers()
        mode = self._resolve_mode(pending, workers)
        shards = self._shards(pending, workers)

        if mode == "serial" or not shards:
            # An explicitly requested pool mode is honoured even for a
            # single shard (worker isolation may be the point); only "serial"
            # and empty runs execute in-process.
            mode = "serial"
            done = cached
            for shard_id, shard in enumerate(shards):
                self._finish_shard(shard, _run_shard(shard[0][1].runner,
                                                     [j.params_dict for _, j in shard]),
                                   rows, latencies, shard_timings, shard_id)
                done += len(shard)
                self._report(done, len(jobs))
        else:
            mode = self._run_pool(mode, workers, shards, rows, latencies,
                                  shard_timings, cached, len(jobs))

        executed = len(pending)
        elapsed = time.perf_counter() - started
        cache_stats = None
        if self.cache is not None:
            cache_stats = self.cache.counters()
            self.cache.persist_stats()
        return SweepResult(jobs=jobs, rows=list(rows), executed=executed,
                           cached=cached, mode=mode, elapsed_s=elapsed,
                           shard_timings=shard_timings,
                           job_latency_s=latencies, cache_stats=cache_stats)

    def _run_pool(self, mode: str, workers: int,
                  shards: List[List[Tuple[int, Job]]], rows: List[Optional[dict]],
                  latencies: List[Optional[float]], shard_timings: List[dict],
                  cached: int, total: int) -> str:
        pool_cls = (concurrent.futures.ProcessPoolExecutor if mode == "process"
                    else concurrent.futures.ThreadPoolExecutor)
        try:
            pool = pool_cls(max_workers=min(workers, len(shards)))
        except (OSError, PermissionError, ImportError):
            # Environments without working process spawning (restricted
            # sandboxes) silently fall back to threads.
            mode = "thread"
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=min(workers, len(shards)))
        done = cached
        try:
            with pool:
                futures = {
                    pool.submit(_run_shard, shard[0][1].runner,
                                [job.params_dict for _, job in shard]): (shard_id, shard)
                    for shard_id, shard in enumerate(shards)
                }
                for future in concurrent.futures.as_completed(futures):
                    shard_id, shard = futures[future]
                    self._finish_shard(shard, future.result(), rows, latencies,
                                       shard_timings, shard_id)
                    done += len(shard)
                    self._report(done, total)
        except concurrent.futures.BrokenExecutor:
            if mode != "process":
                raise
            # A broken process pool (e.g. fork disallowed) degrades to a
            # serial re-run of every shard with any row still missing.
            mode = "serial"
            for shard_id, shard in enumerate(shards):
                if any(rows[index] is None for index, _ in shard):
                    self._finish_shard(shard, _run_shard(shard[0][1].runner,
                                                         [j.params_dict for _, j in shard]),
                                       rows, latencies, shard_timings, shard_id)
            self._report(total, total)
        return mode

    def _finish_shard(self, shard: List[Tuple[int, Job]],
                      shard_result: Tuple[List[dict], List[float]],
                      rows: List[Optional[dict]],
                      latencies: List[Optional[float]],
                      shard_timings: List[dict], shard_id: int) -> None:
        shard_rows, shard_seconds = shard_result
        shard_timings.append({
            "shard": shard_id,
            "runner": shard[0][1].runner,
            "jobs": len(shard),
            "elapsed_s": float(sum(shard_seconds)),
        })
        for (index, job), row, seconds in zip(shard, shard_rows, shard_seconds):
            rows[index] = row
            latencies[index] = seconds
            if self.cache is not None:
                try:
                    self.cache.put(job, row)
                except OSError as exc:
                    # A mid-run write failure (disk full, cache dir removed)
                    # must not lose computed results: stop caching and finish.
                    import sys

                    print(f"warning: cache write failed ({exc}); "
                          f"caching disabled for the rest of this run",
                          file=sys.stderr)
                    self.cache = None


def execute_jobs(jobs: Sequence[Job], mode: str = "auto",
                 max_workers: Optional[int] = None, batch_size: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    executor = SweepExecutor(mode=mode, max_workers=max_workers,
                             batch_size=batch_size, cache=cache, progress=progress)
    return executor.run(jobs)
