"""Streaming work-stealing job executor with caching and deterministic results.

The executor takes :class:`~repro.engine.spec.Job` objects, resolves as many
as possible from the result cache and feeds the remainder to a
``concurrent.futures`` pool as a *stream* of adaptive micro-batches: instead
of pre-cutting the job list into ``ceil(n / shards)`` shards and blocking on
the slowest one, jobs are handed out a few at a time, every completed batch
immediately frees its worker for the next one, and the batch size shrinks as
the queue drains -- down to single jobs near the tail -- so one straggler job
(e.g. a cold 8k^2 simulation among hundreds of warm points) never holds a
batch of cheap jobs hostage and never leaves the other workers idle.

Two ways to consume a run:

* :meth:`SweepExecutor.stream` yields one :class:`StreamRow` per job *as the
  rows land* (cache hits first, in job order; executed rows in completion
  order), so callers can fold rows into incremental analyses
  (:class:`repro.engine.analysis.IncrementalPareto`) and print live progress
  while the sweep is still running.
* :meth:`SweepExecutor.run` drains the same stream and returns the classic
  batch :class:`SweepResult` -- rows in job order, byte-identical across
  serial / thread / process execution and to the pre-streaming executor.

Workers receive only (runner name, parameter dicts, worker context); the
runner function is re-resolved inside the worker from
:mod:`repro.engine.runners`, which keeps batches trivially picklable.  The
worker context ships the cache's replay-sidecar location so worker processes
load prebuilt :class:`~repro.lap.fastpath.ScheduleTrace` records instead of
re-scheduling (see :meth:`~repro.engine.cache.ResultCache.sidecar`).

Every run also measures its own telemetry -- per-batch wall times, per-job
latency (measured inside the worker), time-to-first/last row and the cache's
hit/miss counters -- carried on the :class:`SweepResult` and exportable as a
structured run manifest through :mod:`repro.obs.manifest`.
"""

from __future__ import annotations

import concurrent.futures
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.engine.cache import ResultCache
from repro.engine.spec import Job, Params

ProgressCallback = Callable[[int, int], None]

MODES = ("auto", "serial", "thread", "process")

#: Adaptive micro-batch sizing: target this many batches per worker over the
#: *remaining* queue, so batches start large enough to amortise pool chatter
#: and shrink to single jobs as the tail approaches (no straggler ever drags
#: a batch of cheap jobs with it).
_BATCHES_PER_WORKER = 4

#: Synthetic ``shard`` id of the zero-job cache entry recorded when a run
#: resolves jobs from the cache (so fully-cached runs still explain where
#: their rows came from instead of omitting the timing entry entirely).
CACHED_SHARD_ID = -1


def _run_shard(runner_name: str, params_list: List[Params],
               worker_context: Optional[dict] = None) -> Tuple[List[dict], List[float]]:
    """Execute one micro-batch of same-runner jobs (also the pool target).

    Returns the result rows plus the per-job wall seconds, measured in the
    worker so pool queueing never inflates a job's reported latency.
    ``worker_context`` configures worker-process state (currently the
    replay-sidecar location) before the first job runs.
    """
    from repro.engine.runners import configure_worker, get_runner

    configure_worker(worker_context)
    runner = get_runner(runner_name)
    rows: List[dict] = []
    seconds: List[float] = []
    for params in params_list:
        started = time.perf_counter()
        rows.append(runner(params))
        seconds.append(time.perf_counter() - started)
    return rows, seconds


@dataclass(frozen=True)
class StreamRow:
    """One completed sweep row, yielded by :meth:`SweepExecutor.stream`.

    ``index`` is the row's position in the submitted job list (the order
    :attr:`SweepResult.rows` uses); ``elapsed_s`` is the wall time since the
    stream started when the row landed; ``latency_s`` is the worker-side
    execution time (``None`` for cache hits).
    """

    index: int
    job: Job
    row: dict
    cached: bool
    latency_s: Optional[float]
    elapsed_s: float


@dataclass
class SweepResult:
    """Outcome of one executor run.

    ``rows`` is aligned with ``jobs``: ``rows[i]`` is the result of
    ``jobs[i]`` regardless of cache state or completion order.  So is
    ``job_latency_s`` -- the worker-side wall seconds of each executed job,
    ``None`` for cache hits.  ``shard_timings`` records one entry per
    executed micro-batch (runner, job count, worker wall seconds); a run
    that resolved any jobs from the cache additionally records one zero-job
    entry (``shard == CACHED_SHARD_ID``, ``cached`` = hit count) so fully
    cached runs are not silently absent from the timing table.
    ``cache_stats`` snapshots the result cache's live hit/miss counters
    (``None`` when the run was uncached).  ``first_row_s`` / ``last_row_s``
    are the wall seconds from run start until the first / last row became
    available on the stream (``None`` for empty runs).
    """

    jobs: List[Job]
    rows: List[dict]
    executed: int
    cached: int
    mode: str
    elapsed_s: float
    shard_timings: List[dict] = field(default_factory=list)
    job_latency_s: List[Optional[float]] = field(default_factory=list)
    cache_stats: Optional[dict] = None
    first_row_s: Optional[float] = None
    last_row_s: Optional[float] = None

    @property
    def total(self) -> int:
        return len(self.jobs)

    def summary(self) -> str:
        text = (f"{self.total} jobs: {self.executed} executed, "
                f"{self.cached} cached [{self.mode}, {self.elapsed_s:.2f}s]")
        if self.cache_stats is not None:
            text += (f" | cache: {self.cache_stats['hits']} hits, "
                     f"{self.cache_stats['misses']} misses "
                     f"({100.0 * self.cache_stats['hit_rate']:.1f}% hit rate)")
        return text


class _StreamState:
    """Mutable accumulators one stream run shares with its SweepResult."""

    def __init__(self, jobs: List[Job]) -> None:
        self.jobs = jobs
        self.rows: List[Optional[dict]] = [None] * len(jobs)
        self.latencies: List[Optional[float]] = [None] * len(jobs)
        self.shard_timings: List[dict] = []
        self.cached = 0
        self.executed = 0
        self.mode = "serial"
        self.started = time.perf_counter()
        self.first_row_s: Optional[float] = None
        self.last_row_s: Optional[float] = None
        self.cache_stats: Optional[dict] = None

    def mark_row(self) -> float:
        elapsed = time.perf_counter() - self.started
        if self.first_row_s is None:
            self.first_row_s = elapsed
        self.last_row_s = elapsed
        return elapsed

    def result(self) -> SweepResult:
        return SweepResult(jobs=self.jobs, rows=list(self.rows),
                           executed=self.executed, cached=self.cached,
                           mode=self.mode,
                           elapsed_s=time.perf_counter() - self.started,
                           shard_timings=self.shard_timings,
                           job_latency_s=self.latencies,
                           cache_stats=self.cache_stats,
                           first_row_s=self.first_row_s,
                           last_row_s=self.last_row_s)


class SweepStream:
    """Iterator over a streaming sweep's rows plus its final result.

    Iterate to receive one :class:`StreamRow` per job as rows land;
    :meth:`result` drains any remaining rows and packages the run's
    :class:`SweepResult` (identical to what :meth:`SweepExecutor.run` on the
    same jobs returns).

    A stream can be abandoned early: :meth:`close` (or leaving a
    ``with stream:`` block) shuts the underlying worker pool down without
    waiting for in-flight batches, so breaking out of the row loop never
    hangs behind stragglers.  A closed stream's :meth:`result` reports only
    the rows that had landed.
    """

    def __init__(self, events: Iterator[StreamRow], state: _StreamState) -> None:
        self._events = events
        self._state = state
        self._exhausted = False

    def __iter__(self) -> "SweepStream":
        return self

    def __next__(self) -> StreamRow:
        try:
            return next(self._events)
        except StopIteration:
            self._exhausted = True
            raise

    def close(self) -> None:
        """Abandon the stream: cancel queued batches, don't wait for running ones."""
        self._exhausted = True
        self._events.close()

    def __enter__(self) -> "SweepStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def total(self) -> int:
        return len(self._state.jobs)

    def result(self) -> SweepResult:
        """Drain the stream (if needed) and return the batch result."""
        if not self._exhausted:
            for _ in self:
                pass
        return self._state.result()


class SweepExecutor:
    """Runs sweep jobs through an optional cache and a worker pool.

    Parameters
    ----------
    mode:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``.  Auto picks
        a process pool for heavy runners (cycle-level simulations) with
        enough pending jobs, and serial execution for the cheap analytical
        models where pool overhead dominates.
    max_workers:
        Pool size (default: ``os.cpu_count()`` capped at 8).
    batch_size:
        Fixed jobs per micro-batch; by default the size adapts to the
        remaining queue (about ``remaining / (workers * 4)``, floored at 1),
        which bounds pool chatter up front while the tail degrades to
        single-job hand-outs so stragglers never quantise the finish.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are written back as each micro-batch completes.  Its
        replay sidecar is shipped to workers so recorded schedules are
        shared across processes.
    progress:
        Optional callback invoked as ``progress(done, total)`` after the
        cache scan and after every completed micro-batch.
    """

    def __init__(self, mode: str = "auto", max_workers: Optional[int] = None,
                 batch_size: Optional[int] = None, cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got '{mode}'")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.mode = mode
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------ internals
    def _resolve_workers(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        import os

        return max(1, min(os.cpu_count() or 1, 8))

    def _resolve_mode(self, pending: Sequence[Tuple[int, Job]], workers: int) -> str:
        if self.mode != "auto":
            return self.mode
        if not pending:
            return "serial"
        from repro.engine.runners import HEAVY_RUNNERS

        heavy = any(job.runner in HEAVY_RUNNERS for _, job in pending)
        if heavy and len(pending) > 1 and workers > 1:
            return "process"
        return "serial"

    def _next_batch(self, queue: "deque[Tuple[int, Job]]",
                    workers: int) -> List[Tuple[int, Job]]:
        """Pop the next same-runner micro-batch off the pending queue.

        With an explicit ``batch_size`` the size is fixed; otherwise it
        adapts to the remaining queue so early batches amortise dispatch
        overhead while the tail hands out single jobs (straggler-aware).
        """
        if self.batch_size is not None:
            size = self.batch_size
        else:
            size = max(1, math.ceil(len(queue) / (workers * _BATCHES_PER_WORKER)))
        batch = [queue.popleft()]
        runner = batch[0][1].runner
        while queue and len(batch) < size and queue[0][1].runner == runner:
            batch.append(queue.popleft())
        return batch

    def _worker_context(self) -> Optional[dict]:
        """Per-worker configuration shipped with every micro-batch."""
        if self.cache is None:
            return None
        return {"replay_sidecar": self.cache.sidecar_config()}

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    # --------------------------------------------------------------- stream
    def stream(self, jobs: Iterable[Job]) -> SweepStream:
        """Execute all jobs, yielding rows as they land.

        Cache hits are yielded first (in job order), then executed rows in
        completion order.  Call :meth:`SweepStream.result` after (or instead
        of) iterating for the batch :class:`SweepResult`.
        """
        state = _StreamState(list(jobs))
        return SweepStream(self._events(state), state)

    def _events(self, state: _StreamState) -> Iterator[StreamRow]:
        jobs = state.jobs
        total = len(jobs)
        hits: List[Tuple[int, dict]] = []
        if self.cache is not None:
            for index, job in enumerate(jobs):
                hit = self.cache.get(job)
                if hit is not None:
                    state.rows[index] = hit
                    hits.append((index, hit))
        state.cached = len(hits)
        pending = [(i, job) for i, job in enumerate(jobs)
                   if state.rows[i] is None]
        state.executed = len(pending)
        self._report(state.cached, total)
        if hits:
            # The zero-job shard entries: cache resolution is a real source
            # of rows and gets a timing-table line even when nothing
            # executed -- one entry per runner (in first-hit job order), so
            # mixed-runner sweeps attribute their hits to the right runner.
            cached_by_runner: Dict[str, int] = {}
            for index, _ in hits:
                runner = jobs[index].runner
                cached_by_runner[runner] = cached_by_runner.get(runner, 0) + 1
            for runner, count in cached_by_runner.items():
                state.shard_timings.append({
                    "shard": CACHED_SHARD_ID,
                    "runner": runner,
                    "jobs": 0,
                    "cached": count,
                    "elapsed_s": 0.0,
                })
        for index, row in hits:
            yield StreamRow(index=index, job=jobs[index], row=row, cached=True,
                            latency_s=None, elapsed_s=state.mark_row())

        workers = self._resolve_workers()
        mode = self._resolve_mode(pending, workers)
        queue = deque(pending)

        if mode == "serial" or not pending:
            # An explicitly requested pool mode is honoured even for a
            # single batch (worker isolation may be the point); only
            # "serial" and fully-cached runs execute in-process.
            state.mode = "serial"
            yield from self._serial_events(state, queue, workers, total)
        else:
            state.mode = mode
            yield from self._pool_events(state, queue, workers, total)

        if self.cache is not None:
            state.cache_stats = self.cache.counters()
            self.cache.persist_stats()

    def _serial_events(self, state: _StreamState, queue: "deque[Tuple[int, Job]]",
                       workers: int, total: int) -> Iterator[StreamRow]:
        context = self._worker_context()
        done = state.cached
        shard_id = 0
        while queue:
            batch = self._next_batch(queue, workers)
            outcome = _run_shard(batch[0][1].runner,
                                 [job.params_dict for _, job in batch], context)
            yield from self._finish_batch(state, batch, outcome, shard_id)
            shard_id += 1
            done += len(batch)
            self._report(done, total)

    def _pool_events(self, state: _StreamState, queue: "deque[Tuple[int, Job]]",
                     workers: int, total: int) -> Iterator[StreamRow]:
        pool_cls = (concurrent.futures.ProcessPoolExecutor
                    if state.mode == "process"
                    else concurrent.futures.ThreadPoolExecutor)
        pool_workers = min(workers, len(queue))
        try:
            pool = pool_cls(max_workers=pool_workers)
        except (OSError, PermissionError, ImportError):
            # Environments without working process spawning (restricted
            # sandboxes) silently fall back to threads.
            state.mode = "thread"
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=pool_workers)
        context = self._worker_context()
        done = state.cached
        shard_id = 0
        inflight: Dict[concurrent.futures.Future, Tuple[int, List[Tuple[int, Job]]]] = {}

        def submit_next() -> None:
            nonlocal shard_id
            batch = self._next_batch(queue, workers)
            future = pool.submit(_run_shard, batch[0][1].runner,
                                 [job.params_dict for _, job in batch], context)
            inflight[future] = (shard_id, batch)
            shard_id += 1

        try:
            try:
                while queue and len(inflight) < pool_workers:
                    submit_next()
                while inflight:
                    ready, _ = concurrent.futures.wait(
                        inflight, return_when=concurrent.futures.FIRST_COMPLETED)
                    for future in ready:
                        batch_id, batch = inflight.pop(future)
                        outcome = future.result()
                        # Refill the freed worker before yielding, so the
                        # pool never sits idle while the consumer works.
                        while queue and len(inflight) < pool_workers:
                            submit_next()
                        yield from self._finish_batch(state, batch, outcome,
                                                      batch_id)
                        done += len(batch)
                        self._report(done, total)
            except concurrent.futures.BrokenExecutor:
                if state.mode != "process":
                    raise
                # A broken process pool (e.g. fork disallowed) degrades to a
                # serial re-run of every job whose row is still missing.
                state.mode = "serial"
                missing = deque((index, job) for index, job in enumerate(state.jobs)
                                if state.rows[index] is None)
                done = total - len(missing)
                self._report(done, total)
                while missing:
                    batch = self._next_batch(missing, workers)
                    outcome = _run_shard(batch[0][1].runner,
                                         [job.params_dict for _, job in batch],
                                         context)
                    yield from self._finish_batch(state, batch, outcome,
                                                  shard_id, fallback=True)
                    shard_id += 1
                    done += len(batch)
                    self._report(done, total)
        finally:
            # Never wait for stragglers here: on the normal path every
            # future has already completed, and when the consumer abandons
            # the stream mid-iteration (break / Ctrl-C closes this
            # generator) a blocking shutdown would hang the exit behind
            # every in-flight batch.  Queued-but-unstarted batches are
            # cancelled outright.
            pool.shutdown(wait=False, cancel_futures=True)

    def _finish_batch(self, state: _StreamState, batch: List[Tuple[int, Job]],
                      outcome: Tuple[List[dict], List[float]],
                      shard_id: int, fallback: bool = False) -> Iterator[StreamRow]:
        batch_rows, batch_seconds = outcome
        timing = {
            "shard": shard_id,
            "runner": batch[0][1].runner,
            "jobs": len(batch),
            "elapsed_s": float(sum(batch_seconds)),
        }
        if fallback:
            # Serial re-runs after a broken pool stay distinguishable from
            # regular shards in the timing table / run manifest.
            timing["fallback"] = True
        state.shard_timings.append(timing)
        for (index, job), row, seconds in zip(batch, batch_rows, batch_seconds):
            state.rows[index] = row
            state.latencies[index] = seconds
            if self.cache is not None:
                try:
                    self.cache.put(job, row)
                except OSError as exc:
                    # A mid-run write failure (disk full, cache dir removed)
                    # must not lose computed results: stop caching and finish.
                    import sys

                    print(f"warning: cache write failed ({exc}); "
                          f"caching disabled for the rest of this run",
                          file=sys.stderr)
                    self.cache = None
            yield StreamRow(index=index, job=job, row=row, cached=False,
                            latency_s=seconds, elapsed_s=state.mark_row())

    # ------------------------------------------------------------------ run
    def run(self, jobs: Iterable[Job]) -> SweepResult:
        """Execute all jobs and return the batch result (rows in job order).

        A thin wrapper over :meth:`stream`: the rows, their ordering and the
        telemetry are identical whether the run was consumed incrementally
        or as one batch.
        """
        return self.stream(jobs).result()


def execute_jobs(jobs: Sequence[Job], mode: str = "auto",
                 max_workers: Optional[int] = None, batch_size: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    executor = SweepExecutor(mode=mode, max_workers=max_workers,
                             batch_size=batch_size, cache=cache, progress=progress)
    return executor.run(jobs)


def stream_jobs(jobs: Sequence[Job], mode: str = "auto",
                max_workers: Optional[int] = None, batch_size: Optional[int] = None,
                cache: Optional[ResultCache] = None,
                progress: Optional[ProgressCallback] = None) -> SweepStream:
    """One-shot convenience wrapper around :meth:`SweepExecutor.stream`."""
    executor = SweepExecutor(mode=mode, max_workers=max_workers,
                             batch_size=batch_size, cache=cache, progress=progress)
    return executor.stream(jobs)
