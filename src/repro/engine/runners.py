"""Adapters turning the repo's evaluation code paths into engine runners.

A *runner* is a pure, picklable function ``params_dict -> row_dict``; the
executor looks runners up by name so that jobs can be shipped to worker
processes without serialising code.  The adapters cover every evaluation
code path the paper figures sweep:

``design``
    chip-level area/power/efficiency of a LAP design point (``build_lap``),
``pe``
    one processing element across frequency / precision / local store,
``simulate``
    a kernel run on the cycle-level LAC simulator with seeded operands,
``chip_gemm``
    the analytical multi-core GEMM model with off-chip transfers
    (cores x bandwidth x problem size),
``chip_gemm_onchip``
    the on-chip side of the same model: one ``C += A_p B_p`` update under a
    given (or the required) aggregate on-chip bandwidth (Figs. 4.2/4.3),
``core_gemm``
    the analytical single-core GEMM model (local store x bandwidth),
``blas``
    the level-3 BLAS utilisation model (GEMM/TRSM/SYRK/SYR2K/...;
    Figs. 5.8-5.10),
``fact_kernel``
    the analytical factorization inner-kernel cycle/energy model across
    SFU placements and MAC extensions (Figs. 6.6/6.7, A.3-A.8),
``lap_runtime``
    a blocked GEMM / Cholesky / LU / QR task graph scheduled by the LAP
    runtime onto the cycle-level multi-core simulator (block sizes x core
    counts x scheduling policies x timing models),
``blocked_fact``
    a full blocked Cholesky/LU/QR factorization on the cycle-level LAC
    simulator, cross-checked against the analytical panel model,
``experiment``
    one :mod:`repro.experiments.registry` entry (cached artifact regeneration).

Rows contain only JSON-serialisable scalars (except ``experiment``, whose
``data`` field carries the experiment payload) so results cache cleanly and
compare byte-identically across serial / thread / process execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.engine.analysis import DEFAULT_OBJECTIVES
from repro.engine.spec import Params

#: Bump a runner's version whenever its row content changes; the fingerprint
#: below folds these into the cache namespace, invalidating stale entries.
RUNNER_VERSIONS: Dict[str, int] = {
    "design": 1,
    "pe": 1,
    "simulate": 1,
    "chip_gemm": 1,
    "chip_gemm_onchip": 1,
    "core_gemm": 1,
    "blas": 1,
    "fact_kernel": 1,
    # v4: two-level memory hierarchy -- per-core local stores
    # (local_store_kb axis, local-hit / shared-hit / core-to-core traffic
    # columns), the affinity policy and the stall_overlap prefetch axis.
    # v5: fast scheduler path (fast param; byte-identical rows) and
    # schedule-replay costing for delta sweeps (replay param).
    # v6: chip-clock (frequency_ghz) and off-chip access-energy
    # (offchip_pj_per_byte) sweep axes with widened schedule replay
    # (per-task energy re-keying) and the writeback_bytes execution field.
    "lap_runtime": 6,
    "blocked_fact": 1,
    "experiment": 1,
}

#: Runners that do enough work per job for a process pool to pay off; the
#: analytical models run in microseconds and stay serial under mode="auto".
HEAVY_RUNNERS = frozenset({"simulate", "experiment", "lap_runtime", "blocked_fact"})

#: Parameters each runner understands; anything else in a job's params is
#: silently unused, so the CLI warns when a sweep axis is not listed here.
KNOWN_PARAMS: Dict[str, frozenset] = {
    "design": frozenset({"cores", "nr", "precision", "frequency_ghz",
                         "local_store_kbytes", "onchip_mbytes", "utilization"}),
    "pe": frozenset({"precision", "frequency_ghz", "local_store_kbytes"}),
    "simulate": frozenset({"kernel", "size", "nr", "frequency_ghz", "seed"}),
    "chip_gemm": frozenset({"num_cores", "nr", "n", "offchip_bw_bytes_per_cycle",
                            "frequency_ghz"}),
    "chip_gemm_onchip": frozenset({"num_cores", "nr", "n", "kc", "mc",
                                   "onchip_bw_words_per_cycle", "full_overlap",
                                   "frequency_ghz"}),
    "core_gemm": frozenset({"nr", "n", "kc", "mc", "bandwidth_bytes_per_cycle"}),
    "blas": frozenset({"operation", "nr", "n", "kc", "mc",
                       "bandwidth_bytes_per_cycle", "full_overlap"}),
    "fact_kernel": frozenset({"kernel", "k", "nr", "sfu", "mac_extension",
                              "precision", "frequency_ghz", "local_store_kbytes"}),
    "lap_runtime": frozenset({"algorithm", "n", "tile", "num_cores", "nr",
                              "onchip_mbytes", "seed", "policy", "timing",
                              "verify", "core_frequencies_ghz", "memory",
                              "on_chip_kb", "bandwidth_gbs", "local_store_kb",
                              "stall_overlap", "fast", "replay",
                              "frequency_ghz", "offchip_pj_per_byte"}),
    "blocked_fact": frozenset({"method", "n", "nr", "seed", "use_extension",
                               "frequency_ghz"}),
    "experiment": frozenset({"exp_id"}),
}


#: Per-process memo of recorded schedules for the ``lap_runtime`` replay
#: fast path: structural key (everything except the bandwidth / overlap
#: constants) -> (ScheduleTrace, fresh row).  FIFO-bounded; worker processes
#: each keep their own (replay is an optimisation, never a correctness
#: dependency -- a miss just re-simulates).
_REPLAY_MEMO: "Dict[tuple, tuple]" = {}
_REPLAY_MEMO_MAX = 16

#: Cross-process replay sidecar (a :class:`repro.engine.cache.SidecarStore`)
#: configured by the executor through :func:`configure_worker`; ``None``
#: keeps replay purely in-process.  Worker processes each configure their
#: own handle from the picklable context shipped with every micro-batch.
_WORKER_SIDECAR = None

#: Sidecar record kind for persisted ``lap_runtime`` schedule recordings.
_REPLAY_SIDECAR_KIND = "lap_runtime/schedule_trace"


def configure_worker(context: Optional[Mapping] = None) -> None:
    """Apply executor-provided per-worker context (idempotent).

    Currently the context carries the result cache's replay-sidecar
    location (``{"replay_sidecar": {"directory": ..., "code_version":
    ...}}``); passing ``None`` or an empty context resets to purely
    in-process replay.  Called by the executor at the start of serial runs
    and inside every pool worker before a micro-batch executes.
    """
    global _WORKER_SIDECAR
    sidecar_config = context.get("replay_sidecar") if context else None
    if not sidecar_config:
        _WORKER_SIDECAR = None
        return
    if (_WORKER_SIDECAR is not None
            and _WORKER_SIDECAR.config() == dict(sidecar_config)):
        return
    from repro.engine.cache import SidecarStore

    _WORKER_SIDECAR = SidecarStore.from_config(sidecar_config)


def _replay_material(structural_key: tuple) -> str:
    """Canonical sidecar key material of a structural replay key."""
    import json

    return json.dumps(structural_key)


def _memoize_replay(structural_key: tuple, trace, row: dict) -> None:
    _REPLAY_MEMO[structural_key] = (trace, row)
    while len(_REPLAY_MEMO) > _REPLAY_MEMO_MAX:
        _REPLAY_MEMO.pop(next(iter(_REPLAY_MEMO)))


def _load_replay_from_sidecar(structural_key: tuple) -> Optional[tuple]:
    """Seed the in-process memo from the cross-process sidecar, if present."""
    if _WORKER_SIDECAR is None:
        return None
    payload = _WORKER_SIDECAR.get(_REPLAY_SIDECAR_KIND,
                                  _replay_material(structural_key))
    if payload is None:
        return None
    from repro.lap.fastpath import REPLAY_STATS, ScheduleTrace

    try:
        trace = ScheduleTrace.from_payload(payload["trace"])
        row = payload["row"]
        if not isinstance(row, dict):
            raise TypeError("sidecar replay row must be a dict")
    except (KeyError, TypeError, ValueError):
        return None
    REPLAY_STATS["sidecar_loaded"] += 1
    _memoize_replay(structural_key, trace, row)
    return (trace, row)


def _store_replay_to_sidecar(structural_key: tuple, trace, row: dict) -> None:
    """Publish a fresh schedule recording for other processes (best effort)."""
    if _WORKER_SIDECAR is None:
        return
    payload = {"trace": trace.to_payload(), "row": row}
    if _WORKER_SIDECAR.put(_REPLAY_SIDECAR_KIND,
                           _replay_material(structural_key), payload) is not None:
        from repro.lap.fastpath import REPLAY_STATS

        REPLAY_STATS["sidecar_stored"] += 1


def _replayed_row(row: dict, stall_overlap, bandwidth_gbs, memory: bool,
                  frequency_ghz=None, offchip_pj_per_byte=None,
                  makespan_ns=None, energy_j=None,
                  gflops_per_w=None) -> dict:
    """Cached row re-keyed for a replayed sweep point.

    Only the constants that provably did not change the schedule are
    patched: the gated ``stall_overlap`` / ``frequency_ghz`` /
    ``offchip_pj_per_byte`` columns (present exactly when the new point
    sets the parameter, in the position a fresh row gives them), the
    effective ``bandwidth_gbs``, and -- under a chip-clock or energy
    delta -- the ``makespan_ns`` / ``energy_j`` / ``gflops_per_w`` values
    the caller recomputed from the trace.  Everything else is
    byte-identical by :meth:`ScheduleTrace.exact_for`.
    """
    out = {}
    for key, value in row.items():
        if key in ("stall_overlap", "frequency_ghz", "offchip_pj_per_byte"):
            continue
        out[key] = value
        if key == "core_frequencies_ghz" and frequency_ghz is not None:
            out["frequency_ghz"] = frequency_ghz
        if key == "memory" and stall_overlap is not None:
            out["stall_overlap"] = stall_overlap
        if key == "bandwidth_gbs" and offchip_pj_per_byte is not None:
            out["offchip_pj_per_byte"] = offchip_pj_per_byte
    if memory:
        out["bandwidth_gbs"] = bandwidth_gbs
    if makespan_ns is not None:
        out["makespan_ns"] = makespan_ns
    if energy_j is not None:
        out["energy_j"] = energy_j
    if gflops_per_w is not None:
        out["gflops_per_w"] = gflops_per_w
    return out


def _precision(params: Mapping) -> "Precision":
    from repro.hw.fpu import Precision

    name = str(params.get("precision", "double")).lower()
    if name in ("single", "sp"):
        return Precision.SINGLE
    if name in ("double", "dp"):
        return Precision.DOUBLE
    raise ValueError(f"unknown precision '{name}' (use 'single' or 'double')")


def run_design_point(params: Params) -> dict:
    """Evaluate one LAP chip design point (area / power / efficiency)."""
    from repro.arch.lap_design import build_lap

    precision = _precision(params)
    cores = int(params.get("cores", 8))
    nr = int(params.get("nr", 4))
    frequency = float(params.get("frequency_ghz", 1.0))
    local_store = float(params.get("local_store_kbytes", 16.0))
    onchip = float(params.get("onchip_mbytes", 4.0))
    utilization = float(params.get("utilization", 0.9))
    design = build_lap(num_cores=cores, nr=nr, precision=precision,
                       frequency_ghz=frequency, local_store_kbytes=local_store,
                       onchip_memory_mbytes=onchip)
    eff = design.efficiency(utilization=utilization)
    return {
        "cores": cores,
        "nr": nr,
        "precision": precision.value,
        "frequency_ghz": frequency,
        "local_store_kbytes": local_store,
        "onchip_mbytes": onchip,
        "utilization": utilization,
        "area_mm2": design.area_mm2,
        "power_w": design.power_w(),
        "peak_gflops": design.peak_gflops,
        "gflops": eff.gflops,
        "gflops_per_w": eff.gflops_per_watt,
        "gflops_per_mm2": eff.gflops_per_mm2,
    }


def run_pe_point(params: Params) -> dict:
    """Evaluate one processing-element design point."""
    from repro.arch.lap_design import build_pe

    precision = _precision(params)
    frequency = float(params.get("frequency_ghz", 1.0))
    local_store = float(params.get("local_store_kbytes", 16.0))
    pe = build_pe(precision=precision, frequency_ghz=frequency,
                  local_store_kbytes=local_store)
    eff = pe.efficiency()
    return {
        "precision": precision.value,
        "frequency_ghz": frequency,
        "local_store_kbytes": local_store,
        "pe_area_mm2": pe.area_mm2,
        "store_area_mm2": pe.store_a.area_mm2 + pe.store_b.area_mm2,
        "fpu_area_mm2": pe.fmac.area_mm2,
        "memory_power_w": pe.memory_power_w,
        "fmac_power_w": pe.fmac_power_w,
        "pe_power_w": pe.total_power_w,
        "peak_gflops": pe.peak_gflops,
        "mm2_per_gflop": eff.mm2_per_gflop,
        "mw_per_gflop": eff.mw_per_gflop,
        "energy_delay": eff.energy_delay,
        "gflops_per_w": eff.gflops_per_watt,
        "gflops_per_mm2": eff.gflops_per_mm2,
    }


def run_kernel_simulation(params: Params) -> dict:
    """Run one kernel on the cycle-level LAC simulator with seeded operands."""
    import numpy as np

    from repro.kernels.dispatch import check_size, get_kernel, simulate_kernel
    from repro.lac import LACConfig, LinearAlgebraCore

    kernel = str(params.get("kernel", "gemm"))
    size = int(params.get("size", 16))
    nr = int(params.get("nr", 4))
    frequency = float(params.get("frequency_ghz", 1.0))
    seed = int(params.get("seed", 0))
    spec = get_kernel(kernel)
    check_size(kernel, size, nr)
    core = LinearAlgebraCore(LACConfig(nr=nr, frequency_ghz=frequency))
    rng = np.random.default_rng(seed)
    result = simulate_kernel(core, kernel, size, rng)
    return {
        "kernel": kernel,
        "size": size,
        "effective_size": spec.effective_size(size, nr),
        "nr": nr,
        "frequency_ghz": frequency,
        "seed": seed,
        "cycles": int(result.cycles),
        "mac_ops": int(result.counters.mac_ops),
        "flops": int(result.flops),
        "utilization": float(result.utilization),
        "gflops": float(result.gflops(frequency)),
    }


def run_chip_gemm(params: Params) -> dict:
    """Evaluate the analytical multi-core GEMM model at one design point."""
    from repro.models.chip_model import ChipGEMMModel

    num_cores = int(params.get("num_cores", 8))
    nr = int(params.get("nr", 4))
    n = int(params.get("n", 2048))
    bw_bytes = float(params.get("offchip_bw_bytes_per_cycle", 16.0))
    frequency = float(params.get("frequency_ghz", 1.0))
    model = ChipGEMMModel(num_cores=num_cores, nr=nr)
    res = model.cycles_offchip(n, offchip_bandwidth_words_per_cycle=bw_bytes / 8.0)
    return {
        "num_cores": num_cores,
        "nr": nr,
        "n": n,
        "offchip_bw_bytes_per_cycle": bw_bytes,
        "frequency_ghz": frequency,
        "onchip_memory_mbytes": res.onchip_memory_mbytes(),
        "total_cycles": res.total_cycles,
        "utilization": res.utilization,
        "utilization_pct": 100.0 * res.utilization,
        "gflops": res.gflops(frequency),
    }


def run_core_gemm(params: Params) -> dict:
    """Evaluate the analytical single-core GEMM model at one design point."""
    from repro.models.core_model import CoreGEMMModel

    nr = int(params.get("nr", 4))
    n = int(params.get("n", 512))
    kc = int(params.get("kc", 128))
    mc = int(params.get("mc", kc))
    bw_bytes = float(params.get("bandwidth_bytes_per_cycle", 4.0))
    model = CoreGEMMModel(nr=nr)
    res = model.cycles(mc=mc, kc=kc, n=n,
                       bandwidth_elements_per_cycle=max(bw_bytes / 8.0, 1e-3))
    return {
        "nr": nr,
        "n": n,
        "mc": mc,
        "kc": kc,
        "bandwidth_bytes_per_cycle": bw_bytes,
        "local_store_kbytes_per_pe": res.local_store_bytes_per_pe / 1024.0,
        "total_cycles": res.total_cycles,
        "utilization": res.utilization,
        "utilization_pct": 100.0 * res.utilization,
    }


def run_chip_gemm_onchip(params: Params) -> dict:
    """Evaluate the on-chip side of the multi-core GEMM model at one point.

    With ``onchip_bw_words_per_cycle`` unset, the model's *required*
    aggregate bandwidth for the blocking is used (the Fig. 4.2 operating
    point); with it set, the update runs bandwidth-limited (Fig. 4.3).
    """
    from repro.models.chip_model import ChipGEMMModel

    num_cores = int(params.get("num_cores", 8))
    nr = int(params.get("nr", 4))
    n = int(params.get("n", 1024))
    kc = int(params.get("kc", 128))
    mc = int(params.get("mc", kc))
    full_overlap = bool(params.get("full_overlap", False))
    frequency = float(params.get("frequency_ghz", 1.0))
    model = ChipGEMMModel(num_cores=num_cores, nr=nr)
    bw = params.get("onchip_bw_words_per_cycle")
    if bw is None:
        bw = model.onchip_bandwidth_words_per_cycle(mc, kc, n, full_overlap)
    res = model.cycles_onchip(mc, kc, n, float(bw), full_overlap)
    mem_words = model.onchip_memory_words(mc, kc, n, full_overlap)
    element_bytes = model.element_bytes
    return {
        "num_cores": num_cores,
        "nr": nr,
        "n": n,
        "mc": mc,
        "kc": kc,
        "full_overlap": full_overlap,
        "frequency_ghz": frequency,
        "onchip_bw_words_per_cycle": float(bw),
        "onchip_bandwidth_bytes_per_cycle": float(bw) * element_bytes,
        "onchip_memory_words": mem_words,
        "onchip_memory_mbytes": mem_words * element_bytes / 2 ** 20,
        "total_cycles": res.total_cycles,
        "peak_cycles": res.peak_cycles,
        "utilization": res.utilization,
        "utilization_pct": 100.0 * res.utilization,
        "gflops": res.gflops(frequency),
    }


def run_blas_point(params: Params) -> dict:
    """Evaluate the level-3 BLAS utilisation model at one design point."""
    from repro.models.blas_model import BlasCoreModel, Level3Operation

    operation = Level3Operation(str(params.get("operation", "gemm")).lower())
    nr = int(params.get("nr", 4))
    n = int(params.get("n", 512))
    kc = int(params.get("kc", 128))
    mc = int(params.get("mc", kc))
    bw_bytes = float(params.get("bandwidth_bytes_per_cycle", 4.0))
    full_overlap = bool(params.get("full_overlap", False))
    model = BlasCoreModel(nr=nr)
    res = model.utilization(operation, mc=mc, kc=kc, n=n,
                            bandwidth_elements_per_cycle=bw_bytes / 8.0,
                            full_overlap=full_overlap)
    return {
        "operation": operation.value,
        "nr": nr,
        "n": n,
        "mc": mc,
        "kc": kc,
        "bandwidth_bytes_per_cycle": bw_bytes,
        "bandwidth_elements_per_cycle": bw_bytes / 8.0,
        "local_store_kbytes_per_pe": res.local_store_kbytes_per_pe,
        "utilization": res.utilization,
        "utilization_pct": 100.0 * res.utilization,
    }


def run_fact_kernel(params: Params) -> dict:
    """Evaluate the factorization inner-kernel model at one configuration.

    The reference core area (for GFLOPS/mm^2) is derived inside the runner
    from the same precision / frequency / local-store parameters, so the
    whole row is a pure function of the job parameters and cache keys stay
    stable across calls.
    """
    from repro.arch.lap_design import build_pe
    from repro.hw.sfu import SFUPlacement
    from repro.models.fact_model import (FactorizationKernel,
                                         FactorizationKernelModel, MACExtension)

    precision = _precision(params)
    kernel = FactorizationKernel(str(params.get("kernel", "lu")).lower())
    k = int(params.get("k", 128))
    nr = int(params.get("nr", 4))
    placement = SFUPlacement(str(params.get("sfu", "isolate")).lower())
    extension = MACExtension(str(params.get("mac_extension", "none")).lower())
    frequency = float(params.get("frequency_ghz", 1.0))
    local_store = float(params.get("local_store_kbytes", 16.0))
    model = FactorizationKernelModel(nr=nr, precision=precision,
                                     frequency_ghz=frequency,
                                     local_store_kbytes_per_pe=local_store)
    core_area = nr * nr * build_pe(precision, frequency, local_store).area_mm2
    res = model.evaluate(kernel, k, placement, extension)
    eff = model.efficiency(res, core_area)
    return {
        "kernel": kernel.value,
        "k": k,
        "nr": nr,
        "sfu": placement.value,
        "mac_extension": extension.value,
        "precision": precision.value,
        "frequency_ghz": frequency,
        "core_area_mm2": core_area,
        "cycles": res.cycles,
        "useful_flops": res.useful_flops,
        "utilization": res.utilization,
        "gflops": eff.gflops,
        "gflops_per_w": eff.gflops_per_watt,
        "gflops_per_mm2": eff.gflops_per_mm2,
        "inverse_energy_delay": eff.inverse_energy_delay,
    }


def run_lap_runtime(params: Params) -> dict:
    """Schedule one blocked algorithm through the LAP runtime simulator.

    Decomposes an ``n x n`` problem into ``tile x tile`` tasks with the
    algorithms-by-blocks library (GEMM, Cholesky, tiled LU or tiled QR),
    executes the task graph on the cores of a cycle-level LAP under the
    requested scheduling policy and timing model, and reports makespan /
    load-balance / graph analytics / correctness.

    ``policy`` selects the scheduler (greedy / critical_path / locality /
    memory_aware), ``timing`` the timing model (functional / memoized),
    ``verify`` keeps the tile data exact under memoized timing (residual
    available), and ``core_frequencies_ghz`` accepts per-core clocks for
    heterogeneous-tile studies: a sequence, a single number (applied to
    every core), or a delimited string -- ``"1.0,2.0"`` or ``"1.0:2.0"``
    (the colon form survives the sweep CLI's comma-separated axis syntax,
    e.g. ``--set core_frequencies_ghz=1.0:2.0``).

    Data movement is simulated through the runtime's memory-hierarchy layer
    (``memory=False`` disables it): ``on_chip_kb`` constrains the tile
    working set below the chip's physical on-chip memory and
    ``bandwidth_gbs`` overrides the sustained off-chip bandwidth; rows gain
    traffic / spill / stall / energy / GFLOPS-per-W columns.

    ``local_store_kb`` enables the two-level hierarchy (a per-core local
    store above the shared on-chip level); rows then additionally split the
    on-chip movement into local-hit / shared-to-local / core-to-core bytes
    and report the local hit rate and transfer cycles.  ``stall_overlap``
    exposes the prefetch-overlap fraction (0 = data-movement cycles fully
    serialised, 1 = fully hidden) as a sweep axis.  Both columns appear
    only when their parameter is given, so existing single-level rows stay
    byte-identical.

    ``frequency_ghz`` sets the chip clock (all cores, default 1.0) and
    ``offchip_pj_per_byte`` overrides the DRAM interface's access energy
    in pJ/byte; both appear as gated row columns only when given, so
    existing rows stay byte-identical.

    ``fast`` routes scheduling through the inlined hot path of
    :mod:`repro.lap.fastpath` (byte-identical rows, no new columns;
    default off).  ``replay`` controls schedule-replay costing for delta
    sweeps: under ``"auto"`` (the default) every simulated point records a
    :class:`repro.lap.fastpath.ScheduleTrace`, and a later point that
    differs only in constants which provably cannot change the schedule
    reuses the recorded row with the affected columns re-keyed:
    ``bandwidth_gbs`` / ``stall_overlap`` deltas (zero spill traffic,
    zero visible movement cycles) patch those columns alone, a
    ``frequency_ghz`` delta (homogeneous cores both sides, zero spill)
    rescales ``makespan_ns`` from the recorded cycle count, and a
    frequency or ``offchip_pj_per_byte`` delta re-keys ``energy_j`` /
    ``gflops_per_w`` from the trace's per-task energy triples; anything
    else -- or ``replay="off"`` -- re-simulates.
    """
    import numpy as np

    from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
    from repro.lap.policies import GEMMScheduler
    from repro.lap.runtime import LAPRuntime
    from repro.lap.taskgraph import AlgorithmsByBlocks

    algorithm = str(params.get("algorithm", "gemm")).lower()
    if algorithm not in AlgorithmsByBlocks.WORKLOADS:
        raise ValueError(f"unknown lap_runtime algorithm '{algorithm}' "
                         f"(use one of {', '.join(AlgorithmsByBlocks.WORKLOADS)})")
    n = int(params.get("n", 16))
    tile = int(params.get("tile", 8))
    num_cores = int(params.get("num_cores", 2))
    nr = int(params.get("nr", 4))
    onchip_mbytes = float(params.get("onchip_mbytes", 1.0))
    seed = int(params.get("seed", 0))
    policy = str(params.get("policy", "greedy"))
    timing = str(params.get("timing", "functional"))
    verify = bool(params.get("verify", True))
    memory = bool(params.get("memory", True))
    on_chip_kb = params.get("on_chip_kb")
    on_chip_kb = None if on_chip_kb is None else float(on_chip_kb)
    bandwidth_gbs = params.get("bandwidth_gbs")
    bandwidth_gbs = None if bandwidth_gbs is None else float(bandwidth_gbs)
    local_store_kb = params.get("local_store_kb")
    local_store_kb = None if local_store_kb is None else float(local_store_kb)
    stall_overlap = params.get("stall_overlap")
    stall_overlap = None if stall_overlap is None else float(stall_overlap)
    frequency_ghz = params.get("frequency_ghz")
    frequency_ghz = None if frequency_ghz is None else float(frequency_ghz)
    if frequency_ghz is not None and frequency_ghz <= 0:
        raise ValueError("frequency_ghz must be positive")
    offchip_pj = params.get("offchip_pj_per_byte")
    offchip_pj = None if offchip_pj is None else float(offchip_pj)
    if offchip_pj is not None and offchip_pj < 0:
        raise ValueError("offchip_pj_per_byte must be non-negative")
    fast = bool(params.get("fast", False))
    replay = str(params.get("replay", "auto")).lower()
    if replay not in ("auto", "off"):
        raise ValueError(f"unknown replay mode '{replay}' "
                         f"(use 'auto' or 'off')")
    frequencies_param = params.get("core_frequencies_ghz")
    if frequencies_param is None:
        frequencies = None
    elif isinstance(frequencies_param, str):
        parts = [p for p in frequencies_param.replace(":", ",").split(",")
                 if p.strip()]
        frequencies = [float(p) for p in parts]
        if len(frequencies) == 1:
            frequencies = frequencies * num_cores
    elif isinstance(frequencies_param, (list, tuple)):
        frequencies = [float(f) for f in frequencies_param]
    else:
        frequencies = [float(frequencies_param)] * num_cores
    structural_key = (algorithm, n, tile, num_cores, nr, onchip_mbytes, seed,
                      policy, timing, verify, memory, on_chip_kb,
                      local_store_kb,
                      None if frequencies is None else tuple(frequencies),
                      fast)
    if replay == "auto":
        cached = _REPLAY_MEMO.get(structural_key)
        if cached is None:
            # Cross-process warm path: another worker (or an earlier run)
            # may have published this schedule to the cache's replay sidecar.
            cached = _load_replay_from_sidecar(structural_key)
        if cached is not None:
            from repro.lap.fastpath import REPLAY_STATS
            trace, cached_row = cached
            effective_bw = (None if not memory
                            else (bandwidth_gbs if bandwidth_gbs is not None
                                  else trace.default_bandwidth_gbs))
            new_freq = 1.0 if frequency_ghz is None else frequency_ghz
            new_homog = (frequencies is None
                         or all(f == new_freq for f in frequencies))
            new_epoff = (None if not memory
                         else (offchip_pj * 1e-12 if offchip_pj is not None
                               else trace.default_offchip_energy_per_byte_j))
            if trace.exact_for(effective_bw,
                               0.0 if stall_overlap is None else stall_overlap,
                               frequency_ghz=new_freq,
                               homogeneous_cores=new_homog,
                               offchip_energy_per_byte_j=new_epoff):
                REPLAY_STATS["replayed"] += 1
                freq_delta = (trace.frequency_ghz is not None
                              and new_freq != trace.frequency_ghz)
                makespan_ns = (trace.makespan_cycles / new_freq
                               if freq_delta else None)
                energy_j = gflops_per_w = None
                if memory and trace.energy_constants is not None:
                    epf, epon, epoff = trace.energy_constants
                    if freq_delta or new_epoff != epoff:
                        if freq_delta:
                            # The per-flop and per-on-chip-byte constants
                            # follow the chip's operating point, so rebuild
                            # them at the new clock before re-keying.
                            from repro.lap.memory import TaskEnergyModel
                            lap2 = LinearAlgebraProcessor(LAPConfig(
                                num_cores=num_cores, nr=nr,
                                onchip_memory_mbytes=onchip_mbytes,
                                frequency_ghz=new_freq))
                            em = TaskEnergyModel(lap2.config.fmac(),
                                                 lap2.onchip_memory,
                                                 lap2.offchip)
                            epf = em.energy_per_flop_j
                            epon = em.onchip_energy_per_byte_j
                        energy_j = trace.rekey_energy_j(epf, epon, new_epoff)
                        flops = float(cached_row["total_flops"])
                        gflops_per_w = (flops / energy_j / 1e9
                                        if energy_j > 0 else 0.0)
                return _replayed_row(cached_row, stall_overlap, effective_bw,
                                     memory, frequency_ghz=frequency_ghz,
                                     offchip_pj_per_byte=offchip_pj,
                                     makespan_ns=makespan_ns,
                                     energy_j=energy_j,
                                     gflops_per_w=gflops_per_w)
            REPLAY_STATS["forced"] += 1
    lap = LinearAlgebraProcessor(LAPConfig(
        num_cores=num_cores, nr=nr, onchip_memory_mbytes=onchip_mbytes,
        frequency_ghz=1.0 if frequency_ghz is None else frequency_ghz))
    runtime = LAPRuntime(lap, tile, policy=policy, timing=timing,
                         core_frequencies_ghz=frequencies, memory=memory,
                         on_chip_kb=on_chip_kb, bandwidth_gbs=bandwidth_gbs,
                         local_store_kb=local_store_kb,
                         stall_overlap=0.0 if stall_overlap is None
                         else stall_overlap, fast=fast,
                         offchip_pj_per_byte=offchip_pj)
    rng = np.random.default_rng(seed)
    stats = runtime.run_workload(algorithm, n, rng, verify=verify)
    if algorithm == "gemm":
        # The panel-blocking scheduler's static distribution only describes
        # GEMM row panels; a factorization's shrinking trailing matrix has
        # no such static assignment, so the metric is null otherwise.
        scheduler = GEMMScheduler(num_cores=num_cores, nr=nr)
        static_balance = float(scheduler.load_balance(scheduler.assign_panels(n, tile)))
    else:
        static_balance = None
    busy = stats["per_core_busy_cycles"]
    graph = stats["graph"]
    residual = stats["residual"]
    row = {
        "algorithm": algorithm,
        "n": n,
        "tile": tile,
        "num_cores": num_cores,
        "nr": nr,
        "seed": seed,
        "policy": policy,
        "timing": timing,
        "verify": verify,
        "core_frequencies_ghz": (",".join(f"{f:g}" for f in frequencies)
                                 if frequencies else None),
    }
    if frequency_ghz is not None:
        row["frequency_ghz"] = frequency_ghz
    row.update({
        "tasks_executed": int(stats["tasks_executed"]),
        "critical_path_tasks": int(graph["critical_path_tasks"]),
        "graph_width": int(graph["width"]),
        "graph_levels": int(graph["num_levels"]),
        "makespan_cycles": int(round(stats["makespan_cycles"])),
        "makespan_ns": float(stats["makespan_ns"]),
        "total_busy_cycles": int(sum(busy)),
        "max_core_busy_cycles": int(max(busy)),
        "min_core_busy_cycles": int(min(busy)),
        "parallel_efficiency": float(stats["parallel_efficiency"]),
        "static_load_balance": static_balance,
        "residual": None if residual is None else float(residual),
        "memory": memory,
    })
    if stall_overlap is not None:
        row["stall_overlap"] = stall_overlap
    if memory:
        row.update({
            "on_chip_kb": float(stats["on_chip_capacity_bytes"]) / 1024.0,
            "bandwidth_gbs": float(stats["bandwidth_gbs"]),
        })
        if offchip_pj is not None:
            row["offchip_pj_per_byte"] = offchip_pj
        row.update({
            "traffic_bytes": int(round(stats["offchip_traffic_bytes"])),
            "compulsory_bytes": int(round(stats["compulsory_bytes"])),
            "spill_bytes": int(round(stats["spill_bytes"])),
            "writeback_bytes": int(round(stats["writeback_bytes"])),
            "stall_cycles": float(stats["stall_cycles"]),
            "energy_j": float(stats["energy_j"]),
            "total_flops": float(stats["total_flops"]),
            "arithmetic_intensity": float(stats["arithmetic_intensity"]),
            "gflops_per_w": float(stats["gflops_per_w"]),
            "peak_resident_kb": float(stats["peak_resident_bytes"]) / 1024.0,
        })
        if local_store_kb is not None:
            row.update({
                "local_store_kb": float(stats["local_store_kb"]),
                "local_hit_bytes": int(round(stats["local_hit_bytes"])),
                "shared_to_local_bytes": int(round(stats["shared_to_local_bytes"])),
                "c2c_bytes": int(round(stats["c2c_bytes"])),
                "local_hit_rate": float(stats["local_hit_rate"]),
                "local_transfer_cycles": float(stats["local_transfer_cycles"]),
                "peak_local_resident_kb": (
                    float(stats["peak_local_resident_bytes"]) / 1024.0),
            })
    if replay == "auto":
        from repro.lap.fastpath import REPLAY_STATS
        trace = runtime.schedule_trace()
        _memoize_replay(structural_key, trace, dict(row))
        REPLAY_STATS["recorded"] += 1
        _store_replay_to_sidecar(structural_key, trace, dict(row))
    return row


def run_blocked_factorization(params: Params) -> dict:
    """Run one blocked factorization end to end on the LAC simulator.

    Executes blocked Cholesky / LU (partial pivoting) / Householder QR on a
    seeded ``n x n`` operand, verifies the factors against the input and
    reports the simulator counters next to the analytical panel-model cycle
    estimate of :class:`repro.models.fact_model.FactorizationKernelModel`.
    """
    import numpy as np

    from repro.hw.sfu import SFUPlacement
    from repro.kernels.blocked_factorizations import (lac_cholesky_blocked,
                                                      lac_lu_blocked,
                                                      lac_qr_blocked,
                                                      lu_blocked_reconstruct,
                                                      qr_blocked_q)
    from repro.lac import LACConfig, LinearAlgebraCore
    from repro.models.fact_model import (FactorizationKernel,
                                         FactorizationKernelModel, MACExtension)

    method = str(params.get("method", "lu")).lower()
    n = int(params.get("n", 8))
    nr = int(params.get("nr", 4))
    seed = int(params.get("seed", 0))
    use_extension = bool(params.get("use_extension", True))
    frequency = float(params.get("frequency_ghz", 1.0))
    core = LinearAlgebraCore(LACConfig(nr=nr, frequency_ghz=frequency))
    rng = np.random.default_rng(seed)
    model = FactorizationKernelModel(nr=nr, frequency_ghz=frequency)

    if method == "cholesky":
        g = rng.random((n, n))
        a = g @ g.T + n * np.eye(n)
        result = lac_cholesky_blocked(core, a)
        factor = result.output
        residual = float(np.max(np.abs(factor @ factor.T - a)))
        model_cycles = model.cholesky_cycles(SFUPlacement.ISOLATED)
        model_kernel = FactorizationKernel.CHOLESKY
    elif method == "lu":
        a = rng.random((n, n))
        result = lac_lu_blocked(core, a, use_comparator_extension=use_extension)
        lower, upper = lu_blocked_reconstruct(result.output)
        permuted = a[result.extra["permutation"]]
        residual = float(np.max(np.abs(permuted - lower @ upper)))
        model_cycles = model.lu_panel_cycles(
            n, SFUPlacement.ISOLATED,
            MACExtension.COMPARATOR if use_extension else MACExtension.NONE)
        model_kernel = FactorizationKernel.LU
    elif method == "qr":
        a = rng.random((n, n))
        result = lac_qr_blocked(core, a, use_exponent_extension=use_extension)
        q = qr_blocked_q(result.output, result.extra["tau"])
        r = np.triu(result.output)
        residual = float(np.max(np.abs(q @ r - a)))
        model_cycles = model.qr_panel_cycles(
            n, SFUPlacement.ISOLATED,
            MACExtension.EXPONENT if use_extension else MACExtension.NONE)
        model_kernel = FactorizationKernel.QR_HOUSEHOLDER
    else:
        raise ValueError(f"unknown blocked_fact method '{method}' "
                         f"(use 'cholesky', 'lu' or 'qr')")
    return {
        "method": method,
        "model_kernel": model_kernel.value,
        "n": n,
        "nr": nr,
        "seed": seed,
        "use_extension": use_extension,
        "frequency_ghz": frequency,
        "cycles": int(result.cycles),
        "mac_ops": int(result.counters.mac_ops),
        "flops": int(result.flops),
        "utilization": float(result.utilization),
        "gflops": float(result.gflops(frequency)),
        "residual": residual,
        "model_panel_cycles": float(model_cycles),
    }


def run_registry_experiment(params: Params) -> dict:
    """Regenerate one registered experiment (table / figure data series)."""
    # Imported lazily: the registry imports the figure generators, which in
    # turn import this engine, so a module-level import would be circular.
    from repro.experiments.registry import get_experiment

    exp_id = str(params["exp_id"])
    experiment = get_experiment(exp_id)
    data = experiment.run()
    num_rows = len(data) if isinstance(data, (Mapping, list, tuple)) else 1
    return {
        "exp_id": exp_id,
        "kind": experiment.kind,
        "source": experiment.source,
        "num_rows": num_rows,
        "data": data,
    }


RUNNERS: Dict[str, Callable[[Params], dict]] = {
    "design": run_design_point,
    "pe": run_pe_point,
    "simulate": run_kernel_simulation,
    "chip_gemm": run_chip_gemm,
    "chip_gemm_onchip": run_chip_gemm_onchip,
    "core_gemm": run_core_gemm,
    "blas": run_blas_point,
    "fact_kernel": run_fact_kernel,
    "lap_runtime": run_lap_runtime,
    "blocked_fact": run_blocked_factorization,
    "experiment": run_registry_experiment,
}

#: Default Pareto objectives per runner (used by the ``sweep`` CLI when the
#: user does not pass ``--objectives``).
PARETO_OBJECTIVES: Dict[str, Tuple[str, ...]] = {
    "design": DEFAULT_OBJECTIVES,
    "pe": ("gflops_per_w", "gflops_per_mm2"),
    "simulate": ("gflops", "utilization"),
    "chip_gemm": ("gflops", "utilization_pct"),
    "chip_gemm_onchip": ("utilization_pct",),
    "core_gemm": ("utilization_pct",),
    "blas": ("utilization_pct",),
    "fact_kernel": ("gflops_per_w", "gflops_per_mm2"),
    "lap_runtime": ("parallel_efficiency",),
    "blocked_fact": ("gflops", "utilization"),
    "experiment": (),
}


def runner_names() -> List[str]:
    """Names accepted by ``Job.runner`` / the ``sweep`` CLI."""
    return list(RUNNERS)


def get_runner(name: str) -> Callable[[Params], dict]:
    """Look up one runner by name."""
    try:
        return RUNNERS[name]
    except KeyError:
        raise KeyError(f"unknown runner '{name}'; known runners: "
                       f"{sorted(RUNNERS)}") from None


def code_fingerprint() -> str:
    """Cache namespace combining the package and runner versions."""
    from repro import __version__

    versions = ",".join(f"{name}=v{RUNNER_VERSIONS[name]}"
                        for name in sorted(RUNNER_VERSIONS))
    return f"repro-{__version__};{versions}"
