"""Adapters turning the repo's evaluation code paths into engine runners.

A *runner* is a pure, picklable function ``params_dict -> row_dict``; the
executor looks runners up by name so that jobs can be shipped to worker
processes without serialising code.  Five adapters cover the three existing
evaluation code paths plus the two analytical models the figures sweep:

``design``
    chip-level area/power/efficiency of a LAP design point (``build_lap``),
``pe``
    one processing element across frequency / precision / local store,
``simulate``
    a kernel run on the cycle-level LAC simulator with seeded operands,
``chip_gemm``
    the analytical multi-core GEMM model (cores x bandwidth x problem size),
``core_gemm``
    the analytical single-core GEMM model (local store x bandwidth),
``experiment``
    one :mod:`repro.experiments.registry` entry (cached artifact regeneration).

Rows contain only JSON-serialisable scalars (except ``experiment``, whose
``data`` field carries the experiment payload) so results cache cleanly and
compare byte-identically across serial / thread / process execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.engine.analysis import DEFAULT_OBJECTIVES
from repro.engine.spec import Params

#: Bump a runner's version whenever its row content changes; the fingerprint
#: below folds these into the cache namespace, invalidating stale entries.
RUNNER_VERSIONS: Dict[str, int] = {
    "design": 1,
    "pe": 1,
    "simulate": 1,
    "chip_gemm": 1,
    "core_gemm": 1,
    "experiment": 1,
}

#: Runners that do enough work per job for a process pool to pay off; the
#: analytical models run in microseconds and stay serial under mode="auto".
HEAVY_RUNNERS = frozenset({"simulate", "experiment"})

#: Parameters each runner understands; anything else in a job's params is
#: silently unused, so the CLI warns when a sweep axis is not listed here.
KNOWN_PARAMS: Dict[str, frozenset] = {
    "design": frozenset({"cores", "nr", "precision", "frequency_ghz",
                         "local_store_kbytes", "onchip_mbytes", "utilization"}),
    "pe": frozenset({"precision", "frequency_ghz", "local_store_kbytes"}),
    "simulate": frozenset({"kernel", "size", "nr", "frequency_ghz", "seed"}),
    "chip_gemm": frozenset({"num_cores", "nr", "n", "offchip_bw_bytes_per_cycle",
                            "frequency_ghz"}),
    "core_gemm": frozenset({"nr", "n", "kc", "mc", "bandwidth_bytes_per_cycle"}),
    "experiment": frozenset({"exp_id"}),
}


def _precision(params: Mapping) -> "Precision":
    from repro.hw.fpu import Precision

    name = str(params.get("precision", "double")).lower()
    if name in ("single", "sp"):
        return Precision.SINGLE
    if name in ("double", "dp"):
        return Precision.DOUBLE
    raise ValueError(f"unknown precision '{name}' (use 'single' or 'double')")


def run_design_point(params: Params) -> dict:
    """Evaluate one LAP chip design point (area / power / efficiency)."""
    from repro.arch.lap_design import build_lap

    precision = _precision(params)
    cores = int(params.get("cores", 8))
    nr = int(params.get("nr", 4))
    frequency = float(params.get("frequency_ghz", 1.0))
    local_store = float(params.get("local_store_kbytes", 16.0))
    onchip = float(params.get("onchip_mbytes", 4.0))
    utilization = float(params.get("utilization", 0.9))
    design = build_lap(num_cores=cores, nr=nr, precision=precision,
                       frequency_ghz=frequency, local_store_kbytes=local_store,
                       onchip_memory_mbytes=onchip)
    eff = design.efficiency(utilization=utilization)
    return {
        "cores": cores,
        "nr": nr,
        "precision": precision.value,
        "frequency_ghz": frequency,
        "local_store_kbytes": local_store,
        "onchip_mbytes": onchip,
        "utilization": utilization,
        "area_mm2": design.area_mm2,
        "power_w": design.power_w(),
        "peak_gflops": design.peak_gflops,
        "gflops": eff.gflops,
        "gflops_per_w": eff.gflops_per_watt,
        "gflops_per_mm2": eff.gflops_per_mm2,
    }


def run_pe_point(params: Params) -> dict:
    """Evaluate one processing-element design point."""
    from repro.arch.lap_design import build_pe

    precision = _precision(params)
    frequency = float(params.get("frequency_ghz", 1.0))
    local_store = float(params.get("local_store_kbytes", 16.0))
    pe = build_pe(precision=precision, frequency_ghz=frequency,
                  local_store_kbytes=local_store)
    eff = pe.efficiency()
    return {
        "precision": precision.value,
        "frequency_ghz": frequency,
        "local_store_kbytes": local_store,
        "pe_area_mm2": pe.area_mm2,
        "store_area_mm2": pe.store_a.area_mm2 + pe.store_b.area_mm2,
        "fpu_area_mm2": pe.fmac.area_mm2,
        "memory_power_w": pe.memory_power_w,
        "fmac_power_w": pe.fmac_power_w,
        "pe_power_w": pe.total_power_w,
        "peak_gflops": pe.peak_gflops,
        "mm2_per_gflop": eff.mm2_per_gflop,
        "mw_per_gflop": eff.mw_per_gflop,
        "energy_delay": eff.energy_delay,
        "gflops_per_w": eff.gflops_per_watt,
        "gflops_per_mm2": eff.gflops_per_mm2,
    }


def run_kernel_simulation(params: Params) -> dict:
    """Run one kernel on the cycle-level LAC simulator with seeded operands."""
    import numpy as np

    from repro.kernels.dispatch import check_size, get_kernel, simulate_kernel
    from repro.lac import LACConfig, LinearAlgebraCore

    kernel = str(params.get("kernel", "gemm"))
    size = int(params.get("size", 16))
    nr = int(params.get("nr", 4))
    frequency = float(params.get("frequency_ghz", 1.0))
    seed = int(params.get("seed", 0))
    spec = get_kernel(kernel)
    check_size(kernel, size, nr)
    core = LinearAlgebraCore(LACConfig(nr=nr, frequency_ghz=frequency))
    rng = np.random.default_rng(seed)
    result = simulate_kernel(core, kernel, size, rng)
    return {
        "kernel": kernel,
        "size": size,
        "effective_size": spec.effective_size(size, nr),
        "nr": nr,
        "frequency_ghz": frequency,
        "seed": seed,
        "cycles": int(result.cycles),
        "mac_ops": int(result.counters.mac_ops),
        "flops": int(result.flops),
        "utilization": float(result.utilization),
        "gflops": float(result.gflops(frequency)),
    }


def run_chip_gemm(params: Params) -> dict:
    """Evaluate the analytical multi-core GEMM model at one design point."""
    from repro.models.chip_model import ChipGEMMModel

    num_cores = int(params.get("num_cores", 8))
    nr = int(params.get("nr", 4))
    n = int(params.get("n", 2048))
    bw_bytes = float(params.get("offchip_bw_bytes_per_cycle", 16.0))
    frequency = float(params.get("frequency_ghz", 1.0))
    model = ChipGEMMModel(num_cores=num_cores, nr=nr)
    res = model.cycles_offchip(n, offchip_bandwidth_words_per_cycle=bw_bytes / 8.0)
    return {
        "num_cores": num_cores,
        "nr": nr,
        "n": n,
        "offchip_bw_bytes_per_cycle": bw_bytes,
        "frequency_ghz": frequency,
        "onchip_memory_mbytes": res.onchip_memory_mbytes(),
        "total_cycles": res.total_cycles,
        "utilization": res.utilization,
        "utilization_pct": 100.0 * res.utilization,
        "gflops": res.gflops(frequency),
    }


def run_core_gemm(params: Params) -> dict:
    """Evaluate the analytical single-core GEMM model at one design point."""
    from repro.models.core_model import CoreGEMMModel

    nr = int(params.get("nr", 4))
    n = int(params.get("n", 512))
    kc = int(params.get("kc", 128))
    mc = int(params.get("mc", kc))
    bw_bytes = float(params.get("bandwidth_bytes_per_cycle", 4.0))
    model = CoreGEMMModel(nr=nr)
    res = model.cycles(mc=mc, kc=kc, n=n,
                       bandwidth_elements_per_cycle=max(bw_bytes / 8.0, 1e-3))
    return {
        "nr": nr,
        "n": n,
        "mc": mc,
        "kc": kc,
        "bandwidth_bytes_per_cycle": bw_bytes,
        "local_store_kbytes_per_pe": res.local_store_bytes_per_pe / 1024.0,
        "total_cycles": res.total_cycles,
        "utilization": res.utilization,
        "utilization_pct": 100.0 * res.utilization,
    }


def run_registry_experiment(params: Params) -> dict:
    """Regenerate one registered experiment (table / figure data series)."""
    # Imported lazily: the registry imports the figure generators, which in
    # turn import this engine, so a module-level import would be circular.
    from repro.experiments.registry import get_experiment

    exp_id = str(params["exp_id"])
    experiment = get_experiment(exp_id)
    data = experiment.run()
    num_rows = len(data) if isinstance(data, (Mapping, list, tuple)) else 1
    return {
        "exp_id": exp_id,
        "kind": experiment.kind,
        "source": experiment.source,
        "num_rows": num_rows,
        "data": data,
    }


RUNNERS: Dict[str, Callable[[Params], dict]] = {
    "design": run_design_point,
    "pe": run_pe_point,
    "simulate": run_kernel_simulation,
    "chip_gemm": run_chip_gemm,
    "core_gemm": run_core_gemm,
    "experiment": run_registry_experiment,
}

#: Default Pareto objectives per runner (used by the ``sweep`` CLI when the
#: user does not pass ``--objectives``).
PARETO_OBJECTIVES: Dict[str, Tuple[str, ...]] = {
    "design": DEFAULT_OBJECTIVES,
    "pe": ("gflops_per_w", "gflops_per_mm2"),
    "simulate": ("gflops", "utilization"),
    "chip_gemm": ("gflops", "utilization_pct"),
    "core_gemm": ("utilization_pct",),
    "experiment": (),
}


def runner_names() -> List[str]:
    """Names accepted by ``Job.runner`` / the ``sweep`` CLI."""
    return list(RUNNERS)


def get_runner(name: str) -> Callable[[Params], dict]:
    """Look up one runner by name."""
    try:
        return RUNNERS[name]
    except KeyError:
        raise KeyError(f"unknown runner '{name}'; known runners: "
                       f"{sorted(RUNNERS)}") from None


def code_fingerprint() -> str:
    """Cache namespace combining the package and runner versions."""
    from repro import __version__

    versions = ",".join(f"{name}=v{RUNNER_VERSIONS[name]}"
                        for name in sorted(RUNNER_VERSIONS))
    return f"repro-{__version__};{versions}"
