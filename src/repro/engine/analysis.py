"""Pareto-frontier extraction and best-per-metric selection over sweep rows.

The sweep engine produces lists of flat result rows (dicts of scalars);
this module answers the co-design study's core question: which design
points are *not dominated* on the efficiency axes the paper compares
(GFLOPS, GFLOPS/W, GFLOPS/mm^2), and which single point wins each metric.
"""

from __future__ import annotations

from typing import Collection, Dict, List, Mapping, Sequence, Tuple

#: The three headline metrics of the study's frontier comparisons.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("gflops", "gflops_per_w", "gflops_per_mm2")

Row = Mapping[str, object]


def _objective_value(row: Row, objective: str) -> float:
    try:
        value = row[objective]
    except KeyError:
        raise KeyError(f"row is missing objective '{objective}'; "
                       f"available columns: {sorted(row)}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"objective '{objective}' must be numeric, got {value!r}")
    return float(value)


def _oriented(row: Row, objectives: Sequence[str], minimize: Collection[str]) -> List[float]:
    """Objective vector with minimised axes negated, so bigger is better."""
    return [-_objective_value(row, o) if o in minimize else _objective_value(row, o)
            for o in objectives]


def dominates(a: Row, b: Row, objectives: Sequence[str] = DEFAULT_OBJECTIVES,
              minimize: Collection[str] = ()) -> bool:
    """True when ``a`` is at least as good as ``b`` on every objective and
    strictly better on at least one."""
    va = _oriented(a, objectives, minimize)
    vb = _oriented(b, objectives, minimize)
    return all(x >= y for x, y in zip(va, vb)) and any(x > y for x, y in zip(va, vb))


def pareto_frontier(rows: Sequence[Row], objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                    minimize: Collection[str] = ()) -> List[Row]:
    """The non-dominated subset of ``rows``, preserving input order.

    Duplicate objective vectors all survive (none strictly dominates the
    other), which keeps equally-good design alternatives visible.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    vectors = [_oriented(row, objectives, minimize) for row in rows]
    frontier: List[Row] = []
    for i, vec in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if j == i:
                continue
            if (all(x >= y for x, y in zip(other, vec))
                    and any(x > y for x, y in zip(other, vec))):
                dominated = True
                break
        if not dominated:
            frontier.append(rows[i])
    return frontier


class IncrementalPareto:
    """Streaming Pareto frontier: fold rows in one at a time.

    Maintains exactly the frontier :func:`pareto_frontier` would return on
    the rows seen so far, in arrival order, but costs O(frontier) per row
    instead of O(n^2) per recomputation -- built for consuming
    :meth:`repro.engine.executor.SweepExecutor.stream` while the sweep is
    still running.

    Equality with the batch frontier holds because strict dominance is
    transitive: a new row is rejected only when some current member
    dominates it, and if that member is later evicted by a better row, the
    better row dominates the rejected one too (so it stays correctly
    rejected); conversely every evicted member is dominated by a row that
    remains.  Members therefore coincide with the non-dominated subset of
    everything ever added, and since survivors are appended in arrival
    order (evictions never reorder), the ordering matches the batch
    function's input-order traversal.  Rows with equal objective vectors
    all survive, exactly like the batch frontier.
    """

    def __init__(self, objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                 minimize: Collection[str] = ()) -> None:
        if not objectives:
            raise ValueError("at least one objective is required")
        self.objectives: Tuple[str, ...] = tuple(objectives)
        self.minimize = frozenset(minimize)
        self.seen = 0
        self._rows: List[Row] = []
        self._vectors: List[List[float]] = []

    def add(self, row: Row) -> bool:
        """Fold one row in; returns whether it joined the frontier."""
        vec = _oriented(row, self.objectives, self.minimize)
        self.seen += 1
        for other in self._vectors:
            if (all(x >= y for x, y in zip(other, vec))
                    and any(x > y for x, y in zip(other, vec))):
                return False
        keep_rows: List[Row] = []
        keep_vectors: List[List[float]] = []
        for member, other in zip(self._rows, self._vectors):
            if (all(x >= y for x, y in zip(vec, other))
                    and any(x > y for x, y in zip(vec, other))):
                continue
            keep_rows.append(member)
            keep_vectors.append(other)
        keep_rows.append(row)
        keep_vectors.append(vec)
        self._rows = keep_rows
        self._vectors = keep_vectors
        return True

    def update(self, rows: Sequence[Row]) -> int:
        """Fold many rows in; returns how many joined the frontier."""
        return sum(1 for row in rows if self.add(row))

    def frontier(self) -> List[Row]:
        """Current frontier members, in arrival order."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)


def best_per_metric(rows: Sequence[Row], metrics: Sequence[str] = DEFAULT_OBJECTIVES,
                    minimize: Collection[str] = ()) -> Dict[str, Row]:
    """The winning row for each metric (first wins ties, so results are
    deterministic for a deterministically-ordered sweep)."""
    if not rows:
        return {}
    winners: Dict[str, Row] = {}
    for metric in metrics:
        sense = -1.0 if metric in minimize else 1.0
        winners[metric] = max(rows, key=lambda row: sense * _objective_value(row, metric))
    return winners


def frontier_report(rows: Sequence[Row], objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                    minimize: Collection[str] = ()) -> Dict[str, object]:
    """Frontier plus per-metric winners, packaged for rendering / export."""
    frontier = pareto_frontier(rows, objectives, minimize)
    return {
        "objectives": list(objectives),
        "minimize": sorted(minimize),
        "num_rows": len(rows),
        "frontier": [dict(row) for row in frontier],
        "best": {metric: dict(row)
                 for metric, row in best_per_metric(rows, objectives, minimize).items()},
    }
