"""GEMM on the LAC: the rank-1 update engine and the blocked core kernel.

The driving example of the whole design (Chapter 3): a ``4 x kc`` slice of
``A`` and a ``kc x 4`` slice of ``B`` are combined through ``kc`` rank-1
updates into a ``4 x 4`` block of ``C`` held in the MAC accumulators.  The
element ``a[i, p]`` is broadcast along PE row ``i`` from the PE that owns it
(column ``p mod nr``), ``b[p, j]`` is broadcast down PE column ``j`` (or read
from the locally replicated copy of the ``B`` panel), and every PE performs
one MAC per cycle.

The blocked core kernel then sweeps a resident ``mc x kc`` block of ``A``
against a ``kc x n`` panel of ``B``: for every ``nr``-column slice of ``C``
the corresponding ``kc x nr`` panel of ``B`` is replicated into the PE
``MEM B`` stores, and for every ``nr``-row slice of ``A`` the accumulators are
preloaded with the ``nr x nr`` block of ``C``, updated with ``kc`` rank-1
steps, and streamed back out — exactly the loop structure of Section 3.3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.common import KernelResult, check_divisible
from repro.lac.core import LinearAlgebraCore


def lac_rank1_sequence(core: LinearAlgebraCore, c_block: np.ndarray,
                       a_slice: np.ndarray, b_slice: np.ndarray,
                       count_b_reads: bool = True) -> np.ndarray:
    """Update one ``nr x nr`` block of C with ``kc`` rank-1 updates.

    Parameters
    ----------
    core:
        The LAC simulator instance.
    c_block:
        ``nr x nr`` block of C (preloaded into the accumulators here).
    a_slice:
        ``nr x kc`` slice of A (column ``p`` is broadcast in step ``p``).
    b_slice:
        ``kc x nr`` slice of B (row ``p`` is broadcast / read in step ``p``).
    count_b_reads:
        When True, charge one ``MEM B`` read per PE per step (the replicated-B
        organisation); when False the B values are assumed to arrive over the
        column buses only.

    Returns the updated ``nr x nr`` block.
    """
    nr = core.nr
    c_block = np.asarray(c_block, dtype=float)
    a_slice = np.asarray(a_slice, dtype=float)
    b_slice = np.asarray(b_slice, dtype=float)
    if c_block.shape != (nr, nr):
        raise ValueError(f"C block must be {nr}x{nr}")
    if a_slice.shape[0] != nr or b_slice.shape[1] != nr:
        raise ValueError("A slice must be nr x kc and B slice kc x nr")
    if a_slice.shape[1] != b_slice.shape[0]:
        raise ValueError("inner dimensions of the rank-1 sequence do not match")

    kc = a_slice.shape[1]
    core.load_c_accumulators(c_block)
    for p in range(kc):
        core.rank1_update_step(a_slice[:, p], b_slice[p, :])
        # One read of A from the owning PEs' MEM A to drive the row buses.
        core.counters.store_a_reads += nr
        if count_b_reads:
            # Every PE reads its replicated copy of beta_{p,j} from MEM B.
            core.counters.store_b_reads += nr * nr
    return core.store_c_accumulators()


def lac_gemm(core: LinearAlgebraCore, c: np.ndarray, a: np.ndarray, b: np.ndarray,
             distribute_operands: bool = True) -> KernelResult:
    """Blocked GEMM ``C += A B`` on a single LAC.

    ``C`` is ``mc x n``, ``A`` is ``mc x kc`` (the resident block), ``B`` is
    ``kc x n`` (streamed in ``nr``-column panels).  All three dimensions must
    be multiples of the core size ``nr``.

    Parameters
    ----------
    distribute_operands:
        When True (default) the block of A and each panel of B are explicitly
        distributed/replicated into the PE local stores, charging the
        corresponding transfer cycles; the steady-state kernel of the paper
        overlaps those transfers with computation, which callers can model by
        resetting the counters around the inner loop instead.
    """
    start = core.counters.copy()
    c = np.array(c, dtype=float, copy=True)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    nr = core.nr
    mc, kc = a.shape
    kb, n = b.shape
    if kb != kc:
        raise ValueError(f"inner dimensions do not match: A {a.shape}, B {b.shape}")
    if c.shape != (mc, n):
        raise ValueError(f"C has shape {c.shape}, expected {(mc, n)}")
    check_divisible(mc, nr, "mc")
    check_divisible(kc, nr, "kc")
    check_divisible(n, nr, "n")

    if distribute_operands:
        core.distribute_a(a)

    for j in range(0, n, nr):
        b_panel = b[:, j:j + nr]
        if distribute_operands:
            core.distribute_b_replicated(b_panel)
        for i in range(0, mc, nr):
            c[i:i + nr, j:j + nr] = lac_rank1_sequence(
                core, c[i:i + nr, j:j + nr], a[i:i + nr, :], b_panel)

    delta = core.counters.copy()
    for name, value in start.as_dict().items():
        setattr(delta, name, getattr(delta, name) - value)
    return KernelResult(name="gemm", output=c, counters=delta, num_pes=core.num_pes)


def lac_gemm_steady_state_cycles(nr: int, mc: int, kc: int, n: int) -> int:
    """Closed-form steady-state cycle count of the blocked core GEMM.

    One rank-1 update per cycle, ``kc`` updates per ``nr x nr`` block of C,
    ``(mc/nr) * (n/nr)`` blocks — the figure the analytical core model uses as
    its peak-compute term ``mc * kc * n / nr^2``.
    """
    if min(nr, mc, kc, n) < 1:
        raise ValueError("all dimensions must be positive")
    return (mc // nr) * (n // nr) * kc
