"""TRMM on the LAC: triangular matrix-matrix multiply ``B := L B``.

TRMM (Section 5.1) reuses the GEMM block-panel machinery; the only difference
is that the panel of ``L`` contributing to block row ``i`` grows with ``i``
(only the blocks at or below the diagonal are non-zero), so the length of the
rank-1 update sequences increases from one block row to the next.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.kernels.gemm import lac_rank1_sequence
from repro.lac.core import LinearAlgebraCore


def lac_trmm(core: LinearAlgebraCore, l: np.ndarray, b: np.ndarray) -> KernelResult:
    """Blocked TRMM ``B := L B`` with lower-triangular ``L`` on a single LAC.

    ``L`` is ``k x k`` and ``B`` is ``k x m``; both ``k`` and ``m`` must be
    multiples of the core size.  Block rows are processed bottom-up so that
    rows of ``B`` are overwritten only after every product that still needs
    their original values has consumed them.
    """
    start = core.counters.copy()
    l = np.asarray(l, dtype=float)
    b = np.array(b, dtype=float, copy=True)
    nr = core.nr
    k = l.shape[0]
    if l.shape != (k, k):
        raise ValueError("L must be square")
    if b.shape[0] != k:
        raise ValueError(f"B must have {k} rows, got {b.shape[0]}")
    check_divisible(k, nr, "k")
    m = b.shape[1]
    check_divisible(m, nr, "m (columns of B)")

    lt = np.tril(l)
    core.distribute_a(lt)
    original = b.copy()
    # Bottom-up over block rows: row panel i of the result needs rows 0..i of
    # the original B, which are still intact because rows above i have not yet
    # been overwritten when processing bottom-up... they have; hence we keep
    # the original panel explicitly, matching the double-buffered panels the
    # LAC streams from on-chip memory.
    for i in range(k - nr, -nr, -nr):
        panel_l = lt[i:i + nr, : i + nr]          # nr x (i + nr), the non-zero part
        for jj in range(0, m, nr):
            zero = np.zeros((nr, nr), dtype=float)
            b[i:i + nr, jj:jj + nr] = lac_rank1_sequence(
                core, zero, panel_l, original[: i + nr, jj:jj + nr])

    delta = counters_delta(core.counters, start)
    return KernelResult(name="trmm", output=b, counters=delta, num_pes=core.num_pes)
