"""SYMM on the LAC: symmetric matrix-matrix multiply ``C := C + sym(A) B``.

Only the lower triangle of the symmetric ``A`` is stored (Section 5.1).  The
LAC reconstructs the upper-triangular contributions on the fly by transposing
the stored blocks over the diagonal PEs -- the same collective the SYRK kernel
uses -- and otherwise runs the standard GEMM block-panel schedule.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.kernels.gemm import lac_rank1_sequence
from repro.lac.core import LinearAlgebraCore


def lac_symm(core: LinearAlgebraCore, c: np.ndarray, a_lower: np.ndarray,
             b: np.ndarray) -> KernelResult:
    """Blocked SYMM ``C := C + sym(A) B`` on a single LAC.

    ``A`` is ``m x m`` with only its lower triangle meaningful, ``B`` is
    ``m x n`` and ``C`` is ``m x n``; all dimensions must be multiples of the
    core size ``nr``.
    """
    start = core.counters.copy()
    c = np.array(c, dtype=float, copy=True)
    a_lower = np.asarray(a_lower, dtype=float)
    b = np.asarray(b, dtype=float)
    nr = core.nr
    m = a_lower.shape[0]
    if a_lower.shape != (m, m):
        raise ValueError("A must be square for SYMM")
    if b.shape[0] != m or c.shape != (m, b.shape[1]):
        raise ValueError("operand shapes are inconsistent for SYMM")
    check_divisible(m, nr, "m")
    n = b.shape[1]
    check_divisible(n, nr, "n")

    stored = np.tril(a_lower)
    core.distribute_a(stored)
    for i in range(0, m, nr):
        # Panel of sym(A) for block row i up to and including the diagonal
        # block: stored lower blocks to the left, and the diagonal block
        # symmetrised on the fly (its strictly-upper entries are the mirror of
        # the stored strictly-lower ones, recovered over the diagonal PEs).
        diag = stored[i:i + nr, i:i + nr]
        diag_sym = np.tril(diag) + np.tril(diag, -1).T
        for col in range(1, nr):
            core.transpose_via_diagonal(diag[:, col - 1])
        left_panel = np.concatenate([stored[i:i + nr, :i], diag_sym], axis=1)
        for jj in range(0, n, nr):
            block = c[i:i + nr, jj:jj + nr]
            # Contributions from stored (lower) blocks: sym(A)[i, 0..i] B[0..i].
            block = lac_rank1_sequence(core, block, left_panel,
                                       b[: i + nr, jj:jj + nr])
            # Contributions from the implicit upper part: A[j, i]^T for j > i.
            for j in range(i + nr, m, nr):
                mirrored = stored[j:j + nr, i:i + nr]
                # The block is transposed through the diagonal PEs before use;
                # charge the nr transpose steps and run the rank-1 sequence.
                for col in range(nr):
                    core.transpose_via_diagonal(mirrored[:, col])
                block = lac_rank1_sequence(core, block, mirrored.T, b[j:j + nr, jj:jj + nr])
            c[i:i + nr, jj:jj + nr] = block

    delta = counters_delta(core.counters, start)
    return KernelResult(name="symm", output=c, counters=delta, num_pes=core.num_pes)
