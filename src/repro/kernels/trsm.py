"""TRSM on the LAC: triangular solve with multiple right-hand sides (Sec. 5.3).

The operation solves ``L X = B`` for ``X`` with a lower-triangular ``L``.
Three inner-kernel organisations are modelled, mirroring the dissertation:

``basic``
    a single ``nr x nr`` TRSM; every iteration serialises a reciprocal, a row
    scale and a rank-1 update through the MAC pipeline, so most pipeline
    slots are idle (``~2 p nr`` cycles for one block).
``stacked``
    ``p`` independent ``nr x nr`` TRSMs share the pipeline; the p blocks fill
    the otherwise-empty stages (``~2 p nr + p`` cycles for p blocks).
``software pipelined``
    the wide panel of ``B`` is split into ``g`` stacked groups and the scale
    step of one group overlaps the rank-1 updates of the previous one
    (``~p nr (g + 1)`` cycles for a ``nr x g p nr`` panel).

The blocked algorithm (Figure 5.7) then updates each block row of ``B`` with a
GEMM against the already-solved rows before applying the unblocked kernel to
the diagonal block, which is where the ~95% overall utilisation comes from.
"""

from __future__ import annotations

import numpy as np

from repro.hw.sfu import SpecialOp
from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.kernels.gemm import lac_rank1_sequence
from repro.lac.core import LinearAlgebraCore


def lac_trsm_unblocked(core: LinearAlgebraCore, l_block: np.ndarray,
                       b_panel: np.ndarray, variant: str = "software_pipelined"
                       ) -> np.ndarray:
    """Unblocked TRSM of an ``nr x nr`` diagonal block against a panel of B.

    Parameters
    ----------
    l_block:
        ``nr x nr`` lower-triangular diagonal block of L.
    b_panel:
        ``nr x m`` panel of right-hand sides (``m`` a multiple of ``nr`` is
        not required here).
    variant:
        ``"basic"``, ``"stacked"`` or ``"software_pipelined"`` -- affects only
        the cycle accounting; the numerical result is identical.

    Returns the solved panel ``X = L^{-1} B``.
    """
    nr = core.nr
    l_block = np.asarray(l_block, dtype=float)
    b_panel = np.array(b_panel, dtype=float, copy=True)
    if l_block.shape != (nr, nr):
        raise ValueError(f"diagonal block must be {nr}x{nr}")
    if b_panel.shape[0] != nr:
        raise ValueError("panel of B must have nr rows")
    if variant not in ("basic", "stacked", "software_pipelined"):
        raise ValueError(f"unknown TRSM variant '{variant}'")

    m = b_panel.shape[1]
    p = core.mac_latency

    for i in range(nr):
        diag = l_block[i, i]
        # S1/S2: reciprocal of the diagonal element on the SFU, broadcast along
        # the i-th PE row, then scale the i-th row of B.
        inv = core.special(SpecialOp.RECIPROCAL, diag)
        core.broadcast_row(i, inv)
        for j in range(m):
            b_panel[i, j] = core.pes[i][j % nr].multiply(b_panel[i, j], inv)
        # S3: broadcast the solved row down the columns and the i-th column of
        # L along the rows, rank-1 update of the remaining rows.
        for r in range(i + 1, nr):
            coeff = l_block[r, i]
            for j in range(m):
                pe = core.pes[r][j % nr]
                b_panel[r, j] = pe.multiply_add(-coeff, b_panel[i, j], b_panel[r, j])
        core.counters.row_broadcasts += 1
        core.counters.column_broadcasts += 1

        # Cycle accounting per iteration beyond the events charged above:
        # dependent traversals of the MAC pipeline.
        if variant == "basic":
            core.tick(2 * p)
        elif variant == "stacked":
            # p blocks share the pipeline; amortised cost per block iteration.
            core.tick(2 * p // max(1, min(p, max(1, m // nr))) + 1)
        else:  # software pipelined
            g = max(1, m // (p * nr))
            core.tick(max(2, (p * (g + 1)) // (nr * max(1, g))))
    return b_panel


def lac_trsm(core: LinearAlgebraCore, l: np.ndarray, b: np.ndarray,
             variant: str = "software_pipelined") -> KernelResult:
    """Blocked TRSM ``X = L^{-1} B`` on a single LAC.

    ``L`` is ``k x k`` lower triangular and ``B`` is ``k x m``; ``k`` must be
    a multiple of ``nr``.  Block row ``i`` of ``B`` is first updated with a
    GEMM against the already-solved block rows (``B_1 -= L_10 B_0``), then the
    diagonal block is applied with the unblocked kernel (``B_1 = L_11^{-1}
    B_1``) -- the two steps of Figure 5.7.
    """
    start = core.counters.copy()
    l = np.asarray(l, dtype=float)
    b = np.array(b, dtype=float, copy=True)
    nr = core.nr
    k = l.shape[0]
    if l.shape != (k, k):
        raise ValueError("L must be square")
    if b.shape[0] != k:
        raise ValueError(f"B must have {k} rows, got {b.shape[0]}")
    check_divisible(k, nr, "k")
    m = b.shape[1]
    check_divisible(m, nr, "m (columns of B)")
    if np.any(np.abs(np.diag(l)) < 1e-300):
        raise ValueError("L has a (near-)zero diagonal element; TRSM is singular")

    core.distribute_a(np.tril(l))
    for i in range(0, k, nr):
        # (1) GEMM update with the already-computed rows of X.
        for jj in range(0, m, nr):
            block = b[i:i + nr, jj:jj + nr]
            if i > 0:
                block = lac_rank1_sequence(core, block, -l[i:i + nr, :i], b[:i, jj:jj + nr])
            b[i:i + nr, jj:jj + nr] = block
        # (2) unblocked TRSM with the diagonal block, across the whole panel.
        b[i:i + nr, :] = lac_trsm_unblocked(core, l[i:i + nr, i:i + nr], b[i:i + nr, :],
                                            variant=variant)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="trsm", output=b, counters=delta, num_pes=core.num_pes)


def trsm_unblocked_cycle_estimate(nr: int, pipeline_stages: int, variant: str = "basic",
                                  stacked_blocks: int = 1, groups: int = 1) -> float:
    """Closed-form cycle estimates of Section 5.3.1 for the inner kernels.

    * basic ``nr x nr`` TRSM: ``2 p nr`` cycles;
    * stacked (``p`` blocks): ``2 p nr + p`` cycles;
    * software pipelined (``nr x g p nr`` panel): ``p nr (g + 1)`` cycles.
    """
    p = pipeline_stages
    if variant == "basic":
        return 2.0 * p * nr
    if variant == "stacked":
        if stacked_blocks < 1:
            raise ValueError("stacked_blocks must be >= 1")
        return 2.0 * p * nr + p
    if variant == "software_pipelined":
        if groups < 1:
            raise ValueError("groups must be >= 1")
        return float(p * nr * (groups + 1))
    raise ValueError(f"unknown TRSM variant '{variant}'")
