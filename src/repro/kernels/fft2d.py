"""2D FFT on the LAC.

The 2D transform of an ``N x N`` array is the classic row-column algorithm
mapped onto the core: one pass of N-point FFTs over the rows, a transpose
through the on-chip memory, and a second pass of N-point FFTs over the
columns.  Each 1D pass reuses the core-contained radix-4 kernel of
:mod:`repro.kernels.fft`; the transpose costs only data movement (the paper's
2D case streams blocks to/from the on-chip memory between passes and needs no
extra compute).
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.common import KernelResult, counters_delta
from repro.kernels.fft import lac_fft
from repro.lac.core import LinearAlgebraCore


def lac_fft2d(core: LinearAlgebraCore, x: np.ndarray) -> KernelResult:
    """Forward 2D FFT of an ``N x N`` complex array on the LAC.

    ``N`` must be a power of 4 so that every row/column transform maps onto
    the radix-4 kernel.  Matches ``numpy.fft.fft2``.
    """
    start = core.counters.copy()
    x = np.asarray(x, dtype=complex)
    if x.ndim != 2 or x.shape[0] != x.shape[1]:
        raise ValueError("the 2D FFT kernel expects a square N x N array")
    n = x.shape[0]
    if n < 4 or int(round(math.log(n, 4))) != math.log(n, 4):
        raise ValueError(f"side length must be a power of 4, got {n}")

    # Pass 1: transform every row.
    stage1 = np.empty_like(x)
    for row in range(n):
        stage1[row, :] = lac_fft(core, x[row, :]).output

    # Transpose through the on-chip memory: pure data movement over the column
    # buses, 2 words per complex point in and out.
    core.counters.external_stores += 2 * n * n
    core.counters.external_loads += 2 * n * n
    core.tick(int(math.ceil(4 * n * n / core.nr)))
    stage1 = stage1.T.copy()

    # Pass 2: transform every (former) column.
    out = np.empty_like(stage1)
    for row in range(n):
        out[row, :] = lac_fft(core, stage1[row, :]).output

    result = out.T.copy()
    delta = counters_delta(core.counters, start)
    return KernelResult(name="fft2d", output=result, counters=delta, num_pes=core.num_pes)
