"""Householder QR and the overflow-safe vector norm on the LAC (Sec. 6.1.3).

The vector-norm kernel maps a column vector that lives in one PE column onto
the mesh in three steps (Figure 6.4): the owning column shares half of its
elements with the neighbouring column so ``2*nr`` PEs accumulate partial
inner products (S1), the partials are reduced back into the owning column
(S2), and a reduce-all over the column bus leaves the final norm in every PE
of that column (S3).  Without the extended-exponent MAC accumulator the
kernel must first find the largest magnitude and scale the vector by it to
guard against overflow/underflow, adding a search pass, a reciprocal and a
scaling pass.

The QR panel kernel composes the vector norm with the Householder-vector
computation of Table 6.1 (right column) and applies each reflector to the
trailing columns with a matrix-vector product and a rank-1 update.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hw.sfu import SpecialOp
from repro.kernels.common import KernelResult, counters_delta
from repro.lac.core import LinearAlgebraCore


def lac_vector_norm(core: LinearAlgebraCore, x: np.ndarray, owner_column: int = 0,
                    use_exponent_extension: bool = True) -> KernelResult:
    """Overflow-safe 2-norm of a vector stored in one PE column.

    Parameters
    ----------
    x:
        The vector (length ``k``).
    owner_column:
        Index of the PE column that owns the vector.
    use_exponent_extension:
        When True the MAC accumulators carry an extra exponent bit and the
        scaling passes are skipped; when False the two-pass guarded algorithm
        is executed (max search, scale, accumulate, un-scale).
    """
    start = core.counters.copy()
    x = np.asarray(x, dtype=float).ravel()
    nr = core.nr
    if not (0 <= owner_column < nr):
        raise ValueError(f"owner column must lie in [0, {nr})")
    k = x.size
    if k == 0:
        raise ValueError("cannot compute the norm of an empty vector")
    p = core.mac_latency

    scale = 1.0
    values = x
    if not use_exponent_extension:
        # Guarded algorithm: find max |x_i|, scale by its reciprocal.
        t = float(np.max(np.abs(x)))
        core.counters.mac_ops += k            # compare/abs traversal
        core.tick(int(np.ceil(k / float(2 * nr))) + p + nr)
        if t == 0.0:
            delta = counters_delta(core.counters, start)
            return KernelResult(name="vector_norm", output=0.0, counters=delta,
                                num_pes=core.num_pes)
        inv_t = core.special(SpecialOp.RECIPROCAL, t)
        values = x * inv_t
        scale = t
        core.counters.mac_ops += k            # the scaling multiplies
        core.tick(int(np.ceil(k / float(2 * nr))) + p)

    # S1: the owner column and its neighbour accumulate partial inner products.
    neighbour = (owner_column + 1) % nr
    partials = np.zeros(2 * nr, dtype=float)
    for idx, value in enumerate(values):
        lane = idx % (2 * nr)
        row = lane % nr
        col = owner_column if lane < nr else neighbour
        partials[lane] = core.pes[row][col].multiply_add(value, value, partials[lane])
    core.counters.row_broadcasts += k // 2    # sharing half the vector sideways
    core.tick(int(np.ceil(k / float(2 * nr))) + p)

    # S2: reduce the neighbour column's partials back into the owner column.
    owner_partials = [partials[r] + partials[nr + r] for r in range(nr)]
    core.counters.mac_ops += nr
    core.counters.row_broadcasts += nr
    core.tick(1 + p)

    # S3: reduce-all over the owner column bus.
    total = core.reduce_column(owner_partials)
    norm = scale * core.special(SpecialOp.SQRT, total)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="vector_norm", output=float(norm), counters=delta,
                        num_pes=core.num_pes)


def lac_householder_vector(core: LinearAlgebraCore, x: np.ndarray,
                           use_exponent_extension: bool = True):
    """Householder reflector of a vector on the LAC (Table 6.1, right column).

    Returns ``(rho1, u2, tau1)`` matching the reference implementation.
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot reflect an empty vector")
    alpha1 = float(x[0])
    x2 = x[1:]
    if x2.size == 0 or not np.any(x2):
        return alpha1, np.zeros_like(x2), float("inf")
    chi2 = lac_vector_norm(core, x2, use_exponent_extension=use_exponent_extension).output
    alpha = lac_vector_norm(core, np.array([alpha1, chi2]),
                            use_exponent_extension=use_exponent_extension).output
    rho1 = -np.sign(alpha1) * alpha if alpha1 != 0.0 else -alpha
    nu1 = alpha1 - rho1
    inv_nu1 = core.special(SpecialOp.RECIPROCAL, nu1)
    u2 = np.array([core.pes[i % core.nr][0].multiply(v, inv_nu1) for i, v in enumerate(x2)])
    chi2_scaled = abs(chi2 * inv_nu1)
    core.counters.mac_ops += 1
    tau1 = (1.0 + chi2_scaled ** 2) / 2.0
    core.tick(core.mac_latency)
    return float(rho1), u2, float(tau1)


def lac_householder_qr_panel(core: LinearAlgebraCore, a_panel: np.ndarray,
                             use_exponent_extension: bool = True) -> KernelResult:
    """Householder QR of a ``k x nr`` panel on the LAC.

    The output matrix carries ``R`` in its upper triangle and the essential
    parts of the Householder vectors below the diagonal (LAPACK ``geqrf``
    convention); ``extra['tau']`` holds the scalar ``tau`` of each reflector.
    """
    start = core.counters.copy()
    a = np.array(a_panel, dtype=float, copy=True)
    nr = core.nr
    k = a.shape[0]
    if a.ndim != 2 or a.shape[1] != nr:
        raise ValueError(f"panel must be k x nr with nr={nr}, got {a.shape}")
    if k < nr:
        raise ValueError("panel must have at least nr rows")
    p = core.mac_latency

    core.distribute_a(a)
    taus: List[float] = []
    for j in range(nr):
        rho, u2, tau = lac_householder_vector(core, a[j:, j],
                                              use_exponent_extension=use_exponent_extension)
        taus.append(tau)
        if not np.isfinite(tau):
            a[j, j] = rho if u2.size else a[j, j]
            continue
        u = np.concatenate(([1.0], u2))
        # Apply H = I - u u^T / tau to the trailing columns: w = (u^T A)/tau,
        # A -= u w^T -- a matrix-vector product plus a rank-1 update.
        trailing = a[j:, j + 1:]
        if trailing.size:
            w = np.zeros(trailing.shape[1], dtype=float)
            for c in range(trailing.shape[1]):
                acc = 0.0
                for r in range(trailing.shape[0]):
                    acc = core.pes[r % nr][(j + 1 + c) % nr].multiply_add(
                        u[r], trailing[r, c], acc)
                w[c] = acc / tau
            core.tick(int(np.ceil(trailing.size / float(nr * nr))) + p)
            for r in range(trailing.shape[0]):
                for c in range(trailing.shape[1]):
                    trailing[r, c] = core.pes[r % nr][(j + 1 + c) % nr].multiply_add(
                        -u[r], w[c], trailing[r, c])
            core.tick(int(np.ceil(trailing.size / float(nr * nr))) + p)
            a[j:, j + 1:] = trailing
        # Store rho on the diagonal and the essential reflector below it.
        a[j, j] = rho
        a[j + 1:, j] = u2

    delta = counters_delta(core.counters, start)
    return KernelResult(name="qr_panel", output=a, counters=delta, num_pes=core.num_pes,
                        extra={"tau": taus})


def lac_apply_reflectors(core: LinearAlgebraCore, v: np.ndarray,
                         taus: Sequence[float], c: np.ndarray) -> KernelResult:
    """Apply ``Q^T = H_{p-1} ... H_0`` of a packed reflector block to ``C``.

    ``v`` is ``m x p`` with the essential parts of reflector ``j`` stored
    below its diagonal (unit head implied, entries above ignored) and ``c``
    is ``m x q``.  Reflector ``j`` is applied as ``w = (u^T C)/tau`` followed
    by the rank-1 update ``C -= u w^T`` -- a matrix-vector product plus a
    rank-1 update through the MAC mesh, exactly like the trailing update
    inside :func:`lac_householder_qr_panel`.  This is the UNMQR/TSMQR tile
    kernel of the tiled-QR runtime.
    """
    start = core.counters.copy()
    v = np.asarray(v, dtype=float)
    c = np.array(c, dtype=float, copy=True)
    nr = core.nr
    p = core.mac_latency
    if v.ndim != 2 or c.ndim != 2:
        raise ValueError("reflector block and C must be 2-D")
    m, num_reflectors = v.shape
    if c.shape[0] != m:
        raise ValueError(f"C must have {m} rows to match the reflectors, "
                         f"got {c.shape[0]}")
    if len(taus) != num_reflectors:
        raise ValueError(f"expected {num_reflectors} tau scalars, got {len(taus)}")

    q = c.shape[1]
    for j in range(num_reflectors):
        tau = taus[j]
        if not np.isfinite(tau):
            continue
        u = np.concatenate(([1.0], v[j + 1:, j]))
        rows = m - j
        w = np.zeros(q, dtype=float)
        for col in range(q):
            acc = 0.0
            for r in range(rows):
                acc = core.pes[r % nr][col % nr].multiply_add(u[r], c[j + r, col], acc)
            w[col] = acc / tau
        core.tick(int(np.ceil(rows * q / float(nr * nr))) + p)
        for r in range(rows):
            for col in range(q):
                c[j + r, col] = core.pes[r % nr][col % nr].multiply_add(
                    -u[r], w[col], c[j + r, col])
        core.tick(int(np.ceil(rows * q / float(nr * nr))) + p)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="apply_reflectors", output=c, counters=delta,
                        num_pes=core.num_pes)
