"""Blocked LU and QR factorization drivers for the LAC.

Chapter 6 maps the *inner kernels* of the factorizations (a ``k x nr`` panel)
onto the LAC and notes that larger problems are handled by the standard
algorithms-by-blocks: factor a panel, then update the trailing matrix with
level-3 BLAS operations that the LAC already runs at high utilisation.  These
drivers complete that picture so the whole factorization of an ``n x n``
matrix can be verified end to end on the simulator:

* **blocked LU with partial pivoting** -- panel factorization
  (:func:`repro.kernels.lu.lac_lu_panel`), row interchanges applied across
  the trailing columns, a TRSM to compute the U panel and a GEMM trailing
  update;
* **blocked Householder QR** -- panel factorization
  (:func:`repro.kernels.qr.lac_householder_qr_panel`) followed by applying
  the block of reflectors to the trailing columns (the WY-less, vector-at-a-
  time variant, which is what the LAC kernel produces);
* **blocked right-looking Cholesky** -- diagonal blocks factored with the
  unblocked kernel (:func:`repro.kernels.cholesky.lac_cholesky`), panel
  TRSMs against the diagonal factor and rank-``nr`` trailing updates, the
  single-core view of the task graph the LAP runtime schedules across cores.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels.cholesky import lac_cholesky
from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.kernels.gemm import lac_rank1_sequence
from repro.kernels.lu import lac_lu_panel
from repro.kernels.qr import lac_householder_qr_panel
from repro.kernels.trsm import lac_trsm_unblocked
from repro.lac.core import LinearAlgebraCore


def lac_cholesky_blocked(core: LinearAlgebraCore, a: np.ndarray) -> KernelResult:
    """Blocked right-looking Cholesky factorization of an SPD ``n x n`` matrix.

    :func:`repro.kernels.cholesky.lac_cholesky` already implements the full
    blocked algorithm (unblocked diagonal factorization, panel TRSM,
    SYRK-shaped trailing updates); this driver re-exports it under the
    blocked-factorization naming so Cholesky, LU and QR share one module
    and one result convention (``output`` is the lower factor ``L`` with
    ``L @ L.T == A``).
    """
    result = lac_cholesky(core, a)
    return KernelResult(name="cholesky_blocked", output=result.output,
                        counters=result.counters, num_pes=result.num_pes,
                        extra=result.extra)


def lac_lu_blocked(core: LinearAlgebraCore, a: np.ndarray,
                   use_comparator_extension: bool = True) -> KernelResult:
    """Blocked LU factorization with partial pivoting of an ``n x n`` matrix.

    The output matrix carries ``L`` (unit diagonal implied) below the diagonal
    and ``U`` on/above it; ``extra['pivots']`` records the global row swapped
    into position ``i`` at elimination step ``i`` (0-based, LAPACK ``ipiv``
    convention), and ``extra['permutation']`` the resulting row permutation
    such that ``A[permutation] = L @ U``.
    """
    start = core.counters.copy()
    a = np.array(a, dtype=float, copy=True)
    nr = core.nr
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError("blocked LU requires a square matrix")
    check_divisible(n, nr, "n")

    pivots: List[int] = []
    for j in range(0, n, nr):
        # 1. Factor the current panel (rows j.., columns j..j+nr).
        panel_result = lac_lu_panel(core, a[j:, j:j + nr],
                                    use_comparator_extension=use_comparator_extension)
        a[j:, j:j + nr] = panel_result.output
        # 2. Apply the panel's row interchanges to the rest of the matrix.
        for local_i, local_piv in enumerate(panel_result.extra["pivots"]):
            gi = j + local_i
            gp = j + local_piv
            pivots.append(gp)
            if gp != gi:
                a[[gi, gp], :j] = a[[gp, gi], :j]
                a[[gi, gp], j + nr:] = a[[gp, gi], j + nr:]
                core.counters.row_broadcasts += 2 * (n - nr)
                core.tick(2)
        if j + nr < n:
            # 3. U panel: solve L_jj * U_{j, j+nr:} = A_{j, j+nr:}.
            l_jj = np.tril(a[j:j + nr, j:j + nr], -1) + np.eye(nr)
            a[j:j + nr, j + nr:] = lac_trsm_unblocked(core, l_jj, a[j:j + nr, j + nr:])
            # 4. Trailing update: A22 -= L21 U12, cast as rank-1 sequences.
            l21 = a[j + nr:, j:j + nr]
            u12 = a[j:j + nr, j + nr:]
            for i in range(j + nr, n, nr):
                for k in range(j + nr, n, nr):
                    block = a[i:i + nr, k:k + nr]
                    a[i:i + nr, k:k + nr] = lac_rank1_sequence(
                        core, block, -l21[i - j - nr:i - j, :], u12[:, k - j - nr:k - j])

    permutation = np.arange(n)
    for i, piv in enumerate(pivots):
        if piv != i:
            permutation[[i, piv]] = permutation[[piv, i]]

    delta = counters_delta(core.counters, start)
    return KernelResult(name="lu_blocked", output=a, counters=delta, num_pes=core.num_pes,
                        extra={"pivots": pivots, "permutation": permutation})


def lu_blocked_reconstruct(factored: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split the in-place blocked-LU output into explicit L and U factors."""
    factored = np.asarray(factored, dtype=float)
    n = factored.shape[0]
    l = np.tril(factored, -1) + np.eye(n)
    u = np.triu(factored)
    return l, u


def lac_qr_blocked(core: LinearAlgebraCore, a: np.ndarray,
                   use_exponent_extension: bool = True) -> KernelResult:
    """Blocked Householder QR factorization of an ``m x n`` matrix (m >= n).

    The output carries ``R`` in its upper triangle and the essential parts of
    the Householder vectors below the diagonal; ``extra['tau']`` lists the
    reflector scalars in elimination order.  ``qr_blocked_q`` rebuilds the
    explicit ``Q`` for verification.
    """
    start = core.counters.copy()
    a = np.array(a, dtype=float, copy=True)
    nr = core.nr
    m, n = a.shape
    if m < n:
        raise ValueError("blocked QR requires m >= n")
    check_divisible(n, nr, "n (columns)")

    taus: List[float] = []
    for j in range(0, n, nr):
        panel_result = lac_householder_qr_panel(core, a[j:, j:j + nr],
                                                use_exponent_extension=use_exponent_extension)
        a[j:, j:j + nr] = panel_result.output
        taus.extend(panel_result.extra["tau"])
        # Apply the panel's reflectors to the trailing columns, one reflector
        # at a time: w = (u^T A)/tau ; A -= u w^T (matrix-vector + rank-1).
        if j + nr < n:
            for local in range(nr):
                tau = panel_result.extra["tau"][local]
                if not np.isfinite(tau):
                    continue
                col = j + local
                u = np.concatenate(([1.0], a[col + 1:, col]))
                trailing = a[col:, j + nr:]
                w = np.zeros(trailing.shape[1], dtype=float)
                for c in range(trailing.shape[1]):
                    acc = 0.0
                    for r in range(trailing.shape[0]):
                        acc = core.pes[r % nr][c % nr].multiply_add(u[r], trailing[r, c], acc)
                    w[c] = acc / tau
                core.tick(int(np.ceil(trailing.size / float(nr * nr))) + core.mac_latency)
                for r in range(trailing.shape[0]):
                    for c in range(trailing.shape[1]):
                        trailing[r, c] = core.pes[r % nr][c % nr].multiply_add(
                            -u[r], w[c], trailing[r, c])
                core.tick(int(np.ceil(trailing.size / float(nr * nr))) + core.mac_latency)
                a[col:, j + nr:] = trailing

    delta = counters_delta(core.counters, start)
    return KernelResult(name="qr_blocked", output=a, counters=delta, num_pes=core.num_pes,
                        extra={"tau": taus})


def qr_blocked_q(factored: np.ndarray, taus: List[float]) -> np.ndarray:
    """Rebuild the explicit orthogonal factor Q from the blocked-QR output."""
    factored = np.asarray(factored, dtype=float)
    m, n = factored.shape
    q = np.eye(m)
    for j in range(n - 1, -1, -1):
        tau = taus[j]
        if not np.isfinite(tau):
            continue
        u = np.zeros(m)
        u[j] = 1.0
        u[j + 1:] = factored[j + 1:, j]
        q -= np.outer(u, (u @ q)) / tau
    return q
