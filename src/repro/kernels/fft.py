"""Radix-4 FFT on the LAC (Chapter 6.2 and Appendix B).

The FFT kernel keeps the complex points distributed across the ``nr x nr``
PEs, runs FMA-optimised radix-4 butterflies locally in every PE, and performs
the inter-stage data exchanges over the broadcast buses: one stage's exchange
pattern uses only the row buses and the next stage's only the column buses,
so communication overlaps naturally with butterfly computation.

The functional implementation below computes a decimation-in-time radix-4
FFT whose butterflies are executed "on" the PEs (each butterfly is assigned
to the PE that owns its first input point), counting the 24 FMA operations of
the optimised butterfly DAG and the bus transfers of the exchange patterns.
Larger transforms are handled by the four-step decomposition that streams
core-sized blocks through the on-chip memory
(:func:`repro.models.fft_model.FFTCoreModel.large_fft_requirements` provides
the matching analytical view).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.kernels.common import KernelResult, counters_delta
from repro.lac.core import LinearAlgebraCore
from repro.models.fft_model import FMA_OPS_PER_RADIX4_BUTTERFLY


def _bit_reverse_radix4(values: np.ndarray) -> np.ndarray:
    """Digit-reverse (base-4) permutation used by the in-place DIT schedule."""
    n = values.size
    digits = int(round(math.log(n, 4)))
    out = np.empty_like(values)
    for idx in range(n):
        rev = 0
        tmp = idx
        for _ in range(digits):
            rev = rev * 4 + (tmp % 4)
            tmp //= 4
        out[rev] = values[idx]
    return out


def lac_fft(core: LinearAlgebraCore, x: np.ndarray,
            block_points: Optional[int] = None) -> KernelResult:
    """Forward FFT of a complex vector on the LAC.

    Parameters
    ----------
    x:
        Input vector; its length must be a power of 4 (the radix-4 kernel of
        the paper; power-of-two-but-not-four sizes would add a radix-2
        epilogue that the dissertation does not evaluate).
    block_points:
        Size of the core-resident block for large transforms.  Defaults to
        the whole problem when it fits (<= 4096 points) and to 64 otherwise,
        matching the 64-point per-core FFT of Figure B.2.

    Returns the transform (matching ``numpy.fft.fft``) together with the
    cycle/access counters of the run.
    """
    start = core.counters.copy()
    x = np.asarray(x, dtype=complex).ravel()
    n = x.size
    if n < 4 or (n & (n - 1)) != 0 or int(round(math.log(n, 4))) != math.log(n, 4):
        raise ValueError(f"FFT length must be a power of 4, got {n}")

    if block_points is None:
        block_points = n if n <= 4096 else 64

    if n <= block_points:
        result = _core_fft(core, x)
    else:
        result = _four_step_fft(core, x, block_points)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="fft", output=result, counters=delta, num_pes=core.num_pes)


def _core_fft(core: LinearAlgebraCore, x: np.ndarray) -> np.ndarray:
    """Core-contained radix-4 DIT FFT with per-stage cycle accounting."""
    n = x.size
    nr = core.nr
    pes = nr * nr
    stages = int(round(math.log(n, 4)))
    data = _bit_reverse_radix4(x)

    # Initial load of the points over the column buses (2 words per point).
    core.counters.external_loads += 2 * n
    core.tick(int(math.ceil(2 * n / nr)))

    size = 4
    for stage in range(stages):
        quarter = size // 4
        num_groups = n // size
        for group in range(num_groups):
            base = group * size
            for j in range(quarter):
                idx = [base + j + q * quarter for q in range(4)]
                w = np.exp(-2j * np.pi * j / size)
                t0 = data[idx[0]]
                t1 = w * data[idx[1]]
                t2 = (w * w) * data[idx[2]]
                t3 = (w * w * w) * data[idx[3]]
                data[idx[0]] = t0 + t1 + t2 + t3
                data[idx[1]] = t0 - 1j * t1 - t2 + 1j * t3
                data[idx[2]] = t0 - t1 + t2 - t3
                data[idx[3]] = t0 + 1j * t1 - t2 - 1j * t3
                # One FMA-optimised butterfly executed by the owning PE.
                owner = core.pes[(idx[0] // 4) % nr][(idx[0] // (4 * nr)) % nr]
                owner.counters.mac_ops += FMA_OPS_PER_RADIX4_BUTTERFLY
                owner.counters.store_a_reads += 8   # 4 complex inputs
                owner.counters.store_a_writes += 8  # 4 complex outputs
        # Butterfly issue cycles for this stage: (n/4) butterflies spread over
        # the PEs at 24 FMAs each, one FMA per cycle per PE.
        butterflies = n // 4
        core.tick(int(math.ceil(butterflies * FMA_OPS_PER_RADIX4_BUTTERFLY / pes)))
        # Inter-stage exchange: alternate row-bus and column-bus patterns.
        exchanged_words = 2 * n  # every point moves once between stages
        if stage % 2 == 0:
            core.counters.row_broadcasts += exchanged_words // 2
        else:
            core.counters.column_broadcasts += exchanged_words // 2
        size *= 4

    # Final store over the column buses.
    core.counters.external_stores += 2 * n
    core.tick(int(math.ceil(2 * n / nr)))
    return data


def _four_step_fft(core: LinearAlgebraCore, x: np.ndarray, block_points: int) -> np.ndarray:
    """Four-step (transpose) decomposition for transforms larger than a block.

    ``N = N1 * N2`` with ``N2 = block_points``: column FFTs of length N1,
    twiddle scaling, row FFTs of length N2, with the transposes handled by
    the on-chip memory between passes.
    """
    n = x.size
    n2 = block_points
    n1 = n // n2
    if n1 * n2 != n:
        raise ValueError("block size must divide the transform length")
    matrix = x.reshape(n1, n2)

    # Pass 1: FFT down the columns (length n1 transforms).
    stage1 = np.empty_like(matrix)
    for col in range(n2):
        stage1[:, col] = _core_fft(core, matrix[:, col]) if n1 >= 4 else matrix[:, col]
    # Twiddle scaling between the two passes.
    j1 = np.arange(n1).reshape(-1, 1)
    j2 = np.arange(n2).reshape(1, -1)
    stage1 = stage1 * np.exp(-2j * np.pi * j1 * j2 / n)
    core.counters.mac_ops += 4 * n      # one complex multiply per point
    core.tick(int(math.ceil(4 * n / (core.nr * core.nr))))
    # Pass 2: FFT along the rows (length n2 transforms).
    out = np.empty_like(stage1)
    for row in range(n1):
        out[row, :] = _core_fft(core, stage1[row, :])
    # Result in transposed (decimated) order: X[k1 + n1*k2] = out[k1, k2].
    result = np.empty(n, dtype=complex)
    for k1 in range(n1):
        for k2 in range(n2):
            result[k1 + n1 * k2] = out[k1, k2]
    return result
