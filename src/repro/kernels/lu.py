"""LU factorization with partial pivoting on the LAC (Section 6.1.2).

The inner kernel factors a tall ``k x nr`` panel stored 2D-cyclically across
the mesh.  Iteration ``i`` performs four steps (Figure 6.2):

* **S1** -- search the ``i``-th column below the diagonal for the element of
  maximum magnitude (the pivot).  With the comparator MAC extension the
  search rides along the normal column traversal; without it an explicit
  reduction pass is issued.
* **S2** -- feed the pivot to the reciprocal unit and swap the pivot row with
  row ``i`` over the buses, concurrently.
* **S3** -- broadcast ``1/pivot`` down the ``i``-th column and scale the
  entries below the diagonal.
* **S4** -- broadcast the scaled column along the rows and the pivot row down
  the columns and apply the rank-1 update to the trailing panel.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.sfu import SpecialOp
from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.lac.core import LinearAlgebraCore


def lac_lu_panel(core: LinearAlgebraCore, a_panel: np.ndarray,
                 use_comparator_extension: bool = True) -> KernelResult:
    """Factor a ``k x nr`` panel with partial pivoting on the LAC.

    Returns a :class:`KernelResult` whose output is the factored panel (unit
    lower-triangular multipliers below the diagonal, ``U`` on and above it)
    and whose ``extra['pivots']`` records the row swapped into position ``i``
    at step ``i`` (LAPACK-style ipiv, 0-based).
    """
    start = core.counters.copy()
    a = np.array(a_panel, dtype=float, copy=True)
    nr = core.nr
    k = a.shape[0]
    if a.ndim != 2 or a.shape[1] != nr:
        raise ValueError(f"panel must be k x nr with nr={nr}, got {a.shape}")
    if k < nr:
        raise ValueError("panel must have at least nr rows")

    core.distribute_a(a)
    p = core.mac_latency
    pivots: List[int] = []

    for i in range(nr):
        # S1: pivot search in column i over rows i..k-1.
        column = a[i:, i]
        pivot_offset = int(np.argmax(np.abs(column)))
        pivot_row = i + pivot_offset
        pivots.append(pivot_row)
        rows_below = k - i
        traversal = rows_below / float(nr) + p
        if use_comparator_extension:
            core.counters.mac_ops += rows_below  # compare folded into traversal
            core.tick(int(np.ceil(traversal)))
        else:
            core.counters.mac_ops += 2 * rows_below
            core.tick(int(np.ceil(2 * traversal + nr)))

        pivot = a[pivot_row, i]
        if abs(pivot) < 1e-300:
            raise ValueError("panel is singular to working precision")

        # S2: reciprocal of the pivot (SFU) and the row interchange (buses).
        inv = core.special(SpecialOp.RECIPROCAL, pivot)
        if pivot_row != i:
            a[[i, pivot_row], :] = a[[pivot_row, i], :]
            core.counters.row_broadcasts += nr
            core.counters.column_broadcasts += nr
            core.tick(2)

        # S3: broadcast 1/pivot down column i and scale the sub-column.
        core.broadcast_column(i, inv)
        for r in range(i + 1, k):
            a[r, i] = core.pes[r % nr][i].multiply(a[r, i], inv)
        core.tick(int(np.ceil((k - i - 1) / float(nr))) + p)

        # S4: rank-1 update of the trailing (k-i-1) x (nr-i-1) panel.
        if i + 1 < nr:
            core.counters.row_broadcasts += 1
            core.counters.column_broadcasts += 1
            for r in range(i + 1, k):
                for c in range(i + 1, nr):
                    pe = core.pes[r % nr][c]
                    a[r, c] = pe.multiply_add(-a[r, i], a[i, c], a[r, c])
            core.tick(int(np.ceil((k - i - 1) * (nr - i - 1) / float(nr * nr))) + p)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="lu_panel", output=a, counters=delta, num_pes=core.num_pes,
                        extra={"pivots": pivots})


def apply_panel_pivots(matrix: np.ndarray, pivots: List[int]) -> np.ndarray:
    """Apply the recorded row interchanges of :func:`lac_lu_panel` to a matrix."""
    out = np.array(matrix, dtype=float, copy=True)
    for i, piv in enumerate(pivots):
        if piv != i:
            out[[i, piv], :] = out[[piv, i], :]
    return out


def reconstruct_from_panel(factored: np.ndarray) -> (np.ndarray, np.ndarray):
    """Split a factored ``k x nr`` panel into its L (unit lower) and U parts."""
    factored = np.asarray(factored, dtype=float)
    k, nr = factored.shape
    l = np.zeros((k, nr), dtype=float)
    u = np.zeros((nr, nr), dtype=float)
    for j in range(nr):
        u[: j + 1, j] = factored[: j + 1, j]
        l[j, j] = 1.0
        l[j + 1:, j] = factored[j + 1:, j]
    return l, u
