"""Kernel dispatch table shared by the CLI and the sweep engine.

Maps a kernel name to an operand builder and a simulator entry point so
callers (``repro.cli simulate``, :mod:`repro.engine.runners`) do not have to
duplicate the per-kernel ``if/elif`` chain.  Operands are generated from a
seeded :class:`numpy.random.Generator`, so a (kernel, size, nr, seed) tuple
fully determines the simulated problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.kernels.cholesky import lac_cholesky
from repro.kernels.common import KernelResult
from repro.kernels.fft import lac_fft
from repro.kernels.gemm import lac_gemm
from repro.kernels.lu import lac_lu_panel
from repro.kernels.syrk import lac_syrk
from repro.kernels.trsm import lac_trsm
from repro.lac import LinearAlgebraCore

OperandBuilder = Callable[[np.random.Generator, int, int], Tuple]
Runner = Callable[..., KernelResult]


def fft_point_count(size: int) -> int:
    """Radix-4 transform length simulated for a requested ``--size``.

    The FFT kernel works on ``4**k``-point transforms; a matrix-style size
    ``n`` is interpreted as an ``n*n``-element signal rounded to the nearest
    radix-4 length.  Callers should report this rounding to the user rather
    than remapping silently.
    """
    if size < 1:
        raise ValueError("size must be positive")
    return 4 ** max(1, int(round(math.log(max(size, 4) ** 2, 4))))


@dataclass(frozen=True)
class KernelSpec:
    """How to build operands for, and run, one kernel on a LAC."""

    name: str
    build_operands: OperandBuilder
    run: Callable[[LinearAlgebraCore, Tuple], KernelResult]
    #: Effective problem description simulated for a requested size (used to
    #: report roundings such as the FFT's radix-4 point count).
    effective_size: Callable[[int, int], int] = lambda n, nr: n
    #: Whether the requested size must be a multiple of the core dimension
    #: (matrix kernels); the FFT derives its own radix-4 point count instead.
    requires_nr_alignment: bool = True


def check_size(kernel: str, size: int, nr: int) -> None:
    """Validate a requested problem size for ``kernel`` (raises ValueError).

    Shared by the CLI and the engine's ``simulate`` runner so both entry
    points agree on which jobs are valid.
    """
    spec = get_kernel(kernel)
    if size < 1:
        raise ValueError("size must be positive")
    if spec.requires_nr_alignment and size % nr:
        raise ValueError(f"size must be a multiple of nr={nr}")


def _gemm_operands(rng: np.random.Generator, n: int, nr: int) -> Tuple:
    return (rng.random((n, n)), rng.random((n, n)), rng.random((n, n)))


def _syrk_operands(rng: np.random.Generator, n: int, nr: int) -> Tuple:
    return (rng.random((n, n)), rng.random((n, n)))


def _trsm_operands(rng: np.random.Generator, n: int, nr: int) -> Tuple:
    lower = np.tril(rng.random((n, n))) + n * np.eye(n)
    return (lower, rng.random((n, n)))


def _cholesky_operands(rng: np.random.Generator, n: int, nr: int) -> Tuple:
    m = rng.random((n, n))
    return (m @ m.T + n * np.eye(n),)


def _lu_operands(rng: np.random.Generator, n: int, nr: int) -> Tuple:
    return (rng.random((max(n, nr), nr)),)


def _fft_operands(rng: np.random.Generator, n: int, nr: int) -> Tuple:
    points = fft_point_count(n)
    return (rng.standard_normal(points) + 1j * rng.standard_normal(points),)


KERNEL_DISPATCH: Dict[str, KernelSpec] = {
    "gemm": KernelSpec("gemm", _gemm_operands,
                       lambda core, ops: lac_gemm(core, ops[0], ops[1], ops[2])),
    "syrk": KernelSpec("syrk", _syrk_operands,
                       lambda core, ops: lac_syrk(core, ops[0], ops[1])),
    "trsm": KernelSpec("trsm", _trsm_operands,
                       lambda core, ops: lac_trsm(core, ops[0], ops[1])),
    "cholesky": KernelSpec("cholesky", _cholesky_operands,
                           lambda core, ops: lac_cholesky(core, ops[0])),
    "lu": KernelSpec("lu", _lu_operands,
                     lambda core, ops: lac_lu_panel(core, ops[0])),
    "fft": KernelSpec("fft", _fft_operands,
                      lambda core, ops: lac_fft(core, ops[0]),
                      effective_size=lambda n, nr: fft_point_count(n),
                      requires_nr_alignment=False),
}


def kernel_names() -> List[str]:
    """Names accepted by the CLI and the ``simulate`` sweep runner."""
    return list(KERNEL_DISPATCH)


def get_kernel(name: str) -> KernelSpec:
    """Look up one kernel spec by name."""
    try:
        return KERNEL_DISPATCH[name]
    except KeyError:
        raise KeyError(f"unknown kernel '{name}'; known kernels: "
                       f"{sorted(KERNEL_DISPATCH)}") from None


def simulate_kernel(core: LinearAlgebraCore, kernel: str, size: int,
                    rng: np.random.Generator) -> KernelResult:
    """Build seeded operands for ``kernel`` and run it on ``core``."""
    spec = get_kernel(kernel)
    operands = spec.build_operands(rng, size, core.config.nr)
    return spec.run(core, operands)
