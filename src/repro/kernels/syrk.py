"""SYRK and SYR2K on the LAC (Section 5.2).

The symmetric rank-k update ``C := C + A A^T`` looks like GEMM with ``B``
replaced by ``A^T``; the twist is that each column of ``A`` must be available
in transposed form during the rank-1 updates.  The LAC achieves this without
extra passes by routing the column through the diagonal PEs: in iteration
``i`` the owning PE column broadcasts column ``a_i`` across the *row* buses,
the diagonal PEs latch it and re-broadcast it down the *column* buses in the
next step, giving every PE both ``a_i`` (row value) and ``a_i^T`` (column
value) for the rank-1 update, while the transposed copy is retained so the
bulk of the blocked algorithm can proceed as plain GEMM.

Only the lower triangle of ``C`` is computed; the blocked algorithm updates
the diagonal ``nr x nr`` blocks with the unblocked transposing kernel and
casts all off-diagonal work as GEMM with the previously produced ``A^T``
panels (Figure 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.kernels.gemm import lac_rank1_sequence
from repro.lac.core import LinearAlgebraCore


def _syrk_unblocked(core: LinearAlgebraCore, c_block: np.ndarray,
                    a_panel: np.ndarray) -> np.ndarray:
    """Unblocked SYRK of one ``nr x nr`` diagonal block: C += A A^T.

    ``a_panel`` is ``nr x kc``.  Each iteration broadcasts one column of A on
    the row buses, transposes it over the diagonal PEs onto the column buses
    and performs the rank-1 update -- the three concurrent activities of
    Figure 5.2 (here charged as the transpose step plus the single-cycle
    update).
    """
    nr = core.nr
    c_block = np.asarray(c_block, dtype=float)
    a_panel = np.asarray(a_panel, dtype=float)
    if c_block.shape != (nr, nr) or a_panel.shape[0] != nr:
        raise ValueError("diagonal SYRK operands have the wrong shape")
    kc = a_panel.shape[1]

    core.load_c_accumulators(c_block)
    for p in range(kc):
        column = a_panel[:, p]
        transposed = core.transpose_via_diagonal(column)
        # rank-1 update with a_i on the rows and a_i^T on the columns; the
        # transpose step already drove the buses, so this is the MAC step.
        for i in range(nr):
            for j in range(nr):
                core.pes[i][j].mac(column[i], transposed[j])
        core.counters.store_a_reads += nr
        core.tick(1)
    updated = core.store_c_accumulators()
    # Only the lower triangle is defined by the operation.
    out = np.asarray(c_block, dtype=float).copy()
    lower = np.tril_indices(nr)
    out[lower] = updated[lower]
    return out


def lac_syrk(core: LinearAlgebraCore, c: np.ndarray, a: np.ndarray) -> KernelResult:
    """Blocked SYRK ``C := C + A A^T`` (lower triangle) on a single LAC.

    ``C`` is ``mc x mc`` and ``A`` is ``mc x kc``; both dimensions must be
    multiples of ``nr``.  Diagonal blocks use the transposing unblocked
    kernel; off-diagonal blocks ``C[i, j] += A_i A_j^T`` (``i > j``) are plain
    rank-1 update sequences against the transposed panel produced while the
    ``j``-th diagonal block was computed.
    """
    start = core.counters.copy()
    c = np.array(c, dtype=float, copy=True)
    a = np.asarray(a, dtype=float)
    nr = core.nr
    mc, kc = a.shape
    if c.shape != (mc, mc):
        raise ValueError(f"C must be {mc} x {mc} for SYRK, got {c.shape}")
    check_divisible(mc, nr, "mc")
    check_divisible(kc, nr, "kc")

    core.distribute_a(a)
    for j in range(0, mc, nr):
        # (1a/1b) diagonal block and the transposed panel A_j^T.
        c[j:j + nr, j:j + nr] = _syrk_unblocked(core, c[j:j + nr, j:j + nr], a[j:j + nr, :])
        a_j_t = a[j:j + nr, :].T  # kc x nr, retained in the PE rows by the kernel
        # (2) the panel below the diagonal: C[i, j] += A_i * A_j^T as GEMM.
        for i in range(j + nr, mc, nr):
            c[i:i + nr, j:j + nr] = lac_rank1_sequence(
                core, c[i:i + nr, j:j + nr], a[i:i + nr, :], a_j_t)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="syrk", output=c, counters=delta, num_pes=core.num_pes)


def lac_syr2k(core: LinearAlgebraCore, c: np.ndarray, a: np.ndarray,
              b: np.ndarray) -> KernelResult:
    """Blocked SYR2K ``C := C + A B^T + B A^T`` (lower triangle) on a LAC.

    Uses the same principles as SYRK with both cross terms; the amount of
    communication and computation doubles (Section 5.2.2).
    """
    start = core.counters.copy()
    c = np.array(c, dtype=float, copy=True)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("A and B must have identical shapes for SYR2K")
    nr = core.nr
    mc, kc = a.shape
    if c.shape != (mc, mc):
        raise ValueError(f"C must be {mc} x {mc} for SYR2K, got {c.shape}")
    check_divisible(mc, nr, "mc")
    check_divisible(kc, nr, "kc")

    core.distribute_a(a)
    core.distribute_a(b, base_address=(mc // nr) * (kc // nr))
    for j in range(0, mc, nr):
        # Diagonal block: C_jj += A_j B_j^T + B_j A_j^T, via two transposing passes.
        block = c[j:j + nr, j:j + nr]
        tmp = _cross_unblocked(core, block, a[j:j + nr, :], b[j:j + nr, :])
        c[j:j + nr, j:j + nr] = _cross_unblocked(core, tmp, b[j:j + nr, :], a[j:j + nr, :])
        a_j_t = a[j:j + nr, :].T
        b_j_t = b[j:j + nr, :].T
        for i in range(j + nr, mc, nr):
            block = lac_rank1_sequence(core, c[i:i + nr, j:j + nr], a[i:i + nr, :], b_j_t)
            c[i:i + nr, j:j + nr] = lac_rank1_sequence(core, block, b[i:i + nr, :], a_j_t)

    delta = counters_delta(core.counters, start)
    return KernelResult(name="syr2k", output=c, counters=delta, num_pes=core.num_pes)


def _cross_unblocked(core: LinearAlgebraCore, c_block: np.ndarray,
                     left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Diagonal-block cross term ``C += left * right^T`` with on-the-fly transpose."""
    nr = core.nr
    c_block = np.asarray(c_block, dtype=float)
    kc = left.shape[1]
    core.load_c_accumulators(c_block)
    for p in range(kc):
        col_left = np.asarray(left, dtype=float)[:, p]
        col_right = np.asarray(right, dtype=float)[:, p]
        transposed = core.transpose_via_diagonal(col_right)
        for i in range(nr):
            for j in range(nr):
                core.pes[i][j].mac(col_left[i], transposed[j])
        core.counters.store_a_reads += 2 * nr
        core.tick(1)
    updated = core.store_c_accumulators()
    out = c_block.copy()
    lower = np.tril_indices(nr)
    out[lower] = updated[lower]
    return out
