"""Shared result container and helpers for the LAC kernel mappings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.lac.stats import AccessCounters


@dataclass
class KernelResult:
    """Outcome of running one kernel on the LAC simulator.

    Attributes
    ----------
    name:
        Kernel name (e.g. ``"gemm"``, ``"trsm"``).
    output:
        The numerical result produced by the simulator (matrix, vector or
        scalar depending on the kernel).
    counters:
        A snapshot of the access counters attributable to this kernel run.
    num_pes:
        Number of PEs in the core that ran the kernel (for utilisation).
    extra:
        Optional kernel-specific payload (e.g. the permutation of an LU
        factorization, the tau scalars of a QR panel).
    """

    name: str
    output: object
    counters: AccessCounters
    num_pes: int
    extra: Optional[dict] = None

    @property
    def cycles(self) -> int:
        """Cycles charged to this kernel run."""
        return self.counters.cycles

    @property
    def flops(self) -> int:
        """Useful floating point operations issued (2 per MAC)."""
        return self.counters.flops

    @property
    def utilization(self) -> float:
        """MAC issue rate relative to the core's peak."""
        return self.counters.utilization(self.num_pes)

    def gflops(self, frequency_ghz: float) -> float:
        """Achieved GFLOPS at the given core frequency."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        seconds = self.cycles / (frequency_ghz * 1e9)
        return self.flops / seconds / 1e9 if seconds > 0 else 0.0


def counters_delta(end: AccessCounters, start: AccessCounters) -> AccessCounters:
    """Difference of two counter snapshots (events attributable to one kernel)."""
    delta = end.copy()
    for name, value in start.as_dict().items():
        setattr(delta, name, getattr(delta, name) - value)
    return delta


def pad_to_multiple(matrix: np.ndarray, multiple: int) -> np.ndarray:
    """Zero-pad a matrix so both dimensions are multiples of ``multiple``.

    The LAC kernels operate on blocks whose dimensions are multiples of the
    core size ``nr``; callers padding their inputs use this helper and slice
    the result back afterwards.
    """
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D array")
    rows = ((matrix.shape[0] + multiple - 1) // multiple) * multiple
    cols = ((matrix.shape[1] + multiple - 1) // multiple) * multiple
    if (rows, cols) == matrix.shape:
        return matrix.copy()
    out = np.zeros((rows, cols), dtype=float)
    out[: matrix.shape[0], : matrix.shape[1]] = matrix
    return out


def check_divisible(value: int, by: int, what: str) -> None:
    """Raise a helpful error when a dimension is not a multiple of ``by``."""
    if value % by != 0:
        raise ValueError(f"{what} ({value}) must be a multiple of the core size nr={by}; "
                         f"pad the operand with repro.kernels.common.pad_to_multiple")
