"""Cholesky factorization on the LAC (Section 6.1.1).

The unblocked ``nr x nr`` kernel keeps the (symmetrised) block in the PE
registers.  Each iteration ``i``:

* S1/S2 -- the diagonal PE feeds ``a[i, i]`` to the inverse-square-root unit,
  the result is broadcast along PE row ``i`` and PE column ``i`` and
  multiplied into the elements below / to the right of the diagonal, and
* S3 -- the scaled row and column are re-broadcast and a rank-1 update
  subtracts their outer product from the trailing submatrix.

Blocked Cholesky for larger matrices casts the trailing update as SYRK/GEMM
and the panel scaling as TRSM; the blocked driver here composes those kernels
so the full factorization can be verified end to end on the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.hw.sfu import SpecialOp
from repro.kernels.common import KernelResult, check_divisible, counters_delta
from repro.kernels.gemm import lac_rank1_sequence
from repro.kernels.trsm import lac_trsm_unblocked
from repro.lac.core import LinearAlgebraCore


def _cholesky_unblocked(core: LinearAlgebraCore, a_block: np.ndarray) -> np.ndarray:
    """Unblocked Cholesky of an ``nr x nr`` SPD block; returns the factor L."""
    nr = core.nr
    a = np.array(a_block, dtype=float, copy=True)
    if a.shape != (nr, nr):
        raise ValueError(f"block must be {nr}x{nr}")
    p = core.mac_latency

    for i in range(nr):
        diag = a[i, i]
        if diag <= 0.0:
            raise ValueError("matrix is not positive definite")
        inv_sqrt = core.special(SpecialOp.INV_SQRT, diag)
        # S2: broadcast 1/sqrt(a_ii) along row i and column i, scale.
        core.broadcast_row(i, inv_sqrt)
        core.broadcast_column(i, inv_sqrt)
        a[i, i] = core.pes[i][i].multiply(diag, inv_sqrt)  # sqrt(a_ii)
        for r in range(i + 1, nr):
            a[r, i] = core.pes[r][i].multiply(a[r, i], inv_sqrt)
        for c in range(i + 1, nr):
            a[i, c] = core.pes[i][c].multiply(a[i, c], inv_sqrt)
        # S3: rank-1 update of the trailing submatrix.
        if i + 1 < nr:
            core.counters.row_broadcasts += 1
            core.counters.column_broadcasts += 1
            for r in range(i + 1, nr):
                for c in range(i + 1, nr):
                    a[r, c] = core.pes[r][c].multiply_add(-a[r, i], a[i, c], a[r, c])
        core.tick(2 * p)
    return np.tril(a)


def lac_cholesky(core: LinearAlgebraCore, a: np.ndarray) -> KernelResult:
    """Blocked Cholesky factorization ``A = L L^T`` on a single LAC.

    ``A`` must be symmetric positive definite with a dimension that is a
    multiple of the core size.  The right-looking blocked algorithm factors
    the diagonal block with the unblocked kernel, solves the panel below it
    with TRSM, and updates the trailing matrix with rank-1 sequences (the
    SYRK/GEMM bulk).
    """
    start = core.counters.copy()
    a = np.array(a, dtype=float, copy=True)
    nr = core.nr
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("A must be square")
    if not np.allclose(a, a.T, atol=1e-10):
        raise ValueError("A must be symmetric for Cholesky factorization")
    check_divisible(n, nr, "n")

    core.distribute_a(a)
    l = np.zeros_like(a)
    work = a.copy()
    for j in range(0, n, nr):
        # Factor the diagonal block.
        l_jj = _cholesky_unblocked(core, work[j:j + nr, j:j + nr])
        l[j:j + nr, j:j + nr] = l_jj
        if j + nr < n:
            # Panel solve: L[i, j] = work[i, j] * L_jj^{-T}  <=>  solve
            # L_jj X^T = work[i, j]^T; use the unblocked TRSM on the transpose.
            panel = work[j + nr:, j:j + nr]
            solved_t = lac_trsm_unblocked(core, l_jj, panel.T)
            l[j + nr:, j:j + nr] = solved_t.T
            # Trailing update: work[i, k] -= L[i, j] L[k, j]^T (SYRK-shaped).
            lp = l[j + nr:, j:j + nr]
            for i in range(j + nr, n, nr):
                for k in range(j + nr, i + nr, nr):
                    block = work[i:i + nr, k:k + nr]
                    work[i:i + nr, k:k + nr] = lac_rank1_sequence(
                        core, block, -lp[i - j - nr:i - j, :],
                        lp[k - j - nr:k - j, :].T)
                    # Keep symmetry of the trailing matrix for the next diagonal block.
                    if k != i:
                        work[k:k + nr, i:i + nr] = work[i:i + nr, k:k + nr].T

    delta = counters_delta(core.counters, start)
    return KernelResult(name="cholesky", output=l, counters=delta, num_pes=core.num_pes)


def cholesky_unblocked_cycle_estimate(nr: int, pipeline_stages: int, sfu_latency: int) -> float:
    """Closed-form estimate ``2 p (nr - 1) + q nr`` of Section 6.1.1."""
    if nr < 1 or pipeline_stages < 1 or sfu_latency < 0:
        raise ValueError("invalid parameters for the Cholesky cycle estimate")
    return 2.0 * pipeline_stages * (nr - 1) + sfu_latency * nr
