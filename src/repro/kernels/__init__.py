"""Algorithm mappings onto the LAC / LAP.

Each module maps one family of operations onto the cycle-level LAC simulator
(:mod:`repro.lac`), producing numerically correct results *and* realistic
cycle/access counts:

* :mod:`repro.kernels.gemm` -- the rank-1 update engine and blocked GEMM,
* :mod:`repro.kernels.syrk` -- SYRK and SYR2K with the diagonal-PE transpose,
* :mod:`repro.kernels.trsm` -- triangular solve (basic, stacked and
  software-pipelined inner kernels, blocked algorithm),
* :mod:`repro.kernels.trmm` / :mod:`repro.kernels.symm` -- the remaining
  level-3 BLAS,
* :mod:`repro.kernels.cholesky`, :mod:`repro.kernels.lu`,
  :mod:`repro.kernels.qr` -- the matrix-factorization inner kernels of
  Chapter 6 (Cholesky, LU with partial pivoting, Householder QR and the
  overflow-safe vector norm),
* :mod:`repro.kernels.fft` -- the radix-4 FMA-optimised FFT of Appendix B.
"""

from repro.kernels.common import KernelResult
from repro.kernels.gemm import lac_gemm, lac_rank1_sequence
from repro.kernels.syrk import lac_syrk, lac_syr2k
from repro.kernels.trsm import lac_trsm, lac_trsm_unblocked
from repro.kernels.trmm import lac_trmm
from repro.kernels.symm import lac_symm
from repro.kernels.cholesky import lac_cholesky
from repro.kernels.lu import lac_lu_panel
from repro.kernels.qr import lac_vector_norm, lac_householder_qr_panel
from repro.kernels.blocked_factorizations import lac_lu_blocked, lac_qr_blocked
from repro.kernels.fft import lac_fft
from repro.kernels.fft2d import lac_fft2d

__all__ = [
    "KernelResult",
    "lac_gemm",
    "lac_rank1_sequence",
    "lac_syrk",
    "lac_syr2k",
    "lac_trsm",
    "lac_trsm_unblocked",
    "lac_trmm",
    "lac_symm",
    "lac_cholesky",
    "lac_lu_panel",
    "lac_lu_blocked",
    "lac_qr_blocked",
    "lac_vector_norm",
    "lac_householder_qr_panel",
    "lac_fft",
    "lac_fft2d",
]
