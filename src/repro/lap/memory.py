"""Unified memory-hierarchy layer for the LAP runtime.

The dissertation's central argument is that a linear-algebra processor wins
by keeping tiles resident in its multi-megabyte on-chip memory and
amortising off-chip traffic over many tile operations.  This module models
exactly that data movement for the task-graph runtime:

* :class:`TileResidency` -- an LRU working set of logical tiles over the
  :class:`repro.hw.memory.OnChipMemory` capacity.  Tiles are fetched from
  off-chip on first touch (*compulsory* traffic, overlapped with compute by
  the double-buffered streaming the LAP is designed around), re-fetched when
  capacity pressure evicted them (*spill* traffic, which stalls), and dirty
  tiles are written back on eviction and at the end of the schedule.
* :class:`LocalStore` -- the second residency level: one per-core LRU over
  that core's local-store budget, fed by the shared level.  A task's tiles
  are served from the assigned core's store when possible (*local hit*, no
  transfer), copied from a sibling core's store when another core holds
  them (*core-to-core* transfer), and otherwise filled from the shared
  on-chip memory (*shared hit*).  Both transfer kinds cross the on-chip
  fabric and cost transfer cycles; only local hits are free.  The
  hierarchy is inclusive (every local tile also lives in the shared level)
  and write-through (dirtiness is tracked at the shared level only), so
  enabling local stores never changes the off-chip traffic of a fixed
  schedule -- it splits the on-chip side of the movement and adds the
  transfer time.
* :class:`BandwidthModel` -- converts spill refill bytes into stall cycles
  through the sustained bandwidth of the
  :class:`repro.hw.memory.OffChipInterface`.
* :class:`TaskEnergyModel` -- per-task energy from three first-order terms:
  pJ/flop of the FMAC units, pJ/byte of on-chip SRAM accesses and pJ/byte
  moved across the chip boundary, so a schedule reports GFLOPS/W like the
  paper's headline comparisons.
* :class:`MemoryHierarchy` -- composes the three into the per-task
  accounting record (:class:`TaskMemoryEvent`) the runtime's event loop
  consumes, plus whole-schedule totals.

The closed-form streaming traffic of a monolithic GEMM
(:func:`gemm_stream_traffic`) also lives here;
:mod:`repro.lap.offchip` keeps its historical API as a thin shim on top.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.hw.fpu import FMACUnit
from repro.hw.memory import OffChipInterface, OnChipMemory
from repro.lap.taskgraph import TaskDescriptor, TileAccess, task_flops

__all__ = [
    "BandwidthModel", "LocalStore", "MemoryHierarchy", "TaskEnergyModel",
    "TaskMemoryEvent", "TileResidency", "gemm_stream_traffic",
]


def gemm_stream_traffic(n: int, element_bytes: int = 8,
                        resident_fraction_of_c: float = 1.0) -> Dict[str, float]:
    """Closed-form off-chip traffic of a streamed ``n x n x n`` GEMM.

    The canonical LAP blocking keeps a block of C resident and streams the
    panels of A and B past it.  With only a fraction of C resident, the A
    and B panels are re-streamed once per resident sub-block
    (``1 / fraction`` times); C is read and written exactly once either way.
    Returns the per-operand byte counts; :class:`repro.lap.offchip`'s
    ``TrafficSummary`` is a named view of this dictionary.
    """
    if n <= 0:
        raise ValueError("problem size must be positive")
    if element_bytes <= 0:
        raise ValueError("element bytes must be positive")
    if not (0.0 < resident_fraction_of_c <= 1.0):
        raise ValueError("the resident fraction of C must lie in (0, 1]")
    refetch = 1.0 / resident_fraction_of_c
    matrix_bytes = float(n) * n * element_bytes
    return {
        "a_bytes": matrix_bytes * refetch,
        "b_bytes": matrix_bytes * refetch,
        "c_read_bytes": matrix_bytes,
        "c_write_bytes": matrix_bytes,
    }


@dataclass
class TaskMemoryEvent:
    """Data-movement accounting of one scheduled task.

    ``refill_bytes`` splits into ``compulsory_bytes`` (first-ever fetch of a
    tile, overlapped with compute by the streaming design, no stall) and
    ``spill_refill_bytes`` (re-fetch of a tile the working set evicted,
    which exceeds the streaming budget and stalls the task).
    ``writeback_bytes`` counts dirty evictions this task's fetches forced.

    With per-core local stores enabled the on-chip side of the footprint
    additionally splits into ``local_hit_bytes`` (already in the assigned
    core's store), ``c2c_bytes`` (copied from a sibling core's store) and
    ``shared_to_local_bytes`` (filled from the shared level);
    ``local_transfer_cycles`` is the time both transfer kinds
    (shared-to-local fills and core-to-core copies, which cross the same
    on-chip fabric) take through the on-chip bandwidth.
    """

    task_id: int
    refill_bytes: float = 0.0
    compulsory_bytes: float = 0.0
    spill_refill_bytes: float = 0.0
    writeback_bytes: float = 0.0
    stall_cycles: float = 0.0
    energy_j: float = 0.0
    flops: float = 0.0
    local_hit_bytes: float = 0.0
    shared_to_local_bytes: float = 0.0
    c2c_bytes: float = 0.0
    local_transfer_cycles: float = 0.0
    #: Bytes of on-chip SRAM accesses the energy model charged for this
    #: task (operand footprint plus any local-fill transfer bytes); the
    #: second factor of the per-task energy triple a ScheduleTrace re-keys.
    onchip_bytes: float = 0.0

    @property
    def offchip_bytes(self) -> float:
        """Bytes this task moved across the chip boundary."""
        return self.refill_bytes + self.writeback_bytes

    def as_args(self) -> Dict[str, float]:
        """The event as flat trace-span arguments (non-zero fields only).

        The observability layer attaches this to the task's span so every
        byte of a task's data movement is inspectable in the trace viewer;
        zero-valued fields are dropped to keep large traces small.
        """
        fields = {
            "refill_bytes": self.refill_bytes,
            "compulsory_bytes": self.compulsory_bytes,
            "spill_refill_bytes": self.spill_refill_bytes,
            "writeback_bytes": self.writeback_bytes,
            "energy_j": self.energy_j,
            "flops": self.flops,
            "local_hit_bytes": self.local_hit_bytes,
            "shared_to_local_bytes": self.shared_to_local_bytes,
            "c2c_bytes": self.c2c_bytes,
        }
        return {name: value for name, value in fields.items() if value}


class TileResidency:
    """LRU working set of logical tiles over an on-chip capacity.

    Tiles are identified by ``(operand, (block_row, block_col))`` names
    (aliasing already resolved by the task-graph builders) and all occupy
    ``tile_bytes``.  A task's footprint is *pinned* while it is brought
    resident, so one task's tiles never evict each other; a footprint larger
    than the capacity is allowed to overflow transiently (the schedule then
    thrashes, which the spill counters make visible).
    """

    def __init__(self, capacity_bytes: float, tile_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("on-chip capacity must be positive")
        if tile_bytes <= 0:
            raise ValueError("tile bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.tile_bytes = int(tile_bytes)
        self._lru: "OrderedDict[TileAccess, None]" = OrderedDict()
        self._dirty: set = set()
        self._ever_loaded: set = set()
        self.peak_resident_bytes = 0
        #: Monotonic state version; bumped by every touch() so schedulers can
        #: detect stale residency-based priorities.
        self.version = 0
        #: Tiles the most recent touch()/flush() evicted, in eviction order;
        #: an inclusive upper level uses this to invalidate local copies.
        self.last_evicted: List[TileAccess] = []

    # ------------------------------------------------------------- queries
    @property
    def resident_bytes(self) -> int:
        return len(self._lru) * self.tile_bytes

    def is_resident(self, access: TileAccess) -> bool:
        return access in self._lru

    def missing_bytes(self, accesses: Iterable[TileAccess]) -> int:
        """Bytes a footprint would have to fetch right now (no state change)."""
        missing = {a for a in accesses if a not in self._lru}
        return len(missing) * self.tile_bytes

    # ------------------------------------------------------------- updates
    def _evict_down_to_capacity(self, pinned: set) -> Tuple[List[TileAccess], float]:
        victims: List[TileAccess] = []
        writeback = 0.0
        while (self.resident_bytes > self.capacity_bytes
               and any(key not in pinned for key in self._lru)):
            victim = next(key for key in self._lru if key not in pinned)
            del self._lru[victim]
            victims.append(victim)
            if victim in self._dirty:
                self._dirty.discard(victim)
                writeback += self.tile_bytes
        return victims, writeback

    def touch(self, reads: Iterable[TileAccess],
              writes: Iterable[TileAccess]) -> Tuple[float, float, float, float]:
        """Bring a task's footprint resident; returns the traffic it caused.

        Returns ``(refill, compulsory, spill_refill, writeback)`` in bytes.
        Read tiles and written tiles are both fetched (every tile kernel
        is read-modify-write at the granularity of a tile); written tiles
        are marked dirty so their eventual eviction costs a writeback.
        """
        reads = list(reads)
        writes = list(writes)
        footprint: List[TileAccess] = []
        for access in reads + writes:
            if access not in footprint:
                footprint.append(access)
        pinned = set(footprint)
        refill = compulsory = spill = 0.0
        for access in footprint:
            if access in self._lru:
                self._lru.move_to_end(access)
                continue
            refill += self.tile_bytes
            if access in self._ever_loaded:
                spill += self.tile_bytes
            else:
                compulsory += self.tile_bytes
                self._ever_loaded.add(access)
            self._lru[access] = None
        for access in writes:
            self._dirty.add(access)
        victims, writeback = self._evict_down_to_capacity(pinned)
        self.last_evicted = victims
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self.resident_bytes)
        # The version tracks *membership* changes only (what missing_bytes
        # sees); fully-resident touches are no-ops for priority scoring, so
        # leaving the version alone spares dynamic schedulers a pointless
        # re-validation pass in the common no-spill regime.
        if refill > 0 or victims:
            self.version += 1
        return refill, compulsory, spill, writeback

    def flush(self) -> float:
        """Write back every remaining dirty tile; returns the bytes moved."""
        writeback = float(len(self._dirty) * self.tile_bytes)
        self._dirty.clear()
        self.last_evicted = list(self._lru)
        self._lru.clear()
        self.version += 1
        return writeback


class LocalStore:
    """Per-core LRU working set of tiles over one core's local-store budget.

    The second residency level of the two-level hierarchy: the shared
    :class:`TileResidency` feeds one ``LocalStore`` per core.  The store is
    inclusive in the shared level and write-through (the shared level owns
    dirtiness and hence all off-chip accounting); a task's footprint is
    pinned while it is brought resident, mirroring the shared level, so a
    footprint larger than the budget overflows transiently instead of
    evicting itself.
    """

    def __init__(self, capacity_bytes: float, tile_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("local-store capacity must be positive")
        if tile_bytes <= 0:
            raise ValueError("tile bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.tile_bytes = int(tile_bytes)
        self._lru: "OrderedDict[TileAccess, None]" = OrderedDict()
        self.peak_resident_bytes = 0

    # ------------------------------------------------------------- queries
    @property
    def resident_bytes(self) -> int:
        return len(self._lru) * self.tile_bytes

    def is_resident(self, access: TileAccess) -> bool:
        return access in self._lru

    def missing_bytes(self, accesses: Iterable[TileAccess]) -> int:
        """Bytes a footprint would have to fill right now (no state change)."""
        missing = {a for a in accesses if a not in self._lru}
        return len(missing) * self.tile_bytes

    def resident_footprint_bytes(self, accesses: Iterable[TileAccess]) -> int:
        """Bytes of a footprint already held by this store (no state change)."""
        held = {a for a in accesses if a in self._lru}
        return len(held) * self.tile_bytes

    # ------------------------------------------------------------- updates
    def touch(self, accesses: Iterable[TileAccess]) -> float:
        """Bring a footprint resident; returns the fill bytes it required."""
        footprint: List[TileAccess] = []
        for access in accesses:
            if access not in footprint:
                footprint.append(access)
        pinned = set(footprint)
        fill = 0.0
        for access in footprint:
            if access in self._lru:
                self._lru.move_to_end(access)
                continue
            fill += self.tile_bytes
            self._lru[access] = None
        while (self.resident_bytes > self.capacity_bytes
               and any(key not in pinned for key in self._lru)):
            victim = next(key for key in self._lru if key not in pinned)
            del self._lru[victim]
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self.resident_bytes)
        return fill

    def invalidate(self, access: TileAccess) -> None:
        """Drop a tile (shared-level eviction or a sibling core's write)."""
        self._lru.pop(access, None)


class BandwidthModel:
    """Converts off-chip refill bytes into stall cycles of the core clock."""

    def __init__(self, interface: OffChipInterface, frequency_ghz: float):
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        self.interface = interface
        self.frequency_ghz = float(frequency_ghz)

    def stall_cycles(self, num_bytes: float) -> float:
        """Cycles the interface needs to move ``num_bytes`` (0 for 0 bytes)."""
        if num_bytes <= 0:
            return 0.0
        return self.interface.transfer_cycles(num_bytes, self.frequency_ghz)


class TaskEnergyModel:
    """First-order per-task energy: compute + on-chip SRAM + off-chip pJ.

    ``energy = flops * J/flop + onchip_bytes * J/byte + offchip_bytes *
    J/byte``.  The per-flop energy comes from the FMAC model (one MAC is two
    flops), the on-chip per-byte energy from the banked SRAM's per-access
    energy, and the off-chip per-byte energy from the DRAM interface
    (~60 pJ/byte by default).
    """

    def __init__(self, fmac: FMACUnit, onchip: OnChipMemory,
                 interface: OffChipInterface):
        self.energy_per_flop_j = fmac.energy_per_mac_j / 2.0
        word_bytes = max(1, onchip.word_bytes)
        self.onchip_energy_per_byte_j = onchip.energy_per_access_j() / word_bytes
        self.offchip_energy_per_byte_j = interface.energy_per_byte_j

    def task_energy_j(self, flops: float, onchip_bytes: float,
                      offchip_bytes: float) -> float:
        if min(flops, onchip_bytes, offchip_bytes) < 0:
            raise ValueError("flops and byte counts must be non-negative")
        return (flops * self.energy_per_flop_j
                + onchip_bytes * self.onchip_energy_per_byte_j
                + offchip_bytes * self.offchip_energy_per_byte_j)


class MemoryHierarchy:
    """Per-schedule data-movement simulator the runtime event loop drives.

    One instance accounts one ``execute()`` call: the runtime feeds it every
    task in dispatch order, it tracks tile residency, converts spill refills
    into stall cycles, attributes energy per task, and accumulates the
    whole-schedule totals (:meth:`summary`).

    With ``local_store_kb`` set the hierarchy becomes two-level: one
    :class:`LocalStore` per core sits above the shared :class:`TileResidency`.
    A dispatched task's footprint is classified against its assigned core's
    store (local hit / core-to-core copy / shared-to-local fill) and the
    shared-to-local movement costs transfer cycles through the on-chip
    bandwidth plus on-chip access energy.  The local level is inclusive and
    write-through, so the off-chip traffic of a fixed dispatch order is
    *identical* to the single-level model -- ``local_store_kb=None``
    reproduces the single-level accounting byte for byte.
    """

    def __init__(self, capacity_bytes: float, tile: int, element_bytes: int,
                 interface: OffChipInterface, onchip: OnChipMemory,
                 fmac: FMACUnit, frequency_ghz: float,
                 num_cores: int = 1,
                 local_store_kb: Optional[float] = None,
                 fast: bool = False,
                 interner=None):
        if tile <= 0 or element_bytes <= 0:
            raise ValueError("tile size and element bytes must be positive")
        if num_cores < 1:
            raise ValueError("the hierarchy needs at least one core")
        self.tile = int(tile)
        self.element_bytes = int(element_bytes)
        tile_bytes = self.tile * self.tile * self.element_bytes
        # ``fast`` swaps both residency levels for the structure-of-arrays
        # twins of :mod:`repro.lap.fastpath` (byte-identical accounting over
        # interned tile ids; ``events`` then stays empty).  An ``interner``
        # shared with the scheduler's graph arrays keeps tile ids consistent
        # across all levels.
        self.fast = bool(fast)
        if fast:
            from repro.lap.fastpath import (FastLocalStore, FastTileResidency,
                                            TileInterner)
            interner = interner if interner is not None else TileInterner()
            self.residency = FastTileResidency(capacity_bytes, tile_bytes,
                                               interner)
        else:
            self.residency = TileResidency(capacity_bytes, tile_bytes)
        self.bandwidth = BandwidthModel(interface, frequency_ghz)
        self.energy = TaskEnergyModel(fmac, onchip, interface)
        self.num_cores = int(num_cores)
        self.local_store_kb = (None if local_store_kb is None
                               else float(local_store_kb))
        if self.local_store_kb is not None and self.local_store_kb <= 0:
            raise ValueError("local-store capacity must be positive")
        if self.local_store_kb is None:
            self.local_stores: Optional[List[LocalStore]] = None
        elif fast:
            self.local_stores = [
                FastLocalStore(self.local_store_kb * 1024, tile_bytes, interner)
                for _ in range(self.num_cores)]
        else:
            self.local_stores = [
                LocalStore(self.local_store_kb * 1024, tile_bytes)
                for _ in range(self.num_cores)]
        #: Bytes/cycle of shared-to-local (and core-to-core) transfers: the
        #: peak bandwidth of the shared on-chip SRAM.
        self.onchip_bw_bytes_per_cycle = float(onchip.peak_bandwidth_bytes_per_cycle)
        self.events: List[TaskMemoryEvent] = []
        self.total_flops = 0.0
        self.total_energy_j = 0.0
        self.total_stall_cycles = 0.0
        self.compulsory_bytes = 0.0
        self.spill_bytes = 0.0
        self.writeback_bytes = 0.0
        self.local_hit_bytes = 0.0
        self.shared_to_local_bytes = 0.0
        self.c2c_bytes = 0.0
        self.local_transfer_cycles = 0.0
        #: Bytes the end-of-schedule flush wrote back (set by finish());
        #: recorded on the ScheduleTrace so energy re-keys can reproduce the
        #: flush term.
        self.flush_writeback_bytes = 0.0
        self._local_version = 0
        self._flushed = False

    @classmethod
    def for_chip(cls, lap, tile: int,
                 on_chip_kb: Optional[float] = None,
                 bandwidth_gbs: Optional[float] = None,
                 local_store_kb: Optional[float] = None,
                 fast: bool = False,
                 interner=None,
                 offchip_pj_per_byte: Optional[float] = None) -> "MemoryHierarchy":
        """Build the hierarchy of one chip, with optional capacity/BW overrides.

        ``on_chip_kb`` shrinks (or grows) the residency capacity relative to
        the chip's physical on-chip memory -- the axis the capacity sweeps
        move; ``bandwidth_gbs`` overrides the sustained off-chip bandwidth;
        ``local_store_kb`` enables the per-core second level with the given
        per-core budget; ``offchip_pj_per_byte`` overrides the off-chip
        interface's access energy (pJ/byte, a DRAM-technology sweep axis).
        The remaining energy coefficients always come from the chip's
        component models.
        """
        cfg = lap.config
        capacity = (cfg.onchip_memory_mbytes * 1024 * 1024
                    if on_chip_kb is None else float(on_chip_kb) * 1024)
        if bandwidth_gbs is None and offchip_pj_per_byte is None:
            interface = lap.offchip
        else:
            interface = OffChipInterface(
                bandwidth_gbytes_per_sec=(
                    lap.offchip.bandwidth_gbytes_per_sec
                    if bandwidth_gbs is None else float(bandwidth_gbs)),
                energy_per_byte_j=(
                    lap.offchip.energy_per_byte_j
                    if offchip_pj_per_byte is None
                    else float(offchip_pj_per_byte) * 1e-12))
        fmac = cfg.fmac()
        return cls(capacity_bytes=capacity, tile=tile,
                   element_bytes=cfg.element_bytes, interface=interface,
                   onchip=lap.onchip_memory, fmac=fmac,
                   frequency_ghz=cfg.frequency_ghz,
                   num_cores=len(lap.cores), local_store_kb=local_store_kb,
                   fast=fast, interner=interner)

    # ------------------------------------------------------------ accounting
    @property
    def has_local_stores(self) -> bool:
        """Whether the per-core second level is enabled."""
        return self.local_stores is not None

    @property
    def version(self) -> int:
        """Hierarchy state version (for stale-priority detection).

        Covers both levels: the shared residency's membership version plus a
        local-store counter, so dynamic policies whose scores depend on
        per-core stores re-validate when either level moved.
        """
        return self.residency.version + self._local_version

    def task_missing_bytes(self, task: TaskDescriptor) -> int:
        """Bytes the task would have to fetch if dispatched right now."""
        return self.residency.missing_bytes(task.touched_tiles())

    def task_missing_local_bytes(self, task: TaskDescriptor,
                                 core_index: int) -> int:
        """Bytes a core's local store would have to fill for this task (0
        without local stores)."""
        if self.local_stores is None:
            return 0
        return self.local_stores[core_index].missing_bytes(task.touched_tiles())

    def task_local_resident_bytes(self, task: TaskDescriptor,
                                  core_index: int) -> int:
        """Bytes of the task's footprint a core's store already holds."""
        if self.local_stores is None:
            return 0
        return self.local_stores[core_index].resident_footprint_bytes(
            task.touched_tiles())

    def _account_local(self, footprint: List[TileAccess],
                       writes: List[TileAccess],
                       core_index: int) -> Tuple[float, float, float]:
        """Second-level accounting of one task on its assigned core.

        Returns ``(local_hit, shared_fill, c2c)`` bytes.  Shared-level
        evictions invalidate local copies first (inclusion), then the
        footprint is classified and brought resident, and finally the
        written tiles are invalidated in the sibling stores (write-through
        coherence: a writer owns the only local copy).
        """
        stores = self.local_stores
        for victim in self.residency.last_evicted:
            for store in stores:
                store.invalidate(victim)
        store = stores[core_index]
        tile_bytes = store.tile_bytes
        local_hit = shared_fill = c2c = 0.0
        for access in footprint:
            if store.is_resident(access):
                local_hit += tile_bytes
            elif any(other.is_resident(access) for other in stores
                     if other is not store):
                c2c += tile_bytes
            else:
                shared_fill += tile_bytes
        store.touch(footprint)
        for access in writes:
            for other in stores:
                if other is not store:
                    other.invalidate(access)
        self._local_version += 1
        return local_hit, shared_fill, c2c

    def account(self, task: TaskDescriptor,
                core_index: int = 0) -> TaskMemoryEvent:
        """Account one dispatched task; returns its data-movement record.

        ``core_index`` names the core the scheduler assigned the task to;
        it selects the local store of the second level and is ignored by
        the single-level model.
        """
        if self._flushed:
            raise RuntimeError("memory hierarchy already flushed; build a new "
                               "one per schedule")
        if not (0 <= core_index < self.num_cores):
            raise ValueError(f"core index {core_index} out of range for "
                             f"{self.num_cores} cores")
        reads, writes = task.read_tiles(), task.write_tiles()
        refill, compulsory, spill, writeback = self.residency.touch(reads, writes)
        stall = self.bandwidth.stall_cycles(spill)
        flops = task_flops(task, self.tile)
        tile_bytes = self.residency.tile_bytes
        onchip_bytes = (len(reads) + len(writes)) * tile_bytes
        local_hit = shared_fill = c2c = transfer_cycles = 0.0
        if self.local_stores is not None:
            footprint: List[TileAccess] = []
            for access in reads + writes:
                if access not in footprint:
                    footprint.append(access)
            local_hit, shared_fill, c2c = self._account_local(
                footprint, writes, core_index)
            transfer_bytes = shared_fill + c2c
            if transfer_bytes > 0 and self.onchip_bw_bytes_per_cycle > 0:
                transfer_cycles = transfer_bytes / self.onchip_bw_bytes_per_cycle
            # The extra movement through the shared SRAM costs on-chip
            # access energy on top of the task's own operand accesses.
            onchip_bytes += transfer_bytes
        energy = self.energy.task_energy_j(flops, onchip_bytes,
                                           refill + writeback)
        event = TaskMemoryEvent(task_id=task.task_id, refill_bytes=refill,
                                compulsory_bytes=compulsory,
                                spill_refill_bytes=spill,
                                writeback_bytes=writeback, stall_cycles=stall,
                                energy_j=energy, flops=flops,
                                local_hit_bytes=local_hit,
                                shared_to_local_bytes=shared_fill,
                                c2c_bytes=c2c,
                                local_transfer_cycles=transfer_cycles,
                                onchip_bytes=onchip_bytes)
        self.events.append(event)
        self.total_flops += flops
        self.total_energy_j += energy
        self.total_stall_cycles += stall
        self.compulsory_bytes += compulsory
        self.spill_bytes += spill
        self.writeback_bytes += writeback
        self.local_hit_bytes += local_hit
        self.shared_to_local_bytes += shared_fill
        self.c2c_bytes += c2c
        self.local_transfer_cycles += transfer_cycles
        return event

    def finish(self) -> float:
        """Flush dirty tiles at the end of the schedule; returns the bytes."""
        if self._flushed:
            return 0.0
        self._flushed = True
        writeback = self.residency.flush()
        self.flush_writeback_bytes = writeback
        self.writeback_bytes += writeback
        self.total_energy_j += self.energy.task_energy_j(0.0, 0.0, writeback)
        return writeback

    # -------------------------------------------------------------- totals
    @property
    def traffic_bytes(self) -> float:
        """Total off-chip traffic: all refills plus all writebacks."""
        return self.compulsory_bytes + self.spill_bytes + self.writeback_bytes

    def arithmetic_intensity(self) -> float:
        """Flops per byte of off-chip traffic (0.0 when nothing moved)."""
        traffic = self.traffic_bytes
        return self.total_flops / traffic if traffic > 0 else 0.0

    def gflops_per_watt(self) -> float:
        """Energy efficiency of the schedule (flops per nJ).

        GFLOPS/W is flops-per-second over joules-per-second, so the
        schedule's wall time cancels and the ratio is ``flops / J / 1e9``.
        """
        if self.total_energy_j <= 0:
            return 0.0
        return self.total_flops / self.total_energy_j / 1e9

    def local_hit_rate(self) -> float:
        """Fraction of local-level footprint bytes served without a transfer
        (0.0 when the second level is disabled or nothing was touched)."""
        touched = self.local_hit_bytes + self.shared_to_local_bytes + self.c2c_bytes
        return self.local_hit_bytes / touched if touched > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Whole-schedule data-movement totals for stats rows.

        The local-store keys are present only when the per-core second level
        is enabled, so single-level stats stay byte-identical to the
        single-level model's.
        """
        totals = {
            "offchip_traffic_bytes": self.traffic_bytes,
            "compulsory_bytes": self.compulsory_bytes,
            "spill_bytes": self.spill_bytes,
            "writeback_bytes": self.writeback_bytes,
            "stall_cycles": self.total_stall_cycles,
            "energy_j": self.total_energy_j,
            "total_flops": self.total_flops,
            "arithmetic_intensity": self.arithmetic_intensity(),
            "gflops_per_w": self.gflops_per_watt(),
            "peak_resident_bytes": float(self.residency.peak_resident_bytes),
            "on_chip_capacity_bytes": self.residency.capacity_bytes,
            "bandwidth_gbs": self.bandwidth.interface.bandwidth_gbytes_per_sec,
        }
        if self.local_stores is not None:
            totals.update({
                "local_store_kb": self.local_store_kb,
                "local_hit_bytes": self.local_hit_bytes,
                "shared_to_local_bytes": self.shared_to_local_bytes,
                "c2c_bytes": self.c2c_bytes,
                "local_hit_rate": self.local_hit_rate(),
                "local_transfer_cycles": self.local_transfer_cycles,
                "peak_local_resident_bytes": float(max(
                    store.peak_resident_bytes for store in self.local_stores)),
            })
        return totals
