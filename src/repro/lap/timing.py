"""Timing models: decouple task cycle counts from functional execution.

The LAC runs its kernels in lock step, so the cycle count of a tile task is
a pure function of its (kind, tile shapes, precision) -- not of the tile
*values*.  The runtime exploits that through a timing model:

``functional``
    every task is executed on the cycle-level simulator; the cycle count is
    the simulator's counter delta and the tile data is always exact.
``memoized``
    the first task of each (kind, shapes, precision, scaling) signature runs
    functionally and its cycle count is cached; every later task with the
    same signature is charged the cached count without touching the
    simulator.  Large graphs (e.g. a 4096^2 Cholesky at tile 128) then
    schedule in seconds instead of hours.  With ``verify=True`` the runtime
    applies a fast NumPy reference update for memoized tasks so that the
    factors stay numerically exact and residual verification is retained;
    with ``verify=False`` the tile data goes stale after the warm-up runs
    and residuals are unavailable.

The model object also records warm-up wall time per signature, which lets a
benchmark compare a memoized schedule against a (measured, per-signature)
estimate of the full functional path without paying for it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple, Union

from repro.lap.taskgraph import TaskDescriptor

#: Cache signature of one task: (kind, tile shapes, precision, unit-alpha,
#: transpose) -- everything that selects a kernel code path.
TaskSignature = Tuple


def task_signature(task: TaskDescriptor, shapes: Tuple, precision: str) -> TaskSignature:
    """Signature under which a task's cycle count is memoizable."""
    return (task.kind.value, shapes, precision, task.alpha == 1.0,
            bool(task.transpose_b))


def compose_task_cycles(compute_cycles: float, stall_cycles: float,
                        overlap_fraction: float = 0.0,
                        local_transfer_cycles: float = 0.0) -> float:
    """Compose compute cycles with data-movement cycles into one duration.

    ``stall_cycles`` is the off-chip transfer time of the spill refills the
    task caused (:class:`repro.lap.memory.BandwidthModel`); compulsory
    streaming is assumed fully overlapped by the LAP's double buffering and
    never appears here.  ``local_transfer_cycles`` is the shared-to-local
    movement of the two-level hierarchy (:class:`repro.lap.memory.LocalStore`
    fills through the on-chip bandwidth); it defaults to 0 so single-level
    callers are unchanged.  ``overlap_fraction`` models partial prefetching
    of both terms under compute (0 = fully serialised, the conservative
    default; 1 = fully hidden).
    """
    if compute_cycles < 0 or stall_cycles < 0 or local_transfer_cycles < 0:
        raise ValueError("cycle counts must be non-negative")
    if not (0.0 <= overlap_fraction <= 1.0):
        raise ValueError("overlap fraction must lie in [0, 1]")
    return (compute_cycles
            + (stall_cycles + local_transfer_cycles) * (1.0 - overlap_fraction))


def decompose_task_cycles(compute_cycles: float, stall_cycles: float,
                          overlap_fraction: float = 0.0,
                          local_transfer_cycles: float = 0.0) -> Dict[str, float]:
    """Split one task's duration into its attributable cycle components.

    The exact inverse view of :func:`compose_task_cycles`: the returned
    ``compute`` / ``spill_stall`` / ``transfer`` components sum to the
    composed duration (``spill_stall`` and ``transfer`` are the *visible*
    parts after ``overlap_fraction`` hides their complement under compute),
    and ``hidden`` reports the movement cycles prefetching absorbed.  The
    observability layer attaches this dictionary to every task span so
    traces and :class:`repro.obs.attribution.CycleAttribution` agree by
    construction.
    """
    visible = 1.0 - overlap_fraction
    spill_stall = stall_cycles * visible
    transfer = local_transfer_cycles * visible
    total = compose_task_cycles(compute_cycles, stall_cycles,
                                overlap_fraction, local_transfer_cycles)
    return {
        "compute": compute_cycles,
        "spill_stall": spill_stall,
        "transfer": transfer,
        "hidden": (stall_cycles + local_transfer_cycles) - spill_stall - transfer,
        "total": total,
    }


class TimingModel:
    """Base timing model: how a scheduled task obtains its cycle count.

    ``ctx`` is the runtime's execution context, providing ``functional(task)``
    (simulate on the assigned core, update tiles, return cycles),
    ``reference(task)`` (NumPy tile update, no cycles) and
    ``signature(task)``.
    """

    name = "functional"

    def keeps_data(self, verify: bool) -> bool:
        """Whether tile data stays numerically valid under this model."""
        return True

    def task_cycles(self, task: TaskDescriptor, ctx, verify: bool) -> int:
        raise NotImplementedError


class FunctionalTiming(TimingModel):
    """Run every task on the simulator (the pre-refactor behaviour)."""

    name = "functional"

    def task_cycles(self, task: TaskDescriptor, ctx, verify: bool) -> int:
        return ctx.functional(task)


class MemoizedTiming(TimingModel):
    """Memoize per-signature cycle counts after one functional run each."""

    name = "memoized"

    def __init__(self) -> None:
        self._cycles: Dict[TaskSignature, int] = {}
        #: Wall-clock seconds of the warm-up run per signature.
        self.warm_seconds_by_signature: Dict[TaskSignature, float] = {}
        #: Tasks charged per signature since construction / reset_stats().
        self.task_counts: Dict[TaskSignature, int] = {}
        self.warm_runs = 0
        self.hits = 0

    def keeps_data(self, verify: bool) -> bool:
        return bool(verify)

    def reset_stats(self) -> None:
        """Zero the hit/warm counters (the cycle cache is kept)."""
        self.task_counts = {}
        self.warm_runs = 0
        self.hits = 0

    def bulk_charge(self, signature: TaskSignature, count: int) -> None:
        """Charge ``count`` cache hits of one signature in a single call.

        The fast scheduler loop (:mod:`repro.lap.fastpath`) resolves cycle
        counts through a per-group table instead of calling
        :meth:`task_cycles` per task; it reconciles the hit/count statistics
        here so ``hits`` / ``task_counts`` /
        :meth:`estimated_functional_seconds` match a per-task run exactly.
        """
        if count <= 0:
            return
        self.task_counts[signature] = self.task_counts.get(signature, 0) + count
        self.hits += count

    @property
    def warm_seconds(self) -> float:
        """Total wall time spent in functional warm-up runs."""
        return sum(self.warm_seconds_by_signature.values())

    def estimated_functional_seconds(self) -> float:
        """Measured-cost estimate of running every charged task functionally.

        Sums, over every task this model has scheduled, the wall time of the
        functional warm-up run of that task's signature -- i.e. what the
        ``functional`` timing model would have cost, estimated from real
        measurements instead of being paid.
        """
        return sum(count * self.warm_seconds_by_signature.get(sig, 0.0)
                   for sig, count in self.task_counts.items())

    def task_cycles(self, task: TaskDescriptor, ctx, verify: bool) -> int:
        signature = ctx.signature(task)
        self.task_counts[signature] = self.task_counts.get(signature, 0) + 1
        cached = self._cycles.get(signature)
        if cached is None:
            started = time.perf_counter()
            cycles = ctx.functional(task)
            self.warm_seconds_by_signature[signature] = time.perf_counter() - started
            self._cycles[signature] = cycles
            self.warm_runs += 1
            return cycles
        self.hits += 1
        if verify:
            ctx.reference(task)
        return cached


#: Registry of timing models by CLI/runner name.
TIMING_MODELS: Dict[str, type] = {
    FunctionalTiming.name: FunctionalTiming,
    MemoizedTiming.name: MemoizedTiming,
}


def timing_names() -> List[str]:
    """Names accepted by ``LAPRuntime(timing=...)`` and the sweep CLI."""
    return sorted(TIMING_MODELS)


def get_timing_model(timing: Union[str, TimingModel, None]) -> TimingModel:
    """Resolve a timing-model name (or pass an instance through)."""
    if timing is None:
        return FunctionalTiming()
    if isinstance(timing, TimingModel):
        return timing
    try:
        return TIMING_MODELS[str(timing)]()
    except KeyError:
        raise ValueError(f"unknown timing model '{timing}'; known models: "
                         f"{', '.join(timing_names())}") from None
