"""Host-side programming model for the LAP.

The dissertation's programming environment (Figure 1.2) layers a standard
linear-algebra library on top of the accelerator: the host library breaks a
large routine into *atomic* block operations (e.g. 128 x 128 GEMM, TRSM,
SYRK, Cholesky tiles), passes each to the LAP through a thin device-driver
interface (operation code + operand locations), and the LAP raises an
interrupt when the result block is ready.  Invocation is coarse-grained and
asynchronous so that the host stays busy.

This module models that software stack:

* :class:`TaskDescriptor` -- one atomic operation handed to the accelerator
  (the "command packet" of the driver interface);
* :class:`AlgorithmsByBlocks` -- the host-library layer that decomposes a
  large GEMM or Cholesky factorization into a dependency-ordered list of
  tile tasks;
* :class:`LAPRuntime` -- the driver/dispatcher that executes tasks on the
  cores of a :class:`repro.lap.chip.LinearAlgebraProcessor`, tracking
  per-core busy time so that the effect of task-level parallelism and load
  imbalance can be observed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.cholesky import lac_cholesky
from repro.kernels.gemm import lac_gemm
from repro.kernels.syrk import lac_syrk
from repro.kernels.trsm import lac_trsm
from repro.lap.chip import LinearAlgebraProcessor


class TaskKind(enum.Enum):
    """Atomic operations the LAP accepts from the host."""

    GEMM = "gemm"                  #: C_tile += alpha * A_tile @ op(B_tile)
    SYRK = "syrk"                  #: C_tile += alpha * A_tile @ A_tile^T (lower)
    TRSM = "trsm"                  #: B_tile := L_tile^{-1} B_tile
    TRSM_RIGHT_T = "trsm_rt"       #: B_tile := B_tile @ L_tile^{-T}
    CHOLESKY = "chol"              #: A_tile := chol(A_tile)


@dataclass
class TaskDescriptor:
    """One atomic tile operation (the command-packet abstraction).

    ``inputs`` and ``output`` are tile coordinates ``(block_row, block_col)``
    into the blocked operand; ``depends_on`` lists task ids that must complete
    first (the host library serialises dependent tiles, everything else may
    run on any idle core).  ``alpha`` scales the product of update tasks
    (``-1`` for the trailing updates of a factorization) and ``transpose_b``
    requests the second operand transposed, which the LAC performs over its
    diagonal PEs at no extra bandwidth cost.
    """

    task_id: int
    kind: TaskKind
    output: Tuple[int, int]
    inputs: List[Tuple[int, int]] = field(default_factory=list)
    depends_on: List[int] = field(default_factory=list)
    alpha: float = 1.0
    transpose_b: bool = False

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task ids must be non-negative")


class AlgorithmsByBlocks:
    """Host-library decomposition of large problems into tile task graphs."""

    def __init__(self, tile: int):
        if tile < 4:
            raise ValueError("tile size must be at least the core dimension")
        self.tile = tile
        self._ids = itertools.count()

    def _next_id(self) -> int:
        return next(self._ids)

    def gemm_tasks(self, m: int, n: int, k: int) -> List[TaskDescriptor]:
        """Task list for C += A B with independent C tiles.

        Tiles of C are independent of each other; the ``k`` accumulation for a
        given C tile is expressed as a chain of dependent GEMM tasks so that
        the accumulator tile is never written concurrently.
        """
        t = self.tile
        self._check_blocking(m, n, k)
        tasks: List[TaskDescriptor] = []
        for bi in range(m // t):
            for bj in range(n // t):
                previous: Optional[int] = None
                for bk in range(k // t):
                    task = TaskDescriptor(
                        task_id=self._next_id(), kind=TaskKind.GEMM,
                        output=(bi, bj), inputs=[(bi, bk), (bk, bj)],
                        depends_on=[previous] if previous is not None else [])
                    tasks.append(task)
                    previous = task.task_id
        return tasks

    def cholesky_tasks(self, n: int) -> List[TaskDescriptor]:
        """Task list for a right-looking blocked Cholesky factorization.

        The classic dependency pattern: CHOL(j,j) -> TRSM(i,j) for i>j ->
        SYRK/GEMM updates of the trailing tiles.
        """
        t = self.tile
        if n % t != 0:
            raise ValueError("matrix size must be a multiple of the tile size")
        nb = n // t
        tasks: List[TaskDescriptor] = []
        # written[(i, j)] is the id of the last task that wrote tile (i, j).
        written: Dict[Tuple[int, int], int] = {}
        for j in range(nb):
            chol = TaskDescriptor(self._next_id(), TaskKind.CHOLESKY, output=(j, j),
                                  inputs=[(j, j)],
                                  depends_on=[written[(j, j)]] if (j, j) in written else [])
            tasks.append(chol)
            written[(j, j)] = chol.task_id
            for i in range(j + 1, nb):
                deps = [chol.task_id]
                if (i, j) in written:
                    deps.append(written[(i, j)])
                trsm = TaskDescriptor(self._next_id(), TaskKind.TRSM_RIGHT_T, output=(i, j),
                                      inputs=[(j, j), (i, j)], depends_on=deps)
                tasks.append(trsm)
                written[(i, j)] = trsm.task_id
            for i in range(j + 1, nb):
                for k in range(j + 1, i + 1):
                    deps = [written[(i, j)], written[(k, j)]]
                    if (i, k) in written:
                        deps.append(written[(i, k)])
                    kind = TaskKind.SYRK if i == k else TaskKind.GEMM
                    update = TaskDescriptor(self._next_id(), kind, output=(i, k),
                                            inputs=[(i, j), (k, j)],
                                            depends_on=sorted(set(deps)),
                                            alpha=-1.0, transpose_b=True)
                    tasks.append(update)
                    written[(i, k)] = update.task_id
        return tasks

    def _check_blocking(self, *dims: int) -> None:
        for d in dims:
            if d % self.tile != 0:
                raise ValueError(f"dimension {d} is not a multiple of the tile size {self.tile}")


@dataclass
class TaskExecution:
    """Record of one executed task (which core ran it, and when)."""

    task_id: int
    kind: TaskKind
    core_index: int
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class LAPRuntime:
    """Dispatches tile tasks onto the cores of a LAP.

    A simple list scheduler: tasks become ready when all their dependencies
    have completed; a ready task is assigned to the earliest-available core.
    Execution of each task is *functional* (the tile data is updated through
    the LAC simulator) and the per-task cycle counts come from the simulator's
    counters, so the resulting makespan reflects real kernel costs.
    """

    def __init__(self, lap: LinearAlgebraProcessor, tile: int):
        self.lap = lap
        self.tile = tile
        self.library = AlgorithmsByBlocks(tile)
        self.executions: List[TaskExecution] = []

    # ------------------------------------------------------------ execution
    def _run_task(self, task: TaskDescriptor, core_index: int, tiles: Dict) -> int:
        """Execute one task on one core; returns the cycles it consumed."""
        core = self.lap.cores[core_index]
        before = core.counters.cycles
        if task.kind is TaskKind.GEMM:
            (ci, cj), (ai, ak), (bk, bj) = task.output, task.inputs[0], task.inputs[1]
            b_tile = tiles["B"][(bk, bj)]
            if task.transpose_b:
                b_tile = b_tile.T
            result = lac_gemm(core, tiles["C"][(ci, cj)],
                              task.alpha * tiles["A"][(ai, ak)], b_tile)
            tiles["C"][(ci, cj)] = result.output
        elif task.kind is TaskKind.SYRK:
            (ci, cj) = task.output
            (ai, aj) = task.inputs[0]
            if task.alpha == 1.0 and not task.transpose_b:
                result = lac_syrk(core, tiles["C"][(ci, cj)], tiles["A"][(ai, aj)])
            else:
                # Scaled (e.g. subtracting) updates run through the GEMM path so
                # the full symmetric tile stays consistent for later tasks.
                a_tile = tiles["A"][(ai, aj)]
                result = lac_gemm(core, tiles["C"][(ci, cj)], task.alpha * a_tile, a_tile.T)
            tiles["C"][(ci, cj)] = result.output
        elif task.kind is TaskKind.TRSM:
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            result = lac_trsm(core, tiles["L"][(li, lj)], tiles["B"][(bi, bj)])
            tiles["B"][(bi, bj)] = result.output
        elif task.kind is TaskKind.TRSM_RIGHT_T:
            # B := B L^{-T}  <=>  solve L X = B^T and transpose back.
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            l_tile = np.tril(tiles["L"][(li, lj)])
            result = lac_trsm(core, l_tile, tiles["B"][(bi, bj)].T)
            tiles["B"][(bi, bj)] = result.output.T
        elif task.kind is TaskKind.CHOLESKY:
            (ai, aj) = task.output
            result = lac_cholesky(core, tiles["A"][(ai, aj)])
            tiles["A"][(ai, aj)] = result.output
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown task kind {task.kind}")
        return core.counters.cycles - before

    def execute(self, tasks: Sequence[TaskDescriptor], tiles: Dict) -> Dict[str, object]:
        """Run a task graph to completion; returns makespan and per-core busy time.

        ``tiles`` maps operand names ("A", "B", "C", "L") to dictionaries of
        tile arrays keyed by block coordinates; tasks update them in place.
        """
        remaining = {t.task_id: t for t in tasks}
        completed_at: Dict[int, int] = {}
        core_free_at = [0] * len(self.lap.cores)
        self.executions = []

        while remaining:
            ready = [t for t in remaining.values()
                     if all(d in completed_at for d in t.depends_on)]
            if not ready:
                raise RuntimeError("task graph deadlock: circular dependencies")
            # Earliest-finishing-dependency first keeps the schedule compact.
            ready.sort(key=lambda t: max([completed_at[d] for d in t.depends_on], default=0))
            task = ready[0]
            core_index = min(range(len(core_free_at)), key=lambda i: core_free_at[i])
            earliest_start = max([completed_at[d] for d in task.depends_on], default=0)
            start = max(core_free_at[core_index], earliest_start)
            cycles = self._run_task(task, core_index, tiles)
            end = start + cycles
            core_free_at[core_index] = end
            completed_at[task.task_id] = end
            self.executions.append(TaskExecution(task.task_id, task.kind, core_index,
                                                 start, end))
            del remaining[task.task_id]

        makespan = max(core_free_at) if core_free_at else 0
        busy = [sum(e.cycles for e in self.executions if e.core_index == i)
                for i in range(len(self.lap.cores))]
        return {
            "makespan_cycles": makespan,
            "per_core_busy_cycles": busy,
            "parallel_efficiency": (sum(busy) / (makespan * len(busy))) if makespan else 0.0,
            "tasks_executed": len(self.executions),
        }

    # ------------------------------------------------------- whole problems
    def run_blocked_gemm(self, n: int, rng: np.random.Generator) -> Dict[str, object]:
        """Decompose, schedule and verify one ``n x n`` GEMM end to end.

        Builds seeded operands, tiles them, executes the task graph on the
        LAP cores and extends the scheduler stats with a ``residual`` (the
        max absolute error against the numpy reference), so sweep rows can
        assert functional correctness alongside makespan and efficiency.
        """
        a, b = rng.random((n, n)), rng.random((n, n))
        c = rng.random((n, n))
        tiles = {
            "A": self.tile_matrix(a, self.tile),
            "B": self.tile_matrix(b, self.tile),
            "C": self.tile_matrix(c, self.tile),
        }
        tasks = self.library.gemm_tasks(n, n, n)
        stats = self.execute(tasks, tiles)
        result = self.untile_matrix(tiles["C"], self.tile)
        stats["residual"] = float(np.max(np.abs(result - (c + a @ b))))
        return stats

    def run_blocked_cholesky(self, n: int, rng: np.random.Generator) -> Dict[str, object]:
        """Decompose, schedule and verify one ``n x n`` Cholesky end to end.

        The seeded operand is made symmetric positive definite; all operand
        names alias one tile dictionary because the factorization updates A
        in place.  The returned stats carry the ``residual`` of
        ``L L^T - A``.
        """
        g = rng.random((n, n))
        a = g @ g.T + n * np.eye(n)
        a_tiles = self.tile_matrix(a, self.tile)
        tiles = {"A": a_tiles, "B": a_tiles, "C": a_tiles, "L": a_tiles}
        tasks = self.library.cholesky_tasks(n)
        stats = self.execute(tasks, tiles)
        factor = np.tril(self.untile_matrix(a_tiles, self.tile))
        stats["residual"] = float(np.max(np.abs(factor @ factor.T - a)))
        return stats

    # ------------------------------------------------------------ helpers
    @staticmethod
    def tile_matrix(matrix: np.ndarray, tile: int) -> Dict[Tuple[int, int], np.ndarray]:
        """Split a matrix into a dictionary of tile blocks."""
        matrix = np.asarray(matrix, dtype=float)
        rows, cols = matrix.shape
        if rows % tile or cols % tile:
            raise ValueError("matrix dimensions must be multiples of the tile size")
        return {(i // tile, j // tile): matrix[i:i + tile, j:j + tile].copy()
                for i in range(0, rows, tile) for j in range(0, cols, tile)}

    @staticmethod
    def untile_matrix(tiles: Dict[Tuple[int, int], np.ndarray], tile: int) -> np.ndarray:
        """Reassemble a matrix from its tile dictionary."""
        if not tiles:
            raise ValueError("no tiles to assemble")
        max_i = max(i for i, _ in tiles) + 1
        max_j = max(j for _, j in tiles) + 1
        out = np.zeros((max_i * tile, max_j * tile), dtype=float)
        for (i, j), block in tiles.items():
            out[i * tile:(i + 1) * tile, j * tile:(j + 1) * tile] = block
        return out
