"""Host-side programming model for the LAP: the layered task-graph runtime.

The dissertation's programming environment (Figure 1.2) layers a standard
linear-algebra library on top of the accelerator: the host library breaks a
large routine into *atomic* block operations (e.g. 128 x 128 GEMM, TRSM,
SYRK, Cholesky tiles), passes each to the LAP through a thin device-driver
interface (operation code + operand locations), and the LAP raises an
interrupt when the result block is ready.  Invocation is coarse-grained and
asynchronous so that the host stays busy.

The runtime is layered (TaskGraph -> Scheduler -> TimingModel -> LAP):

* :mod:`repro.lap.taskgraph` -- the IR: :class:`TaskKind`,
  :class:`TaskDescriptor`, :class:`TaskGraph` and the
  :class:`AlgorithmsByBlocks` decompositions (GEMM, Cholesky, LU, tiled QR);
* :mod:`repro.lap.policies` -- pluggable scheduling policies (greedy
  earliest-core, critical-path priority, locality-aware, memory-aware)
  driving an event-driven ready-heap loop (O(V log V + E) for the static
  policies, instead of the old O(V^2) rescan);
* :mod:`repro.lap.timing` -- timing models: ``functional`` executes every
  task on the cycle-level simulator, ``memoized`` caches per-(kind, shape,
  precision) cycle counts after one functional run so that large graphs
  schedule in seconds;
* :mod:`repro.lap.memory` -- the unified memory-hierarchy layer: an LRU
  tile-residency model over the shared on-chip capacity, optionally topped
  by per-core local stores (``local_store_kb``, the two-level hierarchy),
  plus a bandwidth model that turns spill refills into stall cycles and a
  per-task energy model (pJ/flop + pJ/byte); every schedule reports
  off-chip traffic, stalls and GFLOPS/W alongside the makespan, and the
  two-level model splits on-chip movement into local-hit / core-to-core /
  shared-to-local traffic;
* :class:`LAPRuntime` (this module) -- the driver/dispatcher that binds the
  four to the cores of a :class:`repro.lap.chip.LinearAlgebraProcessor`,
  optionally with heterogeneous per-core clock frequencies.

``AlgorithmsByBlocks``, ``TaskDescriptor`` and ``TaskKind`` are re-exported
here for backwards compatibility with pre-refactor imports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kernels.blocked_factorizations import lac_lu_blocked, lac_qr_blocked
from repro.kernels.cholesky import lac_cholesky
from repro.kernels.gemm import lac_gemm
from repro.kernels.qr import lac_apply_reflectors
from repro.kernels.syrk import lac_syrk
from repro.kernels.trsm import lac_trsm
from repro.lap.chip import LinearAlgebraProcessor
from repro.lap.fastpath import _POLICY_CODES, ScheduleTrace, execute_fast
from repro.lap.memory import MemoryHierarchy
from repro.lap.policies import SchedulerPolicy, get_policy
from repro.lap.taskgraph import (AlgorithmsByBlocks, TaskDescriptor, TaskGraph,
                                 TaskKind)
from repro.lap.timing import (TimingModel, compose_task_cycles,
                              decompose_task_cycles, get_timing_model,
                              task_signature)
from repro.obs.attribution import CycleAttribution, idle_gaps
from repro.obs.tracer import Tracer
from repro.reference.factorizations import (ref_apply_reflectors,
                                            ref_householder_qr_factored,
                                            ref_lu_nopivot)

__all__ = [
    "AlgorithmsByBlocks", "LAPRuntime", "TaskDescriptor", "TaskExecution",
    "TaskGraph", "TaskKind",
]


@dataclass
class TaskExecution:
    """Record of one executed task (which core ran it, and when).

    Times are in cycles of the reference clock (the chip frequency); with
    homogeneous cores and no bandwidth stalls they are exact integers.
    ``stall_cycles`` / ``refill_bytes`` / ``energy_j`` carry the task's
    data-movement accounting when the memory hierarchy is enabled;
    ``compute_cycles`` is the pre-movement duration (what the cycle
    decomposition attributes to compute), ``spill_bytes`` the capacity-miss
    part of ``refill_bytes`` and ``transfer_bytes`` the shared-to-local plus
    core-to-core movement of the two-level hierarchy.
    """

    task_id: int
    kind: TaskKind
    core_index: int
    start_cycle: float
    end_cycle: float
    stall_cycles: float = 0.0
    refill_bytes: float = 0.0
    energy_j: float = 0.0
    local_transfer_cycles: float = 0.0
    local_hit_bytes: float = 0.0
    compute_cycles: float = 0.0
    spill_bytes: float = 0.0
    transfer_bytes: float = 0.0
    #: Dirty-eviction bytes this task's fetches forced; with
    #: ``refill_bytes`` it gives the task's off-chip bytes, the third
    #: factor of the per-task energy triple schedule replay re-keys.
    writeback_bytes: float = 0.0

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle


class _ExecutionContext:
    """What a :class:`TimingModel` may do with a scheduled task.

    Bound to one ``execute()`` call; ``core_index`` is set by the scheduler
    loop before each task is timed.
    """

    def __init__(self, runtime: "LAPRuntime", tiles: Dict):
        self._runtime = runtime
        self._tiles = tiles
        self.core_index = 0
        self.precision = runtime.lap.config.precision.value

    def functional(self, task: TaskDescriptor) -> int:
        """Run the task on the assigned core's simulator; returns cycles."""
        return self._runtime._run_task(task, self.core_index, self._tiles)

    def reference(self, task: TaskDescriptor) -> None:
        """Apply the task's NumPy reference update to the tiles (no cycles)."""
        self._runtime._run_task_reference(task, self._tiles)

    def signature(self, task: TaskDescriptor):
        """Memoization signature of the task (kind, shapes, precision, ...)."""
        return task_signature(task, self._runtime._task_shapes(task, self._tiles),
                              self.precision)


class LAPRuntime:
    """Dispatches tile tasks onto the cores of a LAP.

    Parameters
    ----------
    lap:
        The chip the task graphs run on.
    tile:
        Edge length of one square tile (a multiple of the core dimension).
    policy:
        Scheduling policy name or instance (see :mod:`repro.lap.policies`).
    timing:
        Timing model name or instance (see :mod:`repro.lap.timing`).
    core_frequencies_ghz:
        Optional per-core clock frequencies for heterogeneous-tile studies;
        defaults to the homogeneous chip frequency.  Scheduling then happens
        in reference-clock cycles (task cycles are scaled by
        ``f_ref / f_core``), where the reference clock is the chip frequency.
    memory:
        Data-movement accounting: ``True`` (default) simulates tile
        residency / bandwidth stalls / energy through a fresh
        :class:`repro.lap.memory.MemoryHierarchy` per ``execute()``;
        ``False`` disables it (compute-only scheduling, the pre-refactor
        behaviour).
    on_chip_kb:
        Override of the residency capacity in KiB (defaults to the chip's
        physical on-chip memory) -- the axis capacity sweeps shrink.
    bandwidth_gbs:
        Override of the sustained off-chip bandwidth in GB/s (defaults to
        the chip's off-chip interface).
    offchip_pj_per_byte:
        Override of the off-chip interface's access energy in pJ/byte (a
        DRAM-technology sweep axis; defaults to the chip interface's
        constant).  Only the energy/GFLOPS-per-W columns depend on it, so
        sweeps across it replay recorded schedules exactly.
    local_store_kb:
        Per-core local-store budget in KiB; enables the two-level hierarchy
        (a per-core :class:`repro.lap.memory.LocalStore` above the shared
        residency).  ``None`` (default) keeps the single-level model, whose
        schedules and traffic are byte-identical to the pre-local-store
        runtime.
    stall_overlap:
        Fraction of the data-movement cycles (spill-refill stalls and
        shared-to-local transfers) hidden under compute by prefetching, in
        [0, 1] (see :func:`repro.lap.timing.compose_task_cycles`); 0
        (default) fully serialises them, 1 hides them entirely.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`: every executed task then
        becomes a span on its core's track (args carrying the cycle
        decomposition and data-movement bytes), scheduler-idle gaps become
        ``idle`` spans, and spill/stall counters accumulate timestamped
        series.  ``None`` (default) and a disabled tracer record nothing
        and leave schedules byte-identical to an uninstrumented run.
    fast:
        Route eligible ``execute()`` calls through the inlined scheduler
        loop of :mod:`repro.lap.fastpath` (byte-identical schedules, stats
        and attribution; see the equivalence suite).  Eligible means: the
        tasks are a :class:`TaskGraph`, the policy is one of the five stock
        policy classes (not a subclass) and no enabled tracer is attached;
        anything else silently takes the reference loop, and ``last_fast``
        reports which path the most recent call took.
    """

    def __init__(self, lap: LinearAlgebraProcessor, tile: int,
                 policy: Union[str, SchedulerPolicy, None] = "greedy",
                 timing: Union[str, TimingModel, None] = "functional",
                 core_frequencies_ghz: Optional[Sequence[float]] = None,
                 memory: bool = True,
                 on_chip_kb: Optional[float] = None,
                 bandwidth_gbs: Optional[float] = None,
                 local_store_kb: Optional[float] = None,
                 stall_overlap: float = 0.0,
                 tracer: Optional[Tracer] = None,
                 fast: bool = False,
                 offchip_pj_per_byte: Optional[float] = None):
        self.lap = lap
        self.tile = tile
        self.library = AlgorithmsByBlocks(tile, nr=lap.config.nr)
        self.policy = get_policy(policy)
        self.timing = get_timing_model(timing)
        self.memory_enabled = bool(memory)
        self.on_chip_kb = on_chip_kb
        self.bandwidth_gbs = bandwidth_gbs
        self.local_store_kb = (None if local_store_kb is None
                               else float(local_store_kb))
        #: Off-chip access-energy override in pJ/byte (a DRAM-technology
        #: sweep axis); ``None`` keeps the chip interface's constant.  Only
        #: the energy column depends on it, never the schedule.
        self.offchip_pj_per_byte = (None if offchip_pj_per_byte is None
                                    else float(offchip_pj_per_byte))
        if self.offchip_pj_per_byte is not None and self.offchip_pj_per_byte < 0:
            raise ValueError("offchip_pj_per_byte must be non-negative")
        if not (0.0 <= stall_overlap <= 1.0):
            raise ValueError("stall_overlap must lie in [0, 1]")
        self.stall_overlap = float(stall_overlap)
        self.tracer = tracer
        self.fast = bool(fast)
        #: Whether the most recent ``execute()`` took the fast path.
        self.last_fast = False
        #: Memory hierarchy of the most recent ``execute()`` call (or None);
        #: named distinctly from the ``memory`` enable flag, which is stored
        #: as ``memory_enabled``.
        self.last_memory: Optional[MemoryHierarchy] = None
        #: Makespan of the most recent ``execute()`` call, in reference
        #: cycles (what :meth:`attribution` decomposes against).
        self.last_makespan: float = 0.0
        reference = lap.config.frequency_ghz
        if core_frequencies_ghz is None:
            frequencies = [reference] * len(lap.cores)
        else:
            frequencies = [float(f) for f in core_frequencies_ghz]
            if len(frequencies) != len(lap.cores):
                raise ValueError(f"core_frequencies_ghz has {len(frequencies)} "
                                 f"entries for {len(lap.cores)} cores")
            if min(frequencies) <= 0:
                raise ValueError("core frequencies must be positive")
        self.core_frequencies_ghz = frequencies
        self._homogeneous = all(f == reference for f in frequencies)
        self._executions: Optional[List[TaskExecution]] = []
        self._exec_rows: Optional[List[Tuple]] = None
        self._exec_build: Optional[Callable[[], List[TaskExecution]]] = None
        #: Graph of the most recent ``execute()`` call when it was a
        #: TaskGraph (lets schedule_trace derive per-task energy triples on
        #: the fast path, whose memory events are never materialised).
        self._last_graph: Optional[TaskGraph] = None

    @property
    def executions(self) -> List[TaskExecution]:
        """Per-task records of the most recent ``execute()`` call.

        The fast path records plain field tuples during the loop and this
        property materialises the :class:`TaskExecution` rows on first
        access, so a schedule that is only reduced to stats never pays for
        a million dataclass constructions.
        """
        if self._executions is None:
            build = self._exec_build
            if build is not None:
                self._executions = build()
            else:
                self._executions = [TaskExecution(*row)
                                    for row in self._exec_rows]
        return self._executions

    @executions.setter
    def executions(self, value: List[TaskExecution]) -> None:
        self._executions = value
        self._exec_rows = None
        self._exec_build = None

    # ------------------------------------------------------------ execution
    def _run_task(self, task: TaskDescriptor, core_index: int, tiles: Dict) -> int:
        """Execute one task on one core; returns the cycles it consumed."""
        core = self.lap.cores[core_index]
        before = core.counters.cycles
        t = self.tile
        if task.kind is TaskKind.GEMM:
            (ci, cj), (ai, ak), (bk, bj) = task.output, task.inputs[0], task.inputs[1]
            b_tile = tiles["B"][(bk, bj)]
            if task.transpose_b:
                b_tile = b_tile.T
            result = lac_gemm(core, tiles["C"][(ci, cj)],
                              task.alpha * tiles["A"][(ai, ak)], b_tile)
            tiles["C"][(ci, cj)] = result.output
        elif task.kind is TaskKind.SYRK:
            (ci, cj) = task.output
            (ai, aj) = task.inputs[0]
            if task.alpha == 1.0 and not task.transpose_b:
                result = lac_syrk(core, tiles["C"][(ci, cj)], tiles["A"][(ai, aj)])
            else:
                # Scaled (e.g. subtracting) updates run through the GEMM path so
                # the full symmetric tile stays consistent for later tasks.
                a_tile = tiles["A"][(ai, aj)]
                result = lac_gemm(core, tiles["C"][(ci, cj)], task.alpha * a_tile, a_tile.T)
            tiles["C"][(ci, cj)] = result.output
        elif task.kind is TaskKind.TRSM:
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            result = lac_trsm(core, tiles["L"][(li, lj)], tiles["B"][(bi, bj)])
            tiles["B"][(bi, bj)] = result.output
        elif task.kind is TaskKind.TRSM_RIGHT_T:
            # B := B L^{-T}  <=>  solve L X = B^T and transpose back.
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            l_tile = np.tril(tiles["L"][(li, lj)])
            result = lac_trsm(core, l_tile, tiles["B"][(bi, bj)].T)
            tiles["B"][(bi, bj)] = result.output.T
        elif task.kind is TaskKind.TRSM_LOWER:
            # B := unit_lower(L)^{-1} B (the U panels of a tiled LU).
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            unit_lower = np.tril(tiles["L"][(li, lj)], -1) + np.eye(t)
            result = lac_trsm(core, unit_lower, tiles["B"][(bi, bj)])
            tiles["B"][(bi, bj)] = result.output
        elif task.kind is TaskKind.TRSM_UPPER_RIGHT:
            # B := B U^{-1}  <=>  solve U^T X^T = B^T (U^T is lower triangular).
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            upper = np.triu(tiles["L"][(li, lj)])
            result = lac_trsm(core, upper.T, tiles["B"][(bi, bj)].T)
            tiles["B"][(bi, bj)] = result.output.T
        elif task.kind is TaskKind.CHOLESKY:
            (ai, aj) = task.output
            result = lac_cholesky(core, tiles["A"][(ai, aj)])
            tiles["A"][(ai, aj)] = result.output
        elif task.kind is TaskKind.LU:
            (ai, aj) = task.output
            result = lac_lu_blocked(core, tiles["A"][(ai, aj)])
            pivots = result.extra["pivots"]
            if any(p != i for i, p in enumerate(pivots)):
                raise ValueError(
                    "tile LU requires no pivoting across tiles; the operand "
                    "must be (e.g.) diagonally dominant so that every tile "
                    "pivot falls on the diagonal")
            tiles["A"][(ai, aj)] = result.output
        elif task.kind is TaskKind.GEQRT:
            (ai, aj) = task.output
            result = lac_qr_blocked(core, tiles["A"][(ai, aj)])
            tiles["A"][(ai, aj)] = result.output
            tiles.setdefault("TAU", {})[(ai, aj)] = result.extra["tau"]
        elif task.kind is TaskKind.TSQRT:
            # QR of [triu(R_jj); A_ij]: the top half's sub-diagonal stays
            # exactly zero, so the reflectors live entirely in tile (i, j) and
            # the GEQRT reflectors packed below the diagonal of (j, j) survive.
            (jj, ij) = task.inputs[0], task.output
            stacked = np.vstack([np.triu(tiles["A"][jj]), tiles["A"][ij]])
            result = lac_qr_blocked(core, stacked)
            tiles["A"][jj] = np.triu(result.output[:t]) + np.tril(tiles["A"][jj], -1)
            tiles["A"][ij] = result.output[t:]
            tiles.setdefault("TAU", {})[ij] = result.extra["tau"]
        elif task.kind is TaskKind.UNMQR:
            (jj, jk) = task.inputs[0], task.output
            result = lac_apply_reflectors(core, tiles["A"][jj],
                                          tiles["TAU"][jj], tiles["A"][jk])
            tiles["A"][jk] = result.output
        elif task.kind is TaskKind.TSMQR:
            # Apply the TSQRT reflectors to the block-row pair [C_jk; C_ik];
            # their top halves are unit vectors, so the packed form is a zero
            # block stacked on the reflector tile.
            (ij, jk, ik) = task.inputs[0], task.inputs[1], task.inputs[2]
            v_stacked = np.vstack([np.zeros((t, t)), tiles["A"][ij]])
            c_stacked = np.vstack([tiles["A"][jk], tiles["A"][ik]])
            result = lac_apply_reflectors(core, v_stacked, tiles["TAU"][ij],
                                          c_stacked)
            tiles["A"][jk] = result.output[:t]
            tiles["A"][ik] = result.output[t:]
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown task kind {task.kind}")
        return core.counters.cycles - before

    def _run_task_reference(self, task: TaskDescriptor, tiles: Dict) -> None:
        """NumPy reference update of one task (used by memoized verification).

        Mirrors :meth:`_run_task` numerically (same formulas, vectorised) so
        that a memoized-timing run with ``verify=True`` still produces exact
        factors and residuals.
        """
        t = self.tile
        if task.kind is TaskKind.GEMM:
            (ci, cj), (ai, ak), (bk, bj) = task.output, task.inputs[0], task.inputs[1]
            b_tile = tiles["B"][(bk, bj)]
            if task.transpose_b:
                b_tile = b_tile.T
            tiles["C"][(ci, cj)] = (tiles["C"][(ci, cj)]
                                    + (task.alpha * tiles["A"][(ai, ak)]) @ b_tile)
        elif task.kind is TaskKind.SYRK:
            (ci, cj) = task.output
            (ai, aj) = task.inputs[0]
            a_tile = tiles["A"][(ai, aj)]
            tiles["C"][(ci, cj)] = (tiles["C"][(ci, cj)]
                                    + (task.alpha * a_tile) @ a_tile.T)
        elif task.kind is TaskKind.TRSM:
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            tiles["B"][(bi, bj)] = np.linalg.solve(np.tril(tiles["L"][(li, lj)]),
                                                   tiles["B"][(bi, bj)])
        elif task.kind is TaskKind.TRSM_RIGHT_T:
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            solved = np.linalg.solve(np.tril(tiles["L"][(li, lj)]),
                                     tiles["B"][(bi, bj)].T)
            tiles["B"][(bi, bj)] = solved.T
        elif task.kind is TaskKind.TRSM_LOWER:
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            unit_lower = np.tril(tiles["L"][(li, lj)], -1) + np.eye(t)
            tiles["B"][(bi, bj)] = np.linalg.solve(unit_lower, tiles["B"][(bi, bj)])
        elif task.kind is TaskKind.TRSM_UPPER_RIGHT:
            (bi, bj) = task.output
            (li, lj) = task.inputs[0]
            upper = np.triu(tiles["L"][(li, lj)])
            tiles["B"][(bi, bj)] = np.linalg.solve(upper.T, tiles["B"][(bi, bj)].T).T
        elif task.kind is TaskKind.CHOLESKY:
            (ai, aj) = task.output
            tiles["A"][(ai, aj)] = np.linalg.cholesky(tiles["A"][(ai, aj)])
        elif task.kind is TaskKind.LU:
            (ai, aj) = task.output
            tiles["A"][(ai, aj)] = ref_lu_nopivot(tiles["A"][(ai, aj)])
        elif task.kind is TaskKind.GEQRT:
            (ai, aj) = task.output
            factored, taus = ref_householder_qr_factored(tiles["A"][(ai, aj)])
            tiles["A"][(ai, aj)] = factored
            tiles.setdefault("TAU", {})[(ai, aj)] = taus
        elif task.kind is TaskKind.TSQRT:
            (jj, ij) = task.inputs[0], task.output
            stacked = np.vstack([np.triu(tiles["A"][jj]), tiles["A"][ij]])
            factored, taus = ref_householder_qr_factored(stacked)
            tiles["A"][jj] = np.triu(factored[:t]) + np.tril(tiles["A"][jj], -1)
            tiles["A"][ij] = factored[t:]
            tiles.setdefault("TAU", {})[ij] = taus
        elif task.kind is TaskKind.UNMQR:
            (jj, jk) = task.inputs[0], task.output
            tiles["A"][jk] = ref_apply_reflectors(tiles["A"][jj],
                                                  tiles["TAU"][jj], tiles["A"][jk])
        elif task.kind is TaskKind.TSMQR:
            (ij, jk, ik) = task.inputs[0], task.inputs[1], task.inputs[2]
            v_stacked = np.vstack([np.zeros((t, t)), tiles["A"][ij]])
            c_stacked = np.vstack([tiles["A"][jk], tiles["A"][ik]])
            updated = ref_apply_reflectors(v_stacked, tiles["TAU"][ij], c_stacked)
            tiles["A"][jk] = updated[:t]
            tiles["A"][ik] = updated[t:]
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown task kind {task.kind}")

    def _task_shapes(self, task: TaskDescriptor, tiles: Dict) -> Tuple:
        """Shapes of the tiles a task touches (part of the memoization key)."""
        kind = task.kind
        if kind is TaskKind.GEMM:
            coords = (("C", task.output), ("A", task.inputs[0]), ("B", task.inputs[1]))
        elif kind is TaskKind.SYRK:
            coords = (("C", task.output), ("A", task.inputs[0]))
        elif kind in (TaskKind.TRSM, TaskKind.TRSM_RIGHT_T, TaskKind.TRSM_LOWER,
                      TaskKind.TRSM_UPPER_RIGHT):
            coords = (("L", task.inputs[0]), ("B", task.output))
        elif kind in (TaskKind.CHOLESKY, TaskKind.LU, TaskKind.GEQRT):
            coords = (("A", task.output),)
        elif kind in (TaskKind.TSQRT, TaskKind.UNMQR):
            coords = (("A", task.inputs[0]), ("A", task.output))
        elif kind is TaskKind.TSMQR:
            coords = (("A", task.inputs[0]), ("A", task.inputs[1]),
                      ("A", task.output))
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown task kind {kind}")
        return tuple(tiles[operand][coord].shape for operand, coord in coords)

    def execute(self, tasks: Sequence[TaskDescriptor], tiles: Dict,
                verify: bool = True) -> Dict[str, object]:
        """Run a task graph to completion; returns makespan and per-core stats.

        ``tiles`` maps operand names ("A", "B", "C", "L") to dictionaries of
        tile arrays keyed by block coordinates; tasks update them in place
        (tiled QR additionally keeps its ``tau`` scalars under ``"TAU"``).
        ``verify`` only matters under memoized timing: it keeps the tile data
        numerically exact through reference updates so residual checks remain
        possible.

        The loop is event driven: a heap of ready tasks ordered by the
        scheduling policy and a single accumulation pass over per-core busy
        time -- O(V log V + E) for the static policies.  With data-movement accounting
        enabled every dispatched task also updates the tile-residency model
        (in dispatch order, the serialisation the shared on-chip memory
        sees); spill refills stall the task through the off-chip bandwidth
        and the stats gain unified traffic / stall / energy totals.
        Policies with ``dynamic_priority`` (memory_aware) have stale heap
        keys lazily re-validated against the current residency state; that
        re-validation is bounded at one refresh per entry between
        executions, so those policies are worst-case O(V^2 log V) (in
        practice close to the static bound, since only entries that reach
        the heap top are refreshed).

        With ``fast=True`` an eligible call (a :class:`TaskGraph`, a stock
        policy class, no enabled tracer) is routed through the inlined loop
        of :mod:`repro.lap.fastpath`, which produces byte-identical results.
        """
        self._last_graph = tasks if isinstance(tasks, TaskGraph) else None
        if (self.fast and isinstance(tasks, TaskGraph)
                and (self.tracer is None or not self.tracer.enabled)
                and type(self.policy) in _POLICY_CODES):
            self.last_fast = True
            return execute_fast(self, tasks, tiles, verify)
        self.last_fast = False
        task_list = list(tasks)
        by_id: Dict[int, TaskDescriptor] = {}
        for task in task_list:
            if task.task_id in by_id:
                raise ValueError(f"duplicate task id {task.task_id}")
            by_id[task.task_id] = task
        successors: Dict[int, List[int]] = {tid: [] for tid in by_id}
        indegree: Dict[int, int] = {}
        for task in task_list:
            deps = set(task.depends_on)
            indegree[task.task_id] = len(deps)
            for dep in deps:
                if dep in successors:
                    successors[dep].append(task.task_id)
                # Unknown dependency ids can never complete; the task stays
                # unscheduled and the deadlock check below reports it.

        memory = (MemoryHierarchy.for_chip(
            self.lap, self.tile,
            on_chip_kb=self.on_chip_kb,
            bandwidth_gbs=self.bandwidth_gbs,
            local_store_kb=self.local_store_kb,
            offchip_pj_per_byte=self.offchip_pj_per_byte)
                  if self.memory_enabled else None)
        tracer = (self.tracer if self.tracer is not None and self.tracer.enabled
                  else None)
        self.last_memory = memory
        self.policy.prepare(tasks if isinstance(tasks, TaskGraph) else task_list)
        self.policy.bind_memory(memory)
        dynamic = bool(getattr(self.policy, "dynamic_priority", False)
                       and memory is not None)
        ctx = _ExecutionContext(self, tiles)
        num_cores = len(self.lap.cores)
        reference_freq = self.lap.config.frequency_ghz
        core_free_at: List[float] = [0] * num_cores
        busy_cycles: List[int] = [0] * num_cores
        busy_time: List[float] = [0] * num_cores
        tile_owner: Dict[Tuple[int, int], int] = {}
        self.policy.bind_owners(tile_owner)
        ready_time: Dict[int, float] = {}
        end_time: Dict[int, float] = {}
        self.executions = executions = []

        # Heap entries are (priority_tuple, task_id, residency_version): the
        # policy key orders tasks, the task id breaks ties exactly as the
        # pre-refactor flat tuples did, and the trailing version stamp lets
        # dynamic policies detect keys computed against a residency state
        # that has since moved on (it never influences the ordering).
        version = memory.version if memory is not None else 0
        heap: List[Tuple] = []
        for task in task_list:
            if indegree[task.task_id] == 0:
                ready_time[task.task_id] = 0
                heapq.heappush(heap, (self.policy.priority(task, 0),
                                      task.task_id, version))

        while heap:
            key, task_id, stamp = heapq.heappop(heap)
            task = by_id[task_id]
            ready = ready_time[task_id]
            if dynamic and stamp != memory.version:
                # Lazy re-validation: recompute the stale key; if the task no
                # longer leads the heap, push it back and look again.  Keys
                # are re-stamped with the current version, and the version
                # only advances when a task executes, so every entry is
                # refreshed at most once between executions (bounded work).
                key = self.policy.priority(task, ready)
                if heap and (key, task_id) > (heap[0][0], heap[0][1]):
                    heapq.heappush(heap, (key, task_id, memory.version))
                    continue
            ctx.core_index = core_index = self.policy.choose_core(
                task, ready, core_free_at, tile_owner)
            cycles = self.timing.task_cycles(task, ctx, verify)
            if self._homogeneous:
                duration = cycles
            else:
                duration = cycles * reference_freq / self.core_frequencies_ghz[core_index]
            compute_duration = duration
            stall = 0.0
            refill = energy = local_cycles = local_hit = 0.0
            spill_b = transfer_b = writeback_b = 0.0
            event = None
            if memory is not None:
                event = memory.account(task, core_index)
                stall = event.stall_cycles
                refill = event.refill_bytes
                energy = event.energy_j
                local_cycles = event.local_transfer_cycles
                local_hit = event.local_hit_bytes
                spill_b = event.spill_refill_bytes
                transfer_b = event.shared_to_local_bytes + event.c2c_bytes
                writeback_b = event.writeback_bytes
                duration = compose_task_cycles(duration, stall,
                                               self.stall_overlap,
                                               local_cycles)
            start = max(core_free_at[core_index], ready)
            end = start + duration
            core_free_at[core_index] = end
            busy_cycles[core_index] += cycles
            # Efficiency counts compute only: a stalled core is occupied but
            # not doing useful work, so memory pressure must *lower* the
            # reported parallel efficiency, never pad it.
            busy_time[core_index] += compute_duration
            end_time[task.task_id] = end
            tile_owner[task.output] = core_index
            executions.append(TaskExecution(task.task_id, task.kind, core_index,
                                            start, end, stall_cycles=stall,
                                            refill_bytes=refill,
                                            energy_j=energy,
                                            local_transfer_cycles=local_cycles,
                                            local_hit_bytes=local_hit,
                                            compute_cycles=compute_duration,
                                            spill_bytes=spill_b,
                                            transfer_bytes=transfer_b,
                                            writeback_bytes=writeback_b))
            if tracer is not None:
                decomposition = decompose_task_cycles(
                    compute_duration, stall, self.stall_overlap, local_cycles)
                args = {
                    "task_id": task.task_id,
                    "kind": task.kind.value,
                    "compute_cycles": decomposition["compute"],
                    "spill_stall_cycles": decomposition["spill_stall"],
                    "transfer_cycles": decomposition["transfer"],
                    "hidden_cycles": decomposition["hidden"],
                }
                if event is not None:
                    args.update(event.as_args())
                    tracer.counter("offchip_spill_bytes").add(
                        event.spill_refill_bytes, ts=end)
                    tracer.counter("stall_cycles").add(stall, ts=end)
                tracer.span(f"{task.kind.value}#{task.task_id}",
                            track=core_index, start=start, end=end,
                            category="task", args=args)
            for succ_id in successors[task.task_id]:
                ready_time[succ_id] = max(ready_time.get(succ_id, 0), end)
                indegree[succ_id] -= 1
                if indegree[succ_id] == 0:
                    succ = by_id[succ_id]
                    heapq.heappush(heap, (
                        self.policy.priority(succ, ready_time[succ_id]),
                        succ_id,
                        memory.version if memory is not None else 0))

        if len(executions) != len(task_list):
            raise RuntimeError("task graph deadlock: circular dependencies")

        makespan = max(core_free_at) if core_free_at else 0
        self.last_makespan = float(makespan)
        if tracer is not None:
            for core, gap_start, gap_end in idle_gaps(self.executions,
                                                      num_cores, makespan):
                tracer.span("idle", track=core, start=gap_start, end=gap_end,
                            category="idle",
                            args={"idle_cycles": gap_end - gap_start})
        stats: Dict[str, object] = {
            "makespan_cycles": makespan,
            "per_core_busy_cycles": busy_cycles,
            "parallel_efficiency": (sum(busy_time) / (makespan * num_cores))
            if makespan else 0.0,
            "tasks_executed": len(self.executions),
            "policy": self.policy.name,
            "timing": self.timing.name,
            "makespan_ns": makespan / reference_freq,
            "data_valid": self.timing.keeps_data(verify),
        }
        if memory is not None:
            memory.finish()
            stats.update(memory.summary())
        if isinstance(tasks, TaskGraph):
            stats["graph"] = tasks.summary()
        return stats

    def attribution(self) -> CycleAttribution:
        """Cycle attribution of the most recent ``execute()`` call.

        Decomposes every core's ``[0, makespan]`` timeline into compute /
        spill-stall / transfer / idle from the recorded
        :class:`TaskExecution` rows; the components sum to
        ``cores x makespan`` (see
        :class:`repro.obs.attribution.CycleAttribution`).
        """
        return CycleAttribution.from_executions(
            self.executions, len(self.lap.cores), self.last_makespan,
            stall_overlap=self.stall_overlap)

    def schedule_trace(self) -> ScheduleTrace:
        """Replayable record of the most recent ``execute()`` call.

        Captures the dispatch outcome plus the movement totals that decide
        when a sweep point differing only in bandwidth / prefetch-overlap /
        chip-clock / off-chip-energy constants can reuse this schedule
        exactly instead of re-simulating (see
        :class:`repro.lap.fastpath.ScheduleTrace` and the ``lap_runtime``
        runner's replay fast path).  With memory accounting on, the trace
        also carries a lazy thunk producing per-task ``(flops,
        onchip_bytes, offchip_bytes)`` energy triples, so energy-constant
        deltas re-key the energy column per task instead of re-simulating:
        the reference loop derives them from the recorded memory events,
        the fast loop (which never materialises events) from the execution
        rows plus the graph's footprint arrays.
        """
        memory = self.last_memory
        rows = self.executions
        energy_constants = None
        flush_wb = 0.0
        triples_thunk = None
        if memory is not None:
            energy = memory.energy
            energy_constants = (energy.energy_per_flop_j,
                                energy.onchip_energy_per_byte_j,
                                energy.offchip_energy_per_byte_j)
            flush_wb = memory.flush_writeback_bytes
            if memory.events:
                events = list(memory.events)

                def triples_thunk(events=events):
                    return [(e.flops, e.onchip_bytes,
                             e.refill_bytes + e.writeback_bytes)
                            for e in events]
            elif rows and self._last_graph is not None:
                arrays = self._last_graph.fast_arrays()
                tile = self.tile
                tile_bytes = memory.residency.tile_bytes

                def triples_thunk(rows=rows, arrays=arrays, tile=tile,
                                  tile_bytes=tile_bytes):
                    from repro.lap.taskgraph import _TASK_FLOPS
                    id2idx = arrays.id2idx
                    rw_len = arrays.rw_len
                    return [(_TASK_FLOPS[e.kind](tile),
                             rw_len[id2idx[e.task_id]] * tile_bytes
                             + e.transfer_bytes,
                             e.refill_bytes + e.writeback_bytes)
                            for e in rows]
        return ScheduleTrace(
            policy=self.policy.name,
            timing=self.timing.name,
            stall_overlap=self.stall_overlap,
            effective_bandwidth_gbs=(
                memory.bandwidth.interface.bandwidth_gbytes_per_sec
                if memory is not None else None),
            default_bandwidth_gbs=self.lap.offchip.bandwidth_gbytes_per_sec,
            total_spill_bytes=(memory.spill_bytes if memory is not None
                               else 0.0),
            total_movement_cycles=(
                memory.total_stall_cycles + memory.local_transfer_cycles
                if memory is not None else 0.0),
            task_ids=[e.task_id for e in rows],
            cores=[e.core_index for e in rows],
            starts=[e.start_cycle for e in rows],
            ends=[e.end_cycle for e in rows],
            makespan_cycles=self.last_makespan,
            frequency_ghz=self.lap.config.frequency_ghz,
            homogeneous_cores=self._homogeneous,
            energy_constants=energy_constants,
            default_offchip_energy_per_byte_j=(
                self.lap.offchip.energy_per_byte_j),
            flush_writeback_bytes=flush_wb,
            energy_triples_thunk=triples_thunk)

    # ------------------------------------------------------- whole problems
    def run_blocked_gemm(self, n: int, rng: np.random.Generator,
                         verify: bool = True) -> Dict[str, object]:
        """Decompose, schedule and verify one ``n x n`` GEMM end to end.

        Builds seeded operands, tiles them, executes the task graph on the
        LAP cores and extends the scheduler stats with a ``residual`` (the
        max absolute error against the numpy reference), so sweep rows can
        assert functional correctness alongside makespan and efficiency.
        Under memoized timing with ``verify=False`` the tile data goes stale
        and ``residual`` is ``None``.
        """
        a, b = rng.random((n, n)), rng.random((n, n))
        c = rng.random((n, n))
        tiles = {
            "A": self.tile_matrix(a, self.tile),
            "B": self.tile_matrix(b, self.tile),
            "C": self.tile_matrix(c, self.tile),
        }
        tasks = self.library.gemm_tasks(n, n, n)
        stats = self.execute(tasks, tiles, verify=verify)
        if stats["data_valid"]:
            result = self.untile_matrix(tiles["C"], self.tile)
            stats["residual"] = float(np.max(np.abs(result - (c + a @ b))))
        else:
            stats["residual"] = None
        return stats

    def run_blocked_cholesky(self, n: int, rng: np.random.Generator,
                             verify: bool = True) -> Dict[str, object]:
        """Decompose, schedule and verify one ``n x n`` Cholesky end to end.

        The seeded operand is made symmetric positive definite; all operand
        names alias one tile dictionary because the factorization updates A
        in place.  The returned stats carry the ``residual`` of
        ``L L^T - A`` (``None`` when the timing model dropped the data).
        """
        g = rng.random((n, n))
        a = g @ g.T + n * np.eye(n)
        a_tiles = self.tile_matrix(a, self.tile)
        tiles = {"A": a_tiles, "B": a_tiles, "C": a_tiles, "L": a_tiles}
        tasks = self.library.cholesky_tasks(n)
        stats = self.execute(tasks, tiles, verify=verify)
        if stats["data_valid"]:
            factor = np.tril(self.untile_matrix(a_tiles, self.tile))
            stats["residual"] = float(np.max(np.abs(factor @ factor.T - a)))
        else:
            stats["residual"] = None
        return stats

    def run_blocked_lu(self, n: int, rng: np.random.Generator,
                       verify: bool = True) -> Dict[str, object]:
        """Decompose, schedule and verify one ``n x n`` tiled LU end to end.

        The seeded operand is made strictly diagonally dominant so that the
        no-pivot tile factorization is stable (row interchanges never leave
        a diagonal tile).  The stats carry the ``residual`` of ``L U - A``.
        """
        a = rng.random((n, n)) + n * np.eye(n)
        a_tiles = self.tile_matrix(a, self.tile)
        tiles = {"A": a_tiles, "B": a_tiles, "C": a_tiles, "L": a_tiles}
        tasks = self.library.lu_tasks(n)
        stats = self.execute(tasks, tiles, verify=verify)
        if stats["data_valid"]:
            packed = self.untile_matrix(a_tiles, self.tile)
            lower = np.tril(packed, -1) + np.eye(n)
            upper = np.triu(packed)
            stats["residual"] = float(np.max(np.abs(lower @ upper - a)))
        else:
            stats["residual"] = None
        return stats

    def run_blocked_qr(self, n: int, rng: np.random.Generator,
                       verify: bool = True) -> Dict[str, object]:
        """Decompose, schedule and verify one ``n x n`` tiled QR end to end.

        The final upper block triangle holds ``R``; ``Q`` stays implicit in
        the packed reflectors, so correctness is checked through the normal
        equations: ``R^T R == A^T A`` exactly when ``A == Q R`` with an
        orthogonal ``Q``.  The ``residual`` is the max absolute error of
        that identity, normalised by ``max |A^T A|``.
        """
        a = rng.random((n, n))
        tiles: Dict = {"A": self.tile_matrix(a, self.tile), "TAU": {}}
        tasks = self.library.qr_tasks(n)
        stats = self.execute(tasks, tiles, verify=verify)
        if stats["data_valid"]:
            t = self.tile
            r = np.zeros((n, n))
            for (bi, bj), block in tiles["A"].items():
                if bj > bi:
                    r[bi * t:(bi + 1) * t, bj * t:(bj + 1) * t] = block
                elif bi == bj:
                    r[bi * t:(bi + 1) * t, bj * t:(bj + 1) * t] = np.triu(block)
            gram = a.T @ a
            stats["residual"] = float(np.max(np.abs(r.T @ r - gram))
                                      / max(1.0, np.max(np.abs(gram))))
        else:
            stats["residual"] = None
        return stats

    def run_workload(self, workload: str, n: int, rng: np.random.Generator,
                     verify: bool = True) -> Dict[str, object]:
        """Run one named workload (gemm / cholesky / lu / qr) end to end."""
        runners = {
            "gemm": self.run_blocked_gemm,
            "cholesky": self.run_blocked_cholesky,
            "lu": self.run_blocked_lu,
            "qr": self.run_blocked_qr,
        }
        try:
            runner = runners[workload]
        except KeyError:
            raise ValueError(f"unknown workload '{workload}' (use one of "
                             f"{', '.join(sorted(runners))})") from None
        return runner(n, rng, verify=verify)

    # ------------------------------------------------------------ helpers
    @staticmethod
    def tile_matrix(matrix: np.ndarray, tile: int) -> Dict[Tuple[int, int], np.ndarray]:
        """Split a matrix into a dictionary of tile blocks."""
        matrix = np.asarray(matrix, dtype=float)
        rows, cols = matrix.shape
        if rows % tile or cols % tile:
            raise ValueError(f"matrix dimensions {rows} x {cols} must be "
                             f"multiples of the tile size {tile}")
        return {(i // tile, j // tile): matrix[i:i + tile, j:j + tile].copy()
                for i in range(0, rows, tile) for j in range(0, cols, tile)}

    @staticmethod
    def untile_matrix(tiles: Dict[Tuple[int, int], np.ndarray], tile: int) -> np.ndarray:
        """Reassemble a matrix from its tile dictionary."""
        if not tiles:
            raise ValueError("no tiles to assemble")
        max_i = max(i for i, _ in tiles) + 1
        max_j = max(j for _, j in tiles) + 1
        out = np.zeros((max_i * tile, max_j * tile), dtype=float)
        for (i, j), block in tiles.items():
            out[i * tile:(i + 1) * tile, j * tile:(j + 1) * tile] = block
        return out
