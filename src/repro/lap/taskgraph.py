"""TaskGraph IR: tile task graphs for the algorithms-by-blocks layer.

The dissertation's programming environment (Figure 1.2, Chapter 5) breaks a
large routine into *atomic* tile operations and hands each to the LAP through
a thin driver interface.  This module is the intermediate representation of
that layer:

* :class:`TaskKind` -- the atomic tile operations the runtime understands
  (level-3 BLAS updates plus the factorization tile kernels of Chapter 6);
* :class:`TaskDescriptor` -- one tile operation (the "command packet");
* :class:`TaskGraph` -- an immutable dependency graph over task descriptors
  with the analytics a scheduler needs (critical path, width, per-kind
  counts, topological levels);
* :class:`AlgorithmsByBlocks` -- the host-library decomposition of GEMM,
  Cholesky, LU (no pivoting across tiles) and tiled Householder QR into
  dependency-ordered tile graphs.

Every task additionally carries its *data footprint*: the logical tiles it
reads and writes, named ``(operand, (block_row, block_col))``.  The builders
record footprints with aliasing resolved (a factorization updates one
operand in place, so all of its tiles live under ``"A"``), which is what the
tile-residency model of :mod:`repro.lap.memory` consumes to account on-chip
working sets, spills and off-chip traffic.

Schedulers (:mod:`repro.lap.policies`), timing models
(:mod:`repro.lap.timing`), the memory hierarchy (:mod:`repro.lap.memory`)
and the driver (:mod:`repro.lap.runtime`) all consume this IR; nothing here
touches the simulator.
"""

from __future__ import annotations

import collections.abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class TaskKind(enum.Enum):
    """Atomic tile operations the LAP accepts from the host."""

    GEMM = "gemm"                  #: C_tile += alpha * A_tile @ op(B_tile)
    SYRK = "syrk"                  #: C_tile += alpha * A_tile @ A_tile^T (lower)
    TRSM = "trsm"                  #: B_tile := L_tile^{-1} B_tile
    TRSM_RIGHT_T = "trsm_rt"       #: B_tile := B_tile @ L_tile^{-T}
    CHOLESKY = "chol"              #: A_tile := chol(A_tile)
    LU = "lu"                      #: A_tile := {L\U} (no pivoting across tiles)
    TRSM_LOWER = "trsm_ll"         #: B_tile := unit_lower(L_tile)^{-1} B_tile
    TRSM_UPPER_RIGHT = "trsm_ru"   #: B_tile := B_tile @ triu(U_tile)^{-1}
    GEQRT = "geqrt"                #: A_tile := {V\R}, tau (QR of a diagonal tile)
    TSQRT = "tsqrt"                #: [R; A_tile] := QR (triangle-on-top-of-square)
    UNMQR = "unmqr"                #: C_tile := Q^T C_tile (reflectors of GEQRT)
    TSMQR = "tsmqr"                #: [C_top; C_bot] := Q^T [..] (reflectors of TSQRT)


#: Kinds that factor a tile (as opposed to updating one with level-3 BLAS).
FACTOR_KINDS = frozenset({TaskKind.CHOLESKY, TaskKind.LU, TaskKind.GEQRT,
                          TaskKind.TSQRT})

#: One logical tile: (operand name, (block_row, block_col)).
TileAccess = Tuple[str, Tuple[int, int]]

#: First-order flop estimates per task kind for a ``t x t`` tile, used by the
#: per-task energy model (pJ/flop) and arithmetic-intensity reporting.  The
#: constants are the textbook leading-order counts; exact lower-order terms
#: are irrelevant at the fidelity of the energy model.
_TASK_FLOPS: Dict[TaskKind, Callable[[int], float]] = {
    TaskKind.GEMM: lambda t: 2.0 * t ** 3,
    TaskKind.SYRK: lambda t: float(t * t * (t + 1)),
    TaskKind.TRSM: lambda t: float(t ** 3),
    TaskKind.TRSM_RIGHT_T: lambda t: float(t ** 3),
    TaskKind.TRSM_LOWER: lambda t: float(t ** 3),
    TaskKind.TRSM_UPPER_RIGHT: lambda t: float(t ** 3),
    TaskKind.CHOLESKY: lambda t: t ** 3 / 3.0,
    TaskKind.LU: lambda t: 2.0 * t ** 3 / 3.0,
    TaskKind.GEQRT: lambda t: 4.0 * t ** 3 / 3.0,
    TaskKind.TSQRT: lambda t: 2.0 * t ** 3,
    TaskKind.UNMQR: lambda t: 2.0 * t ** 3,
    TaskKind.TSMQR: lambda t: 3.0 * t ** 3,
}


def task_flops(task: "TaskDescriptor", tile: int) -> float:
    """Estimated useful flops of one tile task (leading-order count)."""
    if tile <= 0:
        raise ValueError("tile size must be positive")
    return _TASK_FLOPS[task.kind](tile)


@dataclass
class TaskDescriptor:
    """One atomic tile operation (the command-packet abstraction).

    ``inputs`` and ``output`` are tile coordinates ``(block_row, block_col)``
    into the blocked operand; ``depends_on`` lists task ids that must complete
    first (the host library serialises dependent tiles, everything else may
    run on any idle core).  ``alpha`` scales the product of update tasks
    (``-1`` for the trailing updates of a factorization) and ``transpose_b``
    requests the second operand transposed, which the LAC performs over its
    diagonal PEs at no extra bandwidth cost.

    ``reads`` and ``writes`` are the task's data footprint as
    ``(operand, coordinate)`` tile names.  The graph builders fill them in
    with operand aliasing resolved (a factorization reads and writes one
    matrix); when left ``None`` they are derived from ``kind`` /
    ``inputs`` / ``output`` with the conventional operand names, which is
    correct for hand-built graphs whose operand dictionaries do not alias.
    """

    task_id: int
    kind: TaskKind
    output: Tuple[int, int]
    inputs: List[Tuple[int, int]] = field(default_factory=list)
    depends_on: List[int] = field(default_factory=list)
    alpha: float = 1.0
    transpose_b: bool = False
    reads: Optional[List[TileAccess]] = None
    writes: Optional[List[TileAccess]] = None

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task ids must be non-negative")

    # ----------------------------------------------------------- footprints
    def _derived_footprint(self) -> Tuple[List[TileAccess], List[TileAccess]]:
        """Kind-derived (reads, writes) with the conventional operand names."""
        kind = self.kind
        if kind is TaskKind.GEMM:
            reads = [("A", self.inputs[0]), ("B", self.inputs[1]),
                     ("C", self.output)]
            writes = [("C", self.output)]
        elif kind is TaskKind.SYRK:
            reads = [("A", self.inputs[0]), ("C", self.output)]
            writes = [("C", self.output)]
        elif kind in (TaskKind.TRSM, TaskKind.TRSM_RIGHT_T, TaskKind.TRSM_LOWER,
                      TaskKind.TRSM_UPPER_RIGHT):
            reads = [("L", self.inputs[0]), ("B", self.output)]
            writes = [("B", self.output)]
        elif kind in (TaskKind.CHOLESKY, TaskKind.LU, TaskKind.GEQRT):
            reads = [("A", self.output)]
            writes = [("A", self.output)]
        elif kind is TaskKind.TSQRT:
            reads = [("A", self.inputs[0]), ("A", self.output)]
            writes = [("A", self.inputs[0]), ("A", self.output)]
        elif kind is TaskKind.UNMQR:
            reads = [("A", self.inputs[0]), ("A", self.output)]
            writes = [("A", self.output)]
        elif kind is TaskKind.TSMQR:
            reads = [("A", self.inputs[0]), ("A", self.inputs[1]),
                     ("A", self.inputs[2])]
            writes = [("A", self.inputs[1]), ("A", self.inputs[2])]
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown task kind {kind}")
        return reads, writes

    def read_tiles(self) -> List[TileAccess]:
        """Tiles the task reads (explicit footprint or kind-derived)."""
        if self.reads is not None:
            return list(self.reads)
        return self._derived_footprint()[0]

    def write_tiles(self) -> List[TileAccess]:
        """Tiles the task writes (explicit footprint or kind-derived)."""
        if self.writes is not None:
            return list(self.writes)
        return self._derived_footprint()[1]

    def touched_tiles(self) -> List[TileAccess]:
        """Union of read and written tiles, duplicates removed, read-order."""
        seen: List[TileAccess] = []
        for access in self.read_tiles() + self.write_tiles():
            if access not in seen:
                seen.append(access)
        return seen


class TaskGraph(collections.abc.Sequence):
    """An immutable tile-task dependency graph with scheduling analytics.

    Behaves as a sequence of :class:`TaskDescriptor` (so existing callers
    that expect a task list keep working) and adds the graph structure and
    metrics a scheduler wants: predecessor/successor adjacency, per-kind
    counts, topological levels, width (the largest level -- an upper bound
    on exploitable task parallelism) and critical-path lengths, optionally
    weighted by an estimated per-task cost.

    Dependencies on unknown task ids are rejected here; cycles are only
    detected lazily (by :meth:`levels` / the scheduler's deadlock check) so
    that deliberately broken graphs can still be handed to the runtime in
    tests.
    """

    def __init__(self, tasks: Sequence[TaskDescriptor]):
        self._tasks: List[TaskDescriptor] = list(tasks)
        self._by_id: Dict[int, TaskDescriptor] = {}
        for task in self._tasks:
            if task.task_id in self._by_id:
                raise ValueError(f"duplicate task id {task.task_id}")
            self._by_id[task.task_id] = task
        for task in self._tasks:
            for dep in task.depends_on:
                if dep not in self._by_id:
                    raise ValueError(f"task {task.task_id} depends on unknown "
                                     f"task id {dep}")
        self._successors: Dict[int, List[int]] = {t.task_id: [] for t in self._tasks}
        for task in self._tasks:
            for dep in set(task.depends_on):
                self._successors[dep].append(task.task_id)
        self._levels: Optional[List[List[int]]] = None
        self._fast_arrays = None
        self._summary: Optional[Dict[str, object]] = None
        self._unit_cpl: Optional[Dict[int, float]] = None

    # -------------------------------------------------------- sequence API
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskDescriptor]:
        return iter(self._tasks)

    def __getitem__(self, index):
        return self._tasks[index]

    def task(self, task_id: int) -> TaskDescriptor:
        """Look up one task by id."""
        return self._by_id[task_id]

    @property
    def task_ids(self) -> List[int]:
        return [t.task_id for t in self._tasks]

    # ----------------------------------------------------------- adjacency
    def successors(self, task_id: int) -> List[int]:
        """Ids of the tasks that depend on ``task_id``."""
        return list(self._successors[task_id])

    def predecessors(self, task_id: int) -> List[int]:
        """Ids of the tasks ``task_id`` depends on (duplicates removed)."""
        return sorted(set(self._by_id[task_id].depends_on))

    # ------------------------------------------------------------ analytics
    def kind_counts(self) -> Dict[TaskKind, int]:
        """Number of tasks of each kind present in the graph."""
        counts: Dict[TaskKind, int] = {}
        for task in self._tasks:
            counts[task.kind] = counts.get(task.kind, 0) + 1
        return counts

    def levels(self) -> List[List[int]]:
        """Topological levels: level ``d`` holds the ids at dependency depth ``d``.

        Raises :class:`ValueError` if the graph contains a cycle.
        """
        if self._levels is None:
            indegree = {t.task_id: len(set(t.depends_on)) for t in self._tasks}
            frontier = sorted(tid for tid, deg in indegree.items() if deg == 0)
            levels: List[List[int]] = []
            seen = 0
            while frontier:
                levels.append(frontier)
                seen += len(frontier)
                nxt: List[int] = []
                for tid in frontier:
                    for succ in self._successors[tid]:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            nxt.append(succ)
                frontier = sorted(nxt)
            if seen != len(self._tasks):
                raise ValueError("task graph contains a dependency cycle")
            self._levels = levels
        return self._levels

    def width(self) -> int:
        """Size of the largest topological level (peak task parallelism)."""
        return max((len(level) for level in self.levels()), default=0)

    def critical_path_lengths(
            self, weight: Optional[Callable[[TaskDescriptor], float]] = None
    ) -> Dict[int, float]:
        """Longest path from each task to any exit, inclusive of the task.

        With the default unit weight the value is the number of tasks on the
        longest downstream chain; pass ``weight`` to use estimated cycles.
        Used by the critical-path scheduling policy.  The unit-weight result
        is cached on the (immutable) graph since every ``prepare()`` of the
        critical-path policy asks for it; callers must not mutate it.
        """
        if weight is None and self._unit_cpl is not None:
            return self._unit_cpl
        lengths: Dict[int, float] = {}
        for level in reversed(self.levels()):
            for tid in level:
                task = self._by_id[tid]
                w = 1.0 if weight is None else float(weight(task))
                down = max((lengths[s] for s in self._successors[tid]), default=0.0)
                lengths[tid] = w + down
        if weight is None:
            self._unit_cpl = lengths
        return lengths

    def critical_path_length(
            self, weight: Optional[Callable[[TaskDescriptor], float]] = None
    ) -> float:
        """Length of the longest dependency chain in the graph."""
        lengths = self.critical_path_lengths(weight)
        return max(lengths.values(), default=0.0)

    def fast_arrays(self):
        """Dense array form of the graph for the fast scheduler loop.

        Built on first use and cached (the graph is immutable); see
        :class:`repro.lap.fastpath.GraphArrays`.
        """
        if self._fast_arrays is None:
            from repro.lap.fastpath import GraphArrays
            self._fast_arrays = GraphArrays(self)
        return self._fast_arrays

    def working_set_tiles(self) -> List[TileAccess]:
        """Unique ``(operand, coordinate)`` tiles any task touches."""
        seen: Dict[TileAccess, None] = {}
        for task in self._tasks:
            for access in task.touched_tiles():
                seen.setdefault(access, None)
        return list(seen)

    def working_set_bytes(self, tile: int, element_bytes: int = 8) -> int:
        """Bytes of the full tile working set (`tile x tile` per tile)."""
        if tile <= 0 or element_bytes <= 0:
            raise ValueError("tile size and element bytes must be positive")
        return len(self.working_set_tiles()) * tile * tile * element_bytes

    def total_flops(self, tile: int) -> float:
        """Leading-order flop count of the whole graph at one tile size."""
        return sum(task_flops(task, tile) for task in self._tasks)

    def summary(self) -> Dict[str, object]:
        """Scalar graph metrics (handy for sweep rows and reports).

        Computed once and cached (the graph is immutable after
        construction); every call returns a fresh copy so callers may
        mutate the result freely.
        """
        if self._summary is None:
            self._summary = {
                "num_tasks": len(self._tasks),
                "num_levels": len(self.levels()),
                "width": self.width(),
                "critical_path_tasks": int(self.critical_path_length()),
                "kind_counts": {k.value: v for k, v in sorted(
                    self.kind_counts().items(), key=lambda kv: kv[0].value)},
            }
        out = dict(self._summary)
        out["kind_counts"] = dict(out["kind_counts"])
        return out


#: Process-wide cache of built task graphs (FIFO-bounded).  Large sweeps
#: re-decompose the same ``(workload, n, tile)`` point for every schedule
#: variant; the descriptors are identical each time, so the builders reuse
#: them through :meth:`AlgorithmsByBlocks._cached`.  Kept deliberately small:
#: a million-task graph holds hundreds of megabytes of descriptors.
_GRAPH_CACHE: Dict[Tuple, "TaskGraph"] = {}
GRAPH_CACHE_CAPACITY = 4


def clear_graph_cache() -> None:
    """Drop every cached task graph (frees descriptor memory)."""
    _GRAPH_CACHE.clear()


class AlgorithmsByBlocks:
    """Host-library decomposition of large problems into tile task graphs.

    ``tile`` is the edge length of one square tile; it must be a positive
    multiple of the core dimension ``nr`` so that every tile kernel maps
    cleanly onto the PE mesh.
    """

    def __init__(self, tile: int, nr: int = 4):
        if nr < 2:
            raise ValueError(f"core dimension nr must be >= 2, got nr={nr}")
        if tile < nr:
            raise ValueError(f"tile size {tile} is smaller than the core "
                             f"dimension nr={nr}")
        if tile % nr != 0:
            raise ValueError(f"tile size {tile} is not a multiple of the core "
                             f"dimension nr={nr}")
        self.tile = tile
        self.nr = nr
        self._id_next = 0

    def _next_id(self) -> int:
        i = self._id_next
        self._id_next = i + 1
        return i

    def _cached(self, key: Tuple, build) -> "TaskGraph":
        """Build ``key``'s graph, or reuse a structurally identical one.

        Builders are deterministic in ``(workload, dims, tile, nr)`` plus the
        instance's next task id, so the full cache key pins the exact graph a
        fresh build would produce -- including its id range.  On a hit the id
        counter still advances by ``len(graph)``, keeping the instance's
        visible id trajectory indistinguishable from an uncached build.
        Reuse is safe because :class:`TaskGraph` is immutable and consumers
        attach only derived, shareable state (summary tables, fast-path
        arrays); sharing those across sweep points is exactly the point --
        a million-task sweep pays the descriptor build once per process.
        """
        full_key = key + (self.tile, self.nr, self._id_next)
        graph = _GRAPH_CACHE.get(full_key)
        if graph is None:
            graph = build()
            while len(_GRAPH_CACHE) >= GRAPH_CACHE_CAPACITY:
                _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
            _GRAPH_CACHE[full_key] = graph
        else:
            self._id_next += len(graph)
        return graph

    def _check_blocking(self, **dims: int) -> None:
        for name, d in dims.items():
            if d <= 0:
                raise ValueError(f"dimension {name}={d} must be positive "
                                 f"(tile size {self.tile})")
            if d % self.tile != 0:
                raise ValueError(f"dimension {name}={d} is not a multiple of "
                                 f"the tile size {self.tile}")

    # ----------------------------------------------------------------- GEMM
    def gemm_tasks(self, m: int, n: int, k: int) -> TaskGraph:
        """Task graph for C += A B with independent C tiles.

        Tiles of C are independent of each other; the ``k`` accumulation for a
        given C tile is expressed as a chain of dependent GEMM tasks so that
        the accumulator tile is never written concurrently.
        """
        self._check_blocking(m=m, n=n, k=k)
        return self._cached(("gemm", m, n, k), lambda: self._build_gemm(m, n, k))

    def _build_gemm(self, m: int, n: int, k: int) -> TaskGraph:
        t = self.tile
        tasks: List[TaskDescriptor] = []
        for bi in range(m // t):
            for bj in range(n // t):
                previous: Optional[int] = None
                for bk in range(k // t):
                    task = TaskDescriptor(
                        task_id=self._next_id(), kind=TaskKind.GEMM,
                        output=(bi, bj), inputs=[(bi, bk), (bk, bj)],
                        depends_on=[previous] if previous is not None else [],
                        reads=[("A", (bi, bk)), ("B", (bk, bj)),
                               ("C", (bi, bj))],
                        writes=[("C", (bi, bj))])
                    tasks.append(task)
                    previous = task.task_id
        return TaskGraph(tasks)

    # ------------------------------------------------------------- Cholesky
    def cholesky_tasks(self, n: int) -> TaskGraph:
        """Task graph for a right-looking blocked Cholesky factorization.

        The classic dependency pattern: CHOL(j,j) -> TRSM(i,j) for i>j ->
        SYRK/GEMM updates of the trailing tiles.
        """
        self._check_blocking(n=n)
        return self._cached(("cholesky", n), lambda: self._build_cholesky(n))

    def _build_cholesky(self, n: int) -> TaskGraph:
        t = self.tile
        nb = n // t
        tasks: List[TaskDescriptor] = []
        # written[(i, j)] is the id of the last task that wrote tile (i, j).
        written: Dict[Tuple[int, int], int] = {}
        for j in range(nb):
            chol = TaskDescriptor(self._next_id(), TaskKind.CHOLESKY, output=(j, j),
                                  inputs=[(j, j)],
                                  depends_on=[written[(j, j)]] if (j, j) in written else [],
                                  reads=[("A", (j, j))], writes=[("A", (j, j))])
            tasks.append(chol)
            written[(j, j)] = chol.task_id
            for i in range(j + 1, nb):
                deps = [chol.task_id]
                if (i, j) in written:
                    deps.append(written[(i, j)])
                trsm = TaskDescriptor(self._next_id(), TaskKind.TRSM_RIGHT_T, output=(i, j),
                                      inputs=[(j, j), (i, j)], depends_on=deps,
                                      reads=[("A", (j, j)), ("A", (i, j))],
                                      writes=[("A", (i, j))])
                tasks.append(trsm)
                written[(i, j)] = trsm.task_id
            for i in range(j + 1, nb):
                for k in range(j + 1, i + 1):
                    deps = [written[(i, j)], written[(k, j)]]
                    if (i, k) in written:
                        deps.append(written[(i, k)])
                    kind = TaskKind.SYRK if i == k else TaskKind.GEMM
                    update = TaskDescriptor(self._next_id(), kind, output=(i, k),
                                            inputs=[(i, j), (k, j)],
                                            depends_on=sorted(set(deps)),
                                            alpha=-1.0, transpose_b=True,
                                            reads=[("A", (i, j)), ("A", (k, j)),
                                                   ("A", (i, k))],
                                            writes=[("A", (i, k))])
                    tasks.append(update)
                    written[(i, k)] = update.task_id
        return TaskGraph(tasks)

    # ------------------------------------------------------------------- LU
    def lu_tasks(self, n: int) -> TaskGraph:
        """Task graph for a right-looking tiled LU factorization (no pivoting
        across tiles).

        The dependency pattern mirrors Cholesky without symmetry:
        LU(j,j) -> TRSM_LOWER(j,k) along the block row (U panels) and
        TRSM_UPPER_RIGHT(i,j) down the block column (L panels) -> GEMM
        updates of the full trailing matrix.  Row interchanges are confined
        to the diagonal tile, so the operand must make pivoting unnecessary
        (e.g. diagonally dominant); the LU tile kernel enforces this.
        """
        self._check_blocking(n=n)
        return self._cached(("lu", n), lambda: self._build_lu(n))

    def _build_lu(self, n: int) -> TaskGraph:
        t = self.tile
        nb = n // t
        tasks: List[TaskDescriptor] = []
        written: Dict[Tuple[int, int], int] = {}
        for j in range(nb):
            lu = TaskDescriptor(self._next_id(), TaskKind.LU, output=(j, j),
                                inputs=[(j, j)],
                                depends_on=[written[(j, j)]] if (j, j) in written else [],
                                reads=[("A", (j, j))], writes=[("A", (j, j))])
            tasks.append(lu)
            written[(j, j)] = lu.task_id
            for k in range(j + 1, nb):
                deps = [lu.task_id]
                if (j, k) in written:
                    deps.append(written[(j, k)])
                trsm = TaskDescriptor(self._next_id(), TaskKind.TRSM_LOWER,
                                      output=(j, k), inputs=[(j, j), (j, k)],
                                      depends_on=deps,
                                      reads=[("A", (j, j)), ("A", (j, k))],
                                      writes=[("A", (j, k))])
                tasks.append(trsm)
                written[(j, k)] = trsm.task_id
            for i in range(j + 1, nb):
                deps = [lu.task_id]
                if (i, j) in written:
                    deps.append(written[(i, j)])
                trsm = TaskDescriptor(self._next_id(), TaskKind.TRSM_UPPER_RIGHT,
                                      output=(i, j), inputs=[(j, j), (i, j)],
                                      depends_on=deps,
                                      reads=[("A", (j, j)), ("A", (i, j))],
                                      writes=[("A", (i, j))])
                tasks.append(trsm)
                written[(i, j)] = trsm.task_id
            for i in range(j + 1, nb):
                for k in range(j + 1, nb):
                    deps = [written[(i, j)], written[(j, k)]]
                    if (i, k) in written:
                        deps.append(written[(i, k)])
                    update = TaskDescriptor(self._next_id(), TaskKind.GEMM,
                                            output=(i, k), inputs=[(i, j), (j, k)],
                                            depends_on=sorted(set(deps)),
                                            alpha=-1.0,
                                            reads=[("A", (i, j)), ("A", (j, k)),
                                                   ("A", (i, k))],
                                            writes=[("A", (i, k))])
                    tasks.append(update)
                    written[(i, k)] = update.task_id
        return TaskGraph(tasks)

    # ------------------------------------------------------------------- QR
    def qr_tasks(self, n: int) -> TaskGraph:
        """Task graph for a tiled Householder QR factorization.

        The classic tiled-QR kernel quartet: GEQRT factors the diagonal
        tile, UNMQR applies its reflectors along the block row, TSQRT couples
        the current ``R`` with a tile below the diagonal
        (triangle-on-top-of-square QR) and TSMQR applies those reflectors to
        the corresponding pair of block rows.  The upper-triangular part of
        the final tiles holds ``R``; the reflectors stay packed below the
        diagonals with their ``tau`` scalars in the runtime's ``TAU`` side
        store.
        """
        self._check_blocking(n=n)
        return self._cached(("qr", n), lambda: self._build_qr(n))

    def _build_qr(self, n: int) -> TaskGraph:
        t = self.tile
        nb = n // t
        tasks: List[TaskDescriptor] = []
        written: Dict[Tuple[int, int], int] = {}
        for j in range(nb):
            geqrt = TaskDescriptor(self._next_id(), TaskKind.GEQRT, output=(j, j),
                                   inputs=[(j, j)],
                                   depends_on=[written[(j, j)]] if (j, j) in written else [],
                                   reads=[("A", (j, j))], writes=[("A", (j, j))])
            tasks.append(geqrt)
            written[(j, j)] = geqrt.task_id
            for k in range(j + 1, nb):
                deps = [geqrt.task_id]
                if (j, k) in written:
                    deps.append(written[(j, k)])
                unmqr = TaskDescriptor(self._next_id(), TaskKind.UNMQR,
                                       output=(j, k), inputs=[(j, j), (j, k)],
                                       depends_on=deps,
                                       reads=[("A", (j, j)), ("A", (j, k))],
                                       writes=[("A", (j, k))])
                tasks.append(unmqr)
                written[(j, k)] = unmqr.task_id
            for i in range(j + 1, nb):
                deps = [written[(j, j)]]
                if (i, j) in written:
                    deps.append(written[(i, j)])
                tsqrt = TaskDescriptor(self._next_id(), TaskKind.TSQRT,
                                       output=(i, j), inputs=[(j, j), (i, j)],
                                       depends_on=sorted(set(deps)),
                                       reads=[("A", (j, j)), ("A", (i, j))],
                                       writes=[("A", (j, j)), ("A", (i, j))])
                tasks.append(tsqrt)
                # TSQRT rewrites the R on the diagonal *and* stores the
                # reflectors in tile (i, j).
                written[(j, j)] = tsqrt.task_id
                written[(i, j)] = tsqrt.task_id
                for k in range(j + 1, nb):
                    deps = [tsqrt.task_id, written[(j, k)]]
                    if (i, k) in written:
                        deps.append(written[(i, k)])
                    tsmqr = TaskDescriptor(self._next_id(), TaskKind.TSMQR,
                                           output=(i, k),
                                           inputs=[(i, j), (j, k), (i, k)],
                                           depends_on=sorted(set(deps)),
                                           reads=[("A", (i, j)), ("A", (j, k)),
                                                  ("A", (i, k))],
                                           writes=[("A", (j, k)), ("A", (i, k))])
                    tasks.append(tsmqr)
                    written[(j, k)] = tsmqr.task_id
                    written[(i, k)] = tsmqr.task_id
        return TaskGraph(tasks)

    #: Workload name -> builder, for the runtime's ``run_workload`` helper.
    WORKLOADS = ("gemm", "cholesky", "lu", "qr")

    def build(self, workload: str, n: int) -> TaskGraph:
        """Build the task graph of one named ``n x n`` workload."""
        if workload == "gemm":
            return self.gemm_tasks(n, n, n)
        if workload == "cholesky":
            return self.cholesky_tasks(n)
        if workload == "lu":
            return self.lu_tasks(n)
        if workload == "qr":
            return self.qr_tasks(n)
        raise ValueError(f"unknown workload '{workload}' "
                         f"(use one of {', '.join(self.WORKLOADS)})")
