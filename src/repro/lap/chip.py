"""The Linear Algebra Processor: multiple LACs plus on-chip memory.

This object glues the pieces together at chip level:

* it owns ``S`` :class:`repro.lac.core.LinearAlgebraCore` instances,
* a shared :class:`repro.hw.memory.OnChipMemory` and an
  :class:`repro.hw.memory.OffChipInterface`,
* the :class:`repro.lap.policies.GEMMScheduler` that splits large GEMMs into
  per-core row-panel work,
* and the power/area aggregation that turns per-component models into the
  chip-level numbers reported in Chapter 4.

Two execution paths are provided.  ``run_gemm`` functionally executes a GEMM
on the core simulators (each core processes its panels; cycle counts per core
are combined by taking the busiest core, exactly what lock-step execution
with a shared panel of B gives).  ``model_gemm`` evaluates the analytical
chip model instead, which is what the large design-space sweeps use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hw.bus import BroadcastBus
from repro.hw.fpu import FMACUnit, Precision
from repro.hw.memory import OffChipInterface, OnChipMemory
from repro.hw.sram import pe_store_a, pe_store_b
from repro.kernels.gemm import lac_gemm
from repro.lac.core import LACConfig, LinearAlgebraCore
from repro.lac.pe import PEConfig
from repro.lap.policies import GEMMScheduler
from repro.models.chip_model import ChipGEMMModel, ChipModelResult
from repro.models.power import PowerComponent, PowerModel, PowerBreakdown


@dataclass
class LAPConfig:
    """Configuration of a Linear Algebra Processor.

    Parameters
    ----------
    num_cores:
        Number of LACs on the chip.
    nr:
        Dimension of each core.
    frequency_ghz:
        Clock frequency of cores and on-chip memory.
    precision:
        Operating precision.
    pe_store_a_kbytes / pe_store_b_kbytes:
        Capacities of the per-PE local stores.
    onchip_memory_mbytes:
        Capacity of the shared on-chip memory.
    offchip_bandwidth_gb_s:
        Sustained external bandwidth.
    mac_pipeline_stages:
        MAC pipeline depth of the PEs.
    """

    num_cores: int = 8
    nr: int = 4
    frequency_ghz: float = 1.0
    precision: Precision = Precision.DOUBLE
    pe_store_a_kbytes: float = 16.0
    pe_store_b_kbytes: float = 2.0
    onchip_memory_mbytes: float = 4.0
    offchip_bandwidth_gb_s: float = 32.0
    mac_pipeline_stages: int = 5

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("at least one core is required")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if min(self.pe_store_a_kbytes, self.pe_store_b_kbytes) <= 0:
            raise ValueError("local store capacities must be positive")
        if self.onchip_memory_mbytes <= 0:
            raise ValueError("on-chip memory capacity must be positive")

    @property
    def element_bytes(self) -> int:
        """Bytes per matrix element at the configured precision."""
        return self.precision.bytes

    def fmac(self) -> FMACUnit:
        """Derive the FMAC model shared by the compute and energy models."""
        return FMACUnit(precision=self.precision,
                        frequency_ghz=self.frequency_ghz,
                        pipeline_stages=self.mac_pipeline_stages)

    def pe_config(self) -> PEConfig:
        """Derive the simulator PE configuration from the capacities."""
        eb = self.element_bytes
        return PEConfig(
            store_a_words=max(8, int(self.pe_store_a_kbytes * 1024 // eb)),
            store_b_words=max(8, int(self.pe_store_b_kbytes * 1024 // eb)),
            register_file_words=4,
            accumulators=4,
            mac_pipeline_stages=self.mac_pipeline_stages,
        )


class LinearAlgebraProcessor:
    """A multi-core LAP with functional simulation and analytical models."""

    def __init__(self, config: Optional[LAPConfig] = None):
        self.config = config if config is not None else LAPConfig()
        cfg = self.config
        self.cores: List[LinearAlgebraCore] = [
            LinearAlgebraCore(LACConfig(nr=cfg.nr, pe=cfg.pe_config(),
                                        precision=cfg.precision,
                                        frequency_ghz=cfg.frequency_ghz))
            for _ in range(cfg.num_cores)
        ]
        self.onchip_memory = OnChipMemory(
            capacity_bytes=int(cfg.onchip_memory_mbytes * 1024 * 1024),
            banks=max(cfg.num_cores, 4),
            word_bytes=cfg.element_bytes,
            frequency_ghz=cfg.frequency_ghz,
        )
        self.offchip = OffChipInterface(bandwidth_gbytes_per_sec=cfg.offchip_bandwidth_gb_s)
        self.scheduler = GEMMScheduler(cfg.num_cores, cfg.nr)
        self.analytical = ChipGEMMModel(num_cores=cfg.num_cores, nr=cfg.nr,
                                        element_bytes=cfg.element_bytes)

    # -------------------------------------------------------------- geometry
    @property
    def num_pes(self) -> int:
        """Total MAC units on the chip."""
        return self.config.num_cores * self.config.nr * self.config.nr

    def peak_gflops(self) -> float:
        """Peak throughput of the chip."""
        return 2.0 * self.num_pes * self.config.frequency_ghz

    # --------------------------------------------------------------- execute
    def run_gemm(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> Dict[str, object]:
        """Functionally execute ``C += A B`` across the cores.

        ``C`` is ``m x n``, ``A`` is ``m x k``, ``B`` is ``k x n``; all
        dimensions must be multiples of the core size.  Row panels of C/A are
        distributed round-robin over the cores; every core consumes the same
        B.  Returns the updated C, the per-core cycle counts and the chip
        cycle count (the busiest core, since cores run in lock step on a
        shared B panel).
        """
        cfg = self.config
        c = np.array(c, dtype=float, copy=True)
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        m, k = a.shape
        if b.shape[0] != k or c.shape != (m, b.shape[1]):
            raise ValueError("operand shapes are inconsistent for GEMM")
        if m % cfg.nr or k % cfg.nr or b.shape[1] % cfg.nr:
            raise ValueError("all dimensions must be multiples of the core size nr")

        mc = max(cfg.nr, (m // (cfg.num_cores * cfg.nr)) * cfg.nr)
        assignments = self.scheduler.assign_panels(m, mc)
        per_core_cycles = [0] * cfg.num_cores
        for assignment in assignments:
            core = self.cores[assignment.core_index]
            rows = slice(assignment.row_start, assignment.row_end)
            result = lac_gemm(core, c[rows, :], a[rows, :], b)
            c[rows, :] = result.output
            per_core_cycles[assignment.core_index] += result.cycles
        chip_cycles = max(per_core_cycles) if per_core_cycles else 0
        total_flops = 2.0 * m * k * b.shape[1]
        return {
            "c": c,
            "per_core_cycles": per_core_cycles,
            "chip_cycles": chip_cycles,
            "total_flops": total_flops,
            "utilization": (total_flops / 2.0) / (chip_cycles * self.num_pes)
            if chip_cycles else 0.0,
        }

    # ----------------------------------------------------------------- model
    def model_gemm(self, n: int, mc: Optional[int] = None, kc: Optional[int] = None) -> ChipModelResult:
        """Evaluate the analytical chip model for an ``n x n x n`` GEMM."""
        cfg = self.config
        kc = kc if kc is not None else max(cfg.nr, min(256, n // 2 // cfg.nr * cfg.nr) or cfg.nr)
        mc = mc if mc is not None else kc
        z = self.offchip.bytes_per_cycle(cfg.frequency_ghz) / cfg.element_bytes
        return self.analytical.cycles_offchip(n, z, mc=mc, kc=kc)

    # ------------------------------------------------------------ power/area
    def component_inventory(self, gemm_like_activity: bool = True) -> List[PowerComponent]:
        """Chip-wide component inventory for the power model.

        Activity factors reflect steady-state GEMM: MAC units fully busy, the
        A store read once every ``nr`` cycles per PE, the B store read every
        cycle, buses carrying one broadcast per cycle, the on-chip memory
        supplying the streaming bandwidth of the analytical model.
        """
        cfg = self.config
        fmac = cfg.fmac()
        store_a = pe_store_a(int(cfg.pe_store_a_kbytes * 1024))
        store_b = pe_store_b(int(cfg.pe_store_b_kbytes * 1024))
        bus = BroadcastBus(width_bits=cfg.precision.bits, span_pes=cfg.nr)
        n_pes = self.num_pes
        n_buses = 2 * cfg.nr * cfg.num_cores

        activity_mac = 1.0 if gemm_like_activity else 0.0
        activity_a = 1.0 / cfg.nr if gemm_like_activity else 0.0
        activity_b = 1.0 if gemm_like_activity else 0.0
        activity_bus = 1.0 if gemm_like_activity else 0.0

        kc = 256
        mc = 256
        stream_words = self.analytical.onchip_bandwidth_words_per_cycle(mc, kc)
        onchip_accesses = min(stream_words, self.onchip_memory.peak_bandwidth_bytes_per_cycle
                              / cfg.element_bytes)
        components = [
            PowerComponent("MAC units", n_pes * fmac.dynamic_power_w, activity_mac,
                           category="compute", essential=True),
            PowerComponent("PE store A", n_pes * store_a.dynamic_power_w(cfg.frequency_ghz, 1.0),
                           activity_a, category="memory", essential=True),
            PowerComponent("PE store B", n_pes * store_b.dynamic_power_w(cfg.frequency_ghz, 1.0),
                           activity_b, category="memory", essential=True),
            PowerComponent("Broadcast buses",
                           n_buses * bus.dynamic_power_w(cfg.frequency_ghz, 1.0),
                           activity_bus, category="interconnect", essential=True),
            PowerComponent("On-chip memory",
                           self.onchip_memory.dynamic_power_w(onchip_accesses),
                           1.0 if gemm_like_activity else 0.0,
                           category="memory", essential=True),
            PowerComponent("Memory interface / IO",
                           0.05 * n_pes * fmac.dynamic_power_w,
                           1.0 if gemm_like_activity else 0.0,
                           category="io", essential=True),
        ]
        return components

    def power_breakdown(self, utilization: float = 0.9) -> PowerBreakdown:
        """Chip power breakdown running GEMM at the given utilisation."""
        if not (0.0 < utilization <= 1.0):
            raise ValueError("utilization must lie in (0, 1]")
        model = PowerModel(idle_ratio=0.25)
        gflops = self.peak_gflops() * utilization
        return model.breakdown("LAP", self.component_inventory(), gflops=gflops)

    def area_mm2(self) -> float:
        """Total chip area: PEs (MAC + stores + bus share) plus on-chip memory."""
        cfg = self.config
        fmac = cfg.fmac()
        store_a = pe_store_a(int(cfg.pe_store_a_kbytes * 1024))
        store_b = pe_store_b(int(cfg.pe_store_b_kbytes * 1024))
        from repro.hw.bus import BUS_AREA_PER_PE_MM2
        pe_area = fmac.area_mm2 + store_a.area_mm2 + store_b.area_mm2 + BUS_AREA_PER_PE_MM2
        return self.num_pes * pe_area + self.onchip_memory.area_mm2

    def describe(self) -> str:
        """One-line description of the chip configuration."""
        cfg = self.config
        return (f"LAP[{cfg.num_cores} x {cfg.nr}x{cfg.nr} PEs, "
                f"{cfg.precision.value}, {cfg.frequency_ghz:.2f} GHz, "
                f"{cfg.onchip_memory_mbytes:.1f} MB on-chip]: "
                f"peak {self.peak_gflops():.0f} GFLOPS, {self.area_mm2():.0f} mm^2")
