"""Pluggable scheduling policies for the LAP runtime.

The runtime's event-driven loop (:mod:`repro.lap.runtime`) keeps a heap of
*ready* tasks and a per-core availability clock; the policy decides two
things: the heap priority of a ready task and the core a popped task runs
on.  Three policies are provided:

``greedy``
    the original earliest-core list scheduler: tasks are ordered by the
    completion time of their latest dependency (ties by task id) and a
    popped task goes to the earliest-available core.  With functional
    timing this reproduces the pre-refactor monolithic scheduler exactly.
``critical_path``
    tasks with the longest downstream dependency chain are popped first
    (classic HEFT-style upward rank with unit weights); core selection is
    the same earliest-available rule.
``locality``
    greedy ordering, but a task prefers the core that last wrote its output
    tile (the tile is already resident in that core's local store), falling
    back to the earliest-starting core when the owner would delay the start.

Policies are stateless between :meth:`SchedulerPolicy.prepare` calls, so one
instance can schedule many graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lap.taskgraph import TaskDescriptor, TaskGraph


class SchedulerPolicy:
    """Base policy: greedy ready ordering + earliest-available core."""

    #: Registry name (subclasses override).
    name = "greedy"

    def prepare(self, graph: Sequence[TaskDescriptor]) -> None:
        """Precompute per-graph state (e.g. priorities) before scheduling."""

    def priority(self, task: TaskDescriptor, ready_time: float) -> Tuple:
        """Heap key of a ready task; lower keys are popped first.

        The runtime appends ``task_id`` as the final tie-breaker, so keys
        only need to order tasks, not uniquify them.
        """
        return (ready_time,)

    def choose_core(self, task: TaskDescriptor, ready_time: float,
                    core_free_at: Sequence[float],
                    tile_owner: Dict[Tuple[int, int], int]) -> int:
        """Index of the core the popped task should run on."""
        return min(range(len(core_free_at)), key=lambda i: (core_free_at[i], i))


class GreedyEarliestCore(SchedulerPolicy):
    """The original list scheduler: earliest-ready task, earliest-free core."""

    name = "greedy"


class CriticalPathPriority(SchedulerPolicy):
    """Prioritise tasks with the longest downstream dependency chain."""

    name = "critical_path"

    def __init__(self) -> None:
        self._rank: Dict[int, float] = {}

    def prepare(self, graph: Sequence[TaskDescriptor]) -> None:
        if not isinstance(graph, TaskGraph):
            graph = TaskGraph(list(graph))
        self._rank = graph.critical_path_lengths()

    def priority(self, task: TaskDescriptor, ready_time: float) -> Tuple:
        # Longest chain first; among equal ranks fall back to greedy order.
        return (-self._rank.get(task.task_id, 0.0), ready_time)


class LocalityAware(SchedulerPolicy):
    """Prefer the core already holding a task's output tile.

    Among the cores that can start the task earliest, the one that last
    wrote the task's output tile wins (its local store already holds the
    tile, so the host avoids a spill/reload through on-chip memory); a
    slower owner never delays the start.
    """

    name = "locality"

    def choose_core(self, task: TaskDescriptor, ready_time: float,
                    core_free_at: Sequence[float],
                    tile_owner: Dict[Tuple[int, int], int]) -> int:
        owner = tile_owner.get(task.output)
        return min(range(len(core_free_at)),
                   key=lambda i: (max(core_free_at[i], ready_time),
                                  0 if i == owner else 1, i))


#: Registry of scheduling policies by CLI/runner name.
POLICIES: Dict[str, type] = {
    GreedyEarliestCore.name: GreedyEarliestCore,
    CriticalPathPriority.name: CriticalPathPriority,
    LocalityAware.name: LocalityAware,
}


def policy_names() -> List[str]:
    """Names accepted by ``LAPRuntime(policy=...)`` and the sweep CLI."""
    return sorted(POLICIES)


def get_policy(policy: Union[str, SchedulerPolicy, None]) -> SchedulerPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if policy is None:
        return GreedyEarliestCore()
    if isinstance(policy, SchedulerPolicy):
        return policy
    try:
        return POLICIES[str(policy)]()
    except KeyError:
        raise ValueError(f"unknown scheduling policy '{policy}'; known "
                         f"policies: {', '.join(policy_names())}") from None
