"""Scheduling policies for the LAP: the single scheduling code path.

The runtime's event-driven loop (:mod:`repro.lap.runtime`) keeps a heap of
*ready* tasks and a per-core availability clock; the policy decides two
things: the heap priority of a ready task and the core a popped task runs
on.  Four policies are provided:

``greedy``
    the original earliest-core list scheduler: tasks are ordered by the
    completion time of their latest dependency (ties by task id) and a
    popped task goes to the earliest-available core.  With functional
    timing this reproduces the pre-refactor monolithic scheduler exactly.
``critical_path``
    tasks with the longest downstream dependency chain are popped first
    (classic HEFT-style upward rank with unit weights); core selection is
    the same earliest-available rule.
``locality``
    greedy ordering, but a task prefers the core that last wrote its output
    tile (the tile is already resident in that core's local store), falling
    back to the earliest-starting core when the owner would delay the start.
``memory_aware``
    generalises ``locality`` to the chip-level working set: ready tasks are
    scored by how many bytes of their tile footprint are *not* resident in
    on-chip memory (fewest missing bytes first, i.e. maximal reuse of what
    is already on chip), with the locality core preference on top.  When the
    two-level hierarchy is enabled the score additionally counts the bytes
    the *assigned* core's local store would have to fill (the assigned core
    is the one the locality rule prefers: the owner of the output tile), so
    the ordering favours work whose data already sits next to its core.
    The runtime binds its :class:`repro.lap.memory.MemoryHierarchy` to the
    policy and re-validates heap priorities lazily when the residency state
    moved on (``dynamic_priority``), so the ordering tracks the simulated
    working set instead of a stale snapshot.
``affinity``
    the two-level counterpart of ``locality``: ready ordering is inherited
    from ``memory_aware``, and a popped task prefers the core whose local
    store already holds the largest fraction of the task's footprint
    (falling back to the output-tile owner, then the earliest-available
    core).  Without local stores it degrades to greedy core selection.

Policies are stateless between :meth:`SchedulerPolicy.prepare` calls, so one
instance can schedule many graphs.

The *static* panel pre-scheduler of the monolithic GEMM path
(:class:`GEMMScheduler` / :class:`PanelAssignment`) also lives here now, so
all scheduling code shares one module; ``repro.lap.scheduler`` remains as a
deprecated import shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.lap.taskgraph import TaskDescriptor, TaskGraph


class SchedulerPolicy:
    """Base policy: greedy ready ordering + earliest-available core."""

    #: Registry name (subclasses override).
    name = "greedy"

    #: Whether heap priorities depend on mutable memory-residency state and
    #: must be lazily re-validated by the runtime when that state changes.
    dynamic_priority = False

    def prepare(self, graph: Sequence[TaskDescriptor]) -> None:
        """Precompute per-graph state (e.g. priorities) before scheduling."""

    def bind_memory(self, memory) -> None:
        """Receive the runtime's memory hierarchy for this schedule.

        Called once per ``execute()`` (with ``None`` when data-movement
        accounting is disabled); only residency-driven policies care.
        """

    def bind_owners(self, tile_owner: Dict[Tuple[int, int], int]) -> None:
        """Receive the runtime's live output-tile ownership map.

        Called once per ``execute()`` with the dictionary the scheduler loop
        mutates in place (tile coordinate -> last writing core), so policies
        that score against a core's local store can name the core the
        locality rule would assign.
        """

    def priority(self, task: TaskDescriptor, ready_time: float) -> Tuple:
        """Heap key of a ready task; lower keys are popped first.

        The runtime appends ``task_id`` as the final tie-breaker, so keys
        only need to order tasks, not uniquify them.
        """
        return (ready_time,)

    def choose_core(self, task: TaskDescriptor, ready_time: float,
                    core_free_at: Sequence[float],
                    tile_owner: Dict[Tuple[int, int], int]) -> int:
        """Index of the core the popped task should run on."""
        return min(range(len(core_free_at)), key=lambda i: (core_free_at[i], i))


class GreedyEarliestCore(SchedulerPolicy):
    """The original list scheduler: earliest-ready task, earliest-free core."""

    name = "greedy"


class CriticalPathPriority(SchedulerPolicy):
    """Prioritise tasks with the longest downstream dependency chain."""

    name = "critical_path"

    def __init__(self) -> None:
        self._rank: Dict[int, float] = {}

    def prepare(self, graph: Sequence[TaskDescriptor]) -> None:
        if not isinstance(graph, TaskGraph):
            graph = TaskGraph(list(graph))
        self._rank = graph.critical_path_lengths()

    @property
    def ranks(self) -> Dict[int, float]:
        """Critical-path rank per task id (filled by :meth:`prepare`)."""
        return self._rank

    def priority(self, task: TaskDescriptor, ready_time: float) -> Tuple:
        # Longest chain first; among equal ranks fall back to greedy order.
        return (-self._rank.get(task.task_id, 0.0), ready_time)

    def negated_rank_array(self, task_ids: Sequence[int]):
        """Vectorized ``-rank`` per task id, for the fast scheduler loop.

        One ``np.fromiter`` pass over the prepared rank dict; missing ids
        score 0.0 exactly like :meth:`priority`, and negating after the
        gather produces the same floats as negating each lookup.
        """
        import numpy as np

        get = self._rank.get
        arr = np.fromiter((get(tid, 0.0) for tid in task_ids),
                          dtype=np.float64, count=len(task_ids))
        return np.negative(arr)


class LocalityAware(SchedulerPolicy):
    """Prefer the core already holding a task's output tile.

    Among the cores that can start the task earliest, the one that last
    wrote the task's output tile wins (its local store already holds the
    tile, so the host avoids a spill/reload through on-chip memory); a
    slower owner never delays the start.
    """

    name = "locality"

    def choose_core(self, task: TaskDescriptor, ready_time: float,
                    core_free_at: Sequence[float],
                    tile_owner: Dict[Tuple[int, int], int]) -> int:
        owner = tile_owner.get(task.output)
        return min(range(len(core_free_at)),
                   key=lambda i: (max(core_free_at[i], ready_time),
                                  0 if i == owner else 1, i))


class MemoryAware(LocalityAware):
    """Score ready tasks by resident-tile reuse over the on-chip working set.

    Priority key: ``(missing_bytes, local_missing_bytes, ready_time)`` --
    among ready tasks the one whose tile footprint needs the fewest
    off-chip fetches right now runs first, so the schedule works resident
    data to completion before streaming new tiles in.  With per-core local
    stores enabled, ties on off-chip bytes break by the fill bytes of the
    *assigned* core's local store -- the core the inherited locality rule
    prefers (the last writer of the output tile, core 0 before anyone wrote
    it).  Off-chip avoidance stays lexicographically first because a DRAM
    round trip costs an order of magnitude more than an on-chip transfer;
    the local term only refines the order within equal off-chip cost.
    Without a bound memory hierarchy (data-movement accounting disabled)
    every score is zero and the policy degrades to greedy ordering.
    """

    name = "memory_aware"
    dynamic_priority = True

    def __init__(self) -> None:
        self._memory = None
        self._owners: Dict[Tuple[int, int], int] = {}

    def bind_memory(self, memory) -> None:
        self._memory = memory

    def bind_owners(self, tile_owner: Dict[Tuple[int, int], int]) -> None:
        self._owners = tile_owner

    def _assigned_core(self, task: TaskDescriptor) -> int:
        return self._owners.get(task.output, 0)

    def priority(self, task: TaskDescriptor, ready_time: float) -> Tuple:
        if self._memory is None:
            return (0, ready_time)
        missing = self._memory.task_missing_bytes(task)
        if getattr(self._memory, "has_local_stores", False):
            local = self._memory.task_missing_local_bytes(
                task, self._assigned_core(task))
            return (missing, local, ready_time)
        return (missing, ready_time)

    def bulk_priorities(self, arrays, memory, indices: Sequence[int],
                        ready_times: Sequence,
                        assigned_cores=None):
        """Vectorized :meth:`priority` over many candidate tasks at once.

        ``arrays`` is the graph's :class:`repro.lap.fastpath.GraphArrays`,
        ``indices`` graph positions (not task ids), ``ready_times`` the
        per-candidate ready times (entering the key tuples unchanged), and
        ``assigned_cores`` the per-candidate local-store index of the
        two-level tie-break term (``None`` = core 0 for every candidate,
        the pre-ownership default of :meth:`_assigned_core`).  Footprints
        are gathered into one flat CSR batch and scored by the residency
        classes' batch kernels; the returned key tuples are
        element-for-element equal to the scalar :meth:`priority` keys
        (plain Python ints, same ordering semantics).  Returns ``None``
        when ``memory`` is not the fast SoA hierarchy -- callers then fall
        back to scalar scoring.
        """
        if memory is None or not getattr(memory, "fast", False):
            return None
        if not indices:
            return []
        import numpy as np

        idx = np.asarray(indices, dtype=np.int64)
        indptr = arrays.foot_indptr
        counts = indptr[idx + 1] - indptr[idx]
        sub_indptr = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(counts, out=sub_indptr[1:])
        total = int(sub_indptr[-1])
        # Gather each candidate's footprint slice: position arithmetic in
        # numpy, then one fancy index for the payload.
        offsets = (np.arange(total, dtype=np.int64)
                   - np.repeat(sub_indptr[:-1], counts)
                   + np.repeat(indptr[idx], counts))
        flat = arrays.foot_indices[offsets]
        missing = memory.residency.missing_bytes_batch(sub_indptr, flat)
        stores = getattr(memory, "local_stores", None)
        if stores is None:
            return [(int(m), r) for m, r in zip(missing, ready_times)]
        if assigned_cores is None:
            local = stores[0].missing_bytes_batch(sub_indptr, flat)
        else:
            cores_arr = np.asarray(assigned_cores, dtype=np.int64)
            local = np.zeros(len(idx), dtype=np.int64)
            for ci in sorted(set(int(c) for c in cores_arr)):
                vals = stores[ci].missing_bytes_batch(sub_indptr, flat)
                mask = cores_arr == ci
                local[mask] = vals[mask]
        return [(int(m), int(lo), r)
                for m, lo, r in zip(missing, local, ready_times)]


class AffinityScheduler(MemoryAware):
    """Send a task to the core whose local store holds the most of its data.

    Ready ordering is inherited from ``memory_aware``; core selection ranks
    the cores by the footprint bytes their local stores already hold (most
    resident bytes first), breaking ties by output-tile ownership, earliest
    availability and index.  A core that holds the data is preferred even
    when a data-less core is free earlier: re-fetching through the shared
    level usually costs more than waiting.  Without local stores (or with
    data-movement accounting disabled) no residency signal exists and the
    policy falls back to the earliest-available core.
    """

    name = "affinity"

    def choose_core(self, task: TaskDescriptor, ready_time: float,
                    core_free_at: Sequence[float],
                    tile_owner: Dict[Tuple[int, int], int]) -> int:
        memory = self._memory
        if memory is None or not getattr(memory, "has_local_stores", False):
            return min(range(len(core_free_at)),
                       key=lambda i: (core_free_at[i], i))
        owner = tile_owner.get(task.output)
        return min(range(len(core_free_at)),
                   key=lambda i: (-memory.task_local_resident_bytes(task, i),
                                  0 if i == owner else 1,
                                  max(core_free_at[i], ready_time), i))


#: Registry of scheduling policies by CLI/runner name.
POLICIES: Dict[str, type] = {
    GreedyEarliestCore.name: GreedyEarliestCore,
    CriticalPathPriority.name: CriticalPathPriority,
    LocalityAware.name: LocalityAware,
    MemoryAware.name: MemoryAware,
    AffinityScheduler.name: AffinityScheduler,
}


def policy_names() -> List[str]:
    """Names accepted by ``LAPRuntime(policy=...)`` and the sweep CLI."""
    return sorted(POLICIES)


def get_policy(policy: Union[str, SchedulerPolicy, None]) -> SchedulerPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if policy is None:
        return GreedyEarliestCore()
    if isinstance(policy, SchedulerPolicy):
        return policy
    try:
        return POLICIES[str(policy)]()
    except KeyError:
        raise ValueError(f"unknown scheduling policy '{policy}'; known "
                         f"policies: {', '.join(policy_names())}") from None


# --------------------------------------------------------------------------
# Static panel pre-scheduler (Figure 4.1), folded in from the pre-task-graph
# ``repro.lap.scheduler`` module so that one module owns all scheduling code.
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class PanelAssignment:
    """Assignment of one ``mc``-row panel of C (and A) to one core."""

    core_index: int
    row_start: int
    row_end: int            #: exclusive
    panel_index: int        #: global index of the row panel

    @property
    def rows(self) -> int:
        """Number of matrix rows in the panel."""
        return self.row_end - self.row_start


class GEMMScheduler:
    """Distributes the row panels of C over the cores of a LAP.

    Figure 4.1 of the dissertation describes how a large ``C += A B`` is
    split across cores: the on-chip memory holds an ``n x n`` block of C
    plus the current ``kc x n`` row panel of B; each core is assigned a
    distinct set of ``mc``-row panels of C (and the matching row panels of
    A), while every core shares the same panel of B.  This is the *static*
    counterpart of the task-graph policies above: it produces an up-front
    panel assignment for the monolithic GEMM path instead of scheduling a
    dependency graph event by event.

    Parameters
    ----------
    num_cores:
        Number of cores (``S``).
    nr:
        Core dimension; panel heights must be multiples of ``nr``.
    """

    def __init__(self, num_cores: int, nr: int = 4):
        if num_cores < 1:
            raise ValueError("the LAP needs at least one core")
        if nr < 2:
            raise ValueError("core dimension must be >= 2")
        self.num_cores = num_cores
        self.nr = nr

    def choose_mc(self, n: int, onchip_capacity_words: float, kc: int) -> int:
        """Pick the largest panel height whose A blocks fit next to C on chip.

        The on-chip memory must hold ``n^2`` words of C, ``S * mc * kc`` words
        of A blocks and ``2 * kc * n`` words of B panels; mc is rounded down
        to a multiple of ``nr`` and at least ``nr``.
        """
        if n <= 0 or kc <= 0:
            raise ValueError("problem dimensions must be positive")
        if onchip_capacity_words <= 0:
            raise ValueError("on-chip capacity must be positive")
        available = onchip_capacity_words - float(n) * n - 2.0 * kc * n
        if available <= 0:
            return self.nr
        mc = int(available / (self.num_cores * kc))
        mc = max(self.nr, (mc // self.nr) * self.nr)
        # A panel taller than the share of the problem assigned to one core is
        # pointless.
        per_core_rows = max(self.nr, (n // (self.num_cores * self.nr)) * self.nr)
        return min(mc, per_core_rows) if per_core_rows >= self.nr else self.nr

    def assign_panels(self, n: int, mc: int) -> List[PanelAssignment]:
        """Round-robin assignment of ``mc``-row panels of C to cores.

        The final panel may be shorter when ``n`` is not a multiple of ``mc``;
        it is still a multiple of ``nr`` because callers validate ``n``.
        """
        if n <= 0 or mc <= 0:
            raise ValueError("problem size and panel height must be positive")
        if n % self.nr != 0 or mc % self.nr != 0:
            raise ValueError("n and mc must be multiples of the core size nr")
        assignments: List[PanelAssignment] = []
        panel_index = 0
        for row_start in range(0, n, mc):
            row_end = min(row_start + mc, n)
            assignments.append(PanelAssignment(
                core_index=panel_index % self.num_cores,
                row_start=row_start,
                row_end=row_end,
                panel_index=panel_index,
            ))
            panel_index += 1
        return assignments

    def per_core_work(self, assignments: Sequence[PanelAssignment]) -> Dict[int, List[PanelAssignment]]:
        """Group the panel assignments by core index."""
        out: Dict[int, List[PanelAssignment]] = {i: [] for i in range(self.num_cores)}
        for a in assignments:
            out[a.core_index].append(a)
        return out

    def load_balance(self, assignments: Sequence[PanelAssignment]) -> float:
        """Ratio of the lightest to the heaviest per-core row count (1.0 = perfect)."""
        work = self.per_core_work(assignments)
        rows = [sum(a.rows for a in panels) for panels in work.values()]
        busiest = max(rows) if rows else 0
        if busiest == 0:
            return 1.0
        return min(rows) / busiest
