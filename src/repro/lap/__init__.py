"""Chip-level Linear Algebra Processor (LAP): multiple LACs plus memory.

The LAP surrounds ``S`` Linear Algebra Cores with a shared on-chip memory
(banked SRAM, one bank coupled to each core plus shared banks) and an
off-chip memory interface.  This subpackage provides:

* :mod:`repro.lap.chip` -- the chip object tying cores, on-chip memory and
  the off-chip interface together, with chip-wide cycle/energy accounting;
* :mod:`repro.lap.policies` -- all scheduling code: the pluggable task-graph
  policies (greedy / critical_path / locality / memory_aware) plus the
  static panel-blocking :class:`GEMMScheduler` of Figure 4.1 (each core
  owns a row panel of C; panels of B are broadcast to all cores);
* :mod:`repro.lap.memory` -- the unified memory-hierarchy layer: LRU tile
  residency over the on-chip capacity, spill/refill accounting, bandwidth
  stalls and per-task energy;
* :mod:`repro.lap.offchip` -- traffic accounting for the external memory,
  including the extra blocking layer used when C does not fit on chip.
"""

from repro.lap.chip import LinearAlgebraProcessor, LAPConfig
from repro.lap.offchip import OffChipTrafficModel
from repro.lap.taskgraph import (AlgorithmsByBlocks, TaskDescriptor, TaskGraph,
                                 TaskKind)
from repro.lap.policies import (POLICIES, GEMMScheduler, PanelAssignment,
                                SchedulerPolicy, get_policy, policy_names)
from repro.lap.memory import (BandwidthModel, MemoryHierarchy, TaskEnergyModel,
                              TaskMemoryEvent, TileResidency)
from repro.lap.timing import (TIMING_MODELS, FunctionalTiming, MemoizedTiming,
                              TimingModel, get_timing_model, timing_names)
from repro.lap.runtime import LAPRuntime, TaskExecution

__all__ = [
    "LinearAlgebraProcessor",
    "LAPConfig",
    "GEMMScheduler",
    "PanelAssignment",
    "OffChipTrafficModel",
    "BandwidthModel",
    "MemoryHierarchy",
    "TaskEnergyModel",
    "TaskMemoryEvent",
    "TileResidency",
    "AlgorithmsByBlocks",
    "LAPRuntime",
    "TaskDescriptor",
    "TaskExecution",
    "TaskGraph",
    "TaskKind",
    "SchedulerPolicy",
    "POLICIES",
    "get_policy",
    "policy_names",
    "TimingModel",
    "FunctionalTiming",
    "MemoizedTiming",
    "TIMING_MODELS",
    "get_timing_model",
    "timing_names",
]
