"""Chip-level Linear Algebra Processor (LAP): multiple LACs plus memory.

The LAP surrounds ``S`` Linear Algebra Cores with a shared on-chip memory
(banked SRAM, one bank coupled to each core plus shared banks) and an
off-chip memory interface.  This subpackage provides:

* :mod:`repro.lap.chip` -- the chip object tying cores, on-chip memory and
  the off-chip interface together, with chip-wide cycle/energy accounting;
* :mod:`repro.lap.scheduler` -- the panel-blocking scheduler that distributes
  a large GEMM across the cores exactly as Figure 4.1 describes (each core
  owns a row panel of C; panels of B are broadcast to all cores);
* :mod:`repro.lap.offchip` -- traffic accounting for the external memory,
  including the extra blocking layer used when C does not fit on chip.
"""

from repro.lap.chip import LinearAlgebraProcessor, LAPConfig
from repro.lap.scheduler import GEMMScheduler, PanelAssignment
from repro.lap.offchip import OffChipTrafficModel
from repro.lap.runtime import AlgorithmsByBlocks, LAPRuntime, TaskDescriptor, TaskKind

__all__ = [
    "LinearAlgebraProcessor",
    "LAPConfig",
    "GEMMScheduler",
    "PanelAssignment",
    "OffChipTrafficModel",
    "AlgorithmsByBlocks",
    "LAPRuntime",
    "TaskDescriptor",
    "TaskKind",
]
