"""Off-chip traffic accounting for the LAP.

Separates the external-memory view of a GEMM from the on-chip execution: how
many bytes cross the chip boundary, at what rate they must arrive to keep the
cores busy, and what happens when the on-chip memory is too small to hold the
whole block of C (the extra blocking layer of Section 4.2.3).

Since the memory-hierarchy refactor the byte counts themselves come from
:func:`repro.lap.memory.gemm_stream_traffic` -- the closed-form limit of the
tile-residency model for a streamed monolithic GEMM -- and this module is a
thin, API-compatible view over them (equivalence is pinned by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hw.memory import OffChipInterface
from repro.lap.memory import gemm_stream_traffic


@dataclass(frozen=True)
class TrafficSummary:
    """Bytes moved across the chip boundary for one GEMM problem."""

    n: int
    element_bytes: int
    a_bytes: float
    b_bytes: float
    c_read_bytes: float
    c_write_bytes: float

    def __post_init__(self) -> None:
        if self.element_bytes <= 0:
            raise ValueError("element bytes must be positive")
        if min(self.a_bytes, self.b_bytes, self.c_read_bytes,
               self.c_write_bytes) < 0:
            raise ValueError("byte counts must be non-negative")

    @property
    def total_bytes(self) -> float:
        """Total off-chip traffic."""
        return self.a_bytes + self.b_bytes + self.c_read_bytes + self.c_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of off-chip traffic.

        Degenerate problems (``n <= 0`` or nothing moved) report ``0.0``
        rather than ``inf`` so downstream ratios and sweep rows stay finite.
        """
        flops = 2.0 * float(self.n) ** 3
        if self.n <= 0 or self.total_bytes <= 0:
            return 0.0
        return flops / self.total_bytes


class OffChipTrafficModel:
    """Computes off-chip traffic and transfer-limited performance bounds."""

    def __init__(self, num_cores: int, nr: int = 4, element_bytes: int = 8):
        if num_cores < 1:
            raise ValueError("need at least one core")
        if element_bytes <= 0:
            raise ValueError("element bytes must be positive")
        self.num_cores = num_cores
        self.nr = nr
        self.element_bytes = element_bytes

    def traffic(self, n: int, onchip_fraction_of_c: float = 1.0) -> TrafficSummary:
        """Off-chip traffic of a square ``n x n x n`` GEMM.

        ``onchip_fraction_of_c`` in (0, 1] says what fraction of the C block
        can be kept resident; smaller fractions mean the panels of A and B are
        re-streamed once per resident sub-block (``1/fraction`` times).
        """
        parts = gemm_stream_traffic(n, self.element_bytes, onchip_fraction_of_c)
        return TrafficSummary(n=n, element_bytes=self.element_bytes,
                              a_bytes=parts["a_bytes"], b_bytes=parts["b_bytes"],
                              c_read_bytes=parts["c_read_bytes"],
                              c_write_bytes=parts["c_write_bytes"])

    def bandwidth_bound_gflops(self, n: int, interface: OffChipInterface,
                               onchip_fraction_of_c: float = 1.0) -> float:
        """Upper bound on GFLOPS imposed by the off-chip interface alone."""
        summary = self.traffic(n, onchip_fraction_of_c)
        seconds = summary.total_bytes / (interface.bandwidth_gbytes_per_sec * 1e9)
        flops = 2.0 * float(n) ** 3
        return flops / seconds / 1e9 if seconds > 0 else float("inf")

    def compute_bound_gflops(self, frequency_ghz: float) -> float:
        """Upper bound imposed by the MAC throughput of the cores."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        return 2.0 * self.num_cores * self.nr * self.nr * frequency_ghz

    def roofline_gflops(self, n: int, interface: OffChipInterface, frequency_ghz: float,
                        onchip_fraction_of_c: float = 1.0) -> float:
        """Roofline-style achievable GFLOPS: min(compute bound, bandwidth bound)."""
        return min(self.compute_bound_gflops(frequency_ghz),
                   self.bandwidth_bound_gflops(n, interface, onchip_fraction_of_c))

    def transfer_energy_j(self, n: int, interface: OffChipInterface,
                          onchip_fraction_of_c: float = 1.0) -> float:
        """Energy spent moving the problem across the chip boundary."""
        return interface.transfer_energy_j(self.traffic(n, onchip_fraction_of_c).total_bytes)
