"""Panel-blocking scheduler for GEMM across the cores of a LAP.

Figure 4.1 of the dissertation describes how a large ``C += A B`` is split
across cores: the on-chip memory holds an ``n x n`` block of C plus the
current ``kc x n`` row panel of B; each core is assigned a distinct set of
``mc``-row panels of C (and the matching row panels of A), while every core
shares the same panel of B.  This module produces that assignment and the
resulting per-core work lists so that the chip object can simulate or model
the execution, and the tests can check coverage/disjointness invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PanelAssignment:
    """Assignment of one ``mc``-row panel of C (and A) to one core."""

    core_index: int
    row_start: int
    row_end: int            #: exclusive
    panel_index: int        #: global index of the row panel

    @property
    def rows(self) -> int:
        """Number of matrix rows in the panel."""
        return self.row_end - self.row_start


class GEMMScheduler:
    """Distributes the row panels of C over the cores of a LAP.

    Parameters
    ----------
    num_cores:
        Number of cores (``S``).
    nr:
        Core dimension; panel heights must be multiples of ``nr``.
    """

    def __init__(self, num_cores: int, nr: int = 4):
        if num_cores < 1:
            raise ValueError("the LAP needs at least one core")
        if nr < 2:
            raise ValueError("core dimension must be >= 2")
        self.num_cores = num_cores
        self.nr = nr

    def choose_mc(self, n: int, onchip_capacity_words: float, kc: int) -> int:
        """Pick the largest panel height whose A blocks fit next to C on chip.

        The on-chip memory must hold ``n^2`` words of C, ``S * mc * kc`` words
        of A blocks and ``2 * kc * n`` words of B panels; mc is rounded down
        to a multiple of ``nr`` and at least ``nr``.
        """
        if n <= 0 or kc <= 0:
            raise ValueError("problem dimensions must be positive")
        if onchip_capacity_words <= 0:
            raise ValueError("on-chip capacity must be positive")
        available = onchip_capacity_words - float(n) * n - 2.0 * kc * n
        if available <= 0:
            return self.nr
        mc = int(available / (self.num_cores * kc))
        mc = max(self.nr, (mc // self.nr) * self.nr)
        # A panel taller than the share of the problem assigned to one core is
        # pointless.
        per_core_rows = max(self.nr, (n // (self.num_cores * self.nr)) * self.nr)
        return min(mc, per_core_rows) if per_core_rows >= self.nr else self.nr

    def assign_panels(self, n: int, mc: int) -> List[PanelAssignment]:
        """Round-robin assignment of ``mc``-row panels of C to cores.

        The final panel may be shorter when ``n`` is not a multiple of ``mc``;
        it is still a multiple of ``nr`` because callers validate ``n``.
        """
        if n <= 0 or mc <= 0:
            raise ValueError("problem size and panel height must be positive")
        if n % self.nr != 0 or mc % self.nr != 0:
            raise ValueError("n and mc must be multiples of the core size nr")
        assignments: List[PanelAssignment] = []
        panel_index = 0
        for row_start in range(0, n, mc):
            row_end = min(row_start + mc, n)
            assignments.append(PanelAssignment(
                core_index=panel_index % self.num_cores,
                row_start=row_start,
                row_end=row_end,
                panel_index=panel_index,
            ))
            panel_index += 1
        return assignments

    def per_core_work(self, assignments: Sequence[PanelAssignment]) -> Dict[int, List[PanelAssignment]]:
        """Group the panel assignments by core index."""
        out: Dict[int, List[PanelAssignment]] = {i: [] for i in range(self.num_cores)}
        for a in assignments:
            out[a.core_index].append(a)
        return out

    def load_balance(self, assignments: Sequence[PanelAssignment]) -> float:
        """Ratio of the lightest to the heaviest per-core row count (1.0 = perfect)."""
        work = self.per_core_work(assignments)
        rows = [sum(a.rows for a in panels) for panels in work.values()]
        busiest = max(rows) if rows else 0
        if busiest == 0:
            return 1.0
        return min(rows) / busiest
