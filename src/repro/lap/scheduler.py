"""Deprecated location of the static GEMM panel scheduler.

The panel-blocking :class:`GEMMScheduler` and :class:`PanelAssignment` moved
into :mod:`repro.lap.policies` so that the task-graph policies and the static
pre-scheduler share one scheduling module.  This shim keeps historical
imports working; new code should import from ``repro.lap.policies``.
"""

from __future__ import annotations

import warnings

from repro.lap.policies import GEMMScheduler, PanelAssignment

__all__ = ["GEMMScheduler", "PanelAssignment"]

warnings.warn(
    "repro.lap.scheduler is deprecated; import GEMMScheduler and "
    "PanelAssignment from repro.lap.policies instead",
    DeprecationWarning, stacklevel=2)
