"""Million-task hot path: SoA residency, an inlined scheduler loop, replay.

The reference runtime (:mod:`repro.lap.runtime` + :mod:`repro.lap.memory`)
is written for clarity: per-task ``OrderedDict`` LRU churn, policy method
dispatch, a dataclass per execution record.  At the graph sizes where the
paper's scheduling/memory results get interesting (a 16k^2 tiled Cholesky is
~360k tasks) that costs tens of microseconds per task.  This module rebuilds
the hot path in three layers while keeping the reference implementation as
the oracle the equivalence suite pins against:

* **Vectorized residency accounting** -- :class:`TileInterner` maps
  ``(operand, (i, j))`` tile names to dense integer ids once per graph;
  :class:`FastTileResidency` / :class:`FastLocalStore` then keep the LRU
  state as structure-of-arrays (a timestamp per tile id, clock-based LRU
  with a FIFO queue of touches whose position encodes the stamp) instead
  of per-tile ``OrderedDict`` nodes.  A task's whole footprint is touched in one call.  The hot state
  is deliberately plain Python lists, not numpy arrays: footprints are 1-4
  tiles, where scalar list indexing beats any ufunc dispatch; numpy is used
  for the CSR graph exports where bulk arithmetic actually wins.
* **Event-loop batching** -- :class:`GraphArrays` precomputes
  successor/indegree CSR arrays and per-task interned footprints for a
  :class:`~repro.lap.taskgraph.TaskGraph`; :func:`execute_fast` runs the
  scheduler loop with every policy / timing / memory decision inlined
  (no per-task method dispatch) and appends one plain tuple per task,
  materialising :class:`~repro.lap.runtime.TaskExecution` rows lazily.
  Under memoized timing the per-signature cycle table collapses to a
  per-group lookup and the hit counters are reconciled in bulk.
* **Schedule-replay costing** -- :class:`ScheduleTrace` records a finished
  schedule (task -> core, start order, movement totals); when a sweep point
  differs from a recorded one only in constants that provably cannot change
  the dispatch order (off-chip bandwidth with zero spill traffic, prefetch
  overlap with zero visible movement), the ``lap_runtime`` runner replays
  the recorded costs instead of re-simulating.

Equivalence contract: for every supported configuration the fast path
produces *byte-identical* schedules, stats, traffic splits, energy and
attribution to the reference loop (same float operations in the same
order).  The one intentional difference: ``MemoryHierarchy.events`` stays
empty on the fast path (per-task :class:`TaskMemoryEvent` records are never
materialised); nothing outside the tracer-enabled reference path consumes
it.  Unsupported configurations (an enabled tracer, policy subclasses,
plain task lists) fall back to the reference loop in
:meth:`LAPRuntime.execute`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lap.taskgraph import (_TASK_FLOPS, TaskDescriptor, TaskGraph,
                                 TileAccess)
from repro.lap.timing import MemoizedTiming

__all__ = [
    "FastLocalStore", "FastTileResidency", "GraphArrays", "REPLAY_STATS",
    "ScheduleTrace", "TileInterner", "execute_fast",
]


class TileInterner:
    """Bijection between tile names and dense integer ids.

    Shared between the graph arrays and every residency level of one
    schedule so that a tile has one id everywhere; ids are allocated in
    first-seen order and never reused.
    """

    __slots__ = ("ids", "names")

    def __init__(self) -> None:
        self.ids: Dict[TileAccess, int] = {}
        self.names: List[TileAccess] = []

    def __len__(self) -> int:
        return len(self.names)

    def intern(self, access: TileAccess) -> int:
        """Id of a tile name, allocating one on first sight."""
        tid = self.ids.get(access)
        if tid is None:
            tid = len(self.names)
            self.ids[access] = tid
            self.names.append(access)
        return tid


class FastTileResidency:
    """Structure-of-arrays drop-in for :class:`repro.lap.memory.TileResidency`.

    Same semantics, observable state and return values as the
    ``OrderedDict`` reference (the property suite pins them against each
    other on random access streams); the LRU order lives in a timestamp
    array (``_stamp[tile_id]``, -1 = not resident) driven by a monotonic
    clock.  Because stamps are handed out in strictly increasing order --
    exactly one per queue append -- the queue entry at position ``k``
    always carries stamp ``_qbase + k``, so a single list of tile ids plus
    a head index (compacted occasionally) stands in for the dict's
    insertion order: no heap, and no stored stamps.  A footprint access
    re-stamps every tile (the ``move_to_end`` of the reference), so the
    victim scan skips stale queue entries until it finds a tile whose stamp
    is still current; a stamp at or above the footprint's first stamp means
    only pinned tiles remain and eviction stops, exactly like the
    reference's pinned-set guard.
    """

    def __init__(self, capacity_bytes: float, tile_bytes: int,
                 interner: Optional[TileInterner] = None):
        if capacity_bytes <= 0:
            raise ValueError("on-chip capacity must be positive")
        if tile_bytes <= 0:
            raise ValueError("tile bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.tile_bytes = int(tile_bytes)
        self._interner = interner if interner is not None else TileInterner()
        self._stamp: List[int] = []
        self._dirty: List[bool] = []
        self._ever: List[bool] = []
        self._qt: List[int] = []      # tile id per stamp; entry k has stamp
        self._qhead = 0               # _qbase + k, by clock monotonicity
        self._qbase = 0
        self._clock = 0
        # Largest resident tile count that does NOT overflow the capacity
        # (exact integer form of ``rc * tile_bytes > capacity_bytes``).
        cap_max = int(self.capacity_bytes // self.tile_bytes)
        while (cap_max + 1) * self.tile_bytes <= self.capacity_bytes:
            cap_max += 1
        while cap_max > 0 and cap_max * self.tile_bytes > self.capacity_bytes:
            cap_max -= 1
        self._cap_tiles = cap_max
        self._rc = 0
        self._dirty_count = 0
        self._last_evicted_ids: List[int] = []
        self.peak_resident_bytes = 0
        self.version = 0
        self._ensure(len(self._interner))

    def _ensure(self, n: int) -> None:
        grow = n - len(self._stamp)
        if grow > 0:
            self._stamp.extend([-1] * grow)
            self._dirty.extend([False] * grow)
            self._ever.extend([False] * grow)

    # ------------------------------------------------------------- queries
    @property
    def resident_bytes(self) -> int:
        return self._rc * self.tile_bytes

    @property
    def last_evicted(self) -> List[TileAccess]:
        """Tiles the most recent touch()/flush() evicted, in eviction order."""
        names = self._interner.names
        return [names[tid] for tid in self._last_evicted_ids]

    def is_resident(self, access: TileAccess) -> bool:
        tid = self._interner.ids.get(access)
        return (tid is not None and tid < len(self._stamp)
                and self._stamp[tid] >= 0)

    def missing_bytes(self, accesses) -> int:
        """Bytes a footprint would have to fetch right now (no state change)."""
        ids = self._interner.ids
        stamp = self._stamp
        n = len(stamp)
        missing = set()
        for access in accesses:
            tid = ids.get(access)
            if tid is None or tid >= n or stamp[tid] < 0:
                missing.add(access)
        return len(missing) * self.tile_bytes

    def missing_bytes_batch(self, indptr, indices) -> np.ndarray:
        """Vectorized :meth:`missing_bytes` over a CSR batch of footprints.

        ``indptr`` / ``indices`` describe ``len(indptr) - 1`` interned
        footprints (e.g. slices of :attr:`GraphArrays.foot_indptr` /
        ``foot_indices``); entry ``k`` of the returned int64 array equals
        ``missing_bytes`` of footprint ``k``.  The kernel is one fancy
        index over the stamp array plus a cumulative sum differenced at the
        row pointers (``np.add.reduceat`` mishandles empty segments).  The
        scalar form deduplicates names through a set, so the batch form is
        equivalent only on duplicate-free footprints -- which is exactly
        what the graph arrays store.
        """
        self._ensure(len(self._interner))
        stamp = np.fromiter(self._stamp, dtype=np.int64,
                            count=len(self._stamp))
        miss = np.where(stamp[indices] < 0, 1, 0)
        csum = np.zeros(len(miss) + 1, dtype=np.int64)
        np.cumsum(miss, out=csum[1:])
        return (csum[indptr[1:]] - csum[indptr[:-1]]) * self.tile_bytes

    # ------------------------------------------------------------- updates
    def touch(self, reads, writes) -> Tuple[float, float, float, float]:
        """Reference-equivalent touch over tile names; see ``touch_ids``."""
        intern = self._interner.intern
        foot: List[int] = []
        for access in list(reads) + list(writes):
            tid = intern(access)
            if tid not in foot:
                foot.append(tid)
        wids = [intern(access) for access in writes]
        self._ensure(len(self._interner))
        return self.touch_ids(foot, wids)

    def touch_ids(self, foot: Sequence[int],
                  wids: Sequence[int]) -> Tuple[float, float, float, float]:
        """Bring a deduplicated, interned footprint resident in one call.

        Returns ``(refill, compulsory, spill_refill, writeback)`` bytes,
        byte-identical to the reference ``touch``.  The caller guarantees
        ``foot`` is duplicate-free in reads+writes order and every id is
        covered by the state arrays (the interner was pre-populated).
        """
        stamp = self._stamp
        qt = self._qt
        head = self._qhead
        qbase = self._qbase
        ever = self._ever
        dirty = self._dirty
        tb = self.tile_bytes
        clock = self._clock
        pin_floor = clock
        nmiss = nspill = 0
        rc = self._rc
        for tid in foot:
            if stamp[tid] < 0:
                nmiss += 1
                if ever[tid]:
                    nspill += 1
                else:
                    ever[tid] = True
                rc += 1
            stamp[tid] = clock
            qt.append(tid)
            clock += 1
        self._clock = clock
        dc = self._dirty_count
        for tid in wids:
            if not dirty[tid]:
                dirty[tid] = True
                dc += 1
        victims: List[int] = []
        wb = 0
        if rc > self._cap_tiles:
            qn = len(qt)
            cap_tiles = self._cap_tiles
            while rc > cap_tiles and head < qn:
                vid = qt[head]
                st = qbase + head
                if stamp[vid] != st:
                    head += 1           # stale entry: the tile was re-stamped
                    continue
                if st >= pin_floor:
                    break               # only the pinned footprint remains
                head += 1
                stamp[vid] = -1
                rc -= 1
                victims.append(vid)
                if dirty[vid]:
                    dirty[vid] = False
                    dc -= 1
                    wb += 1
            if head > 65536 and head * 2 > qn:
                del qt[:head]
                qbase += head
                head = 0
                self._qbase = qbase
        self._qhead = head
        self._rc = rc
        self._dirty_count = dc
        self._last_evicted_ids = victims
        resident = rc * tb
        if resident > self.peak_resident_bytes:
            self.peak_resident_bytes = resident
        if nmiss or victims:
            self.version += 1
        return (float(nmiss * tb), float((nmiss - nspill) * tb),
                float(nspill * tb), float(wb * tb))

    def flush(self) -> float:
        """Write back every remaining dirty tile; returns the bytes moved."""
        self._ensure(len(self._interner))
        stamp = self._stamp
        resident = sorted((stamp[tid], tid) for tid in range(len(stamp))
                          if stamp[tid] >= 0)
        order = [tid for _, tid in resident]
        writeback = float(self._dirty_count * self.tile_bytes)
        dirty = self._dirty
        for tid in order:
            stamp[tid] = -1
            dirty[tid] = False
        self._dirty_count = 0
        self._last_evicted_ids = order
        self._rc = 0
        self._qt = []
        self._qhead = 0
        self._qbase = self._clock
        self.version += 1
        return writeback


class FastLocalStore:
    """Structure-of-arrays drop-in for :class:`repro.lap.memory.LocalStore`.

    The clock/stamp scheme of :class:`FastTileResidency` without the
    dirty/compulsory bookkeeping (the store is write-through and the shared
    level owns all off-chip accounting).
    """

    def __init__(self, capacity_bytes: float, tile_bytes: int,
                 interner: Optional[TileInterner] = None):
        if capacity_bytes <= 0:
            raise ValueError("local-store capacity must be positive")
        if tile_bytes <= 0:
            raise ValueError("tile bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.tile_bytes = int(tile_bytes)
        self._interner = interner if interner is not None else TileInterner()
        self._stamp: List[int] = []
        self._qt: List[int] = []
        self._qhead = 0
        self._qbase = 0
        self._clock = 0
        self._rc = 0
        self.peak_resident_bytes = 0
        cap_max = int(self.capacity_bytes // self.tile_bytes)
        while (cap_max + 1) * self.tile_bytes <= self.capacity_bytes:
            cap_max += 1
        while cap_max > 0 and cap_max * self.tile_bytes > self.capacity_bytes:
            cap_max -= 1
        self._cap_tiles = cap_max
        self._ensure(len(self._interner))

    def _ensure(self, n: int) -> None:
        grow = n - len(self._stamp)
        if grow > 0:
            self._stamp.extend([-1] * grow)

    # ------------------------------------------------------------- queries
    @property
    def resident_bytes(self) -> int:
        return self._rc * self.tile_bytes

    def is_resident(self, access: TileAccess) -> bool:
        tid = self._interner.ids.get(access)
        return (tid is not None and tid < len(self._stamp)
                and self._stamp[tid] >= 0)

    def missing_bytes(self, accesses) -> int:
        """Bytes a footprint would have to fill right now (no state change)."""
        ids = self._interner.ids
        stamp = self._stamp
        n = len(stamp)
        missing = set()
        for access in accesses:
            tid = ids.get(access)
            if tid is None or tid >= n or stamp[tid] < 0:
                missing.add(access)
        return len(missing) * self.tile_bytes

    def resident_footprint_bytes(self, accesses) -> int:
        """Bytes of a footprint already held by this store (no state change)."""
        ids = self._interner.ids
        stamp = self._stamp
        n = len(stamp)
        held = set()
        for access in accesses:
            tid = ids.get(access)
            if tid is not None and tid < n and stamp[tid] >= 0:
                held.add(access)
        return len(held) * self.tile_bytes

    def missing_bytes_batch(self, indptr, indices) -> np.ndarray:
        """Vectorized :meth:`missing_bytes` over a CSR batch of footprints;
        same kernel and dedup caveat as
        :meth:`FastTileResidency.missing_bytes_batch`.
        """
        self._ensure(len(self._interner))
        stamp = np.fromiter(self._stamp, dtype=np.int64,
                            count=len(self._stamp))
        miss = np.where(stamp[indices] < 0, 1, 0)
        csum = np.zeros(len(miss) + 1, dtype=np.int64)
        np.cumsum(miss, out=csum[1:])
        return (csum[indptr[1:]] - csum[indptr[:-1]]) * self.tile_bytes

    def resident_footprint_bytes_batch(self, indptr, indices) -> np.ndarray:
        """Vectorized :meth:`resident_footprint_bytes` over a CSR batch."""
        self._ensure(len(self._interner))
        stamp = np.fromiter(self._stamp, dtype=np.int64,
                            count=len(self._stamp))
        held = np.where(stamp[indices] >= 0, 1, 0)
        csum = np.zeros(len(held) + 1, dtype=np.int64)
        np.cumsum(held, out=csum[1:])
        return (csum[indptr[1:]] - csum[indptr[:-1]]) * self.tile_bytes

    # ------------------------------------------------------------- updates
    def touch(self, accesses) -> float:
        """Reference-equivalent touch over tile names; see ``touch_ids``."""
        intern = self._interner.intern
        foot: List[int] = []
        for access in accesses:
            tid = intern(access)
            if tid not in foot:
                foot.append(tid)
        self._ensure(len(self._interner))
        return self.touch_ids(foot)

    def touch_ids(self, foot: Sequence[int]) -> float:
        """Bring a deduplicated, interned footprint resident in one call."""
        stamp = self._stamp
        qt = self._qt
        head = self._qhead
        qbase = self._qbase
        tb = self.tile_bytes
        clock = self._clock
        pin_floor = clock
        nmiss = 0
        rc = self._rc
        for tid in foot:
            if stamp[tid] < 0:
                nmiss += 1
                rc += 1
            stamp[tid] = clock
            qt.append(tid)
            clock += 1
        self._clock = clock
        if rc > self._cap_tiles:
            qn = len(qt)
            cap_tiles = self._cap_tiles
            while rc > cap_tiles and head < qn:
                vid = qt[head]
                st = qbase + head
                if stamp[vid] != st:
                    head += 1
                    continue
                if st >= pin_floor:
                    break
                head += 1
                stamp[vid] = -1
                rc -= 1
            if head > 65536 and head * 2 > qn:
                del qt[:head]
                self._qbase = qbase + head
                head = 0
        self._qhead = head
        self._rc = rc
        resident = rc * tb
        if resident > self.peak_resident_bytes:
            self.peak_resident_bytes = resident
        return float(nmiss * tb)

    def invalidate(self, access: TileAccess) -> None:
        """Drop a tile (shared-level eviction or a sibling core's write)."""
        tid = self._interner.ids.get(access)
        if tid is not None and tid < len(self._stamp) and self._stamp[tid] >= 0:
            self._stamp[tid] = -1
            self._rc -= 1

    def invalidate_ids(self, tids: Sequence[int]) -> None:
        """Drop every listed tile id that is currently resident."""
        stamp = self._stamp
        rc = self._rc
        for tid in tids:
            if stamp[tid] >= 0:
                stamp[tid] = -1
                rc -= 1
        self._rc = rc


class GraphArrays:
    """Dense per-index arrays of one :class:`TaskGraph` for the fast loop.

    Task ids are *not* assumed 0-based or contiguous (the builders share one
    id counter across graphs), so everything is indexed by graph position
    with ``ids`` / ``id2idx`` translating.  Successor lists and indegrees
    are exported both as Python lists (what the scalar hot loop indexes) and
    as CSR numpy arrays (``succ_indptr`` / ``succ_indices``) for bulk
    dependency arithmetic.  Built once per graph and cached on it
    (:meth:`TaskGraph.fast_arrays`).
    """

    def __init__(self, graph: TaskGraph):
        tasks = list(graph)
        n = len(tasks)
        self.graph = graph
        self.tasks = tasks
        self.interner = TileInterner()
        intern = self.interner.intern
        self.ids = [task.task_id for task in tasks]
        self.id2idx = {tid: i for i, tid in enumerate(self.ids)}
        id2idx = self.id2idx
        self.indegree0 = [len(set(task.depends_on)) for task in tasks]
        succ: List[List[int]] = [[] for _ in range(n)]
        for i, task in enumerate(tasks):
            for dep in set(task.depends_on):
                succ[id2idx[dep]].append(i)
        # Successor lists are built by ascending task index, so each list is
        # already sorted; the hot loop only needs a deterministic order.
        self.succ: List[Tuple[int, ...]] = [tuple(lst) for lst in succ]
        self.succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(lst) for lst in succ], out=self.succ_indptr[1:])
        self.succ_indices = np.fromiter(
            (j for lst in succ for j in lst), dtype=np.int64,
            count=int(self.succ_indptr[-1]))
        # Interned footprints: foot_ids is the deduplicated reads+writes
        # order the residency model consumes; rw_len is the raw (non-dedup)
        # operand count the on-chip energy term charges.
        self.foot_ids: List[Tuple[int, ...]] = []
        self.write_ids: List[Tuple[int, ...]] = []
        self.rw_len: List[int] = []
        coords: Dict[Tuple[int, int], int] = {}
        self.out_id: List[int] = []
        self.kinds = [task.kind for task in tasks]
        # Dense kind codes: the loop resolves per-task flops by a list index
        # instead of hashing a TaskKind enum a million times.
        kind_of: Dict = {}
        self.kind_code: List[int] = []
        for k in self.kinds:
            code = kind_of.get(k)
            if code is None:
                code = len(kind_of)
                kind_of[k] = code
            self.kind_code.append(code)
        self.kind_table = list(kind_of)
        group_of: Dict[Tuple, int] = {}
        self.group: List[int] = []
        for task in tasks:
            reads = task.read_tiles()
            writes = task.write_tiles()
            foot: List[int] = []
            for access in reads + writes:
                tid = intern(access)
                if tid not in foot:
                    foot.append(tid)
            self.foot_ids.append(tuple(foot))
            self.write_ids.append(tuple(intern(access) for access in writes))
            self.rw_len.append(len(reads) + len(writes))
            out = task.output
            oid = coords.get(out)
            if oid is None:
                oid = len(coords)
                coords[out] = oid
            self.out_id.append(oid)
            gkey = (task.kind, task.alpha == 1.0, bool(task.transpose_b))
            gid = group_of.get(gkey)
            if gid is None:
                gid = len(group_of)
                group_of[gkey] = gid
            self.group.append(gid)
        self.num_groups = len(group_of)
        self.num_out_coords = len(coords)
        # CSR form of the interned footprints, for the numpy-bulk priority
        # kernels (missing/resident bytes of many ready candidates in one
        # call -- see ``missing_bytes_batch`` on the residency classes).
        self.foot_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(foot) for foot in self.foot_ids],
                  out=self.foot_indptr[1:])
        self.foot_indices = np.fromiter(
            (tid for foot in self.foot_ids for tid in foot), dtype=np.int64,
            count=int(self.foot_indptr[-1]))
        # Tasks per memoization group: lets the fast loop reconcile the
        # timing model's hit counters in one bulk call per group instead of
        # incrementing a counter per task.
        self.group_counts = [0] * self.num_groups
        for gid in self.group:
            self.group_counts[gid] += 1
        # When task ids ascend with graph index (true for the builders,
        # which hand out ids sequentially), a heap tie-break on the id is
        # equivalent to one on the index and the specialized loop can use
        # two-field heap entries.
        self.ids_ascending = all(a < b for a, b in zip(self.ids,
                                                       self.ids[1:]))
        # Per-(tile, energy-constants) metadata tuples for the specialized
        # greedy loop; built lazily by execute_fast and keyed so a config
        # change invalidates it.
        self._greedy_meta: Optional[Tuple[Tuple, List[Tuple]]] = None
        # Negated critical-path ranks per graph position (a pure graph
        # property under unit weights); built lazily on the first
        # critical_path execute and reused across sweep points.
        self._negrank: Optional[List[float]] = None


def _uniform_square_tiles(tiles: Dict, t: int) -> bool:
    """Whether every operand tile is a ``t x t`` array.

    When true, a task's memoization signature is a pure function of its
    ``(kind, unit-alpha, transpose)`` group, so the per-task signature
    computation collapses to a per-group cycle table.  Operand dictionaries
    may alias (a factorization binds A/B/C/L to one dict); the ``TAU``
    side store holds 1-D reflector scalars and never enters a signature.
    """
    seen = set()
    for name in ("A", "B", "C", "L"):
        mapping = tiles.get(name)
        if mapping is None or id(mapping) in seen:
            continue
        seen.add(id(mapping))
        for arr in mapping.values():
            if getattr(arr, "shape", None) != (t, t):
                return False
    return True


def _policy_codes() -> Dict[type, int]:
    from repro.lap.policies import (AffinityScheduler, CriticalPathPriority,
                                    GreedyEarliestCore, LocalityAware,
                                    MemoryAware)
    return {GreedyEarliestCore: 0, CriticalPathPriority: 1, LocalityAware: 2,
            MemoryAware: 3, AffinityScheduler: 4}


#: Exact policy types the inlined loop replicates; subclasses fall back to
#: the reference loop (their overridden hooks would be silently ignored).
_POLICY_CODES: Dict[type, int] = _policy_codes()

#: Counters of the schedule-replay fast path (reset freely in tests).
#: ``sidecar_loaded`` / ``sidecar_stored`` track the cross-process replay
#: sidecar (see :meth:`repro.engine.cache.ResultCache.sidecar`): loads seed
#: the in-process memo from disk, stores publish fresh recordings to it.
REPLAY_STATS: Dict[str, int] = {"recorded": 0, "replayed": 0, "forced": 0,
                                "sidecar_loaded": 0, "sidecar_stored": 0}


class ScheduleTrace:
    """Recorded schedule of one ``execute()`` call, for delta-sweep replay.

    Holds the dispatch outcome (task -> core, start order) plus the
    aggregate movement totals that decide when a changed constant can be
    replayed *exactly*: off-chip bandwidth only enters the schedule through
    spill stalls, and the prefetch-overlap fraction only through the
    visible part of ``stall + local transfer`` cycles, so a recorded
    schedule is provably identical to a re-simulation when the respective
    total is zero (or the constant did not change).  Two further replayable
    axes ride on the same argument: the chip clock only scales durations
    uniformly (exact when both points are homogeneous and no spill stall
    entered the cycle domain), and energy constants never feed back into
    dispatch at all -- a delta there re-keys the recorded per-task
    ``(flops, onchip_bytes, offchip_bytes)`` triples instead of
    re-simulating.  Anything else forces a re-simulation;
    :data:`REPLAY_STATS` counts both outcomes.
    """

    def __init__(self, policy: str, timing: str, stall_overlap: float,
                 effective_bandwidth_gbs: Optional[float],
                 default_bandwidth_gbs: float,
                 total_spill_bytes: float, total_movement_cycles: float,
                 task_ids: List[int], cores: List[int],
                 starts: List[float], ends: List[float],
                 num_tasks: Optional[int] = None,
                 makespan_cycles: float = 0.0,
                 frequency_ghz: Optional[float] = 1.0,
                 homogeneous_cores: bool = True,
                 energy_constants: Optional[Tuple[float, float, float]] = None,
                 default_offchip_energy_per_byte_j: float = 60e-12,
                 flush_writeback_bytes: float = 0.0,
                 energy_triples: Optional[List[Tuple[float, float,
                                                     float]]] = None,
                 energy_triples_thunk=None):
        self.policy = policy
        self.timing = timing
        self.stall_overlap = stall_overlap
        self.effective_bandwidth_gbs = effective_bandwidth_gbs
        self.default_bandwidth_gbs = default_bandwidth_gbs
        self.total_spill_bytes = total_spill_bytes
        self.total_movement_cycles = total_movement_cycles
        self.task_ids = task_ids
        self.cores = cores
        self.starts = starts
        self.ends = ends
        self._num_tasks = num_tasks
        self.makespan_cycles = makespan_cycles
        #: Chip clock the schedule was recorded at; ``None`` on headers
        #: persisted before the field existed (rejects frequency deltas).
        self.frequency_ghz = frequency_ghz
        self.homogeneous_cores = homogeneous_cores
        #: ``(energy_per_flop_j, onchip_j_per_byte, offchip_j_per_byte)``
        #: the recorded energy was computed with; ``None`` when the run had
        #: data-movement accounting off.
        self.energy_constants = energy_constants
        self.default_offchip_energy_per_byte_j = (
            default_offchip_energy_per_byte_j)
        self.flush_writeback_bytes = flush_writeback_bytes
        self._energy_triples = energy_triples
        self._triples_thunk = energy_triples_thunk

    def __len__(self) -> int:
        if self._num_tasks is not None:
            return self._num_tasks
        return len(self.task_ids)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable header for the cross-process replay sidecar.

        The exactness decision (:meth:`exact_for`) only needs the scalar
        header, so the per-task dispatch arrays are deliberately dropped:
        a sidecar record stays a few hundred bytes even for million-task
        schedules.  The task count survives as ``num_tasks``.
        """
        return {
            "policy": self.policy,
            "timing": self.timing,
            "stall_overlap": self.stall_overlap,
            "effective_bandwidth_gbs": self.effective_bandwidth_gbs,
            "default_bandwidth_gbs": self.default_bandwidth_gbs,
            "total_spill_bytes": self.total_spill_bytes,
            "total_movement_cycles": self.total_movement_cycles,
            "num_tasks": len(self),
            "makespan_cycles": self.makespan_cycles,
            "frequency_ghz": self.frequency_ghz,
            "homogeneous_cores": self.homogeneous_cores,
            "energy_constants": (None if self.energy_constants is None
                                 else list(self.energy_constants)),
            "default_offchip_energy_per_byte_j": (
                self.default_offchip_energy_per_byte_j),
            "flush_writeback_bytes": self.flush_writeback_bytes,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ScheduleTrace":
        """Rebuild a (header-only) trace persisted by :meth:`to_payload`.

        The per-task energy triples are never serialised, so a rebuilt
        trace replays makespan/clock deltas but refuses any point that
        would need an energy re-key (:meth:`exact_for` returns False and
        the point re-simulates).  Missing scalar fields take conservative
        defaults: unknown clock rejects frequency deltas outright.
        """
        constants = payload.get("energy_constants")
        return cls(
            policy=str(payload["policy"]),
            timing=str(payload["timing"]),
            stall_overlap=float(payload["stall_overlap"]),
            effective_bandwidth_gbs=(
                None if payload.get("effective_bandwidth_gbs") is None
                else float(payload["effective_bandwidth_gbs"])),
            default_bandwidth_gbs=float(payload["default_bandwidth_gbs"]),
            total_spill_bytes=float(payload["total_spill_bytes"]),
            total_movement_cycles=float(payload["total_movement_cycles"]),
            task_ids=[], cores=[], starts=[], ends=[],
            num_tasks=int(payload["num_tasks"]),
            makespan_cycles=float(payload.get("makespan_cycles", 0.0)),
            frequency_ghz=(None if payload.get("frequency_ghz") is None
                           else float(payload["frequency_ghz"])),
            homogeneous_cores=bool(payload.get("homogeneous_cores", False)),
            energy_constants=(None if constants is None
                              else tuple(float(v) for v in constants)),
            default_offchip_energy_per_byte_j=float(
                payload.get("default_offchip_energy_per_byte_j", 60e-12)),
            flush_writeback_bytes=float(
                payload.get("flush_writeback_bytes", 0.0)),
        )

    # --------------------------------------------------- energy re-keying
    @property
    def has_energy_triples(self) -> bool:
        """Whether per-task energy triples are (or can be) materialised."""
        return (self._energy_triples is not None
                or self._triples_thunk is not None)

    def energy_triples(self) -> Optional[List[Tuple[float, float, float]]]:
        """Per-task ``(flops, onchip_bytes, offchip_bytes)`` triples.

        Materialised lazily on first use (the thunk installed by
        :meth:`LAPRuntime.schedule_trace` reads the recording run's
        execution rows); ``None`` on header-only traces rebuilt from the
        sidecar, where an energy re-key forces a re-simulation instead.
        """
        if self._energy_triples is None and self._triples_thunk is not None:
            self._energy_triples = self._triples_thunk()
            self._triples_thunk = None
        return self._energy_triples

    def rekey_energy_j(self, energy_per_flop_j: float,
                       onchip_energy_per_byte_j: float,
                       offchip_energy_per_byte_j: float) -> float:
        """Total schedule energy under new constants.

        Re-accumulates the per-task energies left to right with the same
        association the simulation used (``(fl * epf + on * epon) + off *
        epoff`` per task, then the end-of-schedule flush writeback), so
        calling it with the recorded :attr:`energy_constants` reproduces
        the recorded ``energy_j`` bit for bit.
        """
        triples = self.energy_triples()
        if triples is None:
            raise ValueError(
                "per-task energy triples unavailable (header-only trace)")
        epf = energy_per_flop_j
        epon = onchip_energy_per_byte_j
        epoff = offchip_energy_per_byte_j
        total = 0.0
        for fl, on, off in triples:
            total += (fl * epf + on * epon) + off * epoff
        total += self.flush_writeback_bytes * epoff
        return total

    def exact_for(self, bandwidth_gbs: Optional[float],
                  stall_overlap: float,
                  frequency_ghz: Optional[float] = None,
                  homogeneous_cores: bool = True,
                  offchip_energy_per_byte_j: Optional[float] = None) -> bool:
        """Whether replaying at the new constants is provably exact.

        ``bandwidth_gbs`` is the *effective* bandwidth of the new point
        (the chip default when no override is given); ``None`` means the
        new point has data-movement accounting disabled, where bandwidth
        cannot matter.  ``frequency_ghz`` is the new point's chip clock
        (``None`` = don't check the axis), ``homogeneous_cores`` whether
        every core of the *new* point runs at that clock, and
        ``offchip_energy_per_byte_j`` the new point's off-chip energy
        constant (``None`` = don't check).  A frequency delta with memory
        accounting on, or an off-chip-energy delta, additionally requires
        the per-task energy triples so the energy column can be re-keyed.
        """
        if (bandwidth_gbs is not None
                and self.effective_bandwidth_gbs is not None
                and bandwidth_gbs != self.effective_bandwidth_gbs
                and self.total_spill_bytes != 0.0):
            return False
        if (stall_overlap != self.stall_overlap
                and self.total_movement_cycles != 0.0):
            return False
        needs_rekey = False
        if frequency_ghz is not None and frequency_ghz != self.frequency_ghz:
            # A chip-clock change rescales every task duration by one
            # common factor, which leaves the dispatch order (and hence the
            # cycle-domain schedule) untouched only when both points are
            # homogeneous and no spill stall entered the cycle domain
            # (stall_cycles = spill_bytes / (bandwidth / clock) moves with
            # the clock; compute cycles and on-chip transfer cycles do
            # not).  An unknown recorded clock rejects the axis outright.
            if self.frequency_ghz is None:
                return False
            if not (self.homogeneous_cores and homogeneous_cores):
                return False
            if self.total_spill_bytes != 0.0:
                return False
            if bandwidth_gbs is not None:
                # Memory accounting on: the per-flop energy constant moves
                # with the clock, so the energy column must be re-keyed.
                needs_rekey = True
        if offchip_energy_per_byte_j is not None:
            if self.energy_constants is None:
                return False
            if offchip_energy_per_byte_j != self.energy_constants[2]:
                needs_rekey = True
        if needs_rekey and not self.has_energy_triples:
            return False
        return True


def execute_fast(runtime, graph: TaskGraph, tiles: Dict,
                 verify: bool) -> Dict[str, object]:
    """Inlined fast-path twin of :meth:`LAPRuntime.execute`.

    Same event-driven ready-heap schedule, same float operations in the
    same order, with all per-task indirection removed: policies are inlined
    by code (``_POLICY_CODES``), the shared-level residency update
    (:meth:`FastTileResidency.touch_ids`) is inlined into the loop body
    with its scalar state held in local variables (written back to the
    residency object after the loop; the stamp/dirty/ever lists *are* the
    live object state and mutate in place), memoized cycle counts come
    from a per-group table, and executions are recorded as plain row
    tuples that ``LAPRuntime.executions`` materialises lazily.

    Heap entries are flat tuples for the static policies -- ``(r, id, i)``
    or ``(negrank, r, id, i)`` -- because the version stamp and the
    revalidation step only exist for the dynamic, memory-keyed policies;
    the comparison order is identical to the reference keys since the
    unique task id decides every tie before the trailing index is reached.
    The caller (``LAPRuntime.execute``) has already checked eligibility.
    """
    from repro.lap.memory import MemoryHierarchy
    from repro.lap.runtime import TaskExecution, _ExecutionContext

    ga = graph.fast_arrays()
    tasks = ga.tasks
    n = len(tasks)
    ids = ga.ids
    foot_ids = ga.foot_ids
    write_ids = ga.write_ids
    rw_len = ga.rw_len
    out_id = ga.out_id
    succ = ga.succ
    group = ga.group
    kinds = ga.kinds
    kind_code = ga.kind_code

    policy = runtime.policy
    pcode = _POLICY_CODES[type(policy)]
    timing = runtime.timing
    t = runtime.tile
    num_cores = len(runtime.lap.cores)
    reference_freq = runtime.lap.config.frequency_ghz
    frequencies = runtime.core_frequencies_ghz
    homogeneous = runtime._homogeneous
    visible = 1.0 - runtime.stall_overlap

    memory = (MemoryHierarchy.for_chip(
        runtime.lap, t,
        on_chip_kb=runtime.on_chip_kb,
        bandwidth_gbs=runtime.bandwidth_gbs,
        local_store_kb=runtime.local_store_kb,
        fast=True, interner=ga.interner,
        offchip_pj_per_byte=runtime.offchip_pj_per_byte)
              if runtime.memory_enabled else None)
    runtime.last_memory = memory
    policy.prepare(graph)
    has_mem = memory is not None
    dynamic = pcode >= 3 and has_mem
    crit = pcode == 1

    # Loop-local accounting state.  When data-movement accounting is off,
    # every per-task cost below stays at these zeros.
    stores = None
    stall = transfer_cycles = energy = 0.0
    local_hit = transfer_bytes = 0.0
    refill_b = spill_b = wb_b = 0
    if has_mem:
        res = memory.residency
        stores = memory.local_stores
        tile_bytes = res.tile_bytes
        tb = tile_bytes
        res_capmax = res._cap_tiles
        res_stamp = res._stamp
        res_dirty = res._dirty
        res_ever = res._ever
        res_qt = res._qt
        res_qt_append = res_qt.append
        res_qhead = res._qhead
        res_qbase = res._qbase
        res_clock = res._clock
        res_rc = res._rc
        res_dc = res._dirty_count
        res_version = res.version
        peak_rc = res.peak_resident_bytes // tb
        bandwidth = memory.bandwidth
        bpc_off = bandwidth.interface.bytes_per_cycle(bandwidth.frequency_ghz)
        obw = memory.onchip_bw_bytes_per_cycle
        epf = memory.energy.energy_per_flop_j
        epon = memory.energy.onchip_energy_per_byte_j
        epoff = memory.energy.offchip_energy_per_byte_j
        flops_by_code = [_TASK_FLOPS[k](t) for k in ga.kind_table]
        task_flops = [flops_by_code[cd] for cd in kind_code]
        # Totals accumulate in locals (same per-task order as the reference
        # fields, starting from the same 0.0/0, so the final write-back is
        # bit-identical); byte counters stay integers, which is exact.
        tot_flops = tot_energy = tot_stall = tot_ltc = 0.0
        tot_lhit = tot_sfill = tot_c2c = 0.0
        tot_comp = tot_spill = tot_wb = 0
        if stores is not None:
            store_stamps = [store._stamp for store in stores]

    ctx = _ExecutionContext(runtime, tiles)
    use_table = (type(timing) is MemoizedTiming and not verify
                 and _uniform_square_tiles(tiles, t))
    if use_table:
        gtable: List[Optional[int]] = [None] * ga.num_groups
        gsig: List = [None] * ga.num_groups

    if crit:
        negrank = ga._negrank
        if negrank is None:
            # Pure graph property (unit-weight critical-path ranks), cached
            # on the arrays so repeat executes skip the n-element rebuild.
            negrank = policy.negated_rank_array(ids).tolist()
            ga._negrank = negrank

    core_free: List[float] = [0] * num_cores
    busy_cycles: List[int] = [0] * num_cores
    busy_time: List[float] = [0] * num_cores
    owner = [-1] * ga.num_out_coords
    ready: List[float] = [0] * n
    indeg = list(ga.indegree0)
    rows: List[Tuple] = []
    rows_append = rows.append
    heappush = heapq.heappush
    heappop = heapq.heappop

    # -- inlined policy.priority (dynamic policies only; static keys are
    # built flat at the push sites) -----------------------------------------
    if dynamic and stores is None:
        def prio(i, r):
            miss = 0
            for tid in foot_ids[i]:
                if res_stamp[tid] < 0:
                    miss += 1
            return (miss * tile_bytes, r)
    elif dynamic:
        def prio(i, r):
            foot = foot_ids[i]
            miss = 0
            for tid in foot:
                if res_stamp[tid] < 0:
                    miss += 1
            ow = owner[out_id[i]]
            lstamp = store_stamps[ow if ow >= 0 else 0]
            lmiss = 0
            for tid in foot:
                if lstamp[tid] < 0:
                    lmiss += 1
            return (miss * tile_bytes, lmiss * tile_bytes, r)

    cur_version = (res.version + memory._local_version if has_mem else 0)
    local_version = memory._local_version if has_mem else 0
    heap: List[Tuple] = []
    if dynamic:
        # Bulk-score the whole initial ready set in one numpy pass (the
        # policy's batch kernel over the CSR footprints) instead of one
        # Python footprint walk per root.  The keys are element-for-element
        # equal to the scalar ``prio`` tuples and ``(key, task_id)`` is
        # unique per entry, so heapify produces the same pop sequence as
        # repeated pushes.
        ready0 = [i for i in range(n) if indeg[i] == 0]
        keys = policy.bulk_priorities(ga, memory, ready0, [0] * len(ready0))
        if keys is None:
            keys = [prio(i, 0) for i in ready0]
        heap = [(keys[k], ids[i], cur_version, i)
                for k, i in enumerate(ready0)]
        heapq.heapify(heap)
    else:
        for i in range(n):
            if indeg[i] == 0:
                if crit:
                    heappush(heap, (negrank[i], 0, ids[i], i))
                else:
                    heappush(heap, (0, ids[i], i))

    # -- specialized loop for the dominant benchmark shape ------------------
    # Static greedy policy, homogeneous cores, memoized group table, shared
    # level only: every per-task configuration branch of the generic loop
    # below is constant here, so it is unrolled into a dedicated loop with
    # per-task metadata tuples (one index + unpack instead of eight list
    # subscripts) and the data-movement-free part of the energy term
    # precomputed per task.  Exactness notes: ``(stall + 0.0) * visible ==
    # stall * visible`` and ``flops * epf + onchip * epon`` is the same two
    # products and one add whether evaluated per task or once, so every
    # float matches the generic loop bit for bit.  Rows are recorded in a
    # compact 8-field form and expanded to TaskExecution lazily.
    exec_build = None
    specialized = (pcode == 0 and use_table and has_mem and stores is None
                   and homogeneous and bpc_off > 0 and ga.ids_ascending)
    if specialized:
        mkey = (t, tb, epf, epon)
        cached = ga._greedy_meta
        if cached is not None and cached[0] == mkey:
            meta = cached[1]
        else:
            meta = [(group[i], foot_ids[i],
                     write_ids[i][0] if len(write_ids[i]) == 1
                     else write_ids[i],
                     task_flops[i],
                     task_flops[i] * epf + rw_len[i] * tb * epon, succ[i])
                    for i in range(n)]
            ga._greedy_meta = (mkey, meta)
        # Re-seed with (ready, index) pairs: ids ascend with index, so the
        # pop order is identical to the generic (ready, id, index) keys.
        heap[:] = [(0, i) for i in range(n) if indeg[i] == 0]
        heapq.heapify(heap)
        # Ready times and indegrees interleaved in one list: a successor's
        # pair shares a cache line, which matters once the graph outgrows
        # the caches.
        ri = [0] * (2 * n)
        ri[1::2] = ga.indegree0
        while heap:
            rtime, i = heappop(heap)
            start = min(core_free)
            c = core_free.index(start)
            if rtime > start:
                start = rtime
            gid, foot, wids, flops, base_e, sucs = meta[i]
            cycles = gtable[gid]
            if cycles is None:
                task = tasks[i]
                ctx.core_index = c
                cycles = timing.task_cycles(task, ctx, verify)
                gtable[gid] = cycles
                gsig[gid] = ctx.signature(task)
            pin_floor = res_clock
            nmiss = nspill = 0
            for tid in foot:
                if res_stamp[tid] < 0:
                    nmiss += 1
                    if res_ever[tid]:
                        nspill += 1
                    else:
                        res_ever[tid] = True
                    res_rc += 1
                res_stamp[tid] = res_clock
                res_qt_append(tid)
                res_clock += 1
            if type(wids) is int:
                if not res_dirty[wids]:
                    res_dirty[wids] = True
                    res_dc += 1
            else:
                for tid in wids:
                    if not res_dirty[tid]:
                        res_dirty[tid] = True
                        res_dc += 1
            wb = 0
            nvict = 0
            if res_rc > res_capmax:
                qn = len(res_qt)
                while res_rc > res_capmax and res_qhead < qn:
                    vid = res_qt[res_qhead]
                    st = res_qbase + res_qhead
                    if res_stamp[vid] != st:
                        res_qhead += 1      # stale: tile was re-stamped
                        continue
                    if st >= pin_floor:
                        break               # only the pinned footprint left
                    res_qhead += 1
                    res_stamp[vid] = -1
                    res_rc -= 1
                    nvict += 1
                    if res_dirty[vid]:
                        res_dirty[vid] = False
                        res_dc -= 1
                        wb += 1
                if res_qhead > 262144 and res_qhead * 2 > qn:
                    del res_qt[:res_qhead]
                    res_qbase += res_qhead
                    res_qhead = 0
            if res_rc > peak_rc:
                peak_rc = res_rc
            if nmiss or nvict:
                res_version += 1
            refill_b = nmiss * tb
            spill_b = nspill * tb
            if nspill:
                stall = spill_b / bpc_off
                end = start + (cycles + stall * visible)
            else:
                stall = 0.0
                end = start + (cycles + 0.0)
            wb_b = wb * tb
            energy = base_e + (refill_b + wb_b) * epoff
            tot_flops += flops
            tot_energy += energy
            tot_stall += stall
            tot_comp += refill_b - spill_b
            tot_spill += spill_b
            tot_wb += wb_b
            core_free[c] = end
            busy_cycles[c] += cycles
            rows_append((i, c, start, end, refill_b, energy, spill_b, wb_b))
            for j in sucs:
                jj = j + j
                rj = ri[jj]
                if end > rj:
                    ri[jj] = end
                    rj = end
                d = ri[jj + 1] - 1
                ri[jj + 1] = d
                if d == 0:
                    heappush(heap, (rj, j))
        gsnap = list(gtable)

        def exec_build(rows=rows, ids=ids, kinds=kinds, group=group,
                       gtable=gsnap, bpc=bpc_off):
            # stall is recomputed from the spill bytes with the same
            # division the loop used, so the value is bit-identical.
            return [TaskExecution(ids[i], kinds[i], c, start, end,
                                  (sb / bpc) if sb else 0.0,
                                  float(rb), energy, 0.0, 0.0,
                                  gtable[group[i]], float(sb), 0.0,
                                  float(wbb))
                    for i, c, start, end, rb, energy, sb, wbb in rows]

    affinity_cores = pcode == 4 and stores is not None
    owner_cores = pcode in (2, 3)
    need_owner = pcode >= 2    # greedy/critical-path never read the owner map
    track_victims = stores is not None
    victims: Sequence[int] = ()

    while heap:
        if dynamic:
            key, task_id, stamp, i = heappop(heap)
            rtime = ready[i]
            if stamp != cur_version:
                key = prio(i, rtime)
                if heap and (key, task_id) > (heap[0][0], heap[0][1]):
                    heappush(heap, (key, task_id, cur_version, i))
                    continue
        else:
            i = heappop(heap)[-1]
            rtime = ready[i]

        # -- inlined policy.choose_core (first-minimum scans) ---------------
        if affinity_cores:
            foot = foot_ids[i]
            ow = owner[out_id[i]]
            bk = None
            c = 0
            for ci in range(num_cores):
                lstamp = store_stamps[ci]
                held = 0
                for tid in foot:
                    if lstamp[tid] >= 0:
                        held += 1
                f = core_free[ci]
                ck = (-held * tile_bytes, 0 if ci == ow else 1,
                      f if f > rtime else rtime)
                if bk is None or ck < bk:
                    bk = ck
                    c = ci
            start = bk[2]
        elif owner_cores:
            ow = owner[out_id[i]]
            bk = None
            c = 0
            for ci in range(num_cores):
                f = core_free[ci]
                ck = (f if f > rtime else rtime, 0 if ci == ow else 1)
                if bk is None or ck < bk:
                    bk = ck
                    c = ci
            start = bk[0]
        else:
            start = min(core_free)
            c = core_free.index(start)
            if rtime > start:
                start = rtime

        # -- timing ----------------------------------------------------------
        if use_table:
            cycles = gtable[group[i]]
            if cycles is None:
                gid = group[i]
                task = tasks[i]
                ctx.core_index = c
                cycles = timing.task_cycles(task, ctx, verify)
                gtable[gid] = cycles
                gsig[gid] = ctx.signature(task)
        else:
            ctx.core_index = c
            cycles = timing.task_cycles(tasks[i], ctx, verify)
        if homogeneous:
            duration = cycles
        else:
            duration = cycles * reference_freq / frequencies[c]
        compute_duration = duration

        # -- inlined MemoryHierarchy.account / FastTileResidency.touch_ids --
        if has_mem:
            foot = foot_ids[i]
            pin_floor = res_clock
            nmiss = nspill = 0
            for tid in foot:
                if res_stamp[tid] < 0:
                    nmiss += 1
                    if res_ever[tid]:
                        nspill += 1
                    else:
                        res_ever[tid] = True
                    res_rc += 1
                res_stamp[tid] = res_clock
                res_qt_append(tid)
                res_clock += 1
            wids = write_ids[i]
            for tid in wids:
                if not res_dirty[tid]:
                    res_dirty[tid] = True
                    res_dc += 1
            wb = 0
            nvict = 0
            if res_rc > res_capmax:
                if track_victims:
                    victims = []
                qn = len(res_qt)
                while res_rc > res_capmax and res_qhead < qn:
                    vid = res_qt[res_qhead]
                    st = res_qbase + res_qhead
                    if res_stamp[vid] != st:
                        res_qhead += 1      # stale entry: tile was re-stamped
                        continue
                    if st >= pin_floor:
                        break               # only the pinned footprint remains
                    res_qhead += 1
                    res_stamp[vid] = -1
                    res_rc -= 1
                    nvict += 1
                    if track_victims:
                        victims.append(vid)
                    if res_dirty[vid]:
                        res_dirty[vid] = False
                        res_dc -= 1
                        wb += 1
                if res_qhead > 262144 and res_qhead * 2 > qn:
                    del res_qt[:res_qhead]
                    res_qbase += res_qhead
                    res_qhead = 0
            if res_rc > peak_rc:
                peak_rc = res_rc
            if nmiss or nvict:
                res_version += 1
            refill_b = nmiss * tb
            spill_b = nspill * tb
            if spill_b > 0:
                stall = (spill_b / bpc_off if bpc_off > 0
                         else bandwidth.stall_cycles(spill_b))
            else:
                stall = 0.0
            flops = task_flops[i]
            onchip_bytes = rw_len[i] * tb
            if stores is not None:
                if nvict:
                    for store in stores:
                        store.invalidate_ids(victims)
                store = stores[c]
                sstamp = store_stamps[c]
                lhit = ncc = nsf = 0
                for tid in foot:
                    if sstamp[tid] >= 0:
                        lhit += 1
                    else:
                        for s2 in range(num_cores):
                            if s2 != c and store_stamps[s2][tid] >= 0:
                                ncc += 1
                                break
                        else:
                            nsf += 1
                store.touch_ids(foot)
                if wids:
                    for s2 in range(num_cores):
                        if s2 != c:
                            stores[s2].invalidate_ids(wids)
                local_version += 1
                local_hit = float(lhit * tb)
                shared_fill = float(nsf * tb)
                c2c = float(ncc * tb)
                transfer_bytes = shared_fill + c2c
                transfer_cycles = (transfer_bytes / obw
                                   if transfer_bytes > 0 and obw > 0 else 0.0)
                onchip_bytes = onchip_bytes + transfer_bytes
                tot_lhit += local_hit
                tot_sfill += shared_fill
                tot_c2c += c2c
                tot_ltc += transfer_cycles
            wb_b = wb * tb
            energy = (flops * epf + onchip_bytes * epon
                      + (refill_b + wb_b) * epoff)
            tot_flops += flops
            tot_energy += energy
            tot_stall += stall
            tot_comp += refill_b - spill_b
            tot_spill += spill_b
            tot_wb += wb_b
            duration = duration + (stall + transfer_cycles) * visible
            if dynamic:
                cur_version = res_version + local_version

        end = start + duration
        core_free[c] = end
        busy_cycles[c] += cycles
        if not homogeneous:
            busy_time[c] += compute_duration
        if need_owner:
            owner[out_id[i]] = c
        rows_append((ids[i], kinds[i], c, start, end, stall, float(refill_b),
                     energy, transfer_cycles, local_hit, compute_duration,
                     float(spill_b), transfer_bytes, float(wb_b)))

        for j in succ[i]:
            rj = ready[j]
            if end > rj:
                ready[j] = end
                rj = end
            d = indeg[j] - 1
            indeg[j] = d
            if d == 0:
                if dynamic:
                    heappush(heap, (prio(j, rj), ids[j], cur_version, j))
                elif crit:
                    heappush(heap, (negrank[j], rj, ids[j], j))
                else:
                    heappush(heap, (rj, ids[j], j))

    if len(rows) != n:
        raise RuntimeError("task graph deadlock: circular dependencies")

    if use_table:
        # Every task ran, so each group charged one warm/table fill above
        # and group_counts - 1 table hits.
        group_counts = ga.group_counts
        for gid in range(ga.num_groups):
            extra = group_counts[gid] - 1
            if extra > 0:
                timing.bulk_charge(gsig[gid], extra)

    if has_mem:
        res._clock = res_clock
        res._rc = res_rc
        res._qhead = res_qhead
        res._qbase = res_qbase
        res._dirty_count = res_dc
        res.version = res_version
        res.peak_resident_bytes = peak_rc * tb
        memory.total_flops += tot_flops
        memory.total_energy_j += tot_energy
        memory.total_stall_cycles += tot_stall
        memory.compulsory_bytes += tot_comp
        memory.spill_bytes += tot_spill
        memory.writeback_bytes += tot_wb
        memory.local_hit_bytes += tot_lhit
        memory.shared_to_local_bytes += tot_sfill
        memory.c2c_bytes += tot_c2c
        memory.local_transfer_cycles += tot_ltc
        memory._local_version = local_version
    runtime._exec_rows = rows
    runtime._executions = None
    runtime._exec_build = exec_build
    makespan = max(core_free) if core_free else 0
    runtime.last_makespan = float(makespan)
    stats: Dict[str, object] = {
        "makespan_cycles": makespan,
        "per_core_busy_cycles": busy_cycles,
        "parallel_efficiency": (sum(busy_cycles if homogeneous else busy_time)
                                / (makespan * num_cores))
        if makespan else 0.0,
        "tasks_executed": len(rows),
        "policy": policy.name,
        "timing": timing.name,
        "makespan_ns": makespan / reference_freq,
        "data_valid": timing.keeps_data(verify),
    }
    if has_mem:
        memory.finish()
        stats.update(memory.summary())
    stats["graph"] = graph.summary()
    return stats
