"""Chrome trace-event export: one JSON every trace viewer already reads.

The `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
is the lingua franca of ``chrome://tracing`` and Perfetto.  This module
renders a :class:`repro.obs.tracer.Tracer` (and, through an adapter, the
LAC-level :class:`repro.lac.trace.ExecutionTrace`) into its JSON-object
form::

    {"traceEvents": [...], "displayTimeUnit": "ns", "metadata": {...}}

Every span becomes a complete (``"ph": "X"``) event; every tracer track
becomes one named thread (``tid``) of a single process, so a runtime trace
opens with one horizontal lane per core.  Counters with timestamped series
become ``"ph": "C"`` counter tracks.  Timestamps are emitted verbatim: the
viewer labels them "µs", but for runtime traces one unit is one
reference-clock cycle (recorded in ``metadata.time_unit``) -- exact integers
beat lossy unit conversion for a cycle-accurate model.

:func:`validate_chrome_trace` checks the invariants the rest of the repo
relies on (required keys per event phase, numeric non-negative timestamps,
and per-track non-overlap of ``task``/``idle`` spans -- nested ``phase``
spans from LAC traces are exempt, nesting is how they express structure).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.tracer import Tracer

__all__ = [
    "lac_trace_events", "to_chrome_trace", "tracer_events",
    "validate_chrome_trace", "write_chrome_trace",
]

#: Keys every trace event must carry (the spec's required set).
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid")

#: Additional required keys per phase type.
PHASE_REQUIRED_KEYS = {"X": ("dur", "tid"), "M": (), "C": ("args",)}

#: Span categories whose per-track events must not overlap (task/idle lanes
#: tile a core's timeline; "phase" spans nest and are exempt).
NON_OVERLAP_CATEGORIES = ("task", "idle")


def tracer_events(tracer: Tracer, pid: int = 0,
                  process_name: str = "LAP",
                  track_names: Optional[Mapping[int, str]] = None) -> List[dict]:
    """Chrome events of one tracer: metadata, span and counter events.

    ``track_names`` overrides the default ``"core <i>"`` thread names (the
    engine exporter passes worker labels instead).
    """
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "ts": 0, "pid": pid,
        "args": {"name": process_name},
    }]
    tracks = sorted(tracer.spans_by_track())
    for track in tracks:
        name = (track_names or {}).get(track, f"core {track}")
        events.append({"name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
                       "tid": track, "args": {"name": name}})
    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start,
            "dur": span.duration,
            "pid": pid,
            "tid": span.track,
            "args": dict(span.args),
        })
    for counter in tracer.counters.values():
        for ts, value in counter.series:
            events.append({"name": counter.name, "ph": "C", "ts": ts,
                           "pid": pid, "args": {"value": value}})
    return events


def lac_trace_events(trace, pid: int = 0, tid: int = 0,
                     process_name: str = "LAC",
                     track_name: str = "phases") -> List[dict]:
    """Adapt a :class:`repro.lac.trace.ExecutionTrace` to Chrome events.

    Each recorded phase becomes a complete event on one track; nested
    phases (``nesting > 0``) stay nested in the viewer because complete
    events nest by containment.  The phase's counter deltas ride along in
    ``args``, so LAC-level and LAP-level traces open side by side in one
    Perfetto session without touching ``repro.lac.trace`` itself.
    """
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "ts": 0, "pid": pid,
         "args": {"name": process_name}},
        {"name": "thread_name", "ph": "M", "ts": 0, "pid": pid, "tid": tid,
         "args": {"name": track_name}},
    ]
    for event in trace.events:
        events.append({
            "name": event.name,
            "cat": "phase",
            "ph": "X",
            "ts": event.start_cycle,
            "dur": event.cycles,
            "pid": pid,
            "tid": tid,
            "args": {"nesting": event.nesting,
                     **event.counters.as_dict()},
        })
    return events


def to_chrome_trace(source: Union[Tracer, Sequence[dict]],
                    metadata: Optional[Dict[str, object]] = None,
                    time_unit: str = "cycles",
                    process_name: str = "LAP",
                    track_names: Optional[Mapping[int, str]] = None) -> dict:
    """Build the JSON-object trace payload from a tracer or an event list."""
    if isinstance(source, Tracer):
        events = tracer_events(source, process_name=process_name,
                               track_names=track_names)
    else:
        events = list(source)
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": {"time_unit": time_unit, **(metadata or {})},
    }
    return payload


def write_chrome_trace(payload: Union[dict, Tracer, Sequence[dict]],
                       path) -> pathlib.Path:
    """Validate and write a trace payload; returns the written path."""
    if not isinstance(payload, dict):
        payload = to_chrome_trace(payload)
    validate_chrome_trace(payload)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    return path


def validate_chrome_trace(payload: object, rel_tol: float = 1e-9) -> List[dict]:
    """Validate a trace payload; returns its events or raises ``ValueError``.

    Checks the envelope (``traceEvents`` list present), the required keys
    of every event (:data:`REQUIRED_EVENT_KEYS` plus the per-phase extras),
    numeric non-negative ``ts``/``dur``, and that ``task``/``idle`` spans
    on one ``(pid, tid)`` track never overlap (within ``rel_tol`` of the
    track's time span, absorbing float accumulation).
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object with "
                         "'traceEvents'")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload is missing the 'traceEvents' list")
    tracks: Dict[tuple, List[tuple]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"traceEvents[{index}] ('{event.get('name')}') "
                                 f"is missing required key '{key}'")
        phase = event["ph"]
        for key in PHASE_REQUIRED_KEYS.get(phase, ()):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] ('{event['name']}', "
                                 f"ph={phase}) is missing required key '{key}'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            raise ValueError(f"traceEvents[{index}] has invalid ts {ts!r}")
        if phase == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                raise ValueError(f"traceEvents[{index}] has invalid dur {dur!r}")
            if event.get("cat") in NON_OVERLAP_CATEGORIES:
                tracks.setdefault((event["pid"], event["tid"]), []).append(
                    (float(ts), float(ts) + float(dur), event["name"]))
    for (pid, tid), spans in tracks.items():
        spans.sort()
        span_extent = max((end for _, end, _ in spans), default=0.0)
        tolerance = rel_tol * max(span_extent, 1.0)
        for (s0, e0, n0), (s1, e1, n1) in zip(spans, spans[1:]):
            if s1 < e0 - tolerance:
                raise ValueError(
                    f"track (pid={pid}, tid={tid}): span '{n1}' starting at "
                    f"{s1} overlaps '{n0}' ending at {e0}")
    return events
