"""Cycle attribution: where did every simulated core-cycle go?

A schedule on ``P`` cores with makespan ``M`` spans exactly ``P x M``
core-cycles.  This module splits that rectangle into four provably
conservative components, per core and in total:

``compute``
    cycles a core spent executing task kernels (heterogeneous-core
    durations already scaled to the reference clock),
``spill_stall``
    the *visible* part of the off-chip spill-refill stalls (what remains
    after ``stall_overlap`` hides a fraction under compute),
``transfer``
    the visible part of the shared-to-local / core-to-core transfer cycles
    of the two-level hierarchy (also subject to ``stall_overlap``),
``idle``
    scheduler gaps: a core waiting for dependences or work.

``compute + spill_stall + transfer + idle == cores x makespan`` holds by
construction (idle is the complement), and :meth:`CycleAttribution.check`
additionally verifies the *bottom-up* identity -- the summed per-task span
durations plus the measured gaps tile each core's timeline exactly -- so a
runtime change that double-books a core or drops a stall term fails loudly.

The module is duck-typed over :class:`repro.lap.runtime.TaskExecution`
records (``core_index`` / ``start_cycle`` / ``end_cycle`` /
``stall_cycles`` / ``local_transfer_cycles``) and deliberately imports
nothing from :mod:`repro.lap`, so it can attribute any execution timeline
with that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["CoreAttribution", "CycleAttribution", "idle_gaps"]

#: Components every attribution reports, in presentation order.
COMPONENTS = ("compute", "spill_stall", "transfer", "idle")


def idle_gaps(executions: Iterable, num_cores: int,
              makespan: float) -> List[Tuple[int, float, float]]:
    """Scheduler-idle intervals ``(core, start, end)`` of a schedule.

    A gap is any part of ``[0, makespan]`` on a core not covered by one of
    its task executions (leading waits, dependence stalls between tasks and
    the tail after a core runs out of work).  Degenerate zero-length gaps
    are dropped.
    """
    if num_cores < 1:
        raise ValueError("need at least one core")
    if makespan < 0:
        raise ValueError("makespan must be non-negative")
    per_core: Dict[int, List[Tuple[float, float]]] = {c: [] for c in range(num_cores)}
    for execution in executions:
        per_core[execution.core_index].append(
            (execution.start_cycle, execution.end_cycle))
    gaps: List[Tuple[int, float, float]] = []
    for core in range(num_cores):
        cursor = 0.0
        for start, end in sorted(per_core[core]):
            if start > cursor:
                gaps.append((core, cursor, start))
            cursor = max(cursor, end)
        if makespan > cursor:
            gaps.append((core, cursor, makespan))
    return gaps


@dataclass
class CoreAttribution:
    """Cycle decomposition of one core's ``[0, makespan]`` timeline."""

    core_index: int
    compute: float = 0.0
    spill_stall: float = 0.0
    transfer: float = 0.0
    idle: float = 0.0
    tasks: int = 0

    @property
    def total(self) -> float:
        return self.compute + self.spill_stall + self.transfer + self.idle


@dataclass
class CycleAttribution:
    """Whole-schedule cycle decomposition summing to ``cores x makespan``."""

    num_cores: int
    makespan_cycles: float
    stall_overlap: float
    per_core: List[CoreAttribution] = field(default_factory=list)

    @classmethod
    def from_executions(cls, executions: Sequence, num_cores: int,
                        makespan: float,
                        stall_overlap: float = 0.0) -> "CycleAttribution":
        """Attribute a schedule from its per-task execution records.

        Each execution's duration splits into the visible data-movement
        cycles (``(stall + transfer) * (1 - stall_overlap)``, the exact
        composition :func:`repro.lap.timing.compose_task_cycles` applied)
        and compute (the remainder); idle is each core's uncovered time.
        """
        if not (0.0 <= stall_overlap <= 1.0):
            raise ValueError("stall_overlap must lie in [0, 1]")
        cores = [CoreAttribution(core_index=c) for c in range(num_cores)]
        visible = 1.0 - stall_overlap
        for execution in executions:
            core = cores[execution.core_index]
            duration = execution.end_cycle - execution.start_cycle
            stall = getattr(execution, "stall_cycles", 0.0) * visible
            transfer = getattr(execution, "local_transfer_cycles", 0.0) * visible
            core.compute += duration - stall - transfer
            core.spill_stall += stall
            core.transfer += transfer
            core.tasks += 1
        for core, start, end in idle_gaps(executions, num_cores, makespan):
            cores[core].idle += end - start
        return cls(num_cores=num_cores, makespan_cycles=float(makespan),
                   stall_overlap=float(stall_overlap), per_core=cores)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CycleAttribution":
        """Rebuild an attribution from its :meth:`as_dict` form.

        ``repro report`` uses this to render the table from a stored
        ``.trace.json`` without re-running the schedule.
        """
        cores = [CoreAttribution(core_index=int(entry["core"]),
                                 compute=float(entry["compute"]),
                                 spill_stall=float(entry["spill_stall"]),
                                 transfer=float(entry["transfer"]),
                                 idle=float(entry["idle"]),
                                 tasks=int(entry.get("tasks", 0)))
                 for entry in payload["per_core"]]
        return cls(num_cores=int(payload["num_cores"]),
                   makespan_cycles=float(payload["makespan_cycles"]),
                   stall_overlap=float(payload.get("stall_overlap", 0.0)),
                   per_core=cores)

    # -------------------------------------------------------------- totals
    @property
    def total_cycles(self) -> float:
        """The attributed rectangle: ``cores x makespan``."""
        return self.num_cores * self.makespan_cycles

    def totals(self) -> Dict[str, float]:
        """Whole-schedule component totals (keys: :data:`COMPONENTS`)."""
        return {component: sum(getattr(core, component) for core in self.per_core)
                for component in COMPONENTS}

    def check(self, rel_tol: float = 1e-6) -> None:
        """Verify conservation: components tile ``cores x makespan`` exactly.

        Checks every core's decomposition against the makespan and the
        grand total against the rectangle, within ``rel_tol`` relative
        (floating-point accumulation) tolerance.  Raises ``ValueError``
        with the offending core on failure.
        """
        scale = max(abs(self.total_cycles), 1.0)
        for core in self.per_core:
            if abs(core.total - self.makespan_cycles) > rel_tol * max(
                    abs(self.makespan_cycles), 1.0):
                raise ValueError(
                    f"core {core.core_index} attribution does not conserve: "
                    f"{core.total} != makespan {self.makespan_cycles}")
        grand = sum(self.totals().values())
        if abs(grand - self.total_cycles) > rel_tol * scale:
            raise ValueError(f"attribution total {grand} != cores x makespan "
                             f"{self.total_cycles}")

    # ----------------------------------------------------------- reporting
    def table_rows(self) -> List[Dict[str, object]]:
        """Per-core rows plus a TOTAL row for the attribution table.

        Columns: core, tasks, the four components, their shares of the
        core's timeline in percent, and the row total.
        """
        rows: List[Dict[str, object]] = []
        denominator = max(self.makespan_cycles, 1e-300)
        for core in self.per_core:
            rows.append({
                "core": core.core_index,
                "tasks": core.tasks,
                "compute_cycles": core.compute,
                "spill_stall_cycles": core.spill_stall,
                "transfer_cycles": core.transfer,
                "idle_cycles": core.idle,
                "compute_pct": 100.0 * core.compute / denominator,
                "stall_pct": 100.0 * core.spill_stall / denominator,
                "transfer_pct": 100.0 * core.transfer / denominator,
                "idle_pct": 100.0 * core.idle / denominator,
            })
        totals = self.totals()
        rect = max(self.total_cycles, 1e-300)
        rows.append({
            "core": "TOTAL",
            "tasks": sum(core.tasks for core in self.per_core),
            "compute_cycles": totals["compute"],
            "spill_stall_cycles": totals["spill_stall"],
            "transfer_cycles": totals["transfer"],
            "idle_cycles": totals["idle"],
            "compute_pct": 100.0 * totals["compute"] / rect,
            "stall_pct": 100.0 * totals["spill_stall"] / rect,
            "transfer_pct": 100.0 * totals["transfer"] / rect,
            "idle_pct": 100.0 * totals["idle"] / rect,
        })
        return rows

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (embedded into trace metadata / manifests)."""
        return {
            "num_cores": self.num_cores,
            "makespan_cycles": self.makespan_cycles,
            "stall_overlap": self.stall_overlap,
            "total_cycles": self.total_cycles,
            "totals": self.totals(),
            "per_core": [{
                "core": core.core_index,
                "tasks": core.tasks,
                "compute": core.compute,
                "spill_stall": core.spill_stall,
                "transfer": core.transfer,
                "idle": core.idle,
            } for core in self.per_core],
        }
