"""Run manifests: persistent telemetry of one sweep-engine run.

The :class:`repro.engine.executor.SweepExecutor` measures where a sweep's
wall time went -- per-shard wall times, per-job latency, cache hits and
misses -- but a :class:`~repro.engine.executor.SweepResult` dies with the
process.  A *run manifest* is that telemetry as a structured JSON document
written next to the sweep's output, so ``repro report`` (or any later
analysis) can answer "which shard was slow, what fraction of the design
space was deduplicated by the cache" long after the run.

The schema is deliberately flat and stable::

    {
      "schema": "repro.obs.run_manifest/v1",
      "runner": "lap_runtime",
      "jobs": 12, "executed": 4, "cached": 8,
      "mode": "process", "elapsed_s": 1.23,
      "cache": {"hits": 8, "misses": 4, "hit_rate": 0.667, ...},
      "cache_tier": "local+remote",    # "none" | "local" | "local+remote"
      "shards": [{"shard": 0, "runner": ..., "jobs": 3, "elapsed_s": ...}],
      "job_latency_s": [...],          # aligned with the job list; cached
      "job_params": [...],             # hits carry null latency
      "latency": {"count", "total_s", "mean_s", "max_s"},
      "streaming": {"first_row_s": ..., "last_row_s": ...}
    }

The ``streaming`` block records when the first and the last row became
available on the executor's stream (wall seconds from run start; null for
empty runs), so streaming wins -- time-to-first-row well under the total
wall time -- stay visible in ``repro report``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

__all__ = ["MANIFEST_SCHEMA", "build_run_manifest", "manifest_path_for",
           "write_run_manifest"]

#: Schema identifier stamped into every manifest (bump on layout changes).
MANIFEST_SCHEMA = "repro.obs.run_manifest/v1"


def _latency_summary(latencies: List[Optional[float]]) -> Dict[str, float]:
    measured = [lat for lat in latencies if lat is not None]
    if not measured:
        return {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
    total = float(sum(measured))
    return {"count": len(measured), "total_s": total,
            "mean_s": total / len(measured), "max_s": float(max(measured))}


def build_run_manifest(result, runner: Optional[str] = None,
                       extra: Optional[Dict[str, object]] = None) -> dict:
    """Build the manifest document of one executed sweep.

    ``result`` is a :class:`~repro.engine.executor.SweepResult`; ``runner``
    defaults to the (single) runner of its jobs; ``extra`` merges
    caller-side context (output path, CLI arguments) into the document.
    """
    runners = sorted({job.runner for job in result.jobs})
    cache_stats = result.cache_stats
    if cache_stats is None:
        cache_tier = "none"
    else:
        # A RemoteCache reports its tier ("local+remote", degrading to
        # "local") in the counters; a plain ResultCache is the local tier.
        cache_tier = str(cache_stats.get("tier", "local"))
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "runner": runner if runner is not None else (
            runners[0] if len(runners) == 1 else ",".join(runners)),
        "jobs": result.total,
        "executed": result.executed,
        "cached": result.cached,
        "mode": result.mode,
        "elapsed_s": result.elapsed_s,
        "cache": cache_stats,
        "cache_tier": cache_tier,
        "shards": list(result.shard_timings),
        "job_latency_s": list(result.job_latency_s),
        "job_params": [job.params_dict for job in result.jobs],
        "latency": _latency_summary(result.job_latency_s),
        "streaming": {
            "first_row_s": getattr(result, "first_row_s", None),
            "last_row_s": getattr(result, "last_row_s", None),
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def manifest_path_for(output_path) -> pathlib.Path:
    """Manifest path next to a sweep output: ``<output>.manifest.json``."""
    path = pathlib.Path(output_path)
    return path.with_name(path.name + ".manifest.json")


def write_run_manifest(result, path, runner: Optional[str] = None,
                       extra: Optional[Dict[str, object]] = None) -> pathlib.Path:
    """Build and write the manifest of a sweep run; returns the path."""
    manifest = build_run_manifest(result, runner=runner, extra=extra)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True, default=str)
        handle.write("\n")
    return path
