"""Lightweight span/counter tracing primitives for the runtime and engine.

The observability layer records *what happened when* without perturbing the
thing it observes: a :class:`Tracer` collects completed :class:`Span` records
(one per scheduled task, idle gap, or engine shard) and cumulative
:class:`Counter` series, both cheap appends.  A disabled tracer is a pure
no-op -- every recording method returns immediately before building any
intermediate object -- so instrumented hot loops can keep their tracer calls
unconditionally and pay (nearly) nothing when tracing is off; passing
``tracer=None`` to the instrumented code skips even the method call.

Timestamps are dimensionless: the LAP runtime records reference-clock
cycles, the sweep engine records seconds.  One tracer should stick to one
unit (the Chrome exporter stamps the unit into the trace metadata).

>>> tracer = Tracer()
>>> tracer.span("GEMM#3", track=0, start=0.0, end=384.0,
...             args={"compute_cycles": 384.0})        # doctest: +ELLIPSIS
Span(...)
>>> tracer.counter("spill_bytes").add(4096, ts=384.0)
>>> len(tracer.spans), tracer.counter("spill_bytes").value
(1, 4096.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Span", "Tracer", "NULL_TRACER"]


@dataclass
class Span:
    """One completed, timestamped interval on a named track.

    ``track`` identifies the horizontal lane the span renders on (a core
    index for runtime traces, a worker/shard lane for engine traces);
    ``category`` groups spans for filtering (``"task"``, ``"idle"``,
    ``"phase"``, ``"shard"``); ``args`` carries the span's structured
    payload (e.g. a task's cycle decomposition).
    """

    name: str
    track: int
    start: float
    end: float
    category: str = "task"
    args: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span '{self.name}' ends before it starts "
                             f"({self.end} < {self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Counter:
    """A named cumulative counter with an optional timestamped series.

    ``add(delta)`` bumps the running total; ``add(delta, ts=...)`` also
    appends a ``(ts, running_total)`` sample so the exporter can render the
    counter as a track over time (Chrome ``"C"`` events).
    """

    __slots__ = ("name", "value", "series")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.series: List[Tuple[float, float]] = []

    def add(self, delta: float, ts: Optional[float] = None) -> None:
        self.value += delta
        if ts is not None:
            self.series.append((ts, self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class _NullCounter(Counter):
    """Counter whose ``add`` discards everything (the disabled fast path)."""

    def add(self, delta: float, ts: Optional[float] = None) -> None:
        return None


_SHARED_NULL_COUNTER = _NullCounter("<disabled>")


class Tracer:
    """Collects spans and counters; a disabled tracer records nothing.

    Parameters
    ----------
    enabled:
        When ``False`` every recording method is a no-op that returns
        before allocating anything, so instrumentation left in hot loops
        costs one attribute check plus one early-returning call.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self.spans: List[Span] = []
        self.counters: Dict[str, Counter] = {}

    # ----------------------------------------------------------- recording
    def span(self, name: str, track: int, start: float, end: float,
             category: str = "task",
             args: Optional[Dict[str, object]] = None) -> Optional[Span]:
        """Record one completed span; returns it (``None`` when disabled)."""
        if not self.enabled:
            return None
        span = Span(name=name, track=int(track), start=float(start),
                    end=float(end), category=category,
                    args={} if args is None else args)
        self.spans.append(span)
        return span

    def counter(self, name: str) -> Counter:
        """The named counter (a shared discard-all stub when disabled)."""
        if not self.enabled:
            return _SHARED_NULL_COUNTER
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    # ------------------------------------------------------------- queries
    def spans_by_track(self) -> Dict[int, List[Span]]:
        """Spans grouped per track, each group sorted by start time."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.track, []).append(span)
        for group in grouped.values():
            group.sort(key=lambda s: (s.start, s.end))
        return grouped

    def clear(self) -> None:
        """Drop every recorded span and counter (the enable flag is kept)."""
        self.spans.clear()
        self.counters.clear()


#: A shared, always-disabled tracer: hand it to instrumented code that
#: requires a tracer object when you want the no-op behaviour explicitly.
NULL_TRACER = Tracer(enabled=False)
