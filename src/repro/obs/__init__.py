"""``repro.obs`` -- unified tracing, metrics and cycle attribution.

The observability layer every other subsystem reports through:

* :mod:`repro.obs.tracer` -- :class:`Tracer` / :class:`Span` /
  :class:`Counter`, the lightweight recording primitives with a no-op fast
  path when disabled;
* :mod:`repro.obs.chrome` -- Chrome trace-event JSON export
  (``chrome://tracing`` / Perfetto), schema validation, and the adapter
  that lifts LAC-level :class:`repro.lac.trace.ExecutionTrace` phases into
  the same format;
* :mod:`repro.obs.attribution` -- :class:`CycleAttribution`, the
  per-component cycle decomposition (compute / spill-stall / transfer /
  idle) whose parts provably sum to ``cores x makespan``;
* :mod:`repro.obs.manifest` -- structured run manifests persisting the
  sweep engine's per-shard wall times, per-job latency and cache hit-rate
  next to the sweep output.

The package imports nothing from :mod:`repro.lap` or :mod:`repro.engine`
(everything is duck-typed over their record shapes), so instrumenting a
subsystem never creates an import cycle.
"""

from repro.obs.attribution import CoreAttribution, CycleAttribution, idle_gaps
from repro.obs.chrome import (lac_trace_events, to_chrome_trace, tracer_events,
                              validate_chrome_trace, write_chrome_trace)
from repro.obs.manifest import (MANIFEST_SCHEMA, build_run_manifest,
                                manifest_path_for, write_run_manifest)
from repro.obs.tracer import NULL_TRACER, Counter, Span, Tracer

__all__ = [
    "Counter", "Span", "Tracer", "NULL_TRACER",
    "CoreAttribution", "CycleAttribution", "idle_gaps",
    "lac_trace_events", "to_chrome_trace", "tracer_events",
    "validate_chrome_trace", "write_chrome_trace",
    "MANIFEST_SCHEMA", "build_run_manifest", "manifest_path_for",
    "write_run_manifest",
]
