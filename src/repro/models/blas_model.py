"""Analytical utilisation models for level-3 BLAS operations on the LAC.

Chapter 5 generalises the GEMM mapping to the rest of the level-3 BLAS.  The
key results reproduced here are:

* **SYRK / SYR2K** -- the diagonal blocks are computed by an unblocked kernel
  that transposes columns of ``A`` over the diagonal PEs while the bulk of
  the work is cast as GEMM; utilisation is lowered by the triangular diagonal
  blocks and (for SYR2K) by the doubled data traffic.
* **TRSM** -- the unblocked kernel is limited by fine-grained dependencies
  through the pipelined MAC units.  Stacking ``p`` independent nr x nr TRSMs
  fills the pipeline, and software pipelining ``g`` stacked groups overlaps
  the scale step with the rank-1 updates, giving the ~60% inner-kernel
  utilisation derived in Section 5.3.1; the blocked algorithm then casts the
  bulk of the work as GEMM and reaches ~90+% overall.
* At a representative design point (20 KB/PE, 4 B/cycle, nr = 4) the paper
  quotes utilisations of about 100% (GEMM), 95% (TRSM), 90% (SYRK) and
  ~80-85% (SYR2K); Table 5.1 reports the corresponding GFLOPS/W at 1.1 GHz.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.models.core_model import CoreGEMMModel


class Level3Operation(enum.Enum):
    """The level-3 BLAS operations analysed in Chapter 5."""

    GEMM = "gemm"
    SYMM = "symm"
    TRMM = "trmm"
    SYRK = "syrk"
    SYR2K = "syr2k"
    TRSM = "trsm"

    @property
    def flops(self) -> str:
        """Asymptotic flop count formula (for documentation/report purposes)."""
        return {
            Level3Operation.GEMM: "2*m*n*k",
            Level3Operation.SYMM: "2*m*m*n",
            Level3Operation.TRMM: "m*m*n",
            Level3Operation.SYRK: "n*n*m",
            Level3Operation.SYR2K: "2*n*n*m",
            Level3Operation.TRSM: "n*n*m",
        }[self]


@dataclass(frozen=True)
class BlasModelResult:
    """Utilisation estimate for one level-3 BLAS design point."""

    operation: Level3Operation
    nr: int
    mc: int
    kc: int
    n: int
    bandwidth_elements_per_cycle: float
    local_store_kbytes_per_pe: float
    utilization: float


class BlasCoreModel:
    """Analytical utilisation model of the LAC across level-3 BLAS.

    The model composes the GEMM core model (which captures the
    bandwidth/local-store trade-off) with operation-specific inner-kernel
    efficiency terms that capture the triangular diagonal blocks, the
    transpose traffic and the dependency-limited TRSM inner kernel.
    """

    def __init__(self, nr: int = 4, element_bytes: int = 8, mac_pipeline_stages: int = 8):
        if mac_pipeline_stages < 1:
            raise ValueError("MAC pipeline depth must be >= 1")
        self.nr = nr
        self.element_bytes = element_bytes
        self.mac_pipeline_stages = mac_pipeline_stages
        self.gemm_model = CoreGEMMModel(nr=nr, element_bytes=element_bytes)

    # ------------------------------------------------- inner kernel models
    def trsm_stacked_utilization(self, g: int) -> float:
        """Utilisation of the software-pipelined stacked TRSM inner kernel.

        Section 5.3.1 derives ``g*(nr+1) / (2*(g+1)*nr)`` for ``g`` stacked
        sub-panels on an ``nr x nr`` core, roughly 60% for nr=4 and large g.
        """
        if g < 1:
            raise ValueError("number of software-pipelined sub-panels must be >= 1")
        nr = self.nr
        return g * (nr + 1) / (2.0 * (g + 1) * nr)

    def trsm_blocked_utilization(self, k_blocks: int) -> float:
        """Utilisation of the blocked TRSM over ``k_blocks`` block-rows.

        Section 5.3.3: the ratio of useful MACs to issued cycles is
        ``sum_i (i + 1/2) / sum_i (i + 1)`` which approaches 1 as the number
        of block rows grows (90% already at k=8 from the paper's 32x128
        example scaled by block size).
        """
        if k_blocks < 1:
            raise ValueError("number of blocks must be >= 1")
        num = sum(i + 0.5 for i in range(k_blocks + 1))
        den = sum(i + 1.0 for i in range(k_blocks + 1))
        return num / den

    def trsm_average_bandwidth(self, k_blocks: int) -> float:
        """Average off-core bandwidth demand of TRSM in elements/cycle (~4*nr/k)."""
        if k_blocks < 1:
            raise ValueError("number of blocks must be >= 1")
        return 4.0 * self.nr / k_blocks

    def syrk_inner_utilization(self, m_blocks: int) -> float:
        """Utilisation of blocked SYRK over ``m_blocks`` block-rows of C.

        Only the diagonal nr x nr blocks run the (transposing) unblocked
        kernel; they update just the lower triangle, so roughly half of the
        MACs in those blocks are useful, while all off-diagonal work is plain
        GEMM.  With ``m`` block rows there are ``m`` diagonal blocks and
        ``m*(m-1)/2`` off-diagonal blocks.
        """
        if m_blocks < 1:
            raise ValueError("number of block rows must be >= 1")
        diag = m_blocks
        off_diag = m_blocks * (m_blocks - 1) / 2.0
        useful = off_diag + 0.5 * diag
        issued = off_diag + diag
        return useful / issued

    # ------------------------------------------------------ composite model
    def utilization(self, operation: Level3Operation, mc: int, kc: int, n: int,
                    bandwidth_elements_per_cycle: float,
                    full_overlap: bool = False) -> BlasModelResult:
        """Utilisation of the LAC for a level-3 BLAS operation.

        The GEMM bandwidth/local-store model provides the baseline; the
        operation-specific factors described in the class docstring modulate
        it.  ``SYR2K`` additionally halves the effective problem that fits in
        the same local store because both ``A`` and ``B`` panels must be
        resident, which shows up as a doubled bandwidth demand.
        """
        if operation is Level3Operation.SYR2K:
            # Twice the streamed data for the same compute.
            base = self.gemm_model.cycles(mc, kc, n,
                                          bandwidth_elements_per_cycle / 2.0,
                                          full_overlap)
        else:
            base = self.gemm_model.cycles(mc, kc, n, bandwidth_elements_per_cycle,
                                          full_overlap)
        util = base.utilization

        m_blocks = max(1, mc // self.nr)
        if operation is Level3Operation.GEMM:
            factor = 1.0
        elif operation in (Level3Operation.SYMM, Level3Operation.TRMM):
            # SYMM pays a small transpose overhead on the diagonal blocks of A;
            # TRMM's triangular panels shorten some updates.
            factor = self.syrk_inner_utilization(m_blocks) * 0.5 + 0.5
        elif operation in (Level3Operation.SYRK, Level3Operation.SYR2K):
            factor = self.syrk_inner_utilization(m_blocks)
        elif operation is Level3Operation.TRSM:
            factor = self.trsm_blocked_utilization(m_blocks)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown operation {operation}")

        util = min(1.0, util * factor)
        return BlasModelResult(
            operation=operation,
            nr=self.nr,
            mc=mc,
            kc=kc,
            n=n,
            bandwidth_elements_per_cycle=bandwidth_elements_per_cycle,
            local_store_kbytes_per_pe=self.gemm_model.local_store_bytes_per_pe(
                mc, kc, full_overlap) / 1024.0,
            utilization=util,
        )

    # ------------------------------------------------------------ sweeps
    def sweep_local_store(self, operation: Level3Operation, bandwidths: Sequence[float],
                          kc_values: Iterable[int], n: int = 512,
                          full_overlap: bool = False) -> List[BlasModelResult]:
        """Utilisation vs local store for several bandwidths (Figs. 5.8/5.9)."""
        out: List[BlasModelResult] = []
        for bw in bandwidths:
            for kc in kc_values:
                out.append(self.utilization(operation, mc=kc, kc=kc, n=n,
                                            bandwidth_elements_per_cycle=bw,
                                            full_overlap=full_overlap))
        return out

    def compare_operations(self, mc: int, kc: int, n: int,
                           bandwidth_elements_per_cycle: float,
                           operations: Optional[Sequence[Level3Operation]] = None
                           ) -> List[BlasModelResult]:
        """Utilisation of several operations at one design point (Fig. 5.10)."""
        ops = operations or [Level3Operation.GEMM, Level3Operation.TRSM,
                             Level3Operation.SYRK, Level3Operation.SYR2K]
        return [self.utilization(op, mc, kc, n, bandwidth_elements_per_cycle) for op in ops]
