"""Analytical power model: dynamic plus idle power over all components.

The dissertation's power methodology (Section 1.3.3) computes total power as
the sum over all architectural components of a dynamic term and an idle term::

    Power = sum_i Pmax_i * activity_i  +  sum_i Pmax_i * idle_ratio

Activity factors come either from the access patterns of the algorithm under
study (memories, buses) or are 0/1 depending on whether a component is used
at all (functional units, front-end structures).  Idle/leakage power is a
calibrated constant fraction of the dynamic power (25--30% depending on the
technology).

This module provides the generic aggregation machinery plus the breakdown
container used to reproduce the normalised power-breakdown figures
(Figs. 4.13--4.15) and the efficiency comparisons (Fig. 4.16).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class PowerComponent:
    """One architectural component in the power model.

    Parameters
    ----------
    name:
        Component name as it appears in the breakdown figures (e.g. "FPUs",
        "Register File", "Shared Memory / L1", "Instruction Cache").
    max_power_w:
        Maximum (fully active) dynamic power of the component in watts.
    activity:
        Activity factor in [0, 1]; memories use the access-rate derived
        factor, logic uses 0 or 1.
    category:
        Coarse grouping used for normalised breakdown plots
        ("compute", "memory", "overhead", "interconnect", "io").
    essential:
        Whether the component does useful work for GEMM (FPUs, data
        memories) or is pure overhead from the matrix-computation viewpoint
        (instruction handling, register file shuffling, caches' tag logic).
    """

    name: str
    max_power_w: float
    activity: float = 1.0
    category: str = "compute"
    essential: bool = True

    def __post_init__(self) -> None:
        if self.max_power_w < 0:
            raise ValueError(f"max power must be non-negative ({self.name})")
        if not (0.0 <= self.activity <= 1.0):
            raise ValueError(f"activity factor must lie in [0,1] ({self.name}: {self.activity})")

    @property
    def dynamic_power_w(self) -> float:
        """Dynamic power contribution of the component."""
        return self.max_power_w * self.activity

    def with_activity(self, activity: float) -> "PowerComponent":
        """Return a copy with a different activity factor."""
        return replace(self, activity=activity)


@dataclass
class PowerBreakdown:
    """Aggregated power numbers for one architecture running one workload."""

    label: str
    components: List[PowerComponent]
    idle_ratio: float
    gflops: float = 0.0

    @property
    def dynamic_power_w(self) -> float:
        """Total dynamic power."""
        return sum(c.dynamic_power_w for c in self.components)

    @property
    def idle_power_w(self) -> float:
        """Total idle (leakage) power."""
        return self.dynamic_power_w * self.idle_ratio

    @property
    def total_power_w(self) -> float:
        """Dynamic + idle power."""
        return self.dynamic_power_w + self.idle_power_w

    @property
    def gflops_per_watt(self) -> float:
        """Achieved efficiency (0 when no throughput was recorded)."""
        return self.gflops / self.total_power_w if self.total_power_w > 0 else 0.0

    def by_component(self) -> Dict[str, float]:
        """Dynamic power per component name (idle power listed separately)."""
        out: Dict[str, float] = {}
        for c in self.components:
            out[c.name] = out.get(c.name, 0.0) + c.dynamic_power_w
        out["Idle/Leakage"] = self.idle_power_w
        return out

    def by_category(self) -> Dict[str, float]:
        """Dynamic power per category, plus the leakage bucket."""
        out: Dict[str, float] = {}
        for c in self.components:
            out[c.category] = out.get(c.category, 0.0) + c.dynamic_power_w
        out["idle"] = self.idle_power_w
        return out

    def normalized_by_performance(self) -> Dict[str, float]:
        """W/GFLOPS per component -- the quantity plotted in Figs. 4.13-4.15."""
        if self.gflops <= 0:
            raise ValueError(f"breakdown '{self.label}' has no recorded throughput")
        return {name: watts / self.gflops for name, watts in self.by_component().items()}

    def overhead_fraction(self) -> float:
        """Fraction of dynamic power burnt in non-essential components."""
        total = self.dynamic_power_w
        if total <= 0:
            return 0.0
        overhead = sum(c.dynamic_power_w for c in self.components if not c.essential)
        return overhead / total

    def scaled(self, factor: float, label: Optional[str] = None) -> "PowerBreakdown":
        """Return a copy with every component's max power scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        comps = [replace(c, max_power_w=c.max_power_w * factor) for c in self.components]
        return PowerBreakdown(label=label or self.label, components=comps,
                              idle_ratio=self.idle_ratio, gflops=self.gflops)


class PowerModel:
    """Builds :class:`PowerBreakdown` objects from component inventories.

    Parameters
    ----------
    idle_ratio:
        Idle power as a fraction of dynamic power (0.25--0.30 in the paper).
    """

    def __init__(self, idle_ratio: float = 0.25):
        if not (0.0 <= idle_ratio <= 1.0):
            raise ValueError("idle ratio must lie in [0, 1]")
        self.idle_ratio = idle_ratio

    def breakdown(self, label: str, components: Iterable[PowerComponent],
                  gflops: float = 0.0) -> PowerBreakdown:
        """Aggregate a set of components into a breakdown."""
        comps = list(components)
        if not comps:
            raise ValueError("at least one component is required")
        if gflops < 0:
            raise ValueError("throughput must be non-negative")
        return PowerBreakdown(label=label, components=comps,
                              idle_ratio=self.idle_ratio, gflops=gflops)

    def total_power_w(self, components: Iterable[PowerComponent]) -> float:
        """Total (dynamic + idle) power of a component inventory."""
        dyn = sum(c.dynamic_power_w for c in components)
        return dyn * (1.0 + self.idle_ratio)

    @staticmethod
    def memory_activity_from_access_rate(accesses_per_cycle: float,
                                         ports: int = 1) -> float:
        """Activity factor of a memory given its access rate and port count."""
        if ports < 1:
            raise ValueError("port count must be >= 1")
        if accesses_per_cycle < 0:
            raise ValueError("access rate must be non-negative")
        return min(1.0, accesses_per_cycle / ports)
