"""Efficiency metrics: GFLOPS/W, GFLOPS/mm^2, energy-delay and friends.

The dissertation picks its design points using a small set of metrics
(Section 3.6):

* power efficiency: GFLOPS per watt,
* area efficiency: GFLOPS per mm^2,
* power density: watts per mm^2,
* energy-delay: W / GFLOPS^2 (lower is better) and its inverse
  GFLOPS^2 / W (higher is better), used for the chip-level comparison in
  Table 4.2.

This module provides one small container computing all of them consistently
from (throughput, power, area, utilisation) tuples so that every table and
figure in the reproduction derives its numbers the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EfficiencyMetrics:
    """Efficiency metrics of one design point running one workload.

    Parameters
    ----------
    label:
        Name of the design point (e.g. "LAC (DP)", "Nvidia GTX480 SM").
    gflops:
        Achieved throughput in GFLOPS (already scaled by utilisation).
    power_w:
        Total power in watts attributable to that throughput.
    area_mm2:
        Silicon area in mm^2.
    utilization:
        Fraction of theoretical peak achieved (0..1].
    frequency_ghz:
        Operating frequency (optional, for reporting only).
    precision:
        "single" or "double" (optional, for reporting only).
    """

    label: str
    gflops: float
    power_w: float
    area_mm2: float
    utilization: float = 1.0
    frequency_ghz: Optional[float] = None
    precision: Optional[str] = None

    def __post_init__(self) -> None:
        if self.gflops < 0:
            raise ValueError(f"{self.label}: throughput must be non-negative")
        if self.power_w <= 0:
            raise ValueError(f"{self.label}: power must be positive")
        if self.area_mm2 <= 0:
            raise ValueError(f"{self.label}: area must be positive")
        if not (0.0 < self.utilization <= 1.0 + 1e-9):
            raise ValueError(f"{self.label}: utilization must lie in (0, 1]")

    # -------------------------------------------------------------- metrics
    @property
    def gflops_per_watt(self) -> float:
        """Power efficiency."""
        return self.gflops / self.power_w

    @property
    def gflops_per_mm2(self) -> float:
        """Area efficiency."""
        return self.gflops / self.area_mm2

    @property
    def watts_per_mm2(self) -> float:
        """Power density."""
        return self.power_w / self.area_mm2

    @property
    def energy_delay(self) -> float:
        """Energy-delay metric W / GFLOPS^2 (lower is better)."""
        if self.gflops == 0:
            return float("inf")
        return self.power_w / (self.gflops ** 2)

    @property
    def inverse_energy_delay(self) -> float:
        """Inverse energy-delay GFLOPS^2 / W (higher is better; Table 4.2)."""
        return (self.gflops ** 2) / self.power_w

    @property
    def mm2_per_gflop(self) -> float:
        """Area per unit throughput (Fig. 3.6/3.7 x-axis)."""
        if self.gflops == 0:
            return float("inf")
        return self.area_mm2 / self.gflops

    @property
    def mw_per_gflop(self) -> float:
        """Power per unit throughput in mW/GFLOPS (Fig. 3.6/3.7 y-axis)."""
        if self.gflops == 0:
            return float("inf")
        return 1e3 * self.power_w / self.gflops

    # ------------------------------------------------------------- helpers
    def ratio_to(self, other: "EfficiencyMetrics") -> dict:
        """Efficiency ratios of this design point relative to another."""
        return {
            "gflops_per_watt": self.gflops_per_watt / other.gflops_per_watt,
            "gflops_per_mm2": self.gflops_per_mm2 / other.gflops_per_mm2,
            "inverse_energy_delay": (self.inverse_energy_delay / other.inverse_energy_delay
                                     if other.inverse_energy_delay > 0 else float("inf")),
        }

    def as_row(self) -> dict:
        """Dictionary row for table rendering."""
        return {
            "label": self.label,
            "precision": self.precision or "-",
            "gflops": round(self.gflops, 2),
            "w_per_mm2": round(self.watts_per_mm2, 3),
            "gflops_per_mm2": round(self.gflops_per_mm2, 3),
            "gflops_per_w": round(self.gflops_per_watt, 2),
            "gflops2_per_w": round(self.inverse_energy_delay, 1),
            "utilization_pct": round(100.0 * self.utilization, 1),
        }
