"""Analytical performance, power and efficiency models.

These models reproduce the closed-form analyses of the dissertation:

* :mod:`repro.models.core_model` -- core-level GEMM cycle counts,
  utilisation vs. local-store size and core-to-memory bandwidth (Chapter 3).
* :mod:`repro.models.chip_model` -- chip-level memory hierarchy sizing and
  bandwidth requirements, multi-core utilisation, off-chip blocking
  (Chapter 4, Table 4.1).
* :mod:`repro.models.blas_model` -- utilisation of SYRK / SYR2K / TRSM and
  other level-3 BLAS on the LAC (Chapter 5).
* :mod:`repro.models.fact_model` -- cycle counts and energy for the matrix
  factorization inner kernels with optional hardware extensions
  (Chapter 6, Appendix A).
* :mod:`repro.models.fft_model` -- FFT bandwidth/storage requirements and
  cycle counts (Chapter 6.2, Appendix B).
* :mod:`repro.models.power` -- the dynamic + idle power aggregation model.
* :mod:`repro.models.efficiency` -- GFLOPS/W, GFLOPS/mm^2, energy-delay and
  inverse energy-delay metrics.
* :mod:`repro.models.validation` -- utilisation predictions for published
  architectures (Fermi C2050, ClearSpeed CSX), Section 4.3.
"""

from repro.models.core_model import CoreGEMMModel, CoreModelResult
from repro.models.chip_model import ChipGEMMModel, ChipModelResult, HierarchyRequirements
from repro.models.blas_model import Level3Operation, BlasCoreModel
from repro.models.fact_model import FactorizationKernelModel, MACExtension
from repro.models.fft_model import FFTCoreModel, FFTProblem
from repro.models.power import PowerComponent, PowerModel, PowerBreakdown
from repro.models.efficiency import EfficiencyMetrics
from repro.models.validation import predict_fermi_c2050_utilization, predict_clearspeed_csx_utilization

__all__ = [
    "CoreGEMMModel",
    "CoreModelResult",
    "ChipGEMMModel",
    "ChipModelResult",
    "HierarchyRequirements",
    "Level3Operation",
    "BlasCoreModel",
    "FactorizationKernelModel",
    "MACExtension",
    "FFTCoreModel",
    "FFTProblem",
    "PowerComponent",
    "PowerModel",
    "PowerBreakdown",
    "EfficiencyMetrics",
    "predict_fermi_c2050_utilization",
    "predict_clearspeed_csx_utilization",
]
