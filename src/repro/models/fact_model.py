"""Cycle and energy models for the matrix-factorization inner kernels.

Chapter 6 / Appendix A map the inner kernels of Cholesky, LU with partial
pivoting and Householder QR (via its vector-norm building block) onto the
LAC and study two orthogonal sets of hardware extensions:

* **MAC-unit extensions** -- a comparator for pivot search and an extra
  accumulator exponent bit that removes the overflow-guarding scaling pass of
  the vector norm;
* **divide/square-root options** -- software Goldschmidt on the PE MACs, an
  isolated per-core unit, or extended MAC units on the diagonal PEs
  (:class:`repro.hw.sfu.SFUPlacement`).

The models below produce inner-kernel cycle counts for ``k x nr`` panels
(LU, vector norm) and ``nr x nr`` diagonal blocks (Cholesky, TRSM-style
updates), the corresponding dynamic energy (Table A.2), and the efficiency
metrics plotted in Figures 6.5-6.7 and A.3-A.8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hw.fpu import FMACUnit, Precision
from repro.hw.sfu import SFUPlacement, SpecialFunctionUnit, SpecialOp
from repro.hw.sram import pe_store_a
from repro.models.efficiency import EfficiencyMetrics


class MACExtension(enum.Enum):
    """MAC-unit extension options studied for the factorization kernels."""

    NONE = "none"                #: baseline MAC unit
    COMPARATOR = "comparator"    #: adds pivot-search comparator (LU)
    EXPONENT = "exponent"        #: adds an extra exponent bit (vector norm)

    def describe(self) -> str:
        return {
            MACExtension.NONE: "baseline MAC",
            MACExtension.COMPARATOR: "MAC + comparator",
            MACExtension.EXPONENT: "MAC + extended exponent",
        }[self]


class FactorizationKernel(enum.Enum):
    """Inner kernels analysed in Chapter 6 / Appendix A."""

    CHOLESKY = "cholesky"
    LU = "lu"
    QR_HOUSEHOLDER = "qr"
    VECTOR_NORM = "vnorm"


@dataclass(frozen=True)
class KernelCostResult:
    """Cycle count and energy for one factorization inner kernel."""

    kernel: FactorizationKernel
    k: int
    nr: int
    placement: SFUPlacement
    extension: MACExtension
    cycles: float
    useful_flops: float
    dynamic_energy_j: float

    @property
    def utilization(self) -> float:
        """Useful MAC throughput relative to peak over the kernel duration."""
        peak_flops = 2.0 * self.nr * self.nr * self.cycles
        return min(1.0, self.useful_flops / peak_flops) if peak_flops > 0 else 0.0

    def gflops(self, frequency_ghz: float) -> float:
        """Achieved GFLOPS at a given frequency."""
        seconds = self.cycles / (frequency_ghz * 1e9)
        return self.useful_flops / seconds / 1e9 if seconds > 0 else 0.0

    def gflops_per_watt(self, frequency_ghz: float) -> float:
        """Power efficiency of the kernel at a given frequency."""
        seconds = self.cycles / (frequency_ghz * 1e9)
        if seconds <= 0 or self.dynamic_energy_j <= 0:
            return 0.0
        power = self.dynamic_energy_j / seconds
        return self.gflops(frequency_ghz) / power


class FactorizationKernelModel:
    """Analytical cycle/energy model of the factorization inner kernels.

    Parameters
    ----------
    nr:
        Core dimension.
    precision:
        Operating precision (the chapter evaluates double precision).
    mac_pipeline_stages:
        MAC pipeline depth ``p``; the dependency-bound kernels pay this
        latency on every serialised step.
    frequency_ghz:
        Clock frequency used for the energy model.
    local_store_kbytes_per_pe:
        Per-PE local store assumed when computing SRAM access energy.
    """

    def __init__(self, nr: int = 4, precision: Precision = Precision.DOUBLE,
                 mac_pipeline_stages: int = 8, frequency_ghz: float = 1.0,
                 local_store_kbytes_per_pe: float = 16.0):
        if nr < 2:
            raise ValueError("core dimension must be >= 2")
        self.nr = nr
        self.precision = precision
        self.p = mac_pipeline_stages
        self.frequency_ghz = frequency_ghz
        self.local_store_kbytes_per_pe = local_store_kbytes_per_pe

    # ------------------------------------------------------------ components
    def _fmac(self, extension: MACExtension) -> FMACUnit:
        return FMACUnit(
            precision=self.precision,
            pipeline_stages=self.p,
            frequency_ghz=self.frequency_ghz,
            has_comparator=extension is MACExtension.COMPARATOR,
            extended_exponent=extension is MACExtension.EXPONENT,
        )

    def _sfu(self, placement: SFUPlacement) -> SpecialFunctionUnit:
        return SpecialFunctionUnit(placement=placement, precision=self.precision,
                                   frequency_ghz=self.frequency_ghz, nr=self.nr,
                                   mac_pipeline_stages=self.p)

    def _sram_energy_per_access(self) -> float:
        store = pe_store_a(int(self.local_store_kbytes_per_pe * 1024))
        return store.energy_per_access_j

    # --------------------------------------------------------- cycle models
    def cholesky_cycles(self, placement: SFUPlacement) -> float:
        """Cycles of an unblocked ``nr x nr`` Cholesky factorization.

        Section 6.1.1: ``2 p (nr - 1) + q nr`` where ``q`` is the latency of
        the inverse-square-root unit.
        """
        q = self._sfu(placement).latency_cycles(SpecialOp.INV_SQRT)
        return 2.0 * self.p * (self.nr - 1) + q * self.nr

    def lu_panel_cycles(self, k: int, placement: SFUPlacement,
                        extension: MACExtension) -> float:
        """Cycles of a ``k x nr`` LU factorization with partial pivoting.

        Each of the ``nr`` iterations performs: a pivot search down a column
        of ``k`` elements (overlapped with the rank-1 update when the MAC has
        the comparator extension, otherwise a separate reduction pass), a
        reciprocal of the pivot, a column scale and a rank-1 update of the
        trailing ``k x nr`` panel distributed over the ``nr x nr`` PEs.
        """
        if k < self.nr:
            raise ValueError(f"panel height k={k} must be at least nr={self.nr}")
        recip = self._sfu(placement).latency_cycles(SpecialOp.RECIPROCAL)
        cycles = 0.0
        for i in range(self.nr):
            rows_below = k - i - 1
            # Pivot search: with the comparator the max-tracking rides along the
            # normal column traversal; without it an explicit reduction over the
            # column (log-depth over the PE rows, linear over the local chunk)
            # must be issued first.
            traversal = rows_below / float(self.nr) + self.p
            if extension is MACExtension.COMPARATOR:
                search = traversal
            else:
                search = 2.0 * traversal + self.nr
            swap = 2.0  # pivot row broadcast + exchange over the buses
            scale = rows_below / float(self.nr) + self.p
            update = rows_below * (self.nr - i - 1) / float(self.nr * self.nr) + self.p
            cycles += search + recip + swap + scale + update
        return cycles

    def vector_norm_cycles(self, k: int, placement: SFUPlacement,
                           extension: MACExtension) -> float:
        """Cycles of a length-``k`` overflow-safe vector norm (Sec. 6.1.3).

        Without the exponent extension the kernel needs a max-search pass and
        a scaling pass before the inner product (two-pass algorithm); with it,
        a single accumulation pass suffices.  The final square root and the
        reduce-all over the owning column add the SFU latency plus ``nr``
        broadcast steps.
        """
        if k < 1:
            raise ValueError("vector length must be positive")
        sqrt_lat = self._sfu(placement).latency_cycles(SpecialOp.SQRT)
        # The vector lives in one PE column; it is shared with the neighbouring
        # column so 2*nr PEs cooperate on the inner product.
        chunk = k / float(2 * self.nr)
        accumulate = chunk + self.p
        reduce_partial = self.nr + self.p          # reduce back to owner column
        reduce_all = self.nr + self.p              # broadcast-combine in column
        cycles = accumulate + reduce_partial + reduce_all + sqrt_lat
        if extension is not MACExtension.EXPONENT:
            max_search = chunk + self.p + self.nr  # find max |x_i|
            scale_pass = chunk + self.p            # multiply by 1/t
            recip = self._sfu(placement).latency_cycles(SpecialOp.RECIPROCAL)
            cycles += max_search + scale_pass + recip
        return cycles

    def qr_panel_cycles(self, k: int, placement: SFUPlacement,
                        extension: MACExtension) -> float:
        """Cycles of a ``k x nr`` Householder QR panel factorization.

        Each of the ``nr`` iterations computes a Householder vector (one
        vector norm plus a scale) and applies the reflector to the trailing
        panel (a matrix-vector product and a rank-1 update).
        """
        if k < self.nr:
            raise ValueError(f"panel height k={k} must be at least nr={self.nr}")
        div = self._sfu(placement).latency_cycles(SpecialOp.DIVIDE)
        cycles = 0.0
        for i in range(self.nr):
            rows_below = max(k - i, 1)
            cols_right = self.nr - i - 1
            norm = self.vector_norm_cycles(rows_below, placement, extension)
            scale = rows_below / float(self.nr) + self.p + div
            matvec = rows_below * max(cols_right, 1) / float(self.nr * self.nr) + self.p
            rank1 = rows_below * max(cols_right, 1) / float(self.nr * self.nr) + self.p
            cycles += norm + scale + matvec + rank1
        return cycles

    # -------------------------------------------------------- useful flops
    @staticmethod
    def _useful_flops(kernel: FactorizationKernel, k: int, nr: int) -> float:
        if kernel is FactorizationKernel.CHOLESKY:
            return nr ** 3 / 3.0 + nr ** 2
        if kernel is FactorizationKernel.LU:
            return 2.0 * k * nr * nr - nr ** 3 / 3.0
        if kernel is FactorizationKernel.QR_HOUSEHOLDER:
            return 4.0 * k * nr * nr
        if kernel is FactorizationKernel.VECTOR_NORM:
            return 2.0 * k
        raise ValueError(f"unknown kernel {kernel}")

    # -------------------------------------------------------------- energy
    def _kernel_energy(self, kernel: FactorizationKernel, k: int, cycles: float,
                       placement: SFUPlacement, extension: MACExtension) -> float:
        """Dynamic energy of the kernel: MAC ops + SRAM traffic + SFU ops."""
        fmac = self._fmac(extension)
        sram_access = self._sram_energy_per_access()
        flops = self._useful_flops(kernel, k, self.nr)
        macs = flops / 2.0
        mac_energy = macs * fmac.energy_per_mac_j
        # Roughly one operand read per MAC from the local stores plus the
        # streaming of the panel once.
        sram_energy = (macs + k * self.nr) * sram_access
        sfu = self._sfu(placement)
        special_ops = {
            FactorizationKernel.CHOLESKY: self.nr,
            FactorizationKernel.LU: self.nr,
            FactorizationKernel.QR_HOUSEHOLDER: 2 * self.nr,
            FactorizationKernel.VECTOR_NORM: 1,
        }[kernel]
        op = {
            FactorizationKernel.CHOLESKY: SpecialOp.INV_SQRT,
            FactorizationKernel.LU: SpecialOp.RECIPROCAL,
            FactorizationKernel.QR_HOUSEHOLDER: SpecialOp.DIVIDE,
            FactorizationKernel.VECTOR_NORM: SpecialOp.SQRT,
        }[kernel]
        sfu_energy = special_ops * sfu.energy_per_op_j(op)
        # Idle power of the (mostly waiting) MAC array over the kernel run.
        seconds = cycles / (self.frequency_ghz * 1e9)
        idle_energy = self.nr * self.nr * fmac.idle_power_w * seconds
        return mac_energy + sram_energy + sfu_energy + idle_energy

    # ------------------------------------------------------------ evaluate
    def evaluate(self, kernel: FactorizationKernel, k: int,
                 placement: SFUPlacement = SFUPlacement.ISOLATED,
                 extension: MACExtension = MACExtension.NONE) -> KernelCostResult:
        """Evaluate cycles, flops and energy for one kernel configuration."""
        if kernel is FactorizationKernel.CHOLESKY:
            cycles = self.cholesky_cycles(placement)
        elif kernel is FactorizationKernel.LU:
            cycles = self.lu_panel_cycles(k, placement, extension)
        elif kernel is FactorizationKernel.QR_HOUSEHOLDER:
            cycles = self.qr_panel_cycles(k, placement, extension)
        elif kernel is FactorizationKernel.VECTOR_NORM:
            cycles = self.vector_norm_cycles(k, placement, extension)
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown kernel {kernel}")
        flops = self._useful_flops(kernel, k, self.nr)
        energy = self._kernel_energy(kernel, k, cycles, placement, extension)
        return KernelCostResult(kernel=kernel, k=k, nr=self.nr, placement=placement,
                                extension=extension, cycles=cycles, useful_flops=flops,
                                dynamic_energy_j=energy)

    def sweep(self, kernel: FactorizationKernel, sizes: Sequence[int],
              placements: Optional[Sequence[SFUPlacement]] = None,
              extensions: Optional[Sequence[MACExtension]] = None) -> List[KernelCostResult]:
        """Evaluate a kernel across problem sizes and architecture options."""
        placements = list(placements or SFUPlacement)
        extensions = list(extensions or MACExtension)
        out: List[KernelCostResult] = []
        for k in sizes:
            for pl in placements:
                for ext in extensions:
                    out.append(self.evaluate(kernel, k, pl, ext))
        return out

    # ----------------------------------------------------- efficiency rows
    def efficiency(self, result: KernelCostResult, core_area_mm2: float) -> EfficiencyMetrics:
        """Wrap a kernel result in the standard efficiency-metric container."""
        seconds = result.cycles / (self.frequency_ghz * 1e9)
        power = result.dynamic_energy_j / seconds if seconds > 0 else float("inf")
        return EfficiencyMetrics(
            label=f"{result.kernel.value}[k={result.k},{result.placement.value},"
                  f"{result.extension.value}]",
            gflops=result.gflops(self.frequency_ghz),
            power_w=max(power, 1e-9),
            area_mm2=core_area_mm2,
            utilization=max(result.utilization, 1e-6),
            frequency_ghz=self.frequency_ghz,
            precision=self.precision.value,
        )
