"""Model validation against published architectures (Section 4.3).

The dissertation demonstrates the predictive value of its memory-hierarchy
model by applying it to two existing accelerators and checking the predicted
utilisation ceiling against the utilisation those machines actually achieve on
DGEMM:

* **NVidia Fermi C2050** -- 14 cores x 16 DP MAC units, 768 KB on-chip L2,
  1.15 GHz, 144 GB/s off-chip and 230 GB/s on-chip bandwidth.  The model
  predicts an on-chip bandwidth demand of ~310 GB/s, i.e. a ~74% utilisation
  ceiling; published DGEMM implementations achieve ~70%.
* **ClearSpeed CSX700** -- 128 KB on-chip memory, ~4 GB/s off-chip bandwidth.
  Modelled as six optimal 4x4 cores, the blocked algorithm demands
  ~4.7 GB/s, giving an ~83% ceiling; the published figure is ~78%.

Both predictions are reproduced by :func:`predict_fermi_c2050_utilization`
and :func:`predict_clearspeed_csx_utilization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.chip_model import ChipGEMMModel


@dataclass(frozen=True)
class UtilizationPrediction:
    """A predicted utilisation ceiling for a published architecture."""

    architecture: str
    limiting_resource: str
    required_bandwidth_gb_s: float
    available_bandwidth_gb_s: float
    predicted_utilization: float
    published_utilization: float

    @property
    def prediction_error(self) -> float:
        """Absolute difference between predicted ceiling and published value."""
        return abs(self.predicted_utilization - self.published_utilization)


def predict_fermi_c2050_utilization(onchip_memory_kbytes: float = 768.0,
                                    num_cores: int = 14,
                                    frequency_ghz: float = 1.15,
                                    onchip_bandwidth_gb_s: float = 230.0,
                                    offchip_bandwidth_gb_s: float = 144.0,
                                    element_bytes: int = 8) -> UtilizationPrediction:
    """Predict the DGEMM utilisation ceiling of the NVidia Fermi C2050.

    Follows Section 4.3 step by step: find the largest block of C (divisible
    by the core count and nr=4) that fits in the L2 together with its panels,
    derive the per-core blocking, evaluate the on-chip and off-chip bandwidth
    demands, and compare each against what the machine provides.
    """
    nr = 4
    capacity_words = onchip_memory_kbytes * 1024.0 / element_bytes

    # Largest ns divisible by num_cores * nr whose C block plus panels fit.
    step = num_cores * nr
    ns = step
    while True:
        candidate = ns + step
        mc_c = candidate // num_cores
        needed = candidate ** 2 + num_cores * mc_c * mc_c + 2.0 * mc_c * candidate
        if needed > capacity_words:
            break
        ns = candidate
    mc = ns // num_cores
    kc = mc

    model = ChipGEMMModel(num_cores=num_cores, nr=nr, element_bytes=element_bytes)
    onchip_words = model.onchip_bandwidth_words_per_cycle(mc, kc, ns)
    onchip_demand_gb_s = onchip_words * element_bytes * frequency_ghz
    offchip_words = model.offchip_bandwidth_words_per_cycle(ns, full_overlap=True)
    offchip_demand_gb_s = offchip_words * element_bytes * frequency_ghz

    onchip_ceiling = min(1.0, onchip_bandwidth_gb_s / onchip_demand_gb_s)
    offchip_ceiling = min(1.0, offchip_bandwidth_gb_s / offchip_demand_gb_s)

    if onchip_ceiling <= offchip_ceiling:
        limiting = "on-chip bandwidth"
        required = onchip_demand_gb_s
        available = onchip_bandwidth_gb_s
        predicted = onchip_ceiling
    else:
        limiting = "off-chip bandwidth"
        required = offchip_demand_gb_s
        available = offchip_bandwidth_gb_s
        predicted = offchip_ceiling

    return UtilizationPrediction(
        architecture="NVidia Fermi C2050",
        limiting_resource=limiting,
        required_bandwidth_gb_s=required,
        available_bandwidth_gb_s=available,
        predicted_utilization=predicted,
        published_utilization=0.70,
    )


def predict_clearspeed_csx_utilization(onchip_memory_kbytes: float = 128.0,
                                       num_cores: int = 6,
                                       frequency_ghz: float = 0.25,
                                       offchip_bandwidth_gb_s: float = 4.0,
                                       element_bytes: int = 8,
                                       problem_n: int = 1024) -> UtilizationPrediction:
    """Predict the DGEMM utilisation ceiling of the ClearSpeed CSX700.

    The CSX has only 128 KB of on-chip memory, so the resident block of C is
    small (64 x 128 in the paper's walk-through) and the extra blocking layer
    of Section 4.2.3 applies; the ceiling then comes from the off-chip
    bandwidth.
    """
    nr = 4
    capacity_words = onchip_memory_kbytes * 1024.0 / element_bytes

    # Largest square sub-block side ns such that k = 2 resident sub-blocks of C
    # (the 64 x 128 block of the paper's walk-through) plus a ~30% margin for
    # the streamed panels of A and B still fit in the on-chip memory.
    k = 2
    ns = nr
    while (k * (2 * ns) * (2 * ns)) * 1.3 <= capacity_words and 2 * ns <= problem_n:
        ns *= 2

    d = problem_n / float(ns)
    per_mac_column = (2.0 * k + (k + 1) * d) / (k * problem_n)
    demand_words_per_cycle = per_mac_column * num_cores * nr * nr
    demand_gb_s = demand_words_per_cycle * element_bytes * frequency_ghz

    predicted = min(1.0, offchip_bandwidth_gb_s / demand_gb_s)
    return UtilizationPrediction(
        architecture="ClearSpeed CSX700",
        limiting_resource="off-chip bandwidth",
        required_bandwidth_gb_s=demand_gb_s,
        available_bandwidth_gb_s=offchip_bandwidth_gb_s,
        predicted_utilization=predicted,
        published_utilization=0.78,
    )
