"""Core-level analytical GEMM performance model (Chapter 3).

The LAC computes ``Ci += Ai,p @ Bp`` with an ``mc x kc`` block of ``A``
resident in the PE local stores, ``kc x nr`` panels of ``B`` replicated down
PE columns, and ``nr x nr`` sub-blocks of ``C`` living in the MAC
accumulators.  Section 3.4 derives the cycle count for one such update when
the core sees an effective bandwidth of ``x`` elements per cycle from the
on-chip memory:

* reading ``Ai,p`` costs ``mc*kc / x`` cycles (not overlapped in the
  partial-overlap variant),
* reading/writing the panels of ``C`` and reading ``Bp`` costs
  ``(2*mc + kc) * n / x`` cycles, and
* the computation itself at peak costs ``mc * kc * n / nr^2`` cycles,

with the transfer of ``C``/``B`` overlapping the computation.  The attainable
utilisation is the ratio of the peak-compute cycle count to the achieved
total.  The fully-overlapped variant also hides the load of the *next* block
of ``A`` behind the current computation at the cost of doubling the ``A``
store.

The same section sizes the PE local store: ``(mc + 2*nr^2) * kc`` elements for
the partial-overlap design and ``2*(mc + nr^2)*kc`` for full overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class CoreModelResult:
    """Result of evaluating the core model at one design point."""

    nr: int
    mc: int
    kc: int
    n: int
    bandwidth_elements_per_cycle: float
    local_store_elements_per_pe: float
    total_cycles: float
    peak_cycles: float
    utilization: float
    full_overlap: bool

    @property
    def local_store_bytes_per_pe(self) -> float:
        """Local store requirement per PE in bytes (double precision)."""
        return self.local_store_elements_per_pe * 8.0

    @property
    def gflops(self) -> float:
        """Not frequency-scaled; callers multiply by frequency * 2 * nr^2."""
        return self.utilization


class CoreGEMMModel:
    """Analytical model of a single LAC running GEMM.

    Parameters
    ----------
    nr:
        Core dimension (the core has ``nr x nr`` PEs).
    element_bytes:
        Storage size of one matrix element (8 for double precision).
    """

    def __init__(self, nr: int = 4, element_bytes: int = 8):
        if nr < 2:
            raise ValueError("core dimension nr must be >= 2")
        if element_bytes not in (4, 8):
            raise ValueError("element_bytes must be 4 (SP) or 8 (DP)")
        self.nr = nr
        self.element_bytes = element_bytes

    # ------------------------------------------------------------ local store
    def local_store_elements_per_pe(self, mc: int, kc: int, full_overlap: bool = False) -> float:
        """Aggregate local store per PE in elements.

        The aggregate requirement over the whole core is
        ``mc*kc + 2*kc*nr^2`` elements (current ``A`` plus current and next
        ``B``) for the partial-overlap design and ``2*mc*kc + 2*kc*nr^2`` for
        the fully-overlapped design; dividing by ``nr^2`` PEs gives the per-PE
        figure.
        """
        self._check_blocking(mc, kc)
        nr2 = self.nr * self.nr
        if full_overlap:
            aggregate = 2 * mc * kc + 2 * kc * nr2
        else:
            aggregate = mc * kc + 2 * kc * nr2
        return aggregate / nr2

    def local_store_bytes_per_pe(self, mc: int, kc: int, full_overlap: bool = False) -> float:
        """Per-PE local store requirement in bytes."""
        return self.local_store_elements_per_pe(mc, kc, full_overlap) * self.element_bytes

    # ------------------------------------------------------------ cycle model
    def cycles(self, mc: int, kc: int, n: int, bandwidth_elements_per_cycle: float,
               full_overlap: bool = False) -> CoreModelResult:
        """Evaluate the cycle count for one ``Ci += Ai,p Bp`` update.

        Parameters
        ----------
        mc, kc:
            Blocking parameters (the resident block of ``A`` is ``mc x kc``).
        n:
            Width of the panel of ``B``/``C`` processed per update.
        bandwidth_elements_per_cycle:
            Effective bandwidth between the core and the on-chip memory in
            *elements* per cycle.
        full_overlap:
            Whether prefetching of the next ``A`` block is overlapped with
            computation (requires the doubled local store).
        """
        self._check_blocking(mc, kc)
        if n <= 0:
            raise ValueError("panel width n must be positive")
        if bandwidth_elements_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")

        x = bandwidth_elements_per_cycle
        nr2 = self.nr * self.nr

        load_a_cycles = (mc * kc) / x
        stream_cycles = (2.0 * mc + kc) * n / x
        compute_cycles = (mc * kc * n) / nr2

        if full_overlap:
            # Loading the next A block is hidden behind computation as well;
            # only the streaming of B/C can still expose bandwidth limits.
            total = max(stream_cycles + load_a_cycles, compute_cycles)
        else:
            total = load_a_cycles + max(stream_cycles, compute_cycles)

        peak = compute_cycles
        utilization = peak / total if total > 0 else 0.0
        return CoreModelResult(
            nr=self.nr,
            mc=mc,
            kc=kc,
            n=n,
            bandwidth_elements_per_cycle=x,
            local_store_elements_per_pe=self.local_store_elements_per_pe(mc, kc, full_overlap),
            total_cycles=total,
            peak_cycles=peak,
            utilization=min(1.0, utilization),
            full_overlap=full_overlap,
        )

    def utilization(self, mc: int, kc: int, n: int, bandwidth_elements_per_cycle: float,
                    full_overlap: bool = False) -> float:
        """Convenience wrapper returning only the utilisation fraction."""
        return self.cycles(mc, kc, n, bandwidth_elements_per_cycle, full_overlap).utilization

    # ------------------------------------------------- bandwidth requirements
    def required_bandwidth_for_peak(self, mc: int, kc: int, n: Optional[int] = None,
                                    full_overlap: bool = True) -> float:
        """Bandwidth (elements/cycle) needed to sustain peak performance.

        Table 4.1 gives the per-core requirement as
        ``(2/kc + 1/mc) * nr^2`` elements/cycle for the partial-overlap design
        and ``(2/kc + 1/mc + 1/n) * nr^2`` with full overlap (the extra term
        streams the next block of ``A``).  When ``n`` is omitted the full
        overlap expression drops the ``1/n`` term (it vanishes for large
        problems).
        """
        self._check_blocking(mc, kc)
        nr2 = self.nr * self.nr
        req = (2.0 / kc + 1.0 / mc) * nr2
        if full_overlap and n is not None and n > 0:
            req += nr2 / float(n)
        return req

    def intra_core_bandwidth_words_per_cycle(self, mc: int, kc: int, n: Optional[int] = None,
                                             full_overlap: bool = True) -> float:
        """Bandwidth on the intra-core buses in words/cycle (Table 4.1)."""
        self._check_blocking(mc, kc)
        base = self.nr * (1.0 + (2.0 / kc + 1.0 / mc))
        if full_overlap and n is not None and n > 0:
            base += self.nr / float(n)
        return base

    # ------------------------------------------------------- sweep utilities
    def sweep_local_store(self, bandwidths: Sequence[float], kc_values: Iterable[int],
                          n: int = 512, full_overlap: bool = False) -> List[CoreModelResult]:
        """Sweep square blockings (mc = kc) against a set of bandwidths.

        This reproduces the data behind Figure 3.4: utilisation as a function
        of per-PE local store size for several core-to-memory bandwidths.
        """
        results: List[CoreModelResult] = []
        for bw in bandwidths:
            for kc in kc_values:
                results.append(self.cycles(mc=kc, kc=kc, n=n,
                                           bandwidth_elements_per_cycle=bw,
                                           full_overlap=full_overlap))
        return results

    def peak_bandwidth_vs_local_store(self, kc_values: Iterable[int], n: int = 512) -> List[dict]:
        """Bandwidth needed for peak vs. resulting local store size (Fig. 3.5)."""
        rows = []
        for kc in kc_values:
            bw = self.required_bandwidth_for_peak(mc=kc, kc=kc, n=n, full_overlap=True)
            store = self.local_store_bytes_per_pe(mc=kc, kc=kc, full_overlap=True)
            rows.append({
                "nr": self.nr,
                "kc": kc,
                "local_store_kbytes_per_pe": store / 1024.0,
                "bandwidth_bytes_per_cycle": bw * self.element_bytes,
            })
        return rows

    def smallest_kc_for_peak(self, bandwidth_elements_per_cycle: float, n: int = 512,
                             kc_limit: int = 4096, full_overlap: bool = True) -> Optional[int]:
        """Smallest square blocking that reaches peak at the given bandwidth."""
        if bandwidth_elements_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        for kc in range(self.nr, kc_limit + 1, self.nr):
            req = self.required_bandwidth_for_peak(mc=kc, kc=kc, n=n, full_overlap=full_overlap)
            if req <= bandwidth_elements_per_cycle:
                return kc
        return None

    # --------------------------------------------------------------- helpers
    def _check_blocking(self, mc: int, kc: int) -> None:
        if mc <= 0 or kc <= 0:
            raise ValueError(f"blocking parameters must be positive (mc={mc}, kc={kc})")

    def peak_gflops(self, frequency_ghz: float) -> float:
        """Peak GFLOPS of one core at the given frequency."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        return 2.0 * self.nr * self.nr * frequency_ghz
