"""FFT bandwidth / storage / cycle models (Chapter 6.2 and Appendix B).

The dissertation maps a radix-4, FMA-optimised FFT onto the LAC: each PE
executes radix-4 butterflies on locally stored points, stage-2 exchanges use
only row buses and stage-3 exchanges only column buses, and larger 1D/2D
transforms stream blocks of points through the core with (optionally) fully
overlapped pre-fetch/post-store.

The quantities reproduced here are:

* per-butterfly operation counts of the FMA-optimised radix-4 DAG
  (8 complex = 24 FMA operations per butterfly),
* cycle counts for a core-contained 64/256/...-point FFT,
* local-store and bandwidth requirements for overlapped vs. non-overlapped
  operation and for 1D ``N^2``-point vs. 2D ``N x N`` transforms (Table B.1),
* the average communication load on the core for large 1D transforms
  (Fig. B.7) and the bandwidth needed for full overlap (Fig. B.5).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


#: FMA operations of the optimised radix-4 butterfly DAG (Appendix B.2.1):
#: three twiddle multiplies (4 FMAs each as complex multiply-adds) and the
#: add/subtract network folded into FMAs -- 24 FMA ops per butterfly in the
#: fused mapping.
FMA_OPS_PER_RADIX4_BUTTERFLY = 24

#: Classical flop count of one radix-4 butterfly (for "Cooley-Tukey flops",
#: the 5 N log2 N convention is used at the transform level instead).
COMPLEX_POINTS_PER_BUTTERFLY = 4


class FFTVariant(enum.Enum):
    """Transform organisations analysed in Appendix B."""

    ONE_D = "1d"      #: a single large 1D transform of N^2 points
    TWO_D = "2d"      #: an N x N 2D transform (row FFTs then column FFTs)


@dataclass(frozen=True)
class FFTProblem:
    """An FFT workload mapped onto the LAC.

    Parameters
    ----------
    points:
        Total number of complex points in the transform.
    variant:
        1D or 2D organisation (2D transforms of ``N x N`` points perform two
        passes of N-point FFTs).
    precision_bytes:
        Bytes per real scalar (8 for double precision).
    """

    points: int
    variant: FFTVariant = FFTVariant.ONE_D
    precision_bytes: int = 8

    def __post_init__(self) -> None:
        if self.points < 4:
            raise ValueError("FFT needs at least 4 points")
        if self.points & (self.points - 1) != 0:
            raise ValueError("point count must be a power of two")

    @property
    def complex_bytes(self) -> int:
        """Bytes per complex point."""
        return 2 * self.precision_bytes

    @property
    def stages_radix4(self) -> int:
        """Number of radix-4 stages (log4 of the point count)."""
        return int(round(math.log(self.points, 4)))

    @property
    def total_flops(self) -> float:
        """Standard 5 N log2 N flop count of the transform."""
        return 5.0 * self.points * math.log2(self.points)


class FFTCoreModel:
    """Cycle / bandwidth / storage model of FFT on an ``nr x nr`` LAC.

    Parameters
    ----------
    nr:
        Core dimension; the core holds ``nr*nr`` PEs each running radix-4
        butterflies.
    mac_pipeline_stages:
        MAC pipeline depth (the optimised DAG is scheduled to avoid pipeline
        hazards, so throughput is one FMA per cycle per PE).
    """

    def __init__(self, nr: int = 4, mac_pipeline_stages: int = 8):
        if nr < 2:
            raise ValueError("core dimension must be >= 2")
        self.nr = nr
        self.p = mac_pipeline_stages

    # ------------------------------------------------------------ butterfly
    def butterflies_per_stage(self, points: int) -> int:
        """Number of radix-4 butterflies per stage of a ``points``-point FFT."""
        if points % 4 != 0:
            raise ValueError("point count must be divisible by 4")
        return points // 4

    def core_fft_cycles(self, points: int, overlap_io: bool = True) -> float:
        """Cycles for a core-contained FFT of ``points`` complex points.

        Each stage executes ``points/4`` butterflies distributed over the
        ``nr^2`` PEs at 24 FMAs each; inter-stage data exchanges ride the row
        buses (stage 2) and column buses (stage 3) and overlap with
        computation.  Without I/O overlap the initial load and final store of
        the points over the column buses are added.
        """
        problem = FFTProblem(points)
        stages = problem.stages_radix4
        pes = self.nr * self.nr
        per_stage = self.butterflies_per_stage(points) * FMA_OPS_PER_RADIX4_BUTTERFLY / pes
        compute = stages * (per_stage + self.p)
        if overlap_io:
            return compute
        io_words = 2.0 * points * 2  # load + store, 2 words per complex point
        io_cycles = io_words / self.nr  # nr column buses, one word each per cycle
        return compute + io_cycles

    def core_fft_utilization(self, points: int, overlap_io: bool = True) -> float:
        """Fraction of peak FMA issue achieved for a core-contained FFT."""
        cycles = self.core_fft_cycles(points, overlap_io)
        pes = self.nr * self.nr
        useful = FFTProblem(points).stages_radix4 * self.butterflies_per_stage(points) \
            * FMA_OPS_PER_RADIX4_BUTTERFLY / pes
        return min(1.0, useful / cycles) if cycles > 0 else 0.0

    # --------------------------------------------------- storage / bandwidth
    def local_store_words_per_pe(self, block_points: int, overlap: bool = True) -> float:
        """Local store (in 8-byte words) per PE for a streamed block of points.

        The core holds one block of points (2 words per complex point spread
        over ``nr^2`` PEs) plus the twiddle factors for the current stages;
        the overlapped design double-buffers the block so the next one can be
        prefetched while the current one is computed.
        """
        if block_points < 1:
            raise ValueError("block must contain at least one point")
        pes = self.nr * self.nr
        data_words = 2.0 * block_points / pes
        twiddle_words = 2.0 * block_points / pes
        factor = 2.0 if overlap else 1.0
        return factor * data_words + twiddle_words

    def required_bandwidth_words_per_cycle(self, block_points: int, overlap: bool = True) -> float:
        """Off-core bandwidth (words/cycle) to sustain a streamed block FFT.

        A block of ``B`` points is loaded and stored (``4 B`` words total)
        while the core spends ``stages(B) * 24 * B / (4 * nr^2)`` cycles
        computing on it; full overlap requires the transfers to finish within
        the compute time.  The paper notes four doubles per cycle is the
        maximum a 4x4 core can accept over its column buses.
        """
        cycles = self.core_fft_cycles(block_points, overlap_io=True)
        words = 4.0 * block_points
        if not overlap:
            # Transfers serialised with compute: average over the total time.
            return words / (cycles + words / self.nr)
        return words / cycles

    def max_external_bandwidth_words_per_cycle(self) -> float:
        """Column-bus ceiling on external transfers (words/cycle)."""
        return float(self.nr)

    # -------------------------------------------------------- large FFTs
    def large_fft_requirements(self, problem: FFTProblem, block_points: int = 64,
                               overlap: bool = True) -> dict:
        """Storage/bandwidth/cycle requirements for a large 1D or 2D FFT.

        Large transforms are decomposed into passes of core-sized FFTs
        (four-step / transpose algorithms): a 1D transform of ``N^2`` points
        performs two passes of ``N``-point FFTs plus a twiddle scaling and a
        transpose through the on-chip memory; an ``N x N`` 2D transform
        performs the row-FFT pass and the column-FFT pass (Table B.1).
        """
        if block_points < 4:
            raise ValueError("block must contain at least 4 points")
        n_side = int(round(math.sqrt(problem.points)))
        passes = 2
        ffts_per_pass = problem.points // block_points
        cycles_per_fft = self.core_fft_cycles(block_points, overlap_io=overlap)
        io_words_per_fft = 4.0 * block_points
        compute_cycles = passes * ffts_per_pass * cycles_per_fft
        io_words = passes * ffts_per_pass * io_words_per_fft
        bw = self.required_bandwidth_words_per_cycle(block_points, overlap)
        onchip_words = 2.0 * problem.points * (2 if overlap else 1)
        return {
            "variant": problem.variant.value,
            "points": problem.points,
            "n_side": n_side,
            "block_points": block_points,
            "passes": passes,
            "core_ffts": passes * ffts_per_pass,
            "compute_cycles": compute_cycles,
            "io_words": io_words,
            "required_bw_words_per_cycle": bw,
            "local_store_words_per_pe": self.local_store_words_per_pe(block_points, overlap),
            "onchip_memory_words": onchip_words,
            "overlap": overlap,
        }

    def average_communication_load(self, problem: FFTProblem, block_points: int = 64) -> float:
        """Average words/cycle crossing the core boundary for a large FFT (Fig. B.7)."""
        req = self.large_fft_requirements(problem, block_points, overlap=True)
        return req["io_words"] / req["compute_cycles"] if req["compute_cycles"] > 0 else 0.0

    def gflops(self, problem: FFTProblem, frequency_ghz: float, block_points: int = 64,
               overlap: bool = True) -> float:
        """Achieved GFLOPS (5 N log2 N convention) for a large FFT."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        req = self.large_fft_requirements(problem, block_points, overlap)
        bw_limited = req["required_bw_words_per_cycle"] > self.max_external_bandwidth_words_per_cycle()
        cycles = req["compute_cycles"]
        if bw_limited or not overlap:
            cycles = max(cycles, req["io_words"] / self.max_external_bandwidth_words_per_cycle())
            if not overlap:
                cycles = req["compute_cycles"] + req["io_words"] / self.max_external_bandwidth_words_per_cycle()
        seconds = cycles / (frequency_ghz * 1e9)
        return problem.total_flops / seconds / 1e9 if seconds > 0 else 0.0

    # ----------------------------------------------------------- table B.1
    def table_b1_requirements(self, n_values: Sequence[int]) -> List[dict]:
        """Core requirements for N x N 2D and N^2-point 1D FFTs (Table B.1)."""
        rows = []
        for n in n_values:
            for variant in (FFTVariant.TWO_D, FFTVariant.ONE_D):
                for overlap in (False, True):
                    problem = FFTProblem(points=n * n, variant=variant)
                    req = self.large_fft_requirements(problem, block_points=min(n, 64),
                                                      overlap=overlap)
                    rows.append(req)
        return rows
