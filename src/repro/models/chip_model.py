"""Chip-level analytical GEMM model for the multi-core LAP (Chapter 4).

The LAP integrates ``S`` cores with a shared on-chip memory that mainly holds
an ``n x n`` block of ``C`` plus the panels of ``A`` and ``B`` currently being
streamed, and connects to external memory with a limited sustained bandwidth.
This module reproduces:

* the memory-size and bandwidth requirement formulas of Table 4.1 (partial
  and full overlap variants),
* the cycle/utilisation model for a whole ``C += A_p B_p`` update distributed
  over ``S`` cores with limited on-chip bandwidth (Section 4.1),
* the off-chip bandwidth model including the extra blocking layer used when
  the on-chip memory is smaller than the problem (Section 4.2.3, Fig. 4.4),
  and
* the end-to-end performance estimate as a function of off-chip bandwidth and
  on-chip memory size (Fig. 4.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.models.core_model import CoreGEMMModel


@dataclass(frozen=True)
class HierarchyRequirements:
    """Memory-size and bandwidth requirements of one hierarchy layer (Table 4.1)."""

    level: str
    overlap: str
    memory_words: float
    bandwidth_words_per_cycle: float

    def memory_bytes(self, element_bytes: int = 8) -> float:
        """Requirement converted to bytes."""
        return self.memory_words * element_bytes

    def bandwidth_bytes_per_cycle(self, element_bytes: int = 8) -> float:
        """Bandwidth requirement converted to bytes per cycle."""
        return self.bandwidth_words_per_cycle * element_bytes


@dataclass(frozen=True)
class ChipModelResult:
    """Result of evaluating the chip-level model at one design point."""

    num_cores: int
    nr: int
    mc: int
    kc: int
    n: int
    onchip_memory_words: float
    onchip_bandwidth_words_per_cycle: float
    offchip_bandwidth_words_per_cycle: float
    total_cycles: float
    peak_cycles: float
    utilization: float

    def gflops(self, frequency_ghz: float) -> float:
        """Achieved GFLOPS at the given clock frequency."""
        peak = 2.0 * self.num_cores * self.nr * self.nr * frequency_ghz
        return peak * self.utilization

    def onchip_memory_mbytes(self, element_bytes: int = 8) -> float:
        """On-chip memory requirement in MB."""
        return self.onchip_memory_words * element_bytes / (1024.0 * 1024.0)


class ChipGEMMModel:
    """Analytical model of a multi-core LAP running GEMM.

    Parameters
    ----------
    num_cores:
        Number of LACs on the chip (``S``).
    nr:
        Dimension of each core.
    element_bytes:
        Element size in bytes.
    """

    def __init__(self, num_cores: int = 8, nr: int = 4, element_bytes: int = 8):
        if num_cores < 1:
            raise ValueError("the LAP needs at least one core")
        self.num_cores = num_cores
        self.core = CoreGEMMModel(nr=nr, element_bytes=element_bytes)
        self.nr = nr
        self.element_bytes = element_bytes

    # --------------------------------------------------- Table 4.1 formulas
    def hierarchy_requirements(self, mc: int, kc: int, n: int) -> List[HierarchyRequirements]:
        """Memory/bandwidth requirements of every hierarchy layer (Table 4.1)."""
        self._check(mc, kc, n)
        nr = self.nr
        nr2 = nr * nr
        s = self.num_cores
        rows: List[HierarchyRequirements] = []

        # Core level, per-PE local memory in words and intra-core bus words/cycle.
        rows.append(HierarchyRequirements(
            level="core",
            overlap="partial",
            memory_words=mc * kc / nr2 + 2 * kc,
            bandwidth_words_per_cycle=nr * (1 + (2.0 / kc + 1.0 / mc)),
        ))
        rows.append(HierarchyRequirements(
            level="core",
            overlap="full",
            memory_words=2 * mc * kc / nr2 + 2 * kc,
            bandwidth_words_per_cycle=nr * (1 + (2.0 / kc + 1.0 / mc + 1.0 / n)),
        ))
        # Core <-> on-chip memory bandwidth.
        rows.append(HierarchyRequirements(
            level="core-chip",
            overlap="partial",
            memory_words=0.0,
            bandwidth_words_per_cycle=(2.0 / kc + 1.0 / mc) * nr2,
        ))
        rows.append(HierarchyRequirements(
            level="core-chip",
            overlap="full",
            memory_words=0.0,
            bandwidth_words_per_cycle=(2.0 / kc + 1.0 / mc + 1.0 / n) * nr2,
        ))
        # Chip level: on-chip memory capacity and aggregate intra-chip bandwidth.
        rows.append(HierarchyRequirements(
            level="chip",
            overlap="partial",
            memory_words=n * n + s * mc * kc + 2.0 * kc * n,
            bandwidth_words_per_cycle=(2.0 * s / kc + s / mc) * nr2,
        ))
        rows.append(HierarchyRequirements(
            level="chip",
            overlap="full",
            memory_words=2.0 * n * n + s * mc * kc + 2.0 * kc * n,
            bandwidth_words_per_cycle=(2.0 * s / kc + s / mc + s / n) * nr2,
        ))
        # Off-chip bandwidth.
        rows.append(HierarchyRequirements(
            level="off-chip",
            overlap="partial",
            memory_words=0.0,
            bandwidth_words_per_cycle=2.0 * s * nr2 / n,
        ))
        rows.append(HierarchyRequirements(
            level="off-chip",
            overlap="full",
            memory_words=0.0,
            bandwidth_words_per_cycle=4.0 * s * nr2 / n,
        ))
        return rows

    def onchip_memory_words(self, mc: int, kc: int, n: int, full_overlap: bool = False) -> float:
        """Required shared on-chip memory in words."""
        self._check(mc, kc, n)
        c_factor = 2.0 if full_overlap else 1.0
        return c_factor * n * n + self.num_cores * mc * kc + 2.0 * kc * n

    def onchip_bandwidth_words_per_cycle(self, mc: int, kc: int, n: Optional[int] = None,
                                         full_overlap: bool = False) -> float:
        """Aggregate core <-> on-chip-memory bandwidth for peak (words/cycle)."""
        if mc <= 0 or kc <= 0:
            raise ValueError("blocking parameters must be positive")
        s = self.num_cores
        nr2 = self.nr * self.nr
        bw = (2.0 * s / kc + s / mc) * nr2
        if full_overlap and n:
            bw += s * nr2 / float(n)
        return bw

    def offchip_bandwidth_words_per_cycle(self, n: int, full_overlap: bool = False) -> float:
        """Off-chip bandwidth needed to keep the cores fed (words/cycle)."""
        if n <= 0:
            raise ValueError("problem size must be positive")
        s_nr2 = self.num_cores * self.nr * self.nr
        return (4.0 if full_overlap else 2.0) * s_nr2 / n

    # ----------------------------------------------------------- cycle model
    def cycles_onchip(self, mc: int, kc: int, n: int,
                      onchip_bandwidth_words_per_cycle: float,
                      full_overlap: bool = False) -> ChipModelResult:
        """Cycle model of one ``C += A_p B_p`` update distributed over S cores.

        Section 4.1: with ``n / (S*mc)`` row-panel groups, each group costs
        ``S*mc*kc / y`` cycles to fetch the blocks of A plus the maximum of
        streaming ``(2*S*mc + kc) * n / y`` and computing
        ``mc * n * kc / nr^2`` cycles, where ``y`` is the aggregate on-chip
        bandwidth in words per cycle.  With ``full_overlap`` the fetch of the
        next group's A blocks is also hidden behind the computation (the
        doubled-local-store design), so only the combined transfer time can
        expose a bandwidth limit.
        """
        self._check(mc, kc, n)
        if onchip_bandwidth_words_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        y = onchip_bandwidth_words_per_cycle
        s = self.num_cores
        nr2 = self.nr * self.nr

        groups = n / float(s * mc)
        load_a = (s * mc * kc) / y
        stream = (2.0 * s * mc + kc) * n / y
        compute = (mc * n * kc) / nr2
        if full_overlap:
            per_group = max(load_a + stream, compute)
        else:
            per_group = load_a + max(stream, compute)
        total = groups * per_group
        peak = (n * n * kc) / (s * nr2)
        util = min(1.0, peak / total) if total > 0 else 0.0
        return ChipModelResult(
            num_cores=s, nr=self.nr, mc=mc, kc=kc, n=n,
            onchip_memory_words=self.onchip_memory_words(mc, kc, n),
            onchip_bandwidth_words_per_cycle=y,
            offchip_bandwidth_words_per_cycle=self.offchip_bandwidth_words_per_cycle(n),
            total_cycles=total,
            peak_cycles=peak,
            utilization=util,
        )

    def cycles_offchip(self, n: int, offchip_bandwidth_words_per_cycle: float,
                       mc: Optional[int] = None, kc: Optional[int] = None) -> ChipModelResult:
        """Cycle model of the full ``C += A B`` including off-chip transfers.

        Section 4.1: with ``z`` words/cycle of external bandwidth and overlap
        of the transfers of A and B (but not C) with computation, the whole
        multiplication takes ``2 n^2 / z + max(2 n^2 / z, n^3 / (S nr^2))``
        cycles.
        """
        if n <= 0:
            raise ValueError("problem size must be positive")
        if offchip_bandwidth_words_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        z = offchip_bandwidth_words_per_cycle
        s = self.num_cores
        nr2 = self.nr * self.nr
        mc = mc if mc is not None else max(self.nr, n // (4 * s))
        kc = kc if kc is not None else mc

        total = 2.0 * n * n / z + max(2.0 * n * n / z, float(n) ** 3 / (s * nr2))
        peak = float(n) ** 3 / (s * nr2)
        util = min(1.0, peak / total) if total > 0 else 0.0
        return ChipModelResult(
            num_cores=s, nr=self.nr, mc=mc, kc=kc, n=n,
            onchip_memory_words=self.onchip_memory_words(mc, kc, n),
            onchip_bandwidth_words_per_cycle=self.onchip_bandwidth_words_per_cycle(mc, kc, n),
            offchip_bandwidth_words_per_cycle=z,
            total_cycles=total,
            peak_cycles=peak,
            utilization=util,
        )

    # ------------------------------------------- blocking for small memories
    def offchip_bandwidth_blocked(self, n: int, ns: int, k_subblocks: Optional[int] = None) -> float:
        """Off-chip bandwidth when only part of C fits on chip (Sec. 4.2.3).

        The original ``n x n`` problem is blocked into ``ns x ns`` sub-blocks
        with ``d = n / ns``; ``k <= d`` sub-blocks of ``C`` are kept on chip at
        a time.  The required external bandwidth in words per cycle is::

            (2*k + (k+1)*d) / (k * n)   per nr^2 MACs/cycle of compute,

        i.e. multiplied by ``S * nr^2`` for the whole chip.
        """
        if n <= 0 or ns <= 0:
            raise ValueError("problem and block sizes must be positive")
        if ns > n:
            raise ValueError("sub-block cannot exceed the problem size")
        d = n / float(ns)
        k = k_subblocks if k_subblocks is not None else 1
        if k < 1 or k > max(1, int(d)):
            raise ValueError(f"number of resident sub-blocks k={k} must lie in [1, d={d:.0f}]")
        per_mac_column = (2.0 * k + (k + 1) * d) / (k * n)
        return per_mac_column * self.num_cores * self.nr * self.nr

    def onchip_words_for_subblock(self, ns: int, mc: int, kc: int) -> float:
        """On-chip memory words needed to keep one ns x ns block of C resident."""
        if ns <= 0:
            raise ValueError("block size must be positive")
        return float(ns) * ns + self.num_cores * mc * kc + 2.0 * kc * ns

    # ----------------------------------------------------------- sweep utils
    def sweep_onchip_memory_vs_bandwidth(self, n_values: Sequence[int],
                                         kc_values: Iterable[int]) -> List[dict]:
        """Data behind Fig. 4.2: on-chip BW vs memory size at >90% utilisation."""
        rows = []
        for n in n_values:
            for kc in kc_values:
                # The S cores each hold an mc x kc block of A covering disjoint
                # row panels of C, so S * mc cannot exceed the problem size.
                if kc > n or self.num_cores * kc > n:
                    continue
                mc = kc
                mem = self.onchip_memory_words(mc, kc, n, full_overlap=True)
                bw = self.onchip_bandwidth_words_per_cycle(mc, kc, n, full_overlap=True)
                res = self.cycles_onchip(mc, kc, n, bw, full_overlap=True)
                rows.append({
                    "n": n,
                    "num_cores": self.num_cores,
                    "nr": self.nr,
                    "kc": kc,
                    "onchip_memory_mbytes": mem * self.element_bytes / 2 ** 20,
                    "onchip_bandwidth_bytes_per_cycle": bw * self.element_bytes,
                    "utilization": res.utilization,
                })
        return rows

    def performance_vs_offchip(self, n: int, offchip_bandwidths_words: Sequence[float],
                               frequency_ghz: float = 1.4) -> List[dict]:
        """Data behind Fig. 4.6: GFLOPS vs off-chip bandwidth and memory size."""
        rows = []
        for z in offchip_bandwidths_words:
            res = self.cycles_offchip(n, z)
            rows.append({
                "n": n,
                "num_cores": self.num_cores,
                "offchip_bandwidth_bytes_per_cycle": z * self.element_bytes,
                "onchip_memory_mbytes": (n * n) * self.element_bytes / 2 ** 20,
                "utilization": res.utilization,
                "gflops": res.gflops(frequency_ghz),
            })
        return rows

    # --------------------------------------------------------------- helpers
    def _check(self, mc: int, kc: int, n: int) -> None:
        if mc <= 0 or kc <= 0 or n <= 0:
            raise ValueError(f"all of mc, kc, n must be positive (mc={mc}, kc={kc}, n={n})")

    def peak_gflops(self, frequency_ghz: float) -> float:
        """Peak GFLOPS of the whole LAP."""
        return 2.0 * self.num_cores * self.nr * self.nr * frequency_ghz
