"""Broadcast-bus wire model for the intra-core interconnect.

PEs inside a LAC communicate exclusively over row and column broadcast buses:
data-only wires with separate read/write latches at each PE, no address
decoding and no arbitration.  The dissertation estimates bus latency and power
from CACTI's wire models, which distinguish three classes of wires (fast
local, semi-global, global) and, for each, a delay-optimal variant and
variants that trade latency (e.g. a 30%-overhead wire) for substantially lower
repeater power.

The numbers that matter for the evaluation are:

* for ``nr = 4`` the bus span stays under the ~1.6 mm repeater-free distance
  of the 30%-overhead local wire, so broadcasts need no repeaters and the
  bus adds negligible power;
* the wire model supports > 2.2 GHz bus clocks for ``nr`` in {4, 8} and
  > 1.4 GHz for ``nr = 16``;
* bus area per PE is about 0.023 mm^2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hw.technology import TechnologyNode, TECH_45NM


class WireClass(enum.Enum):
    """CACTI-style wire classes used for different interconnect layers."""

    FAST_LOCAL = "fast_local"        #: intra-core broadcast buses
    SEMI_GLOBAL = "semi_global"      #: core to on-chip-memory links
    GLOBAL = "global"                #: chip-spanning wires


#: (energy pJ per bit per mm, max repeater-free span mm, max frequency GHz at 4 PE span)
_WIRE_PARAMS = {
    WireClass.FAST_LOCAL: (0.04, 1.62, 2.8),
    WireClass.SEMI_GLOBAL: (0.08, 2.5, 2.2),
    WireClass.GLOBAL: (0.15, 4.0, 1.6),
}

#: Area occupied by the row+column bus wiring attributable to one PE (mm^2).
BUS_AREA_PER_PE_MM2 = 0.023


@dataclass(frozen=True)
class BroadcastBus:
    """One row or column broadcast bus of a LAC.

    Parameters
    ----------
    width_bits:
        Data width (32 for single precision, 64 for double precision).
    span_pes:
        Number of PEs the bus spans (``nr``).
    pe_pitch_mm:
        Physical pitch of one PE; the dissertation estimates each PE is no
        wider than ~0.4 mm, which keeps a 4-PE bus repeater-free.
    wire_class:
        Wire class used for the bus.
    latency_overhead:
        Fractional latency overhead accepted to reduce repeater power
        (0.30 reproduces the paper's choice of the 30%-overhead wire).
    node:
        Technology node.
    """

    width_bits: int = 64
    span_pes: int = 4
    pe_pitch_mm: float = 0.4
    wire_class: WireClass = WireClass.FAST_LOCAL
    latency_overhead: float = 0.30
    node: TechnologyNode = TECH_45NM

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ValueError("bus width must be positive")
        if self.span_pes < 1:
            raise ValueError("bus must span at least one PE")
        if self.pe_pitch_mm <= 0:
            raise ValueError("PE pitch must be positive")
        if not (0.0 <= self.latency_overhead <= 1.0):
            raise ValueError("latency overhead must lie in [0, 1]")

    # -------------------------------------------------------------- geometry
    @property
    def length_mm(self) -> float:
        """Physical length of the bus."""
        return self.span_pes * self.pe_pitch_mm

    @property
    def needs_repeaters(self) -> bool:
        """Whether the bus span exceeds the repeater-free distance."""
        _, span_limit, _ = _WIRE_PARAMS[self.wire_class]
        # Accepting more latency overhead stretches the repeater-free span.
        return self.length_mm > span_limit * (1.0 + self.latency_overhead)

    # --------------------------------------------------------------- timing
    @property
    def max_frequency_ghz(self) -> float:
        """Maximum broadcast frequency supported by the wire model.

        Calibrated so that a 4- or 8-PE span supports > 2.2 GHz and a 16-PE
        span supports > 1.4 GHz, matching the dissertation's wire analysis.
        """
        _, _, base_freq = _WIRE_PARAMS[self.wire_class]
        reference_span = 4 * 0.4  # mm
        scale = reference_span / self.length_mm if self.length_mm > 0 else 1.0
        freq = base_freq * min(1.0, scale ** 0.5)
        # The latency-overhead wire is slower by construction.
        return freq / (1.0 + 0.25 * self.latency_overhead)

    def broadcast_latency_cycles(self, frequency_ghz: float) -> int:
        """Cycles needed for one broadcast at the given core frequency.

        A single cycle suffices while the bus can keep up with the core
        clock; otherwise the bus is pipelined and the latency (but not the
        throughput) grows.  Pipelined bus latency is hidden behind the MAC
        pipeline in the LAC design.
        """
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if frequency_ghz <= self.max_frequency_ghz:
            return 1
        return int(frequency_ghz / self.max_frequency_ghz + 0.999999)

    # ---------------------------------------------------------------- energy
    @property
    def energy_per_broadcast_j(self) -> float:
        """Dynamic energy of driving one word across the bus."""
        energy_pj_per_bit_mm, _, _ = _WIRE_PARAMS[self.wire_class]
        # The low-power (latency overhead) wire burns noticeably less energy.
        energy_pj_per_bit_mm *= 1.0 - 0.4 * self.latency_overhead
        repeater_factor = 1.3 if self.needs_repeaters else 1.0
        pj = energy_pj_per_bit_mm * self.width_bits * self.length_mm * repeater_factor
        return pj * 1e-12

    def dynamic_power_w(self, frequency_ghz: float, broadcasts_per_cycle: float = 1.0) -> float:
        """Dynamic power of the bus at a given broadcast rate."""
        if broadcasts_per_cycle < 0:
            raise ValueError("broadcast rate must be non-negative")
        return self.energy_per_broadcast_j * broadcasts_per_cycle * frequency_ghz * 1e9

    # ------------------------------------------------------------------ area
    @property
    def area_mm2(self) -> float:
        """Wiring area of this bus (half of the per-PE row+column budget)."""
        return 0.5 * BUS_AREA_PER_PE_MM2 * self.span_pes

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"Bus[{self.width_bits}b x {self.span_pes} PEs, {self.wire_class.value}]: "
            f"{self.length_mm:.2f} mm, fmax {self.max_frequency_ghz:.2f} GHz, "
            f"{self.energy_per_broadcast_j * 1e12:.2f} pJ/broadcast"
        )
