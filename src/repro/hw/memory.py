"""On-chip shared memory and off-chip interface models.

At the chip level a LAP surrounds its cores with a multi-megabyte on-chip
memory that mainly holds an ``n x n`` block of the result matrix ``C`` plus
the panels of ``A`` and ``B`` currently being streamed.  The dissertation
studies two implementations of that memory:

* plain banked **SRAM**, single-ported low-power banks, one bank dedicated to
  each core plus a shared region (the design point it advocates); and
* a **NUCA cache** built from CACTI's cache model, used as a counterfactual to
  show how much a general-purpose cache hierarchy would cost in power and
  area (Figs. 4.11/4.12).

The off-chip interface is characterised only by its sustained bandwidth in
bytes per cycle (or GB/s) -- exactly the abstraction the analytical chip model
needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.sram import SRAMConfig, SRAMModel
from repro.hw.technology import TechnologyNode, TECH_45NM


@dataclass(frozen=True)
class OnChipMemory:
    """Banked on-chip SRAM shared by the cores of a LAP.

    Parameters
    ----------
    capacity_bytes:
        Total capacity.
    banks:
        Number of independently accessible banks; the LAP dedicates one bank
        per core plus shared banks, so ``banks >= num_cores`` in practice.
    word_bytes:
        Access granularity in bytes.
    frequency_ghz:
        Operating frequency of the memory macros.
    high_performance:
        Select the fast/leaky device corner (needed when a small memory must
        sustain a very high bandwidth).
    node:
        Technology node.
    """

    capacity_bytes: int
    banks: int = 8
    word_bytes: int = 8
    frequency_ghz: float = 1.0
    high_performance: bool = False
    node: TechnologyNode = TECH_45NM

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.banks < 1:
            raise ValueError("banks must be >= 1")

    def _bank_model(self) -> SRAMModel:
        bank_bytes = max(self.capacity_bytes // self.banks, 1024)
        return SRAMModel(
            SRAMConfig(
                capacity_bytes=bank_bytes,
                ports=1,
                word_bytes=self.word_bytes,
                banks=1,
                high_performance=self.high_performance,
                node=self.node,
            )
        )

    # ------------------------------------------------------------------ area
    @property
    def area_mm2(self) -> float:
        """Total area of all banks."""
        return self.banks * self._bank_model().area_mm2

    # ------------------------------------------------------------ bandwidth
    @property
    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate bandwidth with every bank supplying one word per cycle."""
        return self.banks * self.word_bytes

    def sustainable_bandwidth_bytes_per_cycle(self, required: float) -> float:
        """Bandwidth actually deliverable against a requirement.

        Returns ``min(required, peak)``; callers use the ratio to derive an
        achievable-utilisation bound exactly as Section 4.3 does for Fermi.
        """
        if required < 0:
            raise ValueError("required bandwidth must be non-negative")
        return min(required, self.peak_bandwidth_bytes_per_cycle)

    # ---------------------------------------------------------------- energy
    def energy_per_access_j(self) -> float:
        """Energy of one word access (single bank touched per access)."""
        return self._bank_model().energy_per_access_j

    def dynamic_power_w(self, accesses_per_cycle: float) -> float:
        """Dynamic power at a given aggregate access rate (words/cycle)."""
        if accesses_per_cycle < 0:
            raise ValueError("access rate must be non-negative")
        per_second = accesses_per_cycle * self.frequency_ghz * 1e9
        return self.energy_per_access_j() * per_second

    @property
    def leakage_power_w(self) -> float:
        """Total leakage of all banks."""
        return self.banks * self._bank_model().leakage_power_w

    def describe(self) -> str:
        mb = self.capacity_bytes / (1024.0 * 1024.0)
        return (
            f"OnChipSRAM[{mb:.2f} MB, {self.banks} banks"
            f"{', HP' if self.high_performance else ''}]: "
            f"{self.area_mm2:.1f} mm^2, peak {self.peak_bandwidth_bytes_per_cycle:.0f} B/cycle"
        )


@dataclass(frozen=True)
class NUCACache:
    """A NUCA cache alternative for the on-chip memory (Figs. 4.11/4.12).

    Compared to the plain SRAM organisation a cache pays for tags, associative
    lookup, coherence bookkeeping and -- when a small capacity must provide a
    large bandwidth -- for high-performance banks.  We model those overheads
    as multiplicative factors on top of the SRAM model; the factors are chosen
    so that the qualitative conclusions of the dissertation hold: at small
    capacities the NUCA memory costs more area and power than the compute
    cores, and a larger, slower cache is both more power- and area-efficient
    than a small, fast one.
    """

    capacity_bytes: int
    banks: int = 8
    word_bytes: int = 8
    frequency_ghz: float = 1.0
    associativity: int = 8
    line_bytes: int = 64
    required_bandwidth_bytes_per_cycle: float = 16.0
    node: TechnologyNode = TECH_45NM

    #: Area overhead of tags + comparators + MSHRs relative to the data array.
    TAG_AREA_OVERHEAD = 0.18
    #: Energy overhead of associative lookup relative to a plain SRAM access.
    LOOKUP_ENERGY_OVERHEAD = 0.85

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")

    def _needs_high_performance(self) -> bool:
        """Small capacities that must sustain high bandwidth need fast banks."""
        plain_peak = self.banks * self.word_bytes
        return self.required_bandwidth_bytes_per_cycle > 0.5 * plain_peak

    def _sram(self) -> OnChipMemory:
        return OnChipMemory(
            capacity_bytes=self.capacity_bytes,
            banks=self.banks,
            word_bytes=self.word_bytes,
            frequency_ghz=self.frequency_ghz,
            high_performance=self._needs_high_performance(),
            node=self.node,
        )

    @property
    def area_mm2(self) -> float:
        """Cache area: data array + tag/lookup overhead, scaled by bandwidth pressure."""
        base = self._sram().area_mm2 * (1.0 + self.TAG_AREA_OVERHEAD)
        # Providing more bandwidth out of a smaller capacity requires wider
        # (multi-ported or more aggressively banked) structures.
        capacity_mb = self.capacity_bytes / (1024 * 1024)
        pressure = self.required_bandwidth_bytes_per_cycle / max(capacity_mb, 0.125)
        return base * (1.0 + 0.02 * pressure)

    def energy_per_access_j(self) -> float:
        """Energy of one access including tag lookup."""
        return self._sram().energy_per_access_j() * (1.0 + self.LOOKUP_ENERGY_OVERHEAD)

    def dynamic_power_w(self, accesses_per_cycle: float) -> float:
        """Dynamic power at the given access rate."""
        if accesses_per_cycle < 0:
            raise ValueError("access rate must be non-negative")
        per_second = accesses_per_cycle * self.frequency_ghz * 1e9
        return self.energy_per_access_j() * per_second

    @property
    def leakage_power_w(self) -> float:
        """Leakage, dominated by the high-performance banks when present."""
        return self._sram().leakage_power_w * (1.0 + self.TAG_AREA_OVERHEAD)

    def describe(self) -> str:
        mb = self.capacity_bytes / (1024.0 * 1024.0)
        return (
            f"NUCA[{mb:.2f} MB, {self.associativity}-way, {self.banks} banks]: "
            f"{self.area_mm2:.1f} mm^2"
        )


@dataclass(frozen=True)
class OffChipInterface:
    """Off-chip (DRAM) interface characterised by sustained bandwidth.

    Parameters
    ----------
    bandwidth_gbytes_per_sec:
        Sustained bandwidth in GB/s.
    energy_per_byte_j:
        Energy of moving one byte across the interface (pin + DRAM access);
        a typical DDR3-class figure of ~60 pJ/byte is used as default.
    """

    bandwidth_gbytes_per_sec: float
    energy_per_byte_j: float = 60e-12

    def __post_init__(self) -> None:
        if self.bandwidth_gbytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_per_byte_j < 0:
            raise ValueError("energy per byte must be non-negative")

    def bytes_per_cycle(self, frequency_ghz: float) -> float:
        """Convert the sustained bandwidth to bytes per core cycle."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        return self.bandwidth_gbytes_per_sec / frequency_ghz

    def transfer_energy_j(self, num_bytes: float) -> float:
        """Energy to transfer ``num_bytes`` across the interface."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes * self.energy_per_byte_j

    def transfer_cycles(self, num_bytes: float, frequency_ghz: float) -> float:
        """Cycles needed to transfer ``num_bytes`` at the given core clock."""
        bpc = self.bytes_per_cycle(frequency_ghz)
        return num_bytes / bpc if bpc > 0 else math.inf

    def describe(self) -> str:
        return f"OffChip[{self.bandwidth_gbytes_per_sec:.0f} GB/s]"
