"""CACTI-like SRAM area / energy / leakage model.

The LAC keeps matrix panels in plain, untagged SRAM local stores inside each
PE -- a larger single-ported array for the resident panel of ``A`` and a small
dual-ported array for the replicated panel of ``B`` -- and the LAP surrounds
the cores with multi-megabyte banks of on-chip SRAM.  The dissertation obtains
area and energy for all of these from CACTI with the low-power ITRS device
model and aggressive interconnect projection; the calibration points it quotes
are roughly:

* a 16 KB dual-ported PE store: ~0.13 mm^2, ~13.5 mW per port for accesses at
  2.5 GHz (i.e. ~5.4 pJ per access);
* leakage negligible compared to dynamic power in the low-power corner;
* bigger/faster banks move to a faster (leakier) device model.

We reproduce those points with a simple parametric model: energy per access
and area grow with capacity following sub-linear (square-root-ish wordline /
bitline) terms plus a linear cell-array term, ports multiply both, and a
high-performance flag trades leakage for speed.  The absolute constants are
fitted so that the quoted CACTI points are matched; everything else in the
evaluation only depends on relative behaviour across sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.technology import TechnologyNode, TECH_45NM


#: Calibration: a 16 KB dual-ported array occupies ~0.13 mm^2 at 45 nm.
_CAL_CAPACITY_KB = 16.0
_CAL_PORTS = 2
_CAL_AREA_MM2 = 0.13
#: Calibration: ~13.5 mW per port at 2.5 GHz with 8-byte accesses every cycle.
_CAL_POWER_PER_PORT_MW = 13.5
_CAL_FREQUENCY_GHZ = 2.5
#: Energy per 8-byte access implied by the calibration point (joules).
_CAL_ENERGY_PER_ACCESS_J = (_CAL_POWER_PER_PORT_MW * 1e-3) / (_CAL_FREQUENCY_GHZ * 1e9)

#: Fraction of area taken by the cell array at the calibration size; the rest
#: is periphery that grows more slowly with capacity.
_CELL_ARRAY_FRACTION = 0.65

#: Leakage (fraction of peak dynamic power at full activity) for the two
#: device corners.
_LEAKAGE_FRACTION_LOW_POWER = 0.02
_LEAKAGE_FRACTION_HIGH_PERF = 0.20


@dataclass(frozen=True)
class SRAMConfig:
    """Configuration of one SRAM macro.

    Parameters
    ----------
    capacity_bytes:
        Usable storage in bytes.
    ports:
        Number of read/write ports (1 or 2 for the PE stores).
    word_bytes:
        Access width in bytes (8 for double precision operands).
    banks:
        Number of independently addressable banks; banking reduces per-access
        energy slightly and increases available bandwidth.
    high_performance:
        Use the high-performance (faster, leakier) device corner instead of
        the low-power ITRS corner.
    node:
        Technology node.
    """

    capacity_bytes: int
    ports: int = 1
    word_bytes: int = 8
    banks: int = 1
    high_performance: bool = False
    node: TechnologyNode = TECH_45NM

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")
        if self.ports not in (1, 2, 3, 4):
            raise ValueError(f"unsupported port count: {self.ports}")
        if self.word_bytes <= 0:
            raise ValueError("word width must be positive")
        if self.banks < 1:
            raise ValueError("bank count must be >= 1")

    @property
    def capacity_kbytes(self) -> float:
        """Capacity in kilobytes."""
        return self.capacity_bytes / 1024.0

    @property
    def words(self) -> int:
        """Number of addressable words."""
        return max(1, self.capacity_bytes // self.word_bytes)


class SRAMModel:
    """Evaluates area, per-access energy and leakage for an :class:`SRAMConfig`."""

    def __init__(self, config: SRAMConfig):
        self.config = config

    # ------------------------------------------------------------------ area
    @property
    def area_mm2(self) -> float:
        """Macro area in mm^2.

        The cell array scales linearly with capacity; the periphery (decoders,
        sense amplifiers, IO) scales with the square root of capacity and
        linearly with the number of ports.  Multi-ported cells are bigger, so
        the cell-array term also carries a port factor.
        """
        cfg = self.config
        cap_ratio = cfg.capacity_kbytes / _CAL_CAPACITY_KB
        port_cell_factor = 1.0 + 0.45 * (cfg.ports - 1)
        cal_port_cell_factor = 1.0 + 0.45 * (_CAL_PORTS - 1)
        cell_area = (_CAL_AREA_MM2 * _CELL_ARRAY_FRACTION) * cap_ratio * (
            port_cell_factor / cal_port_cell_factor
        )
        periph_area = (_CAL_AREA_MM2 * (1.0 - _CELL_ARRAY_FRACTION)) * math.sqrt(cap_ratio) * (
            cfg.ports / _CAL_PORTS
        )
        bank_overhead = 1.0 + 0.03 * (cfg.banks - 1)
        hp_overhead = 1.10 if cfg.high_performance else 1.0
        return (cell_area + periph_area) * bank_overhead * hp_overhead

    # ---------------------------------------------------------------- energy
    @property
    def energy_per_access_j(self) -> float:
        """Dynamic energy of one word access in joules.

        Access energy grows with the square root of the capacity of the bank
        being accessed (bitline/wordline lengths) relative to the calibration
        size.  Banking therefore reduces per-access energy.
        """
        cfg = self.config
        bank_capacity_kb = cfg.capacity_kbytes / cfg.banks
        size_factor = math.sqrt(max(bank_capacity_kb, 0.25) / _CAL_CAPACITY_KB)
        width_factor = cfg.word_bytes / 8.0
        hp_factor = 1.25 if cfg.high_performance else 1.0
        return _CAL_ENERGY_PER_ACCESS_J * size_factor * width_factor * hp_factor

    def dynamic_power_w(self, frequency_ghz: float, accesses_per_cycle: float = 1.0) -> float:
        """Dynamic power at a given access rate.

        ``accesses_per_cycle`` may exceed 1.0 only up to the number of ports
        times banks; the PE stores of the LAC are accessed at most once per
        port per cycle.
        """
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        max_rate = self.config.ports * self.config.banks
        if accesses_per_cycle < 0 or accesses_per_cycle > max_rate + 1e-9:
            raise ValueError(
                f"access rate {accesses_per_cycle} exceeds port*bank capability {max_rate}"
            )
        accesses_per_second = accesses_per_cycle * frequency_ghz * 1e9
        return self.energy_per_access_j * accesses_per_second

    @property
    def leakage_power_w(self) -> float:
        """Leakage power of the macro.

        Leakage scales linearly with capacity.  It is expressed relative to
        the dynamic power the *calibration-sized* array burns at its full
        access rate, so that the low-power corner comes out negligible (a few
        percent of dynamic power), as CACTI reports for the ITRS-LP devices.
        """
        cfg = self.config
        frac = _LEAKAGE_FRACTION_HIGH_PERF if cfg.high_performance else _LEAKAGE_FRACTION_LOW_POWER
        calibration_full_activity = _CAL_ENERGY_PER_ACCESS_J * _CAL_FREQUENCY_GHZ * 1e9
        return frac * calibration_full_activity * (cfg.capacity_kbytes / _CAL_CAPACITY_KB)

    # ------------------------------------------------------------ bandwidth
    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Peak bandwidth the macro can supply in bytes per cycle."""
        return self.config.ports * self.config.banks * self.config.word_bytes

    def max_frequency_ghz(self) -> float:
        """Rough achievable frequency of the macro.

        Small low-power arrays in the dissertation comfortably reach
        2.5+ GHz; large multi-megabyte banks slow down with the square root
        of capacity, and the high-performance corner buys back ~40%.
        """
        base = 2.8
        size_penalty = math.sqrt(max(self.config.capacity_kbytes, 1.0) / _CAL_CAPACITY_KB) ** 0.5
        freq = base / size_penalty
        if self.config.high_performance:
            freq *= 1.4
        return freq

    # -------------------------------------------------------------- summary
    def describe(self) -> str:
        """One-line summary used by the experiment report generators."""
        cfg = self.config
        return (
            f"SRAM[{cfg.capacity_kbytes:.1f} KB, {cfg.ports}p, {cfg.banks}b"
            f"{', HP' if cfg.high_performance else ''}]: "
            f"{self.area_mm2:.3f} mm^2, {self.energy_per_access_j * 1e12:.2f} pJ/access"
        )


def pe_store_a(capacity_bytes: int, node: TechnologyNode = TECH_45NM) -> SRAMModel:
    """The larger single-ported PE store holding the resident panel of A."""
    return SRAMModel(SRAMConfig(capacity_bytes=capacity_bytes, ports=1, word_bytes=8, node=node))


def pe_store_b(capacity_bytes: int, node: TechnologyNode = TECH_45NM) -> SRAMModel:
    """The smaller dual-ported PE store holding the replicated panel of B."""
    return SRAMModel(SRAMConfig(capacity_bytes=capacity_bytes, ports=2, word_bytes=8, node=node))
