"""Hardware component substrates for the LAC/LAP reproduction.

This subpackage models the low-level hardware building blocks that the
dissertation uses to construct its Linear Algebra Core (LAC) and Linear
Algebra Processor (LAP):

* :mod:`repro.hw.technology` -- CMOS technology nodes and scaling rules.
* :mod:`repro.hw.fpu` -- fused multiply-accumulate (FMAC) unit models.
* :mod:`repro.hw.sfu` -- special function units (reciprocal, square root,
  inverse square root, divide) built from Goldschmidt/Newton iterations and
  a minimax lookup-table seed.
* :mod:`repro.hw.sram` -- CACTI-like SRAM area/energy/leakage model.
* :mod:`repro.hw.bus` -- broadcast bus wire model (repeater classes,
  energy per bit-mm, achievable frequency).
* :mod:`repro.hw.memory` -- on-chip SRAM/NUCA banks and off-chip memory
  interface models.

All models are calibrated to the constants quoted in the dissertation so
that the tables and figures of the evaluation chapters can be regenerated.
"""

from repro.hw.technology import TechnologyNode, TECH_45NM, TECH_65NM, TECH_90NM, scale_power, scale_area, scale_frequency
from repro.hw.fpu import FMACUnit, Precision
from repro.hw.sfu import SpecialFunctionUnit, SFUPlacement, GoldschmidtDivider
from repro.hw.sram import SRAMConfig, SRAMModel
from repro.hw.bus import BroadcastBus, WireClass
from repro.hw.memory import OnChipMemory, NUCACache, OffChipInterface

__all__ = [
    "TechnologyNode",
    "TECH_45NM",
    "TECH_65NM",
    "TECH_90NM",
    "scale_power",
    "scale_area",
    "scale_frequency",
    "FMACUnit",
    "Precision",
    "SpecialFunctionUnit",
    "SFUPlacement",
    "GoldschmidtDivider",
    "SRAMConfig",
    "SRAMModel",
    "BroadcastBus",
    "WireClass",
    "OnChipMemory",
    "NUCACache",
    "OffChipInterface",
]
