"""CMOS technology nodes and scaling rules.

The dissertation evaluates the LAC/LAP in standard bulk CMOS at 45 nm, and
scales published numbers for competitor architectures (Cell at 65/45 nm,
ClearSpeed CSX700 at 90 nm, NVidia GTX280 at 65 nm, ...) to a common node
before comparing them.  This module provides a small, explicit model of those
scaling rules so that every table in the evaluation can state exactly how a
published number was brought to 45 nm.

The scaling rules follow the classical (constant-field inspired) assumptions
the paper uses when it says "scaled to 45nm technology":

* linear dimension scales with the node ratio ``s = node_from / node_to``;
* area scales with ``s**2``;
* capacitance (and hence dynamic energy per operation at constant voltage)
  scales roughly linearly with ``s``;
* achievable frequency improves roughly linearly with ``1/s`` (delay ~ s);
* dynamic power at constant frequency scales with the energy ratio, while
  power at the *scaled* frequency stays roughly constant per unit area.

These are approximations -- exactly the ones a pencil-and-paper architecture
study makes -- and are sufficient to reproduce the relative rankings in the
paper's comparison tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TechnologyNode:
    """A bulk CMOS technology node.

    Parameters
    ----------
    name:
        Human readable name, e.g. ``"45nm"``.
    feature_nm:
        Drawn feature size in nanometres.
    nominal_vdd:
        Nominal supply voltage in volts.  The paper operates its MAC units
        around 0.8 V at 1 GHz in 45 nm and uses the low-power ITRS corner for
        SRAM.
    leakage_fraction:
        Idle (leakage) power expressed as a constant fraction of dynamic
        power.  The dissertation's power model uses 25%--30% depending on the
        technology (Sec. 1.3.3); we store the calibrated per-node value here.
    """

    name: str
    feature_nm: float
    nominal_vdd: float = 0.9
    leakage_fraction: float = 0.25

    def scale_factor_to(self, other: "TechnologyNode") -> float:
        """Linear-dimension scale factor from this node to ``other``.

        A value > 1 means the design shrinks when moving to ``other``.
        """
        return self.feature_nm / other.feature_nm


#: The primary evaluation node of the dissertation.
TECH_45NM = TechnologyNode("45nm", 45.0, nominal_vdd=0.8, leakage_fraction=0.25)

#: Node used for the GTX280 comparison (Fig. 4.13).
TECH_65NM = TechnologyNode("65nm", 65.0, nominal_vdd=1.0, leakage_fraction=0.28)

#: Node of the ClearSpeed CSX700 measurements.
TECH_90NM = TechnologyNode("90nm", 90.0, nominal_vdd=1.1, leakage_fraction=0.30)

#: Registry of known nodes keyed by name.
KNOWN_NODES = {n.name: n for n in (TECH_45NM, TECH_65NM, TECH_90NM)}


def scale_area(area_mm2: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale a silicon area between technology nodes (area ~ feature^2)."""
    if area_mm2 < 0:
        raise ValueError(f"area must be non-negative, got {area_mm2}")
    s = from_node.scale_factor_to(to_node)
    return area_mm2 / (s * s) if s != 0 else area_mm2


def scale_power(power_w: float, from_node: TechnologyNode, to_node: TechnologyNode,
                same_frequency: bool = True) -> float:
    """Scale power between technology nodes.

    With ``same_frequency=True`` dynamic power follows the capacitance times
    voltage-squared product; we approximate ``C*V^2`` scaling with the linear
    feature ratio times the square of the voltage ratio, which is how the
    dissertation brings the 65 nm Cell and 90 nm CSX numbers to 45 nm.  With
    ``same_frequency=False`` the design is assumed to also speed up by the
    inverse feature ratio, leaving power/area roughly constant; this is rarely
    what the comparison tables need, but is provided for completeness.
    """
    if power_w < 0:
        raise ValueError(f"power must be non-negative, got {power_w}")
    s = from_node.feature_nm / to_node.feature_nm  # > 1 when shrinking
    v = (to_node.nominal_vdd / from_node.nominal_vdd) ** 2
    scaled = power_w * v / s
    if not same_frequency:
        scaled *= s  # frequency also went up by s
    return scaled


def scale_frequency(freq_ghz: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale an achievable clock frequency between nodes (delay ~ feature size)."""
    if freq_ghz < 0:
        raise ValueError(f"frequency must be non-negative, got {freq_ghz}")
    s = from_node.feature_nm / to_node.feature_nm
    return freq_ghz * s


def scale_energy_per_op(energy_j: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale dynamic energy per operation between nodes (E ~ C * V^2)."""
    if energy_j < 0:
        raise ValueError(f"energy must be non-negative, got {energy_j}")
    s = from_node.feature_nm / to_node.feature_nm
    v = (to_node.nominal_vdd / from_node.nominal_vdd) ** 2
    return energy_j * v / s


@dataclass
class OperatingPoint:
    """A (frequency, voltage) operating point for a component.

    The dissertation sweeps PE frequency from 0.2 GHz to ~2.1 GHz (Table 3.1,
    Figs. 3.6/3.7) with voltage following frequency.  ``voltage_for`` captures
    the simple linear voltage/frequency relationship used to extrapolate the
    published FPU numbers across that sweep.
    """

    frequency_ghz: float
    vdd: float
    node: TechnologyNode = field(default=TECH_45NM)

    @classmethod
    def at_frequency(cls, frequency_ghz: float, node: TechnologyNode = TECH_45NM,
                     vmin: float = 0.65, vmax: float = 1.1,
                     fmin: float = 0.2, fmax: float = 2.1) -> "OperatingPoint":
        """Construct an operating point with voltage interpolated from frequency.

        Voltage scales linearly between ``vmin`` at ``fmin`` and ``vmax`` at
        ``fmax``; frequencies outside the range are clamped for the purpose of
        the voltage computation (the frequency itself is preserved).
        """
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_ghz}")
        f = min(max(frequency_ghz, fmin), fmax)
        alpha = (f - fmin) / (fmax - fmin)
        vdd = vmin + alpha * (vmax - vmin)
        return cls(frequency_ghz=frequency_ghz, vdd=vdd, node=node)

    def dynamic_power_scale(self, reference: "OperatingPoint") -> float:
        """Ratio of dynamic power at this point relative to ``reference``.

        Dynamic power ~ f * V^2 (activity and capacitance held constant).
        """
        return (self.frequency_ghz / reference.frequency_ghz) * (self.vdd / reference.vdd) ** 2

    def energy_per_op_scale(self, reference: "OperatingPoint") -> float:
        """Ratio of per-operation energy relative to ``reference`` (E ~ V^2)."""
        return (self.vdd / reference.vdd) ** 2
