"""Special function units: reciprocal, square root, inverse square root, divide.

TRSM needs a reciprocal (1/x), Cholesky needs an inverse square root
(1/sqrt(x)), LU with partial pivoting needs a reciprocal of the pivot, and the
Householder QR / vector-norm kernel needs square roots and divisions.  The
dissertation (Chapter 6 and Appendix A) studies three ways of providing these
operations on the LAC:

``SW``
    a micro-programmed Goldschmidt iteration running on the existing MAC unit
    of a PE (no extra hardware, many extra cycles);
``ISOLATE``
    one dedicated divide/square-root unit per core, shared over the column
    buses (the "SFU" in the core diagram);
``DIAGONAL``
    extending the MAC units of the diagonal PEs with the small amount of
    extra logic (lookup table + control) needed to run the special functions
    natively.

This module models latency, area and energy for each option, using a
Goldschmidt-style iteration count derived from the seed accuracy of a minimax
lookup table, which is how the referenced divide/square-root design operates.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.hw.fpu import FMACUnit, Precision


class SFUPlacement(enum.Enum):
    """Where the divide/square-root capability lives in the core."""

    SOFTWARE = "sw"          #: micro-programmed on the PE MAC units
    ISOLATED = "isolate"     #: one shared unit per core
    DIAGONAL = "diag"        #: MAC extensions on the diagonal PEs

    def describe(self) -> str:
        return {
            SFUPlacement.SOFTWARE: "software (Goldschmidt on PE MAC)",
            SFUPlacement.ISOLATED: "isolated per-core divide/sqrt unit",
            SFUPlacement.DIAGONAL: "extended MAC units on diagonal PEs",
        }[self]


class SpecialOp(enum.Enum):
    """The special operations required by the factorization kernels."""

    RECIPROCAL = "recip"          # 1/x        (TRSM, LU)
    INV_SQRT = "inv_sqrt"         # 1/sqrt(x)  (Cholesky)
    SQRT = "sqrt"                 # sqrt(x)    (vector norm)
    DIVIDE = "div"                # y/x        (Householder)


@dataclass(frozen=True)
class GoldschmidtDivider:
    """Iterative divide/square-root engine built on multiply-accumulate.

    Goldschmidt's algorithm refines a lookup-table seed quadratically: a seed
    accurate to ``seed_bits`` bits reaches ``seed_bits * 2**k`` bits after
    ``k`` iterations, and each iteration costs two fused multiplies (plus one
    extra multiply for square root).  The referenced hardware design uses a
    minimax lookup table good to roughly 13 bits, which needs 2 iterations for
    single precision (24-bit mantissa) and 3 for double (53-bit mantissa).
    """

    precision: Precision = Precision.DOUBLE
    seed_bits: int = 13
    mac_latency_cycles: int = 5

    def __post_init__(self) -> None:
        if self.seed_bits < 4:
            raise ValueError("seed table must provide at least 4 bits of accuracy")

    @property
    def target_bits(self) -> int:
        """Mantissa bits that must be produced (24 for SP, 53 for DP)."""
        return 24 if self.precision is Precision.SINGLE else 53

    @property
    def iterations(self) -> int:
        """Number of Goldschmidt iterations required for full precision."""
        bits = self.seed_bits
        it = 0
        while bits < self.target_bits:
            bits *= 2
            it += 1
        return it

    def latency_cycles(self, op: SpecialOp) -> int:
        """Latency of one special operation in cycles.

        Each iteration issues two dependent fused multiplies (three for
        square-root flavoured operations), each of which traverses the MAC
        pipeline; the table lookup and final rounding add a couple of cycles.
        """
        per_iter_macs = 3 if op in (SpecialOp.INV_SQRT, SpecialOp.SQRT) else 2
        return 2 + self.iterations * per_iter_macs * self.mac_latency_cycles

    def mac_operations(self, op: SpecialOp) -> int:
        """Number of MAC-equivalent operations consumed by one special op."""
        per_iter_macs = 3 if op in (SpecialOp.INV_SQRT, SpecialOp.SQRT) else 2
        return self.iterations * per_iter_macs + 1  # +1 for the final scaling


# Area/power calibration for the dedicated (isolated or diagonal) options.
# The isolated unit is roughly the size of a double-precision FMAC plus the
# lookup tables; the diagonal-PE extension reuses the existing MAC and only
# pays for the lookup table and the small amount of extra control.
_LOOKUP_TABLE_AREA_MM2 = {Precision.SINGLE: 0.004, Precision.DOUBLE: 0.008}
_LOOKUP_TABLE_POWER_MW = {Precision.SINGLE: 1.0, Precision.DOUBLE: 2.2}
_ISOLATED_CONTROL_AREA_MM2 = 0.006
_DIAGONAL_CONTROL_AREA_MM2 = 0.002
_DIAGONAL_CONTROL_POWER_MW = 0.5


@dataclass(frozen=True)
class SpecialFunctionUnit:
    """A divide / square-root / reciprocal capability for a LAC.

    Parameters
    ----------
    placement:
        Which of the three architecture options provides the capability.
    precision:
        Operating precision.
    frequency_ghz:
        Clock of the hosting core.
    nr:
        Core dimension; the diagonal option replicates the extension on the
        ``nr`` diagonal PEs, the isolated option instantiates exactly one
        unit per core.
    mac_pipeline_stages:
        Pipeline depth of the underlying MAC units (drives iteration latency).
    """

    placement: SFUPlacement = SFUPlacement.ISOLATED
    precision: Precision = Precision.DOUBLE
    frequency_ghz: float = 1.0
    nr: int = 4
    mac_pipeline_stages: int = 5
    divider: GoldschmidtDivider = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.nr < 1:
            raise ValueError("core dimension nr must be >= 1")
        if self.divider is None:
            object.__setattr__(
                self,
                "divider",
                GoldschmidtDivider(precision=self.precision,
                                   mac_latency_cycles=self.mac_pipeline_stages),
            )

    # --------------------------------------------------------------- latency
    def latency_cycles(self, op: SpecialOp) -> int:
        """Latency in cycles to produce one result of ``op``.

        The dedicated hardware options pipeline the iterations tightly (the
        unit is built for exactly this recurrence), whereas the software
        option pays the full dependent-MAC latency for every iteration and an
        additional micro-code dispatch overhead.
        """
        base = self.divider.latency_cycles(op)
        if self.placement is SFUPlacement.SOFTWARE:
            return base + 4  # micro-code sequencing overhead
        # Dedicated units overlap the two multiplies of an iteration.
        dedicated = 2 + self.divider.iterations * self.mac_pipeline_stages
        if op in (SpecialOp.INV_SQRT, SpecialOp.SQRT):
            dedicated += self.divider.iterations  # extra squaring step
        return dedicated

    def occupies_pe_mac(self) -> bool:
        """Whether a special op steals cycles from the PE MAC units."""
        return self.placement is SFUPlacement.SOFTWARE

    # ------------------------------------------------------------------ area
    @property
    def area_mm2(self) -> float:
        """Total extra area the option adds to one core."""
        lut = _LOOKUP_TABLE_AREA_MM2[self.precision]
        if self.placement is SFUPlacement.SOFTWARE:
            return 0.0
        if self.placement is SFUPlacement.ISOLATED:
            fmac = FMACUnit(precision=self.precision, frequency_ghz=self.frequency_ghz)
            return fmac.area_mm2 + lut + _ISOLATED_CONTROL_AREA_MM2
        # DIAGONAL: nr copies of (lookup table + small control), MAC reused.
        return self.nr * (lut + _DIAGONAL_CONTROL_AREA_MM2)

    # ----------------------------------------------------------------- power
    @property
    def active_power_w(self) -> float:
        """Power drawn while a special operation is in flight."""
        lut_mw = _LOOKUP_TABLE_POWER_MW[self.precision]
        fmac = FMACUnit(precision=self.precision, frequency_ghz=self.frequency_ghz)
        if self.placement is SFUPlacement.SOFTWARE:
            # The PE MAC is already accounted for; only bookkeeping power here.
            return 0.1e-3
        if self.placement is SFUPlacement.ISOLATED:
            return fmac.dynamic_power_w + lut_mw * 1e-3
        return (lut_mw + _DIAGONAL_CONTROL_POWER_MW) * 1e-3

    @property
    def idle_power_w(self) -> float:
        """Leakage of the added hardware (zero for the software option)."""
        if self.placement is SFUPlacement.SOFTWARE:
            return 0.0
        return self.active_power_w * 0.25

    def energy_per_op_j(self, op: SpecialOp) -> float:
        """Dynamic energy of one special operation in joules."""
        cycles = self.latency_cycles(op)
        seconds = cycles / (self.frequency_ghz * 1e9)
        if self.placement is SFUPlacement.SOFTWARE:
            # Software runs the iterations on the PE's own MAC unit.
            fmac = FMACUnit(precision=self.precision, frequency_ghz=self.frequency_ghz)
            return self.divider.mac_operations(op) * fmac.energy_per_mac_j
        return self.active_power_w * seconds

    # -------------------------------------------------------------- summary
    def describe(self) -> str:
        """Human readable description of the option."""
        return (
            f"SFU[{self.placement.value}, {self.precision.value}]: "
            f"area {self.area_mm2:.3f} mm^2, "
            f"recip {self.latency_cycles(SpecialOp.RECIPROCAL)} cyc, "
            f"inv-sqrt {self.latency_cycles(SpecialOp.INV_SQRT)} cyc"
        )


def reciprocal_reference(x: float) -> float:
    """Reference scalar reciprocal used by the functional simulator."""
    if x == 0.0:
        raise ZeroDivisionError("reciprocal of zero")
    return 1.0 / x


def inverse_sqrt_reference(x: float) -> float:
    """Reference scalar inverse square root used by the functional simulator."""
    if x <= 0.0:
        raise ValueError(f"inverse sqrt requires a positive argument, got {x}")
    return 1.0 / math.sqrt(x)
