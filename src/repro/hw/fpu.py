"""Fused multiply-accumulate (FMAC) unit model.

The heart of every LAC processing element is a pipelined fused
multiply-accumulate unit with a local accumulator register and delayed
normalization (normalization is postponed until the final accumulation of an
inner product), which gives a throughput of one MAC per cycle and saves
roughly 15% of the unit power relative to a conventional FMA.

The dissertation does not design the FPU itself; it uses area and power
numbers published in the literature (Galal & Horowitz-style studies) for
45 nm implementations:

* single precision: ~0.01 mm^2, 8-10 mW at ~1 GHz / 0.8 V,
* double precision: ~0.04 mm^2, 40-50 mW at ~1 GHz / 0.8 V,
* pipeline depth between 5 and 9 stages.

This module wraps those constants in a small model that can be evaluated at
arbitrary frequencies (Table 3.1 sweeps 0.2 to 2.08 GHz) and exposes optional
micro-architecture extensions used in Chapter 6 / Appendix A:

* an extra exponent bit in the accumulator (overflow/underflow-safe vector
  norm), and
* a comparator attached to the accumulator path (pivot search for LU).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.hw.technology import OperatingPoint, TechnologyNode, TECH_45NM


class Precision(enum.Enum):
    """Floating-point precision of a functional unit."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def bytes(self) -> int:
        """Width of one element in bytes."""
        return 4 if self is Precision.SINGLE else 8

    @property
    def bits(self) -> int:
        """Width of one element in bits."""
        return 8 * self.bytes


# Calibration constants at the reference point (1 GHz, 0.8 V, 45 nm).
_REFERENCE_POINT = OperatingPoint(frequency_ghz=1.0, vdd=0.8, node=TECH_45NM)

#: Area in mm^2 of a bare FMAC datapath at 45 nm.
_FMAC_AREA_MM2 = {Precision.SINGLE: 0.010, Precision.DOUBLE: 0.040}

#: Dynamic power in mW at the reference operating point.
_FMAC_POWER_MW = {Precision.SINGLE: 8.9, Precision.DOUBLE: 32.0}

#: Relative power saving from single-cycle accumulation / delayed normalization.
_DELAYED_NORMALIZATION_SAVING = 0.15

#: Relative area overhead of the comparator extension (pivot search).
_COMPARATOR_AREA_OVERHEAD = 0.03
#: Relative power overhead of the comparator extension when active.
_COMPARATOR_POWER_OVERHEAD = 0.02

#: Relative area overhead of widening the accumulator exponent by one bit.
_EXPONENT_EXT_AREA_OVERHEAD = 0.015
#: Relative power overhead of the exponent extension.
_EXPONENT_EXT_POWER_OVERHEAD = 0.01


@dataclass(frozen=True)
class FMACUnit:
    """A pipelined fused multiply-accumulate unit.

    Parameters
    ----------
    precision:
        Single or double precision.
    pipeline_stages:
        Number of pipeline stages (the paper uses designs with 5--9 stages;
        its TRSM/Cholesky discussions assume ``p`` stages and the stacked
        TRSM example uses ``p = 8``).
    frequency_ghz:
        Clock frequency of the unit.
    delayed_normalization:
        Whether the unit uses single-cycle accumulation with delayed
        normalization (the LAC design point does; conventional SIMD FPUs in
        CPUs/GPUs do not).
    has_comparator:
        Extension: comparator on the accumulate path used to locate pivots
        during LU factorization without extra instructions.
    extended_exponent:
        Extension: one extra exponent bit in the accumulator so that vector
        norms can be accumulated without the scaling pass that guards
        against overflow/underflow.
    node:
        Technology node; defaults to 45 nm.
    """

    precision: Precision = Precision.DOUBLE
    pipeline_stages: int = 5
    frequency_ghz: float = 1.0
    delayed_normalization: bool = True
    has_comparator: bool = False
    extended_exponent: bool = False
    node: TechnologyNode = TECH_45NM

    def __post_init__(self) -> None:
        if not (1 <= self.pipeline_stages <= 16):
            raise ValueError(f"pipeline_stages out of range: {self.pipeline_stages}")
        if self.frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive: {self.frequency_ghz}")

    # ------------------------------------------------------------------ area
    @property
    def area_mm2(self) -> float:
        """Silicon area of the unit in mm^2 (including extensions)."""
        area = _FMAC_AREA_MM2[self.precision]
        if self.has_comparator:
            area *= 1.0 + _COMPARATOR_AREA_OVERHEAD
        if self.extended_exponent:
            area *= 1.0 + _EXPONENT_EXT_AREA_OVERHEAD
        return area

    # ----------------------------------------------------------------- power
    @property
    def operating_point(self) -> OperatingPoint:
        """The (frequency, voltage) operating point of the unit."""
        return OperatingPoint.at_frequency(self.frequency_ghz, node=self.node)

    @property
    def dynamic_power_w(self) -> float:
        """Dynamic power in watts when issuing one MAC per cycle."""
        base_mw = _FMAC_POWER_MW[self.precision]
        if not self.delayed_normalization:
            base_mw /= 1.0 - _DELAYED_NORMALIZATION_SAVING
        if self.has_comparator:
            base_mw *= 1.0 + _COMPARATOR_POWER_OVERHEAD
        if self.extended_exponent:
            base_mw *= 1.0 + _EXPONENT_EXT_POWER_OVERHEAD
        scale = self.operating_point.dynamic_power_scale(_REFERENCE_POINT)
        return base_mw * scale * 1e-3

    @property
    def energy_per_mac_j(self) -> float:
        """Dynamic energy of a single MAC operation in joules."""
        cycles_per_second = self.frequency_ghz * 1e9
        return self.dynamic_power_w / cycles_per_second

    @property
    def idle_power_w(self) -> float:
        """Leakage/idle power modelled as a technology-dependent fraction."""
        return self.dynamic_power_w * self.node.leakage_fraction

    # ----------------------------------------------------------- performance
    @property
    def flops_per_cycle(self) -> int:
        """Floating point operations per cycle (a MAC counts as 2 flops)."""
        return 2

    @property
    def peak_gflops(self) -> float:
        """Peak throughput in GFLOPS (one MAC = 2 flops per cycle)."""
        return self.flops_per_cycle * self.frequency_ghz

    @property
    def gflops_per_watt(self) -> float:
        """Peak compute efficiency of the bare unit."""
        return self.peak_gflops / self.dynamic_power_w

    @property
    def gflops_per_mm2(self) -> float:
        """Peak areal compute density of the bare unit."""
        return self.peak_gflops / self.area_mm2

    # ------------------------------------------------------------- factories
    def at_frequency(self, frequency_ghz: float) -> "FMACUnit":
        """Return a copy of this unit clocked at a different frequency."""
        return replace(self, frequency_ghz=frequency_ghz)

    def with_extensions(self, comparator: bool = False, extended_exponent: bool = False) -> "FMACUnit":
        """Return a copy with the Chapter-6 MAC extensions toggled."""
        return replace(self, has_comparator=comparator, extended_exponent=extended_exponent)

    def describe(self) -> str:
        """One-line human readable summary of the design point."""
        ext = []
        if self.has_comparator:
            ext.append("cmp")
        if self.extended_exponent:
            ext.append("exp+1")
        ext_s = "+".join(ext) if ext else "base"
        return (
            f"FMAC[{self.precision.value}, {self.pipeline_stages} stages, "
            f"{self.frequency_ghz:.2f} GHz, {ext_s}]: "
            f"{self.area_mm2 * 1e3:.1f}e-3 mm^2, {self.dynamic_power_w * 1e3:.1f} mW, "
            f"{self.peak_gflops:.2f} GFLOPS"
        )
