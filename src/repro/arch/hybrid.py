"""FFT-optimised and hybrid LAC/FFT PE designs (Chapter 6.2, Appendix B).

Three PE variants are compared at 1 GHz:

* the **dedicated LAC** PE (baseline): one larger single-ported SRAM for A,
  one small dual-ported SRAM for B;
* the **dedicated FFT** PE: two single-ported 8-byte-wide SRAMs so that the
  two operands of every butterfly can be read in the same cycle while the
  previous block streams out;
* the **hybrid** PE: the FFT organisation plus the extra storage needed to
  keep a matrix-A panel resident, able to run both workload classes with a
  small loss in efficiency relative to either dedicated design.

This module builds the three variants from the SRAM/FPU component models and
produces the per-design area, power and normalised-efficiency numbers used by
the hybrid-design comparison table and figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.hw.fpu import FMACUnit, Precision
from repro.hw.sram import SRAMConfig, SRAMModel
from repro.models.efficiency import EfficiencyMetrics


class PEDesignVariant(enum.Enum):
    """The three PE organisations compared in the hybrid-core study."""

    DEDICATED_LAC = "lac"
    DEDICATED_FFT = "fft"
    HYBRID = "hybrid"

    def describe(self) -> str:
        return {
            PEDesignVariant.DEDICATED_LAC: "dedicated linear-algebra PE",
            PEDesignVariant.DEDICATED_FFT: "dedicated FFT PE (two single-ported SRAMs)",
            PEDesignVariant.HYBRID: "hybrid LAC/FFT PE",
        }[self]


@dataclass(frozen=True)
class HybridPEDesign:
    """One PE variant with its storage organisation."""

    variant: PEDesignVariant
    precision: Precision
    frequency_ghz: float
    srams: tuple            #: tuple of SRAMModel
    supports_gemm: bool
    supports_fft: bool
    #: relative GEMM efficiency vs. the dedicated LAC design (1.0 = equal)
    gemm_efficiency: float
    #: relative FFT efficiency vs. the dedicated FFT design (1.0 = equal)
    fft_efficiency: float

    @property
    def fmac(self) -> FMACUnit:
        return FMACUnit(precision=self.precision, frequency_ghz=self.frequency_ghz)

    @property
    def sram_area_mm2(self) -> float:
        return sum(s.area_mm2 for s in self.srams)

    @property
    def area_mm2(self) -> float:
        """PE area: MAC plus all SRAM macros plus a fixed control/bus share."""
        return self.fmac.area_mm2 + self.sram_area_mm2 + 0.025

    def power_w(self, workload: str = "gemm") -> float:
        """PE power running the given workload ("gemm", "fft" or "idle")."""
        if workload not in ("gemm", "fft", "idle"):
            raise ValueError(f"unknown workload '{workload}'")
        if workload == "idle":
            return 0.25 * self.fmac.dynamic_power_w
        f = self.frequency_ghz
        # GEMM touches one SRAM per cycle plus occasional A reads; FFT reads
        # and writes both operand SRAMs every butterfly step.
        if workload == "gemm":
            rates = [0.25] + [1.0] * (len(self.srams) - 1)
        else:
            rates = [1.0] * len(self.srams)
        sram_power = sum(s.dynamic_power_w(f, min(r, s.config.ports)) for s, r in zip(self.srams, rates))
        return self.fmac.dynamic_power_w + sram_power

    def efficiency(self, workload: str = "gemm") -> EfficiencyMetrics:
        """Efficiency of the PE on one workload, honouring capability flags."""
        supported = self.supports_gemm if workload == "gemm" else self.supports_fft
        relative = self.gemm_efficiency if workload == "gemm" else self.fft_efficiency
        util = max(1e-6, relative if supported else 1e-6)
        gflops = 2.0 * self.frequency_ghz * util
        return EfficiencyMetrics(label=f"{self.variant.value}:{workload}", gflops=gflops,
                                 power_w=self.power_w(workload), area_mm2=self.area_mm2,
                                 utilization=util, frequency_ghz=self.frequency_ghz,
                                 precision=self.precision.value)


def build_variant(variant: PEDesignVariant, precision: Precision = Precision.DOUBLE,
                  frequency_ghz: float = 1.0,
                  lac_store_kbytes: float = 16.0) -> HybridPEDesign:
    """Construct one of the three PE variants from the component models."""
    kb = 1024
    if variant is PEDesignVariant.DEDICATED_LAC:
        srams = (
            SRAMModel(SRAMConfig(int(lac_store_kbytes * kb), ports=1, word_bytes=8)),
            SRAMModel(SRAMConfig(2 * kb, ports=2, word_bytes=8)),
        )
        return HybridPEDesign(variant, precision, frequency_ghz, srams,
                              supports_gemm=True, supports_fft=False,
                              gemm_efficiency=1.0, fft_efficiency=0.0)
    if variant is PEDesignVariant.DEDICATED_FFT:
        srams = (
            SRAMModel(SRAMConfig(8 * kb, ports=1, word_bytes=8)),
            SRAMModel(SRAMConfig(8 * kb, ports=1, word_bytes=8)),
        )
        return HybridPEDesign(variant, precision, frequency_ghz, srams,
                              supports_gemm=False, supports_fft=True,
                              gemm_efficiency=0.0, fft_efficiency=1.0)
    # Hybrid: the two single-ported FFT SRAMs sized so that a matrix-A panel
    # also fits; both workloads run with a small efficiency loss relative to
    # the dedicated designs (scheduling constraints and slightly higher
    # per-access energy of the bigger arrays).
    srams = (
        SRAMModel(SRAMConfig(int(lac_store_kbytes * kb), ports=1, word_bytes=8)),
        SRAMModel(SRAMConfig(8 * kb, ports=1, word_bytes=8)),
    )
    return HybridPEDesign(variant, precision, frequency_ghz, srams,
                          supports_gemm=True, supports_fft=True,
                          gemm_efficiency=0.95, fft_efficiency=0.92)


def hybrid_design_comparison(precision: Precision = Precision.DOUBLE,
                             frequency_ghz: float = 1.0) -> List[Dict[str, float]]:
    """Comparison table of the three PE variants (area, power, efficiency).

    The normalised-efficiency columns express each design's GEMM and FFT
    power efficiency relative to the baseline LAC design running GEMM, which
    is how the hybrid-core figure presents the trade-off.
    """
    baseline = build_variant(PEDesignVariant.DEDICATED_LAC, precision, frequency_ghz)
    baseline_eff = baseline.efficiency("gemm").gflops_per_watt
    rows: List[Dict[str, float]] = []
    for variant in PEDesignVariant:
        design = build_variant(variant, precision, frequency_ghz)
        gemm_eff = design.efficiency("gemm").gflops_per_watt if design.supports_gemm else 0.0
        fft_eff = design.efficiency("fft").gflops_per_watt if design.supports_fft else 0.0
        rows.append({
            "variant": variant.value,
            "area_mm2": design.area_mm2,
            "power_gemm_w": design.power_w("gemm") if design.supports_gemm else 0.0,
            "power_fft_w": design.power_w("fft") if design.supports_fft else 0.0,
            "max_power_w": max(design.power_w("gemm"), design.power_w("fft")),
            "gemm_gflops_per_w": gemm_eff,
            "fft_gflops_per_w": fft_eff,
            "gemm_eff_vs_lac": gemm_eff / baseline_eff if baseline_eff > 0 else 0.0,
            "fft_eff_vs_lac": fft_eff / baseline_eff if baseline_eff > 0 else 0.0,
            "supports_gemm": design.supports_gemm,
            "supports_fft": design.supports_fft,
        })
    return rows


def fft_alternatives_comparison() -> List[Dict[str, float]]:
    """Cache-contained double-precision FFT efficiency of several platforms.

    Reference points for the hybrid-core table: published FFT efficiencies of
    general-purpose CPUs, GPUs and DSP-class accelerators scaled to 45 nm,
    against the dedicated-FFT and hybrid LAC designs (GFLOPS/W, 1 GHz).
    """
    rows = [
        {"design": "General-purpose CPU (45nm)", "gflops_per_w": 0.6},
        {"design": "GPU SM (45nm)", "gflops_per_w": 2.5},
        {"design": "Cell SPE (45nm)", "gflops_per_w": 4.5},
        {"design": "DSP accelerator", "gflops_per_w": 12.0},
    ]
    for entry in hybrid_design_comparison():
        if entry["supports_fft"]:
            rows.append({
                "design": f"LAC-{entry['variant']}",
                "gflops_per_w": entry["fft_gflops_per_w"],
            })
    return rows
