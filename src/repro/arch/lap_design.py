"""LAP / LAC / PE design-point builders.

These builders assemble the component models (FMAC, SRAM, buses, SFU) into
the design points evaluated in Chapters 3 and 4: a single processing element
at a given frequency and local-store size, an ``nr x nr`` core, and a
multi-core chip.  Each design point exposes area, power and the standard
efficiency metrics so that the PE frequency sweeps, the local-store sweeps
and the core/chip comparison tables can all be generated from the same code
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hw.bus import BroadcastBus, BUS_AREA_PER_PE_MM2
from repro.hw.fpu import FMACUnit, Precision
from repro.hw.memory import OnChipMemory
from repro.hw.sfu import SFUPlacement, SpecialFunctionUnit
from repro.hw.sram import SRAMModel, pe_store_a, pe_store_b
from repro.models.efficiency import EfficiencyMetrics
from repro.models.power import PowerComponent, PowerModel


@dataclass(frozen=True)
class PEDesignPoint:
    """One processing element design point (Table 3.1 rows)."""

    precision: Precision
    frequency_ghz: float
    local_store_kbytes: float
    fmac: FMACUnit
    store_a: SRAMModel
    store_b: SRAMModel

    @property
    def area_mm2(self) -> float:
        """PE area: MAC + both local stores + bus share."""
        return (self.fmac.area_mm2 + self.store_a.area_mm2 + self.store_b.area_mm2
                + BUS_AREA_PER_PE_MM2)

    @property
    def memory_power_w(self) -> float:
        """Dynamic power of the local stores at GEMM access rates.

        ``MEM A`` is read once every ``nr`` cycles (one element of A per
        rank-1 update shared across the row); ``MEM B`` supplies one element
        per cycle.  We fold both into a single figure at the PE's frequency.
        """
        f = self.frequency_ghz
        return (self.store_a.dynamic_power_w(f, accesses_per_cycle=0.25)
                + self.store_b.dynamic_power_w(f, accesses_per_cycle=1.0))

    @property
    def fmac_power_w(self) -> float:
        """Dynamic power of the MAC unit at full issue rate."""
        return self.fmac.dynamic_power_w

    @property
    def total_power_w(self) -> float:
        """Total PE power (dynamic plus the calibrated idle fraction)."""
        bus = BroadcastBus(width_bits=self.precision.bits)
        # Per PE, 2/nr of the power of one bus; with nr=4 this is small.
        bus_power = 2.0 / 4.0 * bus.dynamic_power_w(self.frequency_ghz, 1.0)
        dynamic = self.fmac_power_w + self.memory_power_w + bus_power
        return dynamic * 1.25

    @property
    def peak_gflops(self) -> float:
        """Peak throughput of the PE (2 flops per cycle)."""
        return 2.0 * self.frequency_ghz

    def efficiency(self, utilization: float = 1.0) -> EfficiencyMetrics:
        """Standard efficiency metrics of the PE design point."""
        return EfficiencyMetrics(
            label=f"PE[{self.precision.value}@{self.frequency_ghz:.2f}GHz]",
            gflops=self.peak_gflops * utilization,
            power_w=self.total_power_w,
            area_mm2=self.area_mm2,
            utilization=utilization,
            frequency_ghz=self.frequency_ghz,
            precision=self.precision.value,
        )

    def as_table_row(self) -> dict:
        """Row matching the columns of the PE design table."""
        eff = self.efficiency()
        return {
            "precision": "SP" if self.precision is Precision.SINGLE else "DP",
            "frequency_ghz": round(self.frequency_ghz, 2),
            "area_mm2": round(self.area_mm2, 3),
            "memory_mw": round(self.memory_power_w * 1e3, 2),
            "fmac_mw": round(self.fmac_power_w * 1e3, 1),
            "pe_mw": round(self.total_power_w * 1e3, 1),
            "w_per_mm2": round(eff.watts_per_mm2, 3),
            "gflops_per_mm2": round(eff.gflops_per_mm2, 2),
            "gflops_per_w": round(eff.gflops_per_watt, 1),
            "gflops2_per_w": round(eff.inverse_energy_delay, 1),
        }


@dataclass(frozen=True)
class LACDesignPoint:
    """One Linear Algebra Core design point (nr x nr PEs plus an SFU)."""

    nr: int
    pe: PEDesignPoint
    sfu: SpecialFunctionUnit

    @property
    def num_pes(self) -> int:
        return self.nr * self.nr

    @property
    def area_mm2(self) -> float:
        """Core area: PEs plus the shared special function unit."""
        return self.num_pes * self.pe.area_mm2 + self.sfu.area_mm2

    @property
    def power_w(self) -> float:
        """Core power at full GEMM activity."""
        return self.num_pes * self.pe.total_power_w + self.sfu.idle_power_w

    @property
    def peak_gflops(self) -> float:
        return self.num_pes * self.pe.peak_gflops

    def efficiency(self, utilization: float = 0.95) -> EfficiencyMetrics:
        """Efficiency of the core running GEMM at the given utilisation."""
        return EfficiencyMetrics(
            label=f"LAC[{self.nr}x{self.nr}, {self.pe.precision.value}]",
            gflops=self.peak_gflops * utilization,
            power_w=self.power_w,
            area_mm2=self.area_mm2,
            utilization=utilization,
            frequency_ghz=self.pe.frequency_ghz,
            precision=self.pe.precision.value,
        )


@dataclass(frozen=True)
class LAPDesignPoint:
    """One chip-level design point: S cores plus shared on-chip memory."""

    num_cores: int
    core: LACDesignPoint
    onchip_memory: OnChipMemory
    offchip_bandwidth_gb_s: float = 32.0

    @property
    def num_pes(self) -> int:
        return self.num_cores * self.core.num_pes

    @property
    def area_mm2(self) -> float:
        return self.num_cores * self.core.area_mm2 + self.onchip_memory.area_mm2

    def power_w(self, onchip_accesses_per_cycle: float = 8.0) -> float:
        """Chip power: cores plus the on-chip memory at its streaming rate."""
        mem = (self.onchip_memory.dynamic_power_w(onchip_accesses_per_cycle)
               + self.onchip_memory.leakage_power_w)
        return self.num_cores * self.core.power_w + mem

    @property
    def peak_gflops(self) -> float:
        return self.num_cores * self.core.peak_gflops

    def efficiency(self, utilization: float = 0.9,
                   onchip_accesses_per_cycle: float = 8.0) -> EfficiencyMetrics:
        """Chip-level efficiency running GEMM."""
        return EfficiencyMetrics(
            label=f"LAP[{self.num_cores} cores, {self.core.pe.precision.value}]",
            gflops=self.peak_gflops * utilization,
            power_w=self.power_w(onchip_accesses_per_cycle),
            area_mm2=self.area_mm2,
            utilization=utilization,
            frequency_ghz=self.core.pe.frequency_ghz,
            precision=self.core.pe.precision.value,
        )


# ----------------------------------------------------------------- builders
def build_pe(precision: Precision = Precision.DOUBLE, frequency_ghz: float = 1.0,
             local_store_kbytes: float = 16.0, store_b_kbytes: float = 2.0,
             pipeline_stages: int = 5) -> PEDesignPoint:
    """Build one PE design point from the component models."""
    if local_store_kbytes <= 0 or store_b_kbytes <= 0:
        raise ValueError("local store capacities must be positive")
    fmac = FMACUnit(precision=precision, frequency_ghz=frequency_ghz,
                    pipeline_stages=pipeline_stages)
    store_a = pe_store_a(int(local_store_kbytes * 1024))
    store_b = pe_store_b(int(store_b_kbytes * 1024))
    return PEDesignPoint(precision=precision, frequency_ghz=frequency_ghz,
                         local_store_kbytes=local_store_kbytes, fmac=fmac,
                         store_a=store_a, store_b=store_b)


def build_lac(nr: int = 4, precision: Precision = Precision.DOUBLE,
              frequency_ghz: float = 1.0, local_store_kbytes: float = 16.0,
              sfu_placement: SFUPlacement = SFUPlacement.ISOLATED) -> LACDesignPoint:
    """Build one LAC design point."""
    pe = build_pe(precision=precision, frequency_ghz=frequency_ghz,
                  local_store_kbytes=local_store_kbytes)
    sfu = SpecialFunctionUnit(placement=sfu_placement, precision=precision,
                              frequency_ghz=frequency_ghz, nr=nr)
    return LACDesignPoint(nr=nr, pe=pe, sfu=sfu)


def build_lap(num_cores: int = 8, nr: int = 4, precision: Precision = Precision.DOUBLE,
              frequency_ghz: float = 1.0, local_store_kbytes: float = 16.0,
              onchip_memory_mbytes: float = 4.0,
              offchip_bandwidth_gb_s: float = 32.0) -> LAPDesignPoint:
    """Build one LAP design point."""
    if onchip_memory_mbytes <= 0:
        raise ValueError("on-chip memory capacity must be positive")
    core = build_lac(nr=nr, precision=precision, frequency_ghz=frequency_ghz,
                     local_store_kbytes=local_store_kbytes)
    memory = OnChipMemory(capacity_bytes=int(onchip_memory_mbytes * 1024 * 1024),
                          banks=max(num_cores, 4), word_bytes=precision.bytes,
                          frequency_ghz=frequency_ghz)
    return LAPDesignPoint(num_cores=num_cores, core=core, onchip_memory=memory,
                          offchip_bandwidth_gb_s=offchip_bandwidth_gb_s)


def pe_frequency_sweep(precision: Precision, frequencies: Sequence[float],
                       local_store_kbytes: float = 16.0) -> List[PEDesignPoint]:
    """Sweep the PE design across operating frequencies (Table 3.1 / Fig. 3.6)."""
    return [build_pe(precision=precision, frequency_ghz=f,
                     local_store_kbytes=local_store_kbytes) for f in frequencies]


def find_sweet_spot_frequency(precision: Precision = Precision.DOUBLE,
                              frequencies: Optional[Sequence[float]] = None,
                              local_store_kbytes: float = 16.0) -> float:
    """Frequency balancing energy-delay against power/area efficiency.

    The dissertation identifies roughly 1 GHz as the sweet spot: pushing the
    clock further keeps improving energy-delay and area efficiency but power
    efficiency collapses (the voltage must rise), while very low clocks are
    power efficient but waste area and energy-delay.  We formalise the knee
    the same way the text argues it: among the frequencies whose GFLOPS/W is
    still within a constant fraction of the best achievable (which occurs at
    the lowest clock), pick the one with the best (lowest) energy-delay.
    """
    freqs = list(frequencies) if frequencies is not None else [0.2, 0.33, 0.5, 0.75, 0.95,
                                                               1.0, 1.2, 1.4, 1.6, 1.81, 2.08]
    points = []
    for f in freqs:
        pe = build_pe(precision=precision, frequency_ghz=f,
                      local_store_kbytes=local_store_kbytes)
        points.append((f, pe.efficiency()))
    best_power_eff = max(eff.gflops_per_watt for _, eff in points)
    candidates = [(f, eff) for f, eff in points
                  if eff.gflops_per_watt >= 0.55 * best_power_eff]
    best_f, _ = min(candidates, key=lambda fe: fe[1].energy_delay)
    return best_f
