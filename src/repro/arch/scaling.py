"""Technology scaling of published architecture measurements.

The comparison tables mix architectures manufactured in different technology
nodes (Cell at 65 nm, ClearSpeed CSX700 at 90 nm, GTX280 at 65 nm, ...).  The
dissertation brings every number to 45 nm before comparing; this module makes
that step explicit and testable: given a published measurement (throughput,
power, area, node) it produces the 45 nm-equivalent figures using the scaling
rules of :mod:`repro.hw.technology`, and records both views so reports can
show the provenance of every scaled number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hw.technology import (KNOWN_NODES, TECH_45NM, TechnologyNode, scale_area,
                                 scale_frequency, scale_power)
from repro.models.efficiency import EfficiencyMetrics


@dataclass(frozen=True)
class PublishedMeasurement:
    """One published data point for an architecture running a workload."""

    name: str
    workload: str
    node: TechnologyNode
    gflops: float
    power_w: float
    area_mm2: float
    frequency_ghz: Optional[float] = None
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.gflops < 0 or self.power_w <= 0 or self.area_mm2 <= 0:
            raise ValueError(f"invalid published measurement for {self.name}")
        if not (0.0 < self.utilization <= 1.0):
            raise ValueError(f"utilization out of range for {self.name}")


@dataclass(frozen=True)
class ScaledMeasurement:
    """A published measurement scaled to a target technology node."""

    original: PublishedMeasurement
    target_node: TechnologyNode
    gflops: float
    power_w: float
    area_mm2: float
    frequency_ghz: Optional[float]

    @property
    def gflops_per_watt(self) -> float:
        return self.gflops / self.power_w

    @property
    def gflops_per_mm2(self) -> float:
        return self.gflops / self.area_mm2

    def efficiency(self) -> EfficiencyMetrics:
        """Standard efficiency container for the scaled measurement."""
        return EfficiencyMetrics(
            label=f"{self.original.name} @ {self.target_node.name}",
            gflops=self.gflops, power_w=self.power_w, area_mm2=self.area_mm2,
            utilization=self.original.utilization,
            frequency_ghz=self.frequency_ghz,
        )

    def as_row(self) -> Dict[str, object]:
        """Provenance row: published values next to the scaled ones."""
        return {
            "architecture": self.original.name,
            "workload": self.original.workload,
            "published_node": self.original.node.name,
            "published_gflops": self.original.gflops,
            "published_power_w": self.original.power_w,
            "published_area_mm2": self.original.area_mm2,
            "scaled_node": self.target_node.name,
            "scaled_gflops": round(self.gflops, 1),
            "scaled_power_w": round(self.power_w, 2),
            "scaled_area_mm2": round(self.area_mm2, 1),
            "scaled_gflops_per_w": round(self.gflops_per_watt, 2),
            "scaled_gflops_per_mm2": round(self.gflops_per_mm2, 3),
        }


def scale_measurement(measurement: PublishedMeasurement,
                      target: TechnologyNode = TECH_45NM,
                      rescale_frequency: bool = False) -> ScaledMeasurement:
    """Scale one published measurement to the target node.

    With ``rescale_frequency=False`` (the paper's convention) the design keeps
    its original clock: area shrinks quadratically, power shrinks with the
    capacitance/voltage product, throughput is unchanged.  With
    ``rescale_frequency=True`` the clock (and throughput) also speed up by the
    feature-size ratio, which is used for "what could this design do if also
    re-timed" style sensitivity checks.
    """
    node = measurement.node
    area = scale_area(measurement.area_mm2, node, target)
    power = scale_power(measurement.power_w, node, target, same_frequency=True)
    gflops = measurement.gflops
    freq = measurement.frequency_ghz
    if rescale_frequency:
        ratio = node.feature_nm / target.feature_nm
        gflops *= ratio
        power *= ratio
        freq = scale_frequency(freq, node, target) if freq else None
    return ScaledMeasurement(original=measurement, target_node=target, gflops=gflops,
                             power_w=power, area_mm2=area, frequency_ghz=freq)


#: Published measurements used by the comparison tables, in their native nodes.
PUBLISHED_MEASUREMENTS: List[PublishedMeasurement] = [
    PublishedMeasurement("Cell BE (8 SPE)", "SGEMM", KNOWN_NODES["65nm"],
                         gflops=200.0, power_w=70.0, area_mm2=230.0,
                         frequency_ghz=3.2, utilization=0.88),
    PublishedMeasurement("Nvidia GTX280", "SGEMM", KNOWN_NODES["65nm"],
                         gflops=410.0, power_w=236.0, area_mm2=576.0,
                         frequency_ghz=1.30, utilization=0.66),
    PublishedMeasurement("ClearSpeed CSX700", "DGEMM", KNOWN_NODES["90nm"],
                         gflops=75.0, power_w=12.0, area_mm2=400.0,
                         frequency_ghz=0.25, utilization=0.78),
    PublishedMeasurement("Nvidia GTX480", "DGEMM", KNOWN_NODES["45nm"],
                         gflops=470.0, power_w=220.0, area_mm2=529.0,
                         frequency_ghz=1.40, utilization=0.70),
    PublishedMeasurement("Intel Penryn (2 cores)", "DGEMM", KNOWN_NODES["45nm"],
                         gflops=20.0, power_w=34.0, area_mm2=107.0,
                         frequency_ghz=2.66, utilization=0.95),
]


def scaled_comparison_rows(target: TechnologyNode = TECH_45NM) -> List[Dict[str, object]]:
    """Scale every published measurement to the target node (provenance table)."""
    return [scale_measurement(m, target).as_row() for m in PUBLISHED_MEASUREMENTS]
