"""Published specifications of the comparison architectures.

The dissertation's comparison tables (core level and chip level) combine its
own LAC/LAP estimates with numbers for existing architectures taken from the
literature and scaled to 45 nm: Cell SPEs, NVidia GTX280/GTX480 streaming
multiprocessors, the Rigel accelerator cluster, Intel's 80-tile NoC research
chip, Intel Penryn / Core i7 / quad-core CPUs, IBM Power7, Altera Stratix IV
FPGAs and the ClearSpeed CSX700.  This module records those reference data
points in one place (as the paper treats them: fixed published inputs) and
provides the table generators built on top of them.

The numbers stored here are the 45 nm-scaled values the comparison tables
report (throughput when running GEMM, power density, areal and power
efficiency, achieved utilisation).  They intentionally mirror the magnitudes
of the published tables so that the reproduction's qualitative claims --
which architecture wins, and by roughly what factor -- can be asserted by the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.models.efficiency import EfficiencyMetrics


@dataclass(frozen=True)
class ArchitectureSpec:
    """One comparison architecture running GEMM (45 nm-scaled numbers).

    ``scope`` distinguishes core-level entries (a single SPE / SM / LAC) from
    chip-level entries (the whole processor).
    """

    name: str
    scope: str                    #: "core" or "chip"
    precision: str                #: "single" or "double"
    gflops: float                 #: achieved GEMM throughput
    watts_per_mm2: float
    gflops_per_mm2: float
    gflops_per_watt: float
    utilization: float
    is_lap: bool = False

    def efficiency(self) -> EfficiencyMetrics:
        """Convert to the standard efficiency-metric container."""
        area = self.gflops / self.gflops_per_mm2 if self.gflops_per_mm2 > 0 else 1.0
        power = self.gflops / self.gflops_per_watt if self.gflops_per_watt > 0 else 1.0
        return EfficiencyMetrics(label=self.name, gflops=self.gflops, power_w=power,
                                 area_mm2=area, utilization=min(1.0, self.utilization),
                                 precision=self.precision)

    @property
    def inverse_energy_delay(self) -> float:
        """GFLOPS^2 / W."""
        return self.gflops * self.gflops_per_watt


# --------------------------------------------------------------------------
# Core-level comparison (single core / SM / SPE running GEMM, 45 nm scaled).
# --------------------------------------------------------------------------
_CORE_LEVEL: List[ArchitectureSpec] = [
    ArchitectureSpec("Cell SPE", "core", "single", 25.6, 0.4, 6.4, 16.0, 0.83),
    ArchitectureSpec("Nvidia GTX280 SM", "core", "single", 31.0, 0.6, 3.1, 5.3, 0.66),
    ArchitectureSpec("Rigel cluster", "core", "single", 33.0, 0.3, 4.5, 15.0, 0.40),
    ArchitectureSpec("80-Tile @0.8V", "core", "single", 2.4, 0.2, 1.2, 8.3, 0.38),
    ArchitectureSpec("Nvidia GTX480 SM", "core", "single", 46.0, 0.5, 4.5, 8.4, 0.70),
    ArchitectureSpec("Altera Stratix IV", "core", "single", 200.0, 0.02, 0.1, 7.0, 0.90),
    ArchitectureSpec("LAC (SP)", "core", "single", 30.4, 0.2, 19.5, 104.0, 0.95, is_lap=True),
    ArchitectureSpec("Intel Core", "core", "double", 10.6, 0.5, 0.4, 0.85, 0.95),
    ArchitectureSpec("Nvidia GTX480 SM (DP)", "core", "double", 23.0, 0.5, 2.0, 4.1, 0.70),
    ArchitectureSpec("Altera Stratix IV (DP)", "core", "double", 100.0, 0.02, 0.05, 3.5, 0.90),
    ArchitectureSpec("ClearSpeed CSX700", "core", "double", 75.0, 0.02, 0.28, 12.5, 0.78),
    ArchitectureSpec("LAC (DP)", "core", "double", 15.2, 0.3, 15.6, 47.0, 0.95, is_lap=True),
]

# --------------------------------------------------------------------------
# Chip-level comparison (whole processors running GEMM, 45 nm scaled).
# --------------------------------------------------------------------------
_CHIP_LEVEL: List[ArchitectureSpec] = [
    ArchitectureSpec("Cell", "chip", "single", 200.0, 0.3, 1.5, 5.0, 0.88),
    ArchitectureSpec("Nvidia GTX280", "chip", "single", 410.0, 0.3, 0.8, 2.6, 0.66),
    ArchitectureSpec("Rigel", "chip", "single", 850.0, 0.3, 3.2, 10.7, 0.40),
    ArchitectureSpec("80-Tile @0.8V", "chip", "single", 175.0, 0.2, 1.2, 6.6, 0.38),
    ArchitectureSpec("80-Tile @1.07V", "chip", "single", 380.0, 0.7, 2.66, 3.8, 0.38),
    ArchitectureSpec("Nvidia GTX480", "chip", "single", 940.0, 0.2, 0.9, 5.2, 0.70),
    ArchitectureSpec("Core i7-960", "chip", "single", 96.0, 0.4, 0.50, 1.14, 0.95),
    ArchitectureSpec("Altera Stratix IV", "chip", "single", 200.0, 0.02, 0.1, 7.0, 0.90),
    ArchitectureSpec("LAP (SP)", "chip", "single", 1200.0, 0.2, 8.5, 42.0, 0.90, is_lap=True),
    ArchitectureSpec("Intel Quad-Core", "chip", "double", 40.0, 0.5, 0.4, 0.8, 0.95),
    ArchitectureSpec("Intel Penryn", "chip", "double", 20.0, 0.4, 0.2, 0.6, 0.95),
    ArchitectureSpec("IBM Power7", "chip", "double", 230.0, 0.5, 0.5, 1.0, 0.95),
    ArchitectureSpec("Nvidia GTX480 (DP)", "chip", "double", 470.0, 0.2, 0.5, 2.6, 0.70),
    ArchitectureSpec("Core i7-960 (DP)", "chip", "double", 48.0, 0.4, 0.25, 0.57, 0.95),
    ArchitectureSpec("Altera Stratix IV (DP)", "chip", "double", 100.0, 0.02, 0.05, 3.5, 0.90),
    ArchitectureSpec("ClearSpeed CSX700", "chip", "double", 75.0, 0.02, 0.2, 12.5, 0.78),
    ArchitectureSpec("LAP (DP)", "chip", "double", 600.0, 0.2, 4.0, 20.0, 0.90, is_lap=True),
]


def core_level_specs(precision: Optional[str] = None) -> List[ArchitectureSpec]:
    """Core-level comparison entries, optionally filtered by precision."""
    return [s for s in _CORE_LEVEL if precision is None or s.precision == precision]


def chip_level_specs(precision: Optional[str] = None) -> List[ArchitectureSpec]:
    """Chip-level comparison entries, optionally filtered by precision."""
    return [s for s in _CHIP_LEVEL if precision is None or s.precision == precision]


def lookup(name: str) -> ArchitectureSpec:
    """Find one architecture by name across both scopes."""
    for spec in _CORE_LEVEL + _CHIP_LEVEL:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown architecture '{name}'")


def lap_advantage(scope: str = "chip", precision: str = "double",
                  metric: str = "gflops_per_watt") -> float:
    """Ratio of the LAP/LAC to the best non-LAP competitor on a metric."""
    specs = core_level_specs(precision) if scope == "core" else chip_level_specs(precision)
    lap = [s for s in specs if s.is_lap]
    others = [s for s in specs if not s.is_lap]
    if not lap or not others:
        raise ValueError(f"no comparison data for scope={scope}, precision={precision}")
    lap_value = getattr(lap[0], metric)
    best_other = max(getattr(s, metric) for s in others)
    return lap_value / best_other


def design_choice_comparison() -> List[Dict[str, str]]:
    """The qualitative design-choice comparison between CPUs, GPUs and the LAP.

    Each row describes one design dimension and how the three platform
    classes handle it (the content of the dissertation's design-choices
    table, condensed to machine-checkable categories).
    """
    return [
        {"aspect": "Instruction pipeline",
         "cpu": "instruction cache, out-of-order, branch prediction",
         "gpu": "instruction cache, in-order, multithreaded issue",
         "lap": "no instructions (micro-coded state machines)"},
        {"aspect": "Execution unit",
         "cpu": "1D SIMD + register file",
         "gpu": "2D SIMD + register file",
         "lap": "2D MAC array + local SRAM per FPU"},
        {"aspect": "Register file",
         "cpu": "many-ported",
         "gpu": "multi-ported, very large",
         "lap": "tiny single-ported, usually bypassed"},
        {"aspect": "On-chip memory",
         "cpu": "large coherent caches",
         "gpu": "small caches, weak coherency",
         "lap": "large plain SRAM, tightly coupled banks"},
        {"aspect": "Multithreading",
         "cpu": "simultaneous multithreading",
         "gpu": "blocked multithreading",
         "lap": "not needed (static schedule)"},
        {"aspect": "Bandwidth per FPU",
         "cpu": "high",
         "gpu": "high",
         "lap": "low (sufficient by design)"},
        {"aspect": "Memory per FPU",
         "cpu": "high",
         "gpu": "low (inadequate)",
         "lap": "high"},
    ]
