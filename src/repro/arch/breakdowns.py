"""Component power breakdowns: GPUs / CPU versus the LAP.

Chapter 4 compares the LAP against an NVidia GTX280 (65 nm), an NVidia GTX480
(45 nm) and an Intel Penryn dual-core (45 nm) by breaking each architecture's
power down into its architectural components, normalising by achieved GEMM
throughput, and contrasting it with a LAP configured for the *same* raw
throughput.  The qualitative findings these figures support are:

* on GPUs, structures that do no arithmetic for GEMM (register files,
  instruction caches, shared-memory tag logic, schedulers) consume the
  majority of the power -- register files alone can exceed 30%;
* on the CPU, the out-of-order machinery and the front end burn ~40% of core
  power;
* the LAP spends essentially all of its power in MAC units and plain SRAM,
  giving the order-of-magnitude efficiency advantage summarised in the
  GFLOPS/W comparison.

The absolute watt numbers below are representative magnitudes consistent with
the published TDPs and die organisations of those parts; the reproduction's
assertions are about the *shape* of the breakdown (which components dominate)
and the resulting efficiency ratios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw.fpu import Precision
from repro.arch.lap_design import build_lap
from repro.models.power import PowerBreakdown, PowerComponent, PowerModel


def gpu_tesla_breakdown(running_gemm: bool = True) -> PowerBreakdown:
    """Power breakdown of the NVidia GTX280 (Tesla, 65 nm) running SGEMM.

    Achieved SGEMM throughput ~410 GFLOPS at ~66% utilisation; board-level
    power around 180 W with the major consumers being the register files,
    the FPUs/SFUs, the shared memories and the instruction handling.
    """
    model = PowerModel(idle_ratio=0.28)
    util = 1.0 if running_gemm else 0.0
    components = [
        PowerComponent("FPUs", 38.0, util, category="compute", essential=True),
        PowerComponent("Register File", 52.0, util, category="overhead", essential=False),
        PowerComponent("Shared Memory", 18.0, util, category="memory", essential=True),
        PowerComponent("Instruction Cache & Fetch", 14.0, util, category="overhead", essential=False),
        PowerComponent("Scheduler / Scalar Logic", 16.0, util, category="overhead", essential=False),
        PowerComponent("Texture / Constant Caches", 12.0, 0.0 if running_gemm else 0.0,
                       category="overhead", essential=False),
        PowerComponent("SFUs", 8.0, 0.0, category="overhead", essential=False),
        PowerComponent("L2 / Memory Controller", 16.0, util, category="memory", essential=True),
        PowerComponent("Buses / NoC", 10.0, util, category="interconnect", essential=True),
        PowerComponent("IO / Misc", 8.0, util, category="io", essential=False),
    ]
    gflops = 410.0 if running_gemm else 622.0
    return model.breakdown("Nvidia GTX280 SGEMM", components, gflops=gflops)


def gpu_fermi_breakdown(precision: Precision = Precision.SINGLE,
                        running_gemm: bool = True) -> PowerBreakdown:
    """Power breakdown of the NVidia GTX480 (Fermi, 45 nm) running GEMM.

    SGEMM ~940 GFLOPS / DGEMM ~470 GFLOPS at ~58-70% utilisation, ~220 W.
    """
    model = PowerModel(idle_ratio=0.25)
    util = 1.0 if running_gemm else 0.0
    components = [
        PowerComponent("FPUs", 52.0, util, category="compute", essential=True),
        PowerComponent("Register File", 58.0, util, category="overhead", essential=False),
        PowerComponent("Shared Memory / L1", 22.0, util, category="memory", essential=True),
        PowerComponent("Instruction Cache & Fetch", 16.0, util, category="overhead", essential=False),
        PowerComponent("Scheduler / Scalar Logic", 20.0, util, category="overhead", essential=False),
        PowerComponent("Texture / Constant Caches", 14.0, 0.0, category="overhead", essential=False),
        PowerComponent("SFUs", 10.0, 0.0, category="overhead", essential=False),
        PowerComponent("L2 Cache", 14.0, util, category="memory", essential=True),
        PowerComponent("Memory Controller / IO", 16.0, util, category="io", essential=True),
    ]
    gflops = (940.0 if precision is Precision.SINGLE else 470.0) if running_gemm else 1345.0
    label = f"Nvidia GTX480 {'S' if precision is Precision.SINGLE else 'D'}GEMM"
    return model.breakdown(label, components, gflops=gflops)


def cpu_penryn_breakdown(running_gemm: bool = True) -> PowerBreakdown:
    """Power breakdown of the Intel Penryn dual-core (45 nm) running DGEMM.

    ~20 DP GFLOPS at ~95% utilisation within a ~35 W core-power envelope; the
    out-of-order engine and front end account for roughly 40% of core power,
    the (IEEE-complete) execution units for about a third.
    """
    model = PowerModel(idle_ratio=0.25)
    util = 1.0 if running_gemm else 0.0
    components = [
        PowerComponent("Execution Units", 5.0, util, category="compute", essential=True),
        PowerComponent("Out-of-Order Engine", 3.2, util, category="overhead", essential=False),
        PowerComponent("Frontend (Fetch/Decode)", 2.2, util, category="overhead", essential=False),
        PowerComponent("L1 Caches", 1.6, util, category="memory", essential=True),
        PowerComponent("L2 Cache", 2.4, util, category="memory", essential=True),
        PowerComponent("MMU / TLB", 1.0, util, category="memory", essential=True),
        PowerComponent("Memory Controller / FSB", 1.5, util, category="io", essential=True),
        PowerComponent("Misc / IO", 1.1, util, category="io", essential=False),
    ]
    gflops = 20.0 if running_gemm else 21.3
    return model.breakdown("Intel Penryn DGEMM", components, gflops=gflops)


def lap_breakdown(target_gflops: float, precision: Precision = Precision.DOUBLE,
                  frequency_ghz: float = 1.4, utilization: float = 0.9) -> PowerBreakdown:
    """Power breakdown of a LAP sized to match a target GEMM throughput.

    The number of cores is chosen so that the LAP's *achieved* throughput at
    the given utilisation matches ``target_gflops``; this is how the
    equal-throughput comparisons are constructed.
    """
    if target_gflops <= 0:
        raise ValueError("target throughput must be positive")
    per_core = 2.0 * 16 * frequency_ghz * utilization
    num_cores = max(1, int(round(target_gflops / per_core)))
    design = build_lap(num_cores=num_cores, precision=precision,
                       frequency_ghz=frequency_ghz)
    model = PowerModel(idle_ratio=0.25)
    pe = design.core.pe
    n_pes = design.num_pes
    components = [
        PowerComponent("MAC units", n_pes * pe.fmac_power_w, 1.0,
                       category="compute", essential=True),
        PowerComponent("PE local stores", n_pes * pe.memory_power_w, 1.0,
                       category="memory", essential=True),
        PowerComponent("Broadcast buses", 0.02 * n_pes * pe.fmac_power_w, 1.0,
                       category="interconnect", essential=True),
        PowerComponent("On-chip memory",
                       design.onchip_memory.dynamic_power_w(8.0)
                       + design.onchip_memory.leakage_power_w, 1.0,
                       category="memory", essential=True),
        PowerComponent("Memory interface / IO", 0.05 * n_pes * pe.fmac_power_w, 1.0,
                       category="io", essential=True),
    ]
    gflops = design.peak_gflops * utilization
    label = f"LAP-{num_cores} ({'SP' if precision is Precision.SINGLE else 'DP'})"
    return model.breakdown(label, components, gflops=gflops)


def efficiency_comparison() -> List[Dict[str, float]]:
    """GFLOPS/W of each comparison pair at equal throughput (Fig. 4.16 data)."""
    rows: List[Dict[str, float]] = []
    pairs = [
        (gpu_fermi_breakdown(Precision.SINGLE), lap_breakdown(940.0, Precision.SINGLE)),
        (gpu_fermi_breakdown(Precision.DOUBLE), lap_breakdown(470.0, Precision.DOUBLE)),
        (gpu_tesla_breakdown(), lap_breakdown(410.0, Precision.SINGLE)),
        (cpu_penryn_breakdown(), lap_breakdown(20.0, Precision.DOUBLE, frequency_ghz=1.4)),
    ]
    for reference, lap in pairs:
        rows.append({
            "reference": reference.label,
            "reference_gflops_per_w": reference.gflops_per_watt,
            "lap": lap.label,
            "lap_gflops_per_w": lap.gflops_per_watt,
            "advantage": lap.gflops_per_watt / reference.gflops_per_watt
            if reference.gflops_per_watt > 0 else float("inf"),
        })
    return rows
