"""Reference architectures and LAP design-point builders.

* :mod:`repro.arch.database` -- published performance/power/area numbers for
  the comparison architectures (GPUs, CPUs, Cell, ClearSpeed, FPGAs, ...)
  used in the core-level and chip-level comparison tables.
* :mod:`repro.arch.lap_design` -- builders producing PE / core / chip design
  points of the LAC/LAP from the component models.
* :mod:`repro.arch.breakdowns` -- component power breakdowns of the
  comparison architectures and the LAP for the normalised breakdown figures.
* :mod:`repro.arch.hybrid` -- the FFT-optimised and hybrid LAC/FFT PE
  designs of Chapter 6.2 / Appendix B.
"""

from repro.arch.database import ArchitectureSpec, core_level_specs, chip_level_specs, design_choice_comparison
from repro.arch.lap_design import PEDesignPoint, LACDesignPoint, LAPDesignPoint, build_pe, build_lac, build_lap
from repro.arch.breakdowns import gpu_tesla_breakdown, gpu_fermi_breakdown, cpu_penryn_breakdown, lap_breakdown, efficiency_comparison
from repro.arch.hybrid import PEDesignVariant, hybrid_design_comparison

__all__ = [
    "ArchitectureSpec",
    "core_level_specs",
    "chip_level_specs",
    "design_choice_comparison",
    "PEDesignPoint",
    "LACDesignPoint",
    "LAPDesignPoint",
    "build_pe",
    "build_lac",
    "build_lap",
    "gpu_tesla_breakdown",
    "gpu_fermi_breakdown",
    "cpu_penryn_breakdown",
    "lap_breakdown",
    "efficiency_comparison",
    "PEDesignVariant",
    "hybrid_design_comparison",
]
