"""NumPy reference implementations for the FFT kernels.

Two references are provided:

* :func:`ref_dft` -- the textbook O(N^2) discrete Fourier transform, used as
  an independent check for small sizes;
* :func:`ref_fft_radix4` -- an explicit decimation-in-time radix-4 FFT that
  mirrors the butterfly structure the LAC kernel uses, so that intermediate
  stage outputs can also be compared if needed.

Both compute the unnormalised forward transform
``X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N)``, matching ``numpy.fft.fft``.
"""

from __future__ import annotations

import numpy as np


def ref_dft(x: np.ndarray) -> np.ndarray:
    """Direct O(N^2) DFT of a complex vector."""
    x = np.asarray(x, dtype=complex).ravel()
    n = x.size
    if n == 0:
        return x.copy()
    k = np.arange(n)
    twiddle = np.exp(-2j * np.pi * np.outer(k, k) / n)
    return twiddle @ x


def ref_fft_radix4(x: np.ndarray) -> np.ndarray:
    """Recursive radix-4 decimation-in-time FFT (N must be a power of 4)."""
    x = np.asarray(x, dtype=complex).ravel()
    n = x.size
    if n == 1:
        return x.copy()
    if n % 4 != 0:
        raise ValueError(f"radix-4 FFT requires a power-of-4 length, got {n}")
    # Split into four interleaved sub-sequences and transform each.
    sub = [ref_fft_radix4(x[i::4]) for i in range(4)]
    k = np.arange(n // 4)
    w1 = np.exp(-2j * np.pi * k / n)
    w2 = w1 * w1
    w3 = w2 * w1
    t0 = sub[0]
    t1 = w1 * sub[1]
    t2 = w2 * sub[2]
    t3 = w3 * sub[3]
    out = np.empty(n, dtype=complex)
    out[0 * (n // 4):1 * (n // 4)] = t0 + t1 + t2 + t3
    out[1 * (n // 4):2 * (n // 4)] = t0 - 1j * t1 - t2 + 1j * t3
    out[2 * (n // 4):3 * (n // 4)] = t0 - t1 + t2 - t3
    out[3 * (n // 4):4 * (n // 4)] = t0 + 1j * t1 - t2 - 1j * t3
    return out
