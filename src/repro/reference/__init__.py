"""Plain NumPy reference implementations used to verify the LAC kernels.

Every algorithm mapped onto the LAC simulator is checked against one of the
functions in this subpackage.  The references are deliberately written as
straightforward, readable NumPy code (they are the "ground truth", not the
artifact under study).
"""

from repro.reference.blas3 import (
    ref_gemm,
    ref_symm,
    ref_trmm,
    ref_syrk,
    ref_syr2k,
    ref_trsm,
)
from repro.reference.factorizations import (
    ref_cholesky,
    ref_lu_partial_pivoting,
    ref_householder_qr,
    ref_vector_norm,
    ref_householder_vector,
)
from repro.reference.fft_ref import ref_dft, ref_fft_radix4

__all__ = [
    "ref_gemm",
    "ref_symm",
    "ref_trmm",
    "ref_syrk",
    "ref_syr2k",
    "ref_trsm",
    "ref_cholesky",
    "ref_lu_partial_pivoting",
    "ref_householder_qr",
    "ref_vector_norm",
    "ref_householder_vector",
    "ref_dft",
    "ref_fft_radix4",
]
