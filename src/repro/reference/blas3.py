"""NumPy reference implementations of the level-3 BLAS operations.

These follow the operation definitions of Chapter 5:

* ``GEMM``  : C := C + A B
* ``SYMM``  : C := C + A B with symmetric A (only the lower triangle stored)
* ``TRMM``  : B := L B with lower triangular L
* ``SYRK``  : C := C + A A^T, updating only the lower triangle of C
* ``SYR2K`` : C := C + A B^T + B A^T, updating only the lower triangle
* ``TRSM``  : solve L X = B for X with lower triangular L
"""

from __future__ import annotations

import numpy as np


def _as_2d(x: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {arr.shape}")
    return arr


def ref_gemm(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """General matrix-matrix multiply: returns C + A @ B."""
    c = _as_2d(c, "C")
    a = _as_2d(a, "A")
    b = _as_2d(b, "B")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    if c.shape != (a.shape[0], b.shape[1]):
        raise ValueError(f"C has shape {c.shape}, expected {(a.shape[0], b.shape[1])}")
    return c + a @ b


def ref_symm(c: np.ndarray, a_lower: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Symmetric matrix multiply: C + sym(A) @ B with A stored lower triangular."""
    c = _as_2d(c, "C")
    a_lower = _as_2d(a_lower, "A")
    b = _as_2d(b, "B")
    if a_lower.shape[0] != a_lower.shape[1]:
        raise ValueError("A must be square for SYMM")
    a_full = np.tril(a_lower) + np.tril(a_lower, -1).T
    return c + a_full @ b


def ref_trmm(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triangular matrix multiply: returns L @ B with L lower triangular."""
    l = _as_2d(l, "L")
    b = _as_2d(b, "B")
    if l.shape[0] != l.shape[1]:
        raise ValueError("L must be square for TRMM")
    return np.tril(l) @ b


def ref_syrk(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Symmetric rank-k update: lower triangle of C + A @ A^T.

    The strictly-upper part of the returned matrix is left equal to the input
    C (the operation only defines the lower triangle).
    """
    c = _as_2d(c, "C")
    a = _as_2d(a, "A")
    if c.shape[0] != c.shape[1] or c.shape[0] != a.shape[0]:
        raise ValueError(f"shape mismatch for SYRK: C {c.shape}, A {a.shape}")
    full = c + a @ a.T
    out = c.copy()
    lower = np.tril_indices(c.shape[0])
    out[lower] = full[lower]
    return out


def ref_syr2k(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Symmetric rank-2k update: lower triangle of C + A B^T + B A^T."""
    c = _as_2d(c, "C")
    a = _as_2d(a, "A")
    b = _as_2d(b, "B")
    if a.shape != b.shape:
        raise ValueError("A and B must have identical shapes for SYR2K")
    if c.shape[0] != c.shape[1] or c.shape[0] != a.shape[0]:
        raise ValueError(f"shape mismatch for SYR2K: C {c.shape}, A {a.shape}")
    full = c + a @ b.T + b @ a.T
    out = c.copy()
    lower = np.tril_indices(c.shape[0])
    out[lower] = full[lower]
    return out


def ref_trsm(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triangular solve with multiple right-hand sides: X with L X = B."""
    l = _as_2d(l, "L")
    b = _as_2d(b, "B")
    if l.shape[0] != l.shape[1]:
        raise ValueError("L must be square for TRSM")
    if l.shape[0] != b.shape[0]:
        raise ValueError(f"dimension mismatch: L {l.shape}, B {b.shape}")
    if np.any(np.abs(np.diag(l)) < 1e-300):
        raise ValueError("L has a (near-)zero diagonal element; TRSM is singular")
    n, m = b.shape
    x = np.array(b, dtype=float, copy=True)
    lt = np.tril(l)
    for i in range(n):
        x[i, :] = (x[i, :] - lt[i, :i] @ x[:i, :]) / lt[i, i]
    return x
