"""NumPy reference implementations of the matrix factorizations.

These provide the ground truth against which the LAC factorization kernels
(Chapter 6 / Appendix A) are verified:

* Cholesky factorization of a symmetric positive definite matrix,
* LU factorization with partial pivoting,
* Householder QR factorization (and the overflow-safe vector norm and
  Householder-vector computation it relies on).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def ref_cholesky(a: np.ndarray) -> np.ndarray:
    """Lower-triangular Cholesky factor L of an SPD matrix A (A = L L^T)."""
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"A must be square, got shape {a.shape}")
    if not np.allclose(a, a.T, atol=1e-10):
        raise ValueError("A must be symmetric for Cholesky factorization")
    n = a.shape[0]
    l = np.zeros_like(a)
    for j in range(n):
        diag = a[j, j] - l[j, :j] @ l[j, :j]
        if diag <= 0.0:
            raise ValueError("matrix is not positive definite")
        l[j, j] = np.sqrt(diag)
        for i in range(j + 1, n):
            l[i, j] = (a[i, j] - l[i, :j] @ l[j, :j]) / l[j, j]
    return l


def ref_lu_partial_pivoting(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """LU factorization with partial pivoting: returns (P, L, U) with P A = L U.

    ``P`` is returned as a permutation matrix, ``L`` is unit lower triangular
    and ``U`` is upper triangular.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = a.shape
    u = a.copy()
    perm = np.arange(m)
    l = np.eye(m, dtype=float)
    for k in range(min(m, n)):
        pivot = int(np.argmax(np.abs(u[k:, k]))) + k
        if np.abs(u[pivot, k]) < 1e-300:
            raise ValueError("matrix is singular to working precision")
        if pivot != k:
            u[[k, pivot], :] = u[[pivot, k], :]
            l[[k, pivot], :k] = l[[pivot, k], :k]
            perm[[k, pivot]] = perm[[pivot, k]]
        for i in range(k + 1, m):
            l[i, k] = u[i, k] / u[k, k]
            u[i, k:] = u[i, k:] - l[i, k] * u[k, k:]
            u[i, k] = 0.0
    p = np.zeros((m, m), dtype=float)
    p[np.arange(m), perm] = 1.0
    return p, l, np.triu(u)


def ref_vector_norm(x: np.ndarray) -> float:
    """Overflow/underflow-safe 2-norm: scale by the largest magnitude first."""
    x = np.asarray(x, dtype=float).ravel()
    if x.size == 0:
        return 0.0
    t = np.max(np.abs(x))
    if t == 0.0:
        return 0.0
    y = x / t
    return float(t * np.sqrt(np.dot(y, y)))


def ref_householder_vector(x: np.ndarray) -> Tuple[float, np.ndarray, float]:
    """Compute the Householder reflector of a vector.

    Given ``x = [alpha1; x2]`` returns ``(rho1, u2, tau1)`` such that
    ``(I - [1; u2][1; u2]^T / tau1) x = [rho1; 0]`` -- the efficient
    formulation of Table 6.1 (right column).
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot compute a Householder vector of an empty vector")
    alpha1 = x[0]
    x2 = x[1:]
    chi2 = ref_vector_norm(x2)
    if chi2 == 0.0:
        # Already in reflected form; identity transformation.
        return float(alpha1), np.zeros_like(x2), float("inf")
    alpha = ref_vector_norm(np.array([alpha1, chi2]))
    rho1 = -np.sign(alpha1) * alpha if alpha1 != 0.0 else -alpha
    nu1 = alpha1 - rho1
    u2 = x2 / nu1
    chi2_scaled = chi2 / abs(nu1)
    tau1 = (1.0 + chi2_scaled ** 2) / 2.0
    return float(rho1), u2, float(tau1)


def ref_lu_nopivot(a: np.ndarray) -> np.ndarray:
    """LU factorization without pivoting, packed as {L\\U} in one matrix.

    Returns a matrix carrying the unit-lower-triangular multipliers below the
    diagonal and ``U`` on/above it (the in-place convention of the LAC tile
    kernel).  The caller must supply an operand for which no-pivot LU is
    stable (e.g. diagonally dominant); a (near-)zero pivot raises.
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"A must be square, got shape {a.shape}")
    n = a.shape[0]
    for k in range(n - 1):
        pivot = a[k, k]
        if abs(pivot) < 1e-300:
            raise ValueError("zero pivot: no-pivot LU requires a (e.g. "
                             "diagonally dominant) operand with nonzero pivots")
        a[k + 1:, k] /= pivot
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def ref_householder_qr_factored(a: np.ndarray) -> Tuple[np.ndarray, list]:
    """Householder QR in packed (LAPACK ``geqrf``) form.

    Returns ``(factored, taus)`` where ``factored`` carries ``R`` in its
    upper triangle and the essential parts of the Householder vectors below
    the diagonal -- the same convention and reflector formulas as the LAC
    kernel :func:`repro.kernels.qr.lac_householder_qr_panel`, so the two can
    be mixed within one tiled factorization.
    """
    r = np.array(a, dtype=float, copy=True)
    if r.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = r.shape
    if m < n:
        raise ValueError("Householder QR here requires m >= n")
    taus = []
    for k in range(n):
        rho, u2, tau = ref_householder_vector(r[k:, k])
        taus.append(tau)
        if not np.isfinite(tau):
            continue
        u = np.concatenate(([1.0], u2))
        trailing = r[k:, k + 1:]
        if trailing.size:
            w = (u @ trailing) / tau
            trailing -= np.outer(u, w)
        r[k, k] = rho
        r[k + 1:, k] = u2
    return r, taus


def ref_apply_reflectors(v: np.ndarray, taus, c: np.ndarray) -> np.ndarray:
    """Apply ``Q^T = H_{p-1} ... H_0`` of packed reflectors ``v`` to ``c``.

    Mirrors :func:`repro.kernels.qr.lac_apply_reflectors`: reflector ``j``
    has a unit head at row ``j`` and its essential part below the diagonal
    of column ``j`` of ``v``; non-finite ``tau`` marks an identity reflector.
    """
    v = np.asarray(v, dtype=float)
    c = np.array(c, dtype=float, copy=True)
    if v.ndim != 2 or c.ndim != 2 or c.shape[0] != v.shape[0]:
        raise ValueError("reflectors and C must be 2-D with matching rows")
    if len(taus) != v.shape[1]:
        raise ValueError(f"expected {v.shape[1]} tau scalars, got {len(taus)}")
    for j in range(v.shape[1]):
        tau = taus[j]
        if not np.isfinite(tau):
            continue
        u = np.concatenate(([1.0], v[j + 1:, j]))
        w = (u @ c[j:, :]) / tau
        c[j:, :] -= np.outer(u, w)
    return c


def ref_householder_qr(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Householder QR factorization: returns (Q, R) with A = Q R.

    ``Q`` is returned explicitly (m x n with orthonormal columns) and ``R`` is
    upper triangular (n x n); ``m >= n`` is required.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = a.shape
    if m < n:
        raise ValueError("Householder QR here requires m >= n")
    r = a.copy()
    q = np.eye(m, dtype=float)
    for k in range(n):
        rho, u2, tau = ref_householder_vector(r[k:, k])
        if not np.isfinite(tau):
            continue
        u = np.concatenate(([1.0], u2))
        # Apply H = I - u u^T / tau to the trailing panel of R and to Q.
        w = (u @ r[k:, k:]) / tau
        r[k:, k:] -= np.outer(u, w)
        wq = (q[:, k:] @ u) / tau
        q[:, k:] -= np.outer(wq, u)
        r[k + 1:, k] = 0.0
        r[k, k] = rho
    return q[:, :n], np.triu(r[:n, :])
