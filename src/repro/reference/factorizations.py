"""NumPy reference implementations of the matrix factorizations.

These provide the ground truth against which the LAC factorization kernels
(Chapter 6 / Appendix A) are verified:

* Cholesky factorization of a symmetric positive definite matrix,
* LU factorization with partial pivoting,
* Householder QR factorization (and the overflow-safe vector norm and
  Householder-vector computation it relies on).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def ref_cholesky(a: np.ndarray) -> np.ndarray:
    """Lower-triangular Cholesky factor L of an SPD matrix A (A = L L^T)."""
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"A must be square, got shape {a.shape}")
    if not np.allclose(a, a.T, atol=1e-10):
        raise ValueError("A must be symmetric for Cholesky factorization")
    n = a.shape[0]
    l = np.zeros_like(a)
    for j in range(n):
        diag = a[j, j] - l[j, :j] @ l[j, :j]
        if diag <= 0.0:
            raise ValueError("matrix is not positive definite")
        l[j, j] = np.sqrt(diag)
        for i in range(j + 1, n):
            l[i, j] = (a[i, j] - l[i, :j] @ l[j, :j]) / l[j, j]
    return l


def ref_lu_partial_pivoting(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """LU factorization with partial pivoting: returns (P, L, U) with P A = L U.

    ``P`` is returned as a permutation matrix, ``L`` is unit lower triangular
    and ``U`` is upper triangular.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = a.shape
    u = a.copy()
    perm = np.arange(m)
    l = np.eye(m, dtype=float)
    for k in range(min(m, n)):
        pivot = int(np.argmax(np.abs(u[k:, k]))) + k
        if np.abs(u[pivot, k]) < 1e-300:
            raise ValueError("matrix is singular to working precision")
        if pivot != k:
            u[[k, pivot], :] = u[[pivot, k], :]
            l[[k, pivot], :k] = l[[pivot, k], :k]
            perm[[k, pivot]] = perm[[pivot, k]]
        for i in range(k + 1, m):
            l[i, k] = u[i, k] / u[k, k]
            u[i, k:] = u[i, k:] - l[i, k] * u[k, k:]
            u[i, k] = 0.0
    p = np.zeros((m, m), dtype=float)
    p[np.arange(m), perm] = 1.0
    return p, l, np.triu(u)


def ref_vector_norm(x: np.ndarray) -> float:
    """Overflow/underflow-safe 2-norm: scale by the largest magnitude first."""
    x = np.asarray(x, dtype=float).ravel()
    if x.size == 0:
        return 0.0
    t = np.max(np.abs(x))
    if t == 0.0:
        return 0.0
    y = x / t
    return float(t * np.sqrt(np.dot(y, y)))


def ref_householder_vector(x: np.ndarray) -> Tuple[float, np.ndarray, float]:
    """Compute the Householder reflector of a vector.

    Given ``x = [alpha1; x2]`` returns ``(rho1, u2, tau1)`` such that
    ``(I - [1; u2][1; u2]^T / tau1) x = [rho1; 0]`` -- the efficient
    formulation of Table 6.1 (right column).
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot compute a Householder vector of an empty vector")
    alpha1 = x[0]
    x2 = x[1:]
    chi2 = ref_vector_norm(x2)
    if chi2 == 0.0:
        # Already in reflected form; identity transformation.
        return float(alpha1), np.zeros_like(x2), float("inf")
    alpha = ref_vector_norm(np.array([alpha1, chi2]))
    rho1 = -np.sign(alpha1) * alpha if alpha1 != 0.0 else -alpha
    nu1 = alpha1 - rho1
    u2 = x2 / nu1
    chi2_scaled = chi2 / abs(nu1)
    tau1 = (1.0 + chi2_scaled ** 2) / 2.0
    return float(rho1), u2, float(tau1)


def ref_householder_qr(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Householder QR factorization: returns (Q, R) with A = Q R.

    ``Q`` is returned explicitly (m x n with orthonormal columns) and ``R`` is
    upper triangular (n x n); ``m >= n`` is required.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError("A must be 2-D")
    m, n = a.shape
    if m < n:
        raise ValueError("Householder QR here requires m >= n")
    r = a.copy()
    q = np.eye(m, dtype=float)
    for k in range(n):
        rho, u2, tau = ref_householder_vector(r[k:, k])
        if not np.isfinite(tau):
            continue
        u = np.concatenate(([1.0], u2))
        # Apply H = I - u u^T / tau to the trailing panel of R and to Q.
        w = (u @ r[k:, k:]) / tau
        r[k:, k:] -= np.outer(u, w)
        wq = (q[:, k:] @ u) / tau
        q[:, k:] -= np.outer(wq, u)
        r[k + 1:, k] = 0.0
        r[k, k] = rho
    return q[:, :n], np.triu(r[:n, :])
