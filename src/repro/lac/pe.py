"""Processing element (PE) model for the LAC simulator.

Each PE of the ``nr x nr`` mesh contains (Figure 3.1, right-hand side):

* a pipelined fused multiply-accumulate (MAC) unit whose accumulator register
  holds the element of ``C`` assigned to that PE,
* ``MEM A`` -- a larger, single-ported SRAM holding the PE's share of the
  resident ``mc x kc`` block of ``A``,
* ``MEM B`` -- a small, dual-ported SRAM holding the locally replicated
  ``kc x nr`` panel of ``B``,
* a small register file (a handful of entries) for temporaries,
* read/write latches onto the row and column broadcast buses.

The simulator keeps the contents of the stores as Python lists of floats
(addressed sequentially, exactly as the auto-incrementing address generators
of the real design would) and counts every access through the shared
:class:`repro.lac.stats.AccessCounters` instance of the owning core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lac.stats import AccessCounters


@dataclass
class PEConfig:
    """Static configuration of one processing element.

    Parameters
    ----------
    store_a_words:
        Capacity of the single-ported ``MEM A`` store in 8-byte words.
    store_b_words:
        Capacity of the dual-ported ``MEM B`` store in words.
    register_file_words:
        Register file entries (the LAC design uses 4).
    accumulators:
        Number of accumulator registers inside the MAC unit (1 suffices for
        GEMM; extra accumulators allow holding several C elements during
        blocked factorizations).
    mac_pipeline_stages:
        Pipeline depth of the MAC unit.
    """

    store_a_words: int = 2048
    store_b_words: int = 256
    register_file_words: int = 4
    accumulators: int = 4
    mac_pipeline_stages: int = 5

    def __post_init__(self) -> None:
        if self.store_a_words < 1 or self.store_b_words < 1:
            raise ValueError("local stores must have positive capacity")
        if self.register_file_words < 1:
            raise ValueError("register file must have at least one entry")
        if self.accumulators < 1:
            raise ValueError("at least one accumulator is required")
        if self.mac_pipeline_stages < 1:
            raise ValueError("MAC pipeline depth must be >= 1")


class ProcessingElement:
    """One PE of the LAC mesh.

    The PE exposes small, architecturally meaningful operations (read/write a
    store word, perform a MAC into an accumulator, drive or latch a bus
    value); the core's controller sequences them.  All accesses are counted
    in the ``counters`` object shared with the owning core.
    """

    def __init__(self, row: int, col: int, config: PEConfig,
                 counters: Optional[AccessCounters] = None):
        if row < 0 or col < 0:
            raise ValueError("PE coordinates must be non-negative")
        self.row = row
        self.col = col
        self.config = config
        self.counters = counters if counters is not None else AccessCounters()

        self.store_a: List[float] = [0.0] * config.store_a_words
        self.store_b: List[float] = [0.0] * config.store_b_words
        self.registers: List[float] = [0.0] * config.register_file_words
        self.accumulator: List[float] = [0.0] * config.accumulators

        #: Latches connecting the PE to its row / column broadcast buses.
        self.row_bus_in: float = 0.0
        self.column_bus_in: float = 0.0

    # --------------------------------------------------------------- stores
    def write_store_a(self, address: int, value: float) -> None:
        """Write one word of the A store."""
        self._check_address(address, self.config.store_a_words, "store A")
        self.store_a[address] = float(value)
        self.counters.store_a_writes += 1

    def read_store_a(self, address: int) -> float:
        """Read one word of the A store."""
        self._check_address(address, self.config.store_a_words, "store A")
        self.counters.store_a_reads += 1
        return self.store_a[address]

    def write_store_b(self, address: int, value: float) -> None:
        """Write one word of the B store."""
        self._check_address(address, self.config.store_b_words, "store B")
        self.store_b[address] = float(value)
        self.counters.store_b_writes += 1

    def read_store_b(self, address: int) -> float:
        """Read one word of the B store."""
        self._check_address(address, self.config.store_b_words, "store B")
        self.counters.store_b_reads += 1
        return self.store_b[address]

    # ------------------------------------------------------------- registers
    def write_register(self, index: int, value: float) -> None:
        """Write a register file entry."""
        self._check_address(index, self.config.register_file_words, "register file")
        self.registers[index] = float(value)
        self.counters.register_writes += 1

    def read_register(self, index: int) -> float:
        """Read a register file entry."""
        self._check_address(index, self.config.register_file_words, "register file")
        self.counters.register_reads += 1
        return self.registers[index]

    # ----------------------------------------------------------- accumulator
    def set_accumulator(self, value: float, index: int = 0) -> None:
        """Preload an accumulator with an initial value of C."""
        self._check_address(index, self.config.accumulators, "accumulator")
        self.accumulator[index] = float(value)
        self.counters.accumulator_writes += 1

    def get_accumulator(self, index: int = 0) -> float:
        """Read an accumulator (stream-out of a finished C element)."""
        self._check_address(index, self.config.accumulators, "accumulator")
        self.counters.accumulator_reads += 1
        return self.accumulator[index]

    def mac(self, a: float, b: float, index: int = 0) -> float:
        """Fused multiply-accumulate into an accumulator: acc += a * b."""
        self._check_address(index, self.config.accumulators, "accumulator")
        self.accumulator[index] += float(a) * float(b)
        self.counters.mac_ops += 1
        return self.accumulator[index]

    def multiply(self, a: float, b: float) -> float:
        """A plain multiply issued on the MAC datapath (counts as one MAC)."""
        self.counters.mac_ops += 1
        return float(a) * float(b)

    def multiply_add(self, a: float, b: float, c: float) -> float:
        """A fused multiply-add not targeting the accumulator: a*b + c."""
        self.counters.mac_ops += 1
        return float(a) * float(b) + float(c)

    # ----------------------------------------------------------------- buses
    def latch_row_bus(self, value: float) -> None:
        """Capture a value broadcast on the PE's row bus."""
        self.row_bus_in = float(value)

    def latch_column_bus(self, value: float) -> None:
        """Capture a value broadcast on the PE's column bus."""
        self.column_bus_in = float(value)

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _check_address(address: int, limit: int, what: str) -> None:
        if not (0 <= address < limit):
            raise IndexError(f"{what} address {address} out of range [0, {limit})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PE({self.row},{self.col})"
