"""Distributed micro-programmed control of the LAC.

Control in the LAC is distributed: every PE runs an identical, predetermined
state machine, all PEs operate in lock step, and inter-PE coordination is
implicit (each PE knows when and where to communicate from the state and its
mesh coordinates).  The basic GEMM state machine needs eight states, two
address registers and one loop counter; each additional blocking level adds a
loop and a counter, and with three levels the machine uses four counters and
ten states.  A few external control bits select which linear algebra
operation the core performs.

The simulator does not need literal per-cycle state machines to obtain
correct cycle counts (the kernel mappings charge cycles directly), but this
module models the controller explicitly so that:

* the control-state/counter budget claimed in the dissertation can be
  checked (tests assert the 8-state / 10-state, 1-counter / 4-counter
  figures), and
* kernels can be expressed as micro-programs and replayed step by step,
  which documents the lock-step schedule of each operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class ControlState(enum.Enum):
    """States of the PE control state machine for the GEMM family."""

    IDLE = "idle"
    LOAD_A = "load_a"              #: receive the resident block of A
    LOAD_B = "load_b"              #: receive / replicate the panel of B
    PRELOAD_C = "preload_c"        #: preload accumulators with C
    RANK1_LOOP = "rank1_loop"      #: the single-cycle steady-state inner loop
    PREFETCH_NEXT = "prefetch"     #: overlap prefetching of the next operands
    STORE_C = "store_c"            #: stream the finished C block out
    STALL = "stall"                #: wait for the memory interface

    # Extra states used when three blocking levels are folded into the PE
    # controller (chip-level GEMM) -- still ten states in total.
    ADVANCE_PANEL = "advance_panel"
    ADVANCE_BLOCK = "advance_block"


#: Number of states of the basic (single-level) GEMM controller.
BASIC_GEMM_STATES = 8
#: Number of loop counters of the basic GEMM controller.
BASIC_GEMM_COUNTERS = 1
#: Number of address registers of the basic GEMM controller.
BASIC_GEMM_ADDRESS_REGISTERS = 2
#: States / counters with three levels of blocking folded in.
BLOCKED_GEMM_STATES = 10
BLOCKED_GEMM_COUNTERS = 4


class OperationSelect(enum.Enum):
    """External micro-code select bits: which operation the core performs."""

    GEMM = "gemm"
    SYMM = "symm"
    TRMM = "trmm"
    SYRK = "syrk"
    SYR2K = "syr2k"
    TRSM = "trsm"
    CHOLESKY = "cholesky"
    LU = "lu"
    QR = "qr"
    VECTOR_NORM = "vnorm"
    FFT = "fft"


@dataclass(frozen=True)
class MicroStep:
    """One lock-step action of the distributed controller.

    ``kind`` names the architectural action ("rank1", "broadcast_row",
    "special", "drain", ...), ``cycles`` the cycles it charges, and
    ``detail`` an optional free-form annotation used by traces and tests.
    """

    kind: str
    cycles: int = 1
    detail: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("a micro step cannot take negative cycles")


@dataclass
class MicroProgram:
    """A sequence of :class:`MicroStep` describing one kernel's schedule."""

    operation: OperationSelect
    steps: List[MicroStep] = field(default_factory=list)

    def add(self, kind: str, cycles: int = 1, detail: str = "") -> None:
        """Append one step to the program."""
        self.steps.append(MicroStep(kind=kind, cycles=cycles, detail=detail))

    @property
    def total_cycles(self) -> int:
        """Total cycle count of the program."""
        return sum(step.cycles for step in self.steps)

    def count(self, kind: str) -> int:
        """Number of steps of a given kind."""
        return sum(1 for step in self.steps if step.kind == kind)

    def __iter__(self) -> Iterator[MicroStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


class PEController:
    """The per-PE state machine (identical in every PE, lock-step execution).

    The controller is parameterised by the number of blocking levels folded
    into it; the state and counter budgets match the figures claimed in
    Section 3.2.3 and are exposed for the tests.
    """

    def __init__(self, blocking_levels: int = 1):
        if blocking_levels < 1 or blocking_levels > 3:
            raise ValueError("the PE controller supports 1 to 3 blocking levels")
        self.blocking_levels = blocking_levels
        self.state = ControlState.IDLE
        self.loop_counters: List[int] = [0] * self.num_counters
        self.address_registers: List[int] = [0] * BASIC_GEMM_ADDRESS_REGISTERS
        self.operation = OperationSelect.GEMM

    # ---------------------------------------------------------------- budget
    @property
    def num_states(self) -> int:
        """Number of controller states needed for the configured blocking."""
        if self.blocking_levels == 1:
            return BASIC_GEMM_STATES
        return BLOCKED_GEMM_STATES

    @property
    def num_counters(self) -> int:
        """Number of loop counters needed for the configured blocking."""
        if self.blocking_levels == 1:
            return BASIC_GEMM_COUNTERS
        # one extra counter per extra blocking level, plus the steady-state one
        return min(BLOCKED_GEMM_COUNTERS, BASIC_GEMM_COUNTERS + self.blocking_levels)

    # ------------------------------------------------------------ sequencing
    def select_operation(self, operation: OperationSelect) -> None:
        """Micro-program the controller for a different operation."""
        self.operation = operation
        self.state = ControlState.IDLE
        self.loop_counters = [0] * self.num_counters

    def gemm_schedule(self, kc: int, n_panels: int = 1, prefetch: bool = True) -> MicroProgram:
        """Produce the lock-step schedule of the core GEMM inner kernel.

        The steady state is a single-cycle loop over ``kc`` rank-1 updates per
        ``nr x nr`` block of C; with prefetching enabled the next panel's
        loads ride the otherwise-idle column buses and add no cycles.
        """
        if kc < 1 or n_panels < 1:
            raise ValueError("loop bounds must be positive")
        program = MicroProgram(OperationSelect.GEMM)
        program.add("preload_c", cycles=0, detail="overlapped with previous block")
        for panel in range(n_panels):
            for p in range(kc):
                program.add("rank1", cycles=1, detail=f"panel {panel} p={p}")
            if not prefetch:
                program.add("stall", cycles=0, detail="wait for next panel")
        program.add("store_c", cycles=0, detail="overlapped with next block")
        return program

    def transition(self, new_state: ControlState) -> ControlState:
        """Explicit state transition (used by the step-by-step replayer)."""
        if not isinstance(new_state, ControlState):
            raise TypeError("new_state must be a ControlState")
        self.state = new_state
        return self.state
