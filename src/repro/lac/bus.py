"""Row and column broadcast buses of the LAC simulator.

Communication inside the core happens exclusively over ``nr`` row buses and
``nr`` column buses.  During a rank-1 update the PEs of the root column drive
the row buses with elements of ``A`` and the PEs of the root row drive the
column buses with elements of ``B``; every PE (including the senders) latches
the value broadcast on its row and its column in the same cycle.  The column
buses are also multiplexed to move data between the core and the on-chip
memory during preloading and write-back.

The simulator models a bus as a single shared value per row/column per
logical step plus an access counter; contention (two drivers in the same
step) raises an error, which catches mis-scheduled kernels in the tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lac.stats import AccessCounters


class RowColumnBuses:
    """The ``2 * nr`` broadcast buses of one LAC."""

    def __init__(self, nr: int, counters: Optional[AccessCounters] = None):
        if nr < 1:
            raise ValueError("core dimension must be >= 1")
        self.nr = nr
        self.counters = counters if counters is not None else AccessCounters()
        self._row_values: List[Optional[float]] = [None] * nr
        self._col_values: List[Optional[float]] = [None] * nr

    # ------------------------------------------------------------ row buses
    def drive_row(self, row: int, value: float) -> None:
        """Drive the row bus ``row`` with a value (one broadcast)."""
        self._check_index(row)
        if self._row_values[row] is not None:
            raise RuntimeError(f"row bus {row} already driven this step")
        self._row_values[row] = float(value)
        self.counters.row_broadcasts += 1

    def read_row(self, row: int) -> float:
        """Read the value currently on row bus ``row``."""
        self._check_index(row)
        value = self._row_values[row]
        if value is None:
            raise RuntimeError(f"row bus {row} read while idle")
        return value

    # --------------------------------------------------------- column buses
    def drive_column(self, col: int, value: float) -> None:
        """Drive the column bus ``col`` with a value (one broadcast)."""
        self._check_index(col)
        if self._col_values[col] is not None:
            raise RuntimeError(f"column bus {col} already driven this step")
        self._col_values[col] = float(value)
        self.counters.column_broadcasts += 1

    def read_column(self, col: int) -> float:
        """Read the value currently on column bus ``col``."""
        self._check_index(col)
        value = self._col_values[col]
        if value is None:
            raise RuntimeError(f"column bus {col} read while idle")
        return value

    # ----------------------------------------------------------- step logic
    def clear(self) -> None:
        """Release all buses at the end of a logical step."""
        self._row_values = [None] * self.nr
        self._col_values = [None] * self.nr

    def broadcast_row_vector(self, values: Sequence[float]) -> None:
        """Drive all row buses at once (one value per row)."""
        if len(values) != self.nr:
            raise ValueError(f"expected {self.nr} values, got {len(values)}")
        for r, v in enumerate(values):
            self.drive_row(r, v)

    def broadcast_column_vector(self, values: Sequence[float]) -> None:
        """Drive all column buses at once (one value per column)."""
        if len(values) != self.nr:
            raise ValueError(f"expected {self.nr} values, got {len(values)}")
        for c, v in enumerate(values):
            self.drive_column(c, v)

    def row_is_driven(self, row: int) -> bool:
        """Whether row bus ``row`` currently carries a value."""
        self._check_index(row)
        return self._row_values[row] is not None

    def column_is_driven(self, col: int) -> bool:
        """Whether column bus ``col`` currently carries a value."""
        self._check_index(col)
        return self._col_values[col] is not None

    # --------------------------------------------------------------- helpers
    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.nr):
            raise IndexError(f"bus index {index} out of range [0, {self.nr})")
