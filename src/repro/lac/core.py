"""The Linear Algebra Core (LAC): an ``nr x nr`` mesh of PEs with buses.

This is the central object of the functional/cycle-level simulator.  It owns
the PEs, the broadcast buses, the shared access counters and a special
function unit, and provides the primitive operations that the kernel mappings
in :mod:`repro.kernels` compose:

* 2D cyclic round-robin distribution of matrix blocks into the PE local
  stores (``alpha[i, p]`` lives in PE ``(i mod nr, p mod nr)``; the panel of
  ``B`` is replicated down the PE columns),
* preloading of ``C`` into the MAC accumulators and streaming it back out,
* the single-cycle rank-1 update step (column of ``A`` on the row buses, row
  of ``B`` on the column buses, one MAC per PE),
* diagonal-PE transposition (used by SYRK),
* row/column broadcasts and reductions for the factorization kernels,
* special function operations (reciprocal, square root, inverse square root)
  charged with the configured SFU latency.

Cycle accounting follows the dissertation's design: rank-1 updates sustain a
throughput of one per cycle; dependent scalar steps pay the MAC pipeline
latency; special functions pay the SFU latency; transfers over the column
buses to/from on-chip memory move ``nr`` words per cycle and can overlap with
computation when the kernel says so.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.sfu import SFUPlacement, SpecialFunctionUnit, SpecialOp
from repro.hw.fpu import Precision
from repro.lac.bus import RowColumnBuses
from repro.lac.pe import PEConfig, ProcessingElement
from repro.lac.stats import AccessCounters


@dataclass
class LACConfig:
    """Static configuration of one LAC.

    Parameters
    ----------
    nr:
        Core dimension (default 4, giving 16 PEs).
    pe:
        Per-PE configuration (store sizes, pipeline depth, ...).
    sfu_placement:
        Which divide/square-root option the core uses.
    precision:
        Operating precision (affects only the SFU latency model here; the
        functional simulation always computes in Python floats).
    frequency_ghz:
        Clock frequency, used when converting cycle counts to time/energy.
    """

    nr: int = 4
    pe: PEConfig = field(default_factory=PEConfig)
    sfu_placement: SFUPlacement = SFUPlacement.ISOLATED
    precision: Precision = Precision.DOUBLE
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.nr < 2:
            raise ValueError("core dimension nr must be >= 2")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")


class LinearAlgebraCore:
    """Functional/cycle-level model of one LAC."""

    def __init__(self, config: Optional[LACConfig] = None):
        self.config = config if config is not None else LACConfig()
        nr = self.config.nr
        self.nr = nr
        self.counters = AccessCounters()
        self.buses = RowColumnBuses(nr, self.counters)
        self.pes: List[List[ProcessingElement]] = [
            [ProcessingElement(r, c, self.config.pe, self.counters) for c in range(nr)]
            for r in range(nr)
        ]
        self.sfu = SpecialFunctionUnit(
            placement=self.config.sfu_placement,
            precision=self.config.precision,
            frequency_ghz=self.config.frequency_ghz,
            nr=nr,
            mac_pipeline_stages=self.config.pe.mac_pipeline_stages,
        )

    # ------------------------------------------------------------ properties
    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.nr * self.nr

    @property
    def mac_latency(self) -> int:
        """MAC pipeline depth in cycles."""
        return self.config.pe.mac_pipeline_stages

    def pe(self, row: int, col: int) -> ProcessingElement:
        """Access one PE by mesh coordinates."""
        return self.pes[row][col]

    def reset_counters(self) -> None:
        """Zero the shared access counters (keeps memory contents)."""
        self.counters.reset()

    def tick(self, cycles: int = 1) -> None:
        """Advance the cycle counter by ``cycles``."""
        if cycles < 0:
            raise ValueError("cannot advance time backwards")
        self.counters.cycles += int(cycles)

    # ----------------------------------------------------- data distribution
    def distribute_a(self, a: np.ndarray, base_address: int = 0) -> int:
        """Distribute an ``m x k`` block of A into the PE ``MEM A`` stores.

        Element ``a[i, p]`` is written to PE ``(i mod nr, p mod nr)`` at a
        sequential local address; the function returns the number of words
        written per PE (the stride a kernel needs to address the block).
        Transfers enter over the column buses at ``nr`` words per cycle.
        """
        a = np.asarray(a, dtype=float)
        if a.ndim != 2:
            raise ValueError("A block must be a 2-D array")
        m, k = a.shape
        nr = self.nr
        words_per_pe = int(math.ceil(m / nr) * math.ceil(k / nr))
        next_addr = [[base_address for _ in range(nr)] for _ in range(nr)]
        for i in range(m):
            for p in range(k):
                pe = self.pes[i % nr][p % nr]
                addr = next_addr[i % nr][p % nr]
                pe.write_store_a(addr, a[i, p])
                next_addr[i % nr][p % nr] = addr + 1
        self.counters.external_loads += m * k
        self.tick(int(math.ceil(m * k / nr)))
        return words_per_pe

    def distribute_b_replicated(self, b: np.ndarray, base_address: int = 0) -> int:
        """Replicate a ``k x nr`` panel of B down every PE column.

        Element ``b[p, j]`` is stored in *every* PE of column ``j`` at local
        address ``base_address + p`` of ``MEM B``.  Returns the number of
        words written per PE.
        """
        b = np.asarray(b, dtype=float)
        if b.ndim != 2 or b.shape[1] != self.nr:
            raise ValueError(f"B panel must be k x nr (nr={self.nr}), got {b.shape}")
        k = b.shape[0]
        for p in range(k):
            for j in range(self.nr):
                for i in range(self.nr):
                    self.pes[i][j].write_store_b(base_address + p, b[p, j])
        self.counters.external_loads += k * self.nr
        self.tick(int(math.ceil(k * self.nr / self.nr)))
        return k

    def load_c_accumulators(self, c: np.ndarray, accumulator: int = 0) -> None:
        """Preload an ``nr x nr`` block of C into the MAC accumulators."""
        c = np.asarray(c, dtype=float)
        if c.shape != (self.nr, self.nr):
            raise ValueError(f"C block must be {self.nr} x {self.nr}, got {c.shape}")
        for i in range(self.nr):
            for j in range(self.nr):
                self.pes[i][j].set_accumulator(c[i, j], accumulator)
        self.counters.external_loads += self.nr * self.nr
        self.tick(self.nr)  # nr columns buses move nr words/cycle

    def store_c_accumulators(self, accumulator: int = 0) -> np.ndarray:
        """Stream the ``nr x nr`` block of C out of the accumulators."""
        out = np.empty((self.nr, self.nr), dtype=float)
        for i in range(self.nr):
            for j in range(self.nr):
                out[i, j] = self.pes[i][j].get_accumulator(accumulator)
        self.counters.external_stores += self.nr * self.nr
        self.tick(self.nr)
        return out

    # -------------------------------------------------------- rank-1 engine
    def rank1_update_step(self, a_column: Sequence[float], b_row: Sequence[float],
                          accumulator: int = 0, count_store_reads: bool = True) -> None:
        """One rank-1 update: C += a_column * b_row, one MAC per PE, one cycle.

        ``a_column`` (length nr) is driven onto the row buses by the root
        column; ``b_row`` (length nr) is driven onto the column buses by the
        root row (or read from the replicated local copies of B -- in that
        case the column broadcast is skipped by the caller via
        ``count_store_reads``).
        """
        if len(a_column) != self.nr or len(b_row) != self.nr:
            raise ValueError("rank-1 operands must have length nr")
        self.buses.broadcast_row_vector(list(a_column))
        self.buses.broadcast_column_vector(list(b_row))
        for i in range(self.nr):
            alpha = self.buses.read_row(i)
            for j in range(self.nr):
                beta = self.buses.read_column(j)
                pe = self.pes[i][j]
                pe.latch_row_bus(alpha)
                pe.latch_column_bus(beta)
                pe.mac(alpha, beta, accumulator)
                if count_store_reads:
                    # The root PEs read A/B out of their local stores to drive
                    # the buses; non-root PEs read B from their replicated copy.
                    self.counters.store_b_reads += 0  # replicated-B reads counted by kernels
        self.buses.clear()
        self.tick(1)

    def drain_pipeline(self) -> None:
        """Charge the MAC pipeline drain latency after a dependent sequence."""
        self.tick(self.mac_latency)

    # -------------------------------------------------- broadcasts/reductions
    def broadcast_row(self, row: int, value: float) -> float:
        """Broadcast a scalar along one PE row (single cycle)."""
        self.buses.drive_row(row, value)
        out = self.buses.read_row(row)
        self.buses.clear()
        self.tick(1)
        return out

    def broadcast_column(self, col: int, value: float) -> float:
        """Broadcast a scalar along one PE column (single cycle)."""
        self.buses.drive_column(col, value)
        out = self.buses.read_column(col)
        self.buses.clear()
        self.tick(1)
        return out

    def transpose_via_diagonal(self, column_values: Sequence[float]) -> List[float]:
        """Transpose a column vector into a row vector via the diagonal PEs.

        The diagonal PEs receive the column of values from the row buses and
        re-broadcast them over the column buses, producing the transposed
        vector available to every PE in one extra cycle (used by SYRK).
        """
        if len(column_values) != self.nr:
            raise ValueError("transpose operand must have length nr")
        self.buses.broadcast_row_vector(list(column_values))
        latched = [self.buses.read_row(i) for i in range(self.nr)]
        self.buses.clear()
        self.tick(1)
        self.buses.broadcast_column_vector(latched)
        out = [self.buses.read_column(j) for j in range(self.nr)]
        self.buses.clear()
        self.tick(1)
        return out

    def reduce_column(self, partials: Sequence[float]) -> float:
        """Sum ``nr`` partial values held by the PEs of one column.

        Implemented as ``nr`` broadcast-accumulate steps over the column bus
        (the LAC has no adder tree); charges ``nr`` cycles plus a pipeline
        drain.
        """
        if len(partials) != self.nr:
            raise ValueError("reduction operand must have length nr")
        total = 0.0
        for value in partials:
            total += float(value)
            self.counters.column_broadcasts += 1
            self.counters.mac_ops += 1
            self.tick(1)
        self.drain_pipeline()
        return total

    # ----------------------------------------------------- special functions
    def special(self, op: SpecialOp, value: float) -> float:
        """Execute a special function (reciprocal, sqrt, inv-sqrt, divide-seed).

        The numerical result is exact; the cycle cost is the latency of the
        configured SFU placement.  Software placement additionally consumes
        MAC issue slots, which the counter records.
        """
        latency = self.sfu.latency_cycles(op)
        self.counters.sfu_ops += 1
        if self.sfu.occupies_pe_mac():
            self.counters.mac_ops += self.sfu.divider.mac_operations(op)
        self.tick(latency)
        if op is SpecialOp.RECIPROCAL:
            if value == 0.0:
                raise ZeroDivisionError("reciprocal of zero on the LAC SFU")
            return 1.0 / value
        if op is SpecialOp.SQRT:
            if value < 0.0:
                raise ValueError("square root of a negative value on the LAC SFU")
            return math.sqrt(value)
        if op is SpecialOp.INV_SQRT:
            if value <= 0.0:
                raise ValueError("inverse square root requires a positive value")
            return 1.0 / math.sqrt(value)
        if op is SpecialOp.DIVIDE:
            if value == 0.0:
                raise ZeroDivisionError("division by zero on the LAC SFU")
            return 1.0 / value
        raise ValueError(f"unknown special operation {op}")

    # ------------------------------------------------------------- reporting
    def utilization(self) -> float:
        """MAC issue rate relative to peak since the last counter reset."""
        return self.counters.utilization(self.num_pes)

    def elapsed_seconds(self) -> float:
        """Wall-clock time represented by the recorded cycles."""
        return self.counters.cycles / (self.config.frequency_ghz * 1e9)

    def achieved_gflops(self) -> float:
        """Achieved GFLOPS since the last counter reset."""
        seconds = self.elapsed_seconds()
        return self.counters.flops / seconds / 1e9 if seconds > 0 else 0.0
