"""Access and cycle counters collected by the LAC simulator.

The dissertation's power methodology derives memory and bus activity factors
from the access patterns of the algorithm under study (Section 1.3.3); the
simulator therefore counts every architecturally visible event:

* MAC issues (useful multiply-accumulate operations),
* accumulator reads/writes,
* local store A / B reads and writes,
* register file reads/writes,
* row and column bus broadcasts,
* special function unit operations,
* transfers between the core and the on-chip memory,
* total cycles.

The counters feed :class:`repro.models.power.PowerModel` through the
``activity_factors`` helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class AccessCounters:
    """Event counters for one simulation run (or one PE, when used per-PE)."""

    cycles: int = 0
    mac_ops: int = 0
    accumulator_reads: int = 0
    accumulator_writes: int = 0
    store_a_reads: int = 0
    store_a_writes: int = 0
    store_b_reads: int = 0
    store_b_writes: int = 0
    register_reads: int = 0
    register_writes: int = 0
    row_broadcasts: int = 0
    column_broadcasts: int = 0
    sfu_ops: int = 0
    external_loads: int = 0
    external_stores: int = 0

    # ------------------------------------------------------------ arithmetic
    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Accumulate another counter set into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "AccessCounters":
        """Return an independent copy of the counters."""
        out = AccessCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name))
        return out

    def reset(self) -> None:
        """Zero all counters."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # ------------------------------------------------------------ derived
    @property
    def flops(self) -> int:
        """Useful floating point operations (one MAC = 2 flops)."""
        return 2 * self.mac_ops

    @property
    def local_store_accesses(self) -> int:
        """Total local store traffic (reads + writes, both stores)."""
        return (self.store_a_reads + self.store_a_writes
                + self.store_b_reads + self.store_b_writes)

    @property
    def bus_broadcasts(self) -> int:
        """Total broadcast count over row and column buses."""
        return self.row_broadcasts + self.column_broadcasts

    @property
    def external_words(self) -> int:
        """Total words moved between the core and the on-chip memory."""
        return self.external_loads + self.external_stores

    def utilization(self, num_pes: int) -> float:
        """MAC issue rate relative to peak (``num_pes`` MACs per cycle)."""
        if self.cycles <= 0 or num_pes <= 0:
            return 0.0
        return min(1.0, self.mac_ops / float(self.cycles * num_pes))

    def activity_factors(self, num_pes: int) -> Dict[str, float]:
        """Per-component activity factors in [0, 1] for the power model.

        Each factor is the average number of events per cycle per instance of
        the component (one MAC/accumulator/store pair per PE; ``2*nr`` buses
        per core, approximated by ``num_pes`` lanes for simplicity of
        normalisation).
        """
        if self.cycles <= 0:
            return {key: 0.0 for key in ("mac", "store_a", "store_b", "register_file",
                                         "row_bus", "column_bus", "sfu", "memory_interface")}
        c = float(self.cycles)
        n = float(max(num_pes, 1))
        clamp = lambda v: min(1.0, v)
        return {
            "mac": clamp(self.mac_ops / (c * n)),
            "store_a": clamp((self.store_a_reads + self.store_a_writes) / (c * n)),
            "store_b": clamp((self.store_b_reads + self.store_b_writes) / (c * n)),
            "register_file": clamp((self.register_reads + self.register_writes) / (c * n)),
            "row_bus": clamp(self.row_broadcasts / (c * n ** 0.5)),
            "column_bus": clamp(self.column_broadcasts / (c * n ** 0.5)),
            "sfu": clamp(self.sfu_ops / c),
            "memory_interface": clamp(self.external_words / (c * n ** 0.5)),
        }

    def summary(self) -> str:
        """Multi-line human readable summary."""
        lines = [f"cycles          : {self.cycles}",
                 f"MAC operations  : {self.mac_ops}",
                 f"store A r/w     : {self.store_a_reads}/{self.store_a_writes}",
                 f"store B r/w     : {self.store_b_reads}/{self.store_b_writes}",
                 f"register r/w    : {self.register_reads}/{self.register_writes}",
                 f"row broadcasts  : {self.row_broadcasts}",
                 f"col broadcasts  : {self.column_broadcasts}",
                 f"SFU operations  : {self.sfu_ops}",
                 f"external ld/st  : {self.external_loads}/{self.external_stores}"]
        return "\n".join(lines)
