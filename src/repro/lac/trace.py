"""Execution tracing for the LAC simulator.

The base simulator only accumulates counters; for debugging kernel schedules
and for producing the per-phase cycle breakdowns used in some ablation
studies it is useful to record *when* things happened.  ``ExecutionTrace``
records timestamped events (phase begin/end markers and per-phase counter
snapshots) and can summarise how cycles split across phases such as
"distribute A", "rank-1 steady state", "store C", or the steps S1..S4 of a
factorization iteration.

Tracing is optional and attaches to an existing core without modifying it:

>>> core = LinearAlgebraCore()
>>> trace = ExecutionTrace(core)
>>> with trace.phase("distribute A"):
...     core.distribute_a(a_block)
>>> trace.summary_rows()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.lac.core import LinearAlgebraCore
from repro.lac.stats import AccessCounters


@dataclass
class TraceEvent:
    """One completed phase of execution."""

    name: str
    start_cycle: int
    end_cycle: int
    counters: AccessCounters
    nesting: int = 0

    @property
    def cycles(self) -> int:
        """Cycles spent inside the phase."""
        return self.end_cycle - self.start_cycle

    @property
    def mac_ops(self) -> int:
        """MAC operations issued inside the phase."""
        return self.counters.mac_ops


class ExecutionTrace:
    """Records phase-level events against a live :class:`LinearAlgebraCore`."""

    def __init__(self, core: LinearAlgebraCore):
        self.core = core
        self.events: List[TraceEvent] = []
        self._depth = 0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager bracketing one named phase of execution."""
        if not name:
            raise ValueError("phase name must be non-empty")
        start_counters = self.core.counters.copy()
        start_cycle = self.core.counters.cycles
        nesting = self._depth
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            end_counters = self.core.counters.copy()
            delta = end_counters
            for key, value in start_counters.as_dict().items():
                setattr(delta, key, getattr(delta, key) - value)
            self.events.append(TraceEvent(
                name=name,
                start_cycle=start_cycle,
                end_cycle=self.core.counters.cycles,
                counters=delta,
                nesting=nesting,
            ))

    # -------------------------------------------------------------- queries
    @property
    def total_cycles(self) -> int:
        """Cycles covered by top-level phases."""
        return sum(e.cycles for e in self.events if e.nesting == 0)

    def phases(self, name: Optional[str] = None) -> List[TraceEvent]:
        """All recorded events, optionally filtered by phase name."""
        return [e for e in self.events if name is None or e.name == name]

    def cycles_by_phase(self) -> Dict[str, int]:
        """Total cycles per distinct phase name (top-level phases only)."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.nesting == 0:
                out[event.name] = out.get(event.name, 0) + event.cycles
        return out

    def utilization_by_phase(self) -> Dict[str, float]:
        """MAC issue rate per phase (relative to the core's peak)."""
        out: Dict[str, float] = {}
        pes = self.core.num_pes
        for name in {e.name for e in self.events if e.nesting == 0}:
            events = [e for e in self.events if e.name == name and e.nesting == 0]
            cycles = sum(e.cycles for e in events)
            macs = sum(e.mac_ops for e in events)
            out[name] = min(1.0, macs / float(cycles * pes)) if cycles > 0 else 0.0
        return out

    def summary_rows(self) -> List[Dict[str, object]]:
        """Table rows (phase, cycles, share, MACs, utilisation) for reports."""
        total = max(self.total_cycles, 1)
        rows = []
        for name, cycles in sorted(self.cycles_by_phase().items(), key=lambda kv: -kv[1]):
            macs = sum(e.mac_ops for e in self.events if e.name == name and e.nesting == 0)
            rows.append({
                "phase": name,
                "cycles": cycles,
                "share_pct": 100.0 * cycles / total,
                "mac_ops": macs,
                "utilization_pct": 100.0 * min(1.0, macs / float(cycles * self.core.num_pes))
                if cycles else 0.0,
            })
        return rows

    def reset(self) -> None:
        """Discard all recorded events (the core's counters are untouched)."""
        self.events.clear()
        self._depth = 0
