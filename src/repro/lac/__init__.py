"""Cycle-level functional simulator of the Linear Algebra Core (LAC).

The simulator models the ``nr x nr`` mesh of processing elements described in
Chapter 3: each PE owns a pipelined MAC unit with local accumulators, two
local SRAM stores (a larger single-ported one for the resident panel of ``A``
and a small dual-ported one for the replicated panel of ``B``), a small
register file, and latched connections to one row broadcast bus and one
column broadcast bus.  Control is distributed: every PE runs the same
predetermined sequence in lock step, so the simulator advances the whole mesh
one logical step at a time and charges cycles according to the operation
performed (rank-1 updates are single-cycle throughput, dependent scalar steps
pay the MAC pipeline latency, special functions pay the SFU latency).

Numerical results are bit-identical to an equivalent NumPy computation except
for floating-point summation order, which the tests account for with standard
tolerances.  Every data movement increments an access counter so that the
power model can be driven by realistic activity factors
(:mod:`repro.lac.stats`).
"""

from repro.lac.stats import AccessCounters
from repro.lac.pe import ProcessingElement, PEConfig
from repro.lac.bus import RowColumnBuses
from repro.lac.core import LinearAlgebraCore, LACConfig
from repro.lac.controller import PEController, OperationSelect, MicroProgram
from repro.lac.trace import ExecutionTrace

__all__ = [
    "AccessCounters",
    "ProcessingElement",
    "PEConfig",
    "RowColumnBuses",
    "LinearAlgebraCore",
    "LACConfig",
    "PEController",
    "OperationSelect",
    "MicroProgram",
    "ExecutionTrace",
]
