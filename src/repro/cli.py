"""Command-line interface for the reproduction.

Provides five sub-commands:

``experiments``
    list or regenerate the tables/figures of the evaluation
    (``python -m repro.cli experiments --list`` / ``... experiments table_5_1``).
``simulate``
    run one kernel on the cycle-level LAC simulator with a randomly generated
    operand set and report cycles, utilisation and the access counters
    (``python -m repro.cli simulate gemm --size 16``).
``design``
    print the area/power/efficiency of a LAC or LAP design point
    (``python -m repro.cli design --cores 8 --frequency 1.0``).
``sweep``
    expand a declarative design-space sweep, run it through the parallel,
    cached sweep engine and report the Pareto frontier
    (``python -m repro.cli sweep --runner design --grid cores=4,8,16
    --grid nr=2,4,8``).  The ``lap_runtime`` runner additionally sweeps the
    task-graph runtime's scheduling policies, timing models and memory
    hierarchy (``... sweep --runner lap_runtime --set algorithm=qr
    --set timing=memoized
    --grid policy=greedy,critical_path,locality,memory_aware,affinity
    --grid num_cores=2,4``; constrain the tile working set with
    ``--grid on_chip_kb=64,6,3`` and the off-chip bandwidth with
    ``--set bandwidth_gbs=16`` to surface spills, stalls and energy;
    enable the per-core second level with ``--grid local_store_kb=1,2,4``
    and sweep prefetch overlap with ``--grid stall_overlap=0,0.5,1`` for
    local-hit-rate and per-level traffic columns).
``cache``
    inspect and manage the on-disk sweep result cache
    (``python -m repro.cli cache stats`` / ``... cache prune --max-mb 64``
    / ``... cache clear``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.arch.lap_design import build_lap
from repro.engine import (KNOWN_PARAMS, PARETO_OBJECTIVES, SweepSpec,
                          frontier_report, runner_names, sweep, usable_cache_dir)
from repro.experiments.export import write_json
from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.report import (format_value, render_table,
                                      summarize_experiment)
from repro.hw.fpu import Precision
from repro.kernels.dispatch import (check_size, fft_point_count, kernel_names,
                                    simulate_kernel)
from repro.lac import LACConfig, LinearAlgebraCore

#: Default on-disk cache location of the ``sweep`` sub-command; override
#: with ``--cache-dir``, ``REPRO_CACHE_DIR`` or disable with ``--no-cache``.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-sweep")


def _emit_json(payload: object, path: str) -> int:
    """Write a ``--json`` payload, reporting write failures cleanly."""
    try:
        written = write_json(payload, path)
    except OSError as exc:
        print(f"cannot write JSON to '{path}': {exc}", file=sys.stderr)
        return 2
    if written is not None:
        print(f"wrote {written}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list or not args.ids:
        for exp in REGISTRY.values():
            print(f"{exp.exp_id:<18s} [{exp.kind:<10s}] {exp.source:<22s} {exp.description}")
        if args.list:
            return 0
        if not args.ids:
            return 0
    unknown = [i for i in args.ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.json:
        results = {exp_id: run_experiment(exp_id) for exp_id in args.ids}
        return _emit_json({"experiments": results}, args.json)
    for exp_id in args.ids:
        print(summarize_experiment(exp_id, run_experiment(exp_id), max_rows=args.max_rows))
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    core = LinearAlgebraCore(LACConfig(nr=args.nr, frequency_ghz=args.frequency))
    n = args.size
    try:
        check_size(args.kernel, n, args.nr)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.kernel == "fft":
        points = fft_point_count(n)
        print(f"note: fft simulates a {points}-point radix-4 transform "
              f"(rounded from --size {n} = {n * n} elements)")

    result = simulate_kernel(core, args.kernel, n, rng)

    print(f"kernel        : {result.name}")
    print(f"cycles        : {result.cycles}")
    print(f"MAC ops       : {result.counters.mac_ops}")
    print(f"utilisation   : {100 * result.utilization:.1f}%")
    print(f"GFLOPS @ {args.frequency:.2f} GHz: {result.gflops(args.frequency):.1f}")
    print()
    print(result.counters.summary())
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    precision = Precision.SINGLE if args.precision == "single" else Precision.DOUBLE
    design = build_lap(num_cores=args.cores, nr=args.nr, precision=precision,
                       frequency_ghz=args.frequency,
                       local_store_kbytes=args.local_store_kbytes,
                       onchip_memory_mbytes=args.onchip_mbytes)
    eff = design.efficiency(utilization=args.utilization)
    rows = [{
        "cores": args.cores,
        "nr": args.nr,
        "precision": precision.value,
        "frequency_ghz": args.frequency,
        "area_mm2": round(design.area_mm2, 1),
        "power_w": round(design.power_w(), 2),
        "peak_gflops": round(design.peak_gflops, 1),
        "gflops": round(eff.gflops, 1),
        "gflops_per_w": round(eff.gflops_per_watt, 1),
        "gflops_per_mm2": round(eff.gflops_per_mm2, 2),
    }]
    if args.json:
        return _emit_json({"design": rows[0]}, args.json)
    print(render_table(rows))
    return 0


# ------------------------------------------------------------------- sweep
def _parse_scalar(token: str):
    """CLI axis value: int if possible, else float, bool or bare string."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for convert in (int, float):
        try:
            return convert(token)
        except ValueError:
            continue
    return token


def _parse_axis(option: str, text: str) -> Dict[str, list]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"{option} expects NAME=V1,V2,... (got '{text}')")
    name, _, values = text.partition("=")
    name = name.strip()
    tokens = [t for t in values.split(",") if t.strip() != ""]
    if not name or not tokens:
        raise argparse.ArgumentTypeError(
            f"{option} expects NAME=V1,V2,... (got '{text}')")
    return {name: [_parse_scalar(t.strip()) for t in tokens]}


def _build_spec(args: argparse.Namespace) -> SweepSpec:
    spec = SweepSpec()
    constants = {}
    for text in args.set or []:
        axis = _parse_axis("--set", text)
        ((name, values),) = axis.items()
        if len(values) != 1:
            raise argparse.ArgumentTypeError(f"--set {name} takes exactly one value")
        if name in constants:
            raise argparse.ArgumentTypeError(f"sweep axis '{name}' is already defined")
        constants[name] = values[0]
    if constants:
        spec = spec.constants(**constants)
    for text in args.grid or []:
        spec = spec.grid(**_parse_axis("--grid", text))
    zip_axes: Dict[str, list] = {}
    for text in args.zip or []:
        axis = _parse_axis("--zip", text)
        ((name, values),) = axis.items()
        if name in zip_axes:
            raise argparse.ArgumentTypeError(f"sweep axis '{name}' is already defined")
        zip_axes[name] = values
    if zip_axes:
        spec = spec.zip(**zip_axes)
    return spec


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not (args.grid or args.zip or args.set):
        print("the sweep expands to no jobs; add --grid/--zip/--set axes",
              file=sys.stderr)
        return 2
    try:
        spec = _build_spec(args)
    except (argparse.ArgumentTypeError, TypeError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    jobs = spec.jobs(args.runner)
    if not jobs:
        print("the sweep's filters prune every point", file=sys.stderr)
        return 2
    known = KNOWN_PARAMS.get(args.runner)
    if known:
        unknown = sorted(set(jobs[0].params_dict) - known)
        if unknown:
            print(f"warning: runner '{args.runner}' ignores parameter(s) "
                  f"{', '.join(unknown)}; it understands: {', '.join(sorted(known))}",
                  file=sys.stderr)

    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"\r{done}/{total} jobs", end="", file=sys.stderr, flush=True)

    cache_dir = usable_cache_dir(None if args.no_cache else args.cache_dir)
    try:
        result = sweep(jobs, mode=args.mode, max_workers=args.workers,
                       batch_size=args.batch_size, cache_dir=cache_dir,
                       progress=progress)
    except (KeyError, ValueError, OverflowError, OSError) as exc:
        if args.progress:
            print(file=sys.stderr)
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    if args.progress:
        print(file=sys.stderr)

    objectives = ([o.strip() for o in args.objectives.split(",") if o.strip()]
                  if args.objectives else list(PARETO_OBJECTIVES.get(args.runner, ())))
    try:
        report = (frontier_report(result.rows, objectives) if objectives
                  else {"objectives": [], "minimize": [], "num_rows": len(result.rows),
                        "frontier": [], "best": {}})
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2

    if args.json:
        payload = {
            "runner": args.runner,
            "jobs": result.total,
            "executed": result.executed,
            "cached": result.cached,
            "mode": result.mode,
            "elapsed_s": result.elapsed_s,
            "rows": result.rows,
            **report,
        }
        return _emit_json(payload, args.json)

    print(f"sweep[{args.runner}] {result.summary()}")
    print()
    if not objectives:
        print(render_table(result.rows, max_rows=args.max_rows))
        return 0
    frontier = report["frontier"]
    print(f"Pareto frontier ({', '.join(objectives)}): "
          f"{len(frontier)} of {len(result.rows)} points")
    print(render_table(frontier, max_rows=args.max_rows))
    print()
    print("best per metric:")
    axes = list(jobs[0].params_dict)
    for metric, row in report["best"].items():
        value = row[metric]
        params = ", ".join(f"{k}={format_value(row[k])}" for k in axes
                           if k in row and k != metric)
        print(f"  {metric:<16s} {value:10.2f}  ({params})")
    return 0


# ------------------------------------------------------------------- cache
def _cmd_cache(args: argparse.Namespace) -> int:
    import pathlib

    from repro.engine.cache import ResultCache

    directory = pathlib.Path(args.cache_dir).expanduser()
    if not directory.is_dir():
        # Never create the directory from an inspection/management command
        # (a typo'd --cache-dir would otherwise leave an empty tree behind).
        if args.action == "stats":
            if args.json:
                return _emit_json({"cache": {"directory": str(directory),
                                             "exists": False, "entries": 0,
                                             "size_bytes": 0}}, args.json)
            print(f"directory     : {directory}")
            print("entries       : 0 (directory does not exist yet)")
            return 0
        print(f"cache directory '{directory}' does not exist; nothing to "
              f"{args.action}", file=sys.stderr)
        return 2
    max_bytes = int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None
    try:
        cache = ResultCache(directory, max_bytes=max_bytes)
    except (OSError, ValueError) as exc:
        print(f"cannot open cache '{directory}': {exc}", file=sys.stderr)
        return 2

    if args.action == "stats":
        stats = cache.stats()
        stats["size_mbytes"] = round(stats["size_bytes"] / 2 ** 20, 3)
        if args.json:
            return _emit_json({"cache": stats}, args.json)
        for key in ("directory", "code_version", "entries", "size_bytes",
                    "size_mbytes", "max_bytes"):
            print(f"{key:<14s}: {stats[key]}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        if args.json:
            return _emit_json({"cache": {"action": "clear", "removed": removed,
                                         "directory": str(cache.directory)}},
                              args.json)
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.directory}")
        return 0
    # prune
    if cache.max_bytes is None and args.max_entries is None:
        print("prune needs a limit: pass --max-mb / --max-entries or set "
              "REPRO_CACHE_MAX_MB", file=sys.stderr)
        return 2
    removed = cache.prune(max_entries=args.max_entries)
    stats = cache.stats()
    if args.json:
        return _emit_json({"cache": {"action": "prune", "removed": removed,
                                     "entries": stats["entries"],
                                     "size_bytes": stats["size_bytes"],
                                     "directory": str(cache.directory)}},
                          args.json)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}; "
          f"{stats['entries']} left ({stats['size_bytes'] / 2 ** 20:.3f} MB)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="list or regenerate evaluation experiments")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: list all)")
    p_exp.add_argument("--list", action="store_true", help="only list the registry")
    p_exp.add_argument("--max-rows", type=int, default=12)
    p_exp.add_argument("--json", metavar="PATH",
                       help="write results as JSON to PATH ('-' for stdout)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser("simulate", help="run a kernel on the LAC simulator")
    p_sim.add_argument("kernel", choices=kernel_names())
    p_sim.add_argument("--size", type=int, default=16, help="problem dimension")
    p_sim.add_argument("--nr", type=int, default=4, help="core dimension")
    p_sim.add_argument("--frequency", type=float, default=1.0, help="clock in GHz")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_des = sub.add_parser("design", help="evaluate a LAP design point")
    p_des.add_argument("--cores", type=int, default=8)
    p_des.add_argument("--nr", type=int, default=4)
    p_des.add_argument("--frequency", type=float, default=1.0)
    p_des.add_argument("--precision", choices=["single", "double"], default="double")
    p_des.add_argument("--local-store-kbytes", type=float, default=16.0)
    p_des.add_argument("--onchip-mbytes", type=float, default=4.0)
    p_des.add_argument("--utilization", type=float, default=0.9)
    p_des.add_argument("--json", metavar="PATH",
                       help="write the design point as JSON to PATH ('-' for stdout)")
    p_des.set_defaults(func=_cmd_design)

    p_swp = sub.add_parser("sweep", help="run a design-space sweep through the engine")
    p_swp.add_argument("--runner", choices=runner_names(), default="design",
                       help="which evaluation each job runs (default: design)")
    p_swp.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                       help="axis crossed with every other axis (repeatable)")
    p_swp.add_argument("--zip", action="append", metavar="NAME=V1,V2,...",
                       help="axes that vary together (repeatable, equal lengths)")
    p_swp.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="constant parameter applied to every job (repeatable)")
    p_swp.add_argument("--mode", choices=["auto", "serial", "thread", "process"],
                       default="auto", help="execution backend (default: auto)")
    p_swp.add_argument("--workers", type=int, default=None, help="pool size")
    p_swp.add_argument("--batch-size", type=int, default=None, help="jobs per shard")
    p_swp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    p_swp.add_argument("--no-cache", action="store_true",
                       help="run every job even if cached results exist")
    p_swp.add_argument("--objectives", metavar="A,B,...",
                       help="Pareto objectives (default depends on the runner)")
    p_swp.add_argument("--max-rows", type=int, default=16)
    p_swp.add_argument("--progress", action="store_true",
                       help="print job progress to stderr")
    p_swp.add_argument("--json", metavar="PATH",
                       help="write rows + frontier as JSON to PATH ('-' for stdout)")
    p_swp.set_defaults(func=_cmd_sweep)

    p_cache = sub.add_parser("cache", help="inspect or manage the sweep result cache")
    p_cache.add_argument("action", choices=["stats", "clear", "prune"],
                         help="stats: counters and size; clear: remove every "
                              "entry; prune: LRU-evict down to the limits")
    p_cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"cache directory (default: {DEFAULT_CACHE_DIR})")
    p_cache.add_argument("--max-mb", type=float, default=None,
                         help="size budget in MB for prune (default: "
                              "REPRO_CACHE_MAX_MB)")
    p_cache.add_argument("--max-entries", type=int, default=None,
                         help="entry-count budget for prune")
    p_cache.add_argument("--json", metavar="PATH",
                         help="write the result as JSON to PATH ('-' for stdout)")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that exited early (e.g. `head`);
        # silence the traceback and exit like a well-behaved filter.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
