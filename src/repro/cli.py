"""Command-line interface for the reproduction.

Provides eight sub-commands:

``experiments``
    list or regenerate the tables/figures of the evaluation
    (``python -m repro.cli experiments --list`` / ``... experiments table_5_1``).
``simulate``
    run one kernel on the cycle-level LAC simulator with a randomly generated
    operand set and report cycles, utilisation and the access counters
    (``python -m repro.cli simulate gemm --size 16``).
``design``
    print the area/power/efficiency of a LAC or LAP design point
    (``python -m repro.cli design --cores 8 --frequency 1.0``).
``sweep``
    expand a declarative design-space sweep, run it through the parallel,
    cached sweep engine and report the Pareto frontier
    (``python -m repro.cli sweep --runner design --grid cores=4,8,16
    --grid nr=2,4,8``).  The ``lap_runtime`` runner additionally sweeps the
    task-graph runtime's scheduling policies, timing models and memory
    hierarchy (``... sweep --runner lap_runtime --set algorithm=qr
    --set timing=memoized
    --grid policy=greedy,critical_path,locality,memory_aware,affinity
    --grid num_cores=2,4``; constrain the tile working set with
    ``--grid on_chip_kb=64,6,3`` and the off-chip bandwidth with
    ``--set bandwidth_gbs=16`` to surface spills, stalls and energy;
    enable the per-core second level with ``--grid local_store_kb=1,2,4``
    and sweep prefetch overlap with ``--grid stall_overlap=0,0.5,1`` for
    local-hit-rate and per-level traffic columns).  ``--stream`` consumes
    the executor's row stream directly and prints a live progress line
    (rows done / cache hit-rate / incremental Pareto frontier size)
    instead of going silent until the sweep finishes.  ``--server URL``
    adds a shared ``repro serve`` daemon as a second cache tier
    (read-through/write-behind; degrades to local-only if the server goes
    away), and ``--server URL --submit`` runs the whole sweep server-side,
    streaming rows back over HTTP.
``serve``
    run the design-space service daemon: the content-addressed result
    cache (and its replay sidecar) over HTTP plus a submit/poll sweep API
    (``python -m repro.cli serve --port 8731``); see ``repro sweep
    --server`` for the client side.
``cache``
    inspect and manage the on-disk sweep result cache
    (``python -m repro.cli cache stats`` / ``... cache prune --max-mb 64``
    / ``... cache clear``); ``stats`` reports live and lifetime hit-rates.
``trace``
    run one workload through the instrumented LAP runtime and export a
    Chrome-trace-event JSON (one track per core, per-task cycle
    decompositions, idle gaps) plus the cycle-attribution table
    (``python -m repro.cli trace --workload cholesky --n 512``); open the
    ``.trace.json`` in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.
``report``
    re-print the cycle-attribution table of a saved ``.trace.json`` and/or
    the telemetry of a sweep's run manifest
    (``python -m repro.cli report --trace cholesky_n512.trace.json
    --manifest sweep.json.manifest.json``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.arch.lap_design import build_lap
from repro.engine import (KNOWN_PARAMS, PARETO_OBJECTIVES, IncrementalPareto,
                          ResultCache, SweepExecutor, SweepResult, SweepSpec,
                          execute_jobs, frontier_report, runner_names,
                          usable_cache_dir)
from repro.experiments.export import write_json
from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.report import (format_value, render_table,
                                      summarize_experiment)
from repro.hw.fpu import Precision
from repro.kernels.dispatch import (check_size, fft_point_count, kernel_names,
                                    simulate_kernel)
from repro.lac import LACConfig, LinearAlgebraCore
from repro.lap.policies import policy_names
from repro.lap.timing import timing_names
from repro.obs.manifest import manifest_path_for, write_run_manifest

#: Workloads the ``trace`` sub-command can decompose and schedule.
TRACE_WORKLOADS = ("gemm", "cholesky", "lu", "qr")

#: Default on-disk cache location of the ``sweep`` sub-command; override
#: with ``--cache-dir``, ``REPRO_CACHE_DIR`` or disable with ``--no-cache``.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-sweep")


def _emit_json(payload: object, path: str) -> int:
    """Write a ``--json`` payload, reporting write failures cleanly."""
    try:
        written = write_json(payload, path)
    except OSError as exc:
        print(f"cannot write JSON to '{path}': {exc}", file=sys.stderr)
        return 2
    if written is not None:
        print(f"wrote {written}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list or not args.ids:
        for exp in REGISTRY.values():
            print(f"{exp.exp_id:<18s} [{exp.kind:<10s}] {exp.source:<22s} {exp.description}")
        if args.list:
            return 0
        if not args.ids:
            return 0
    unknown = [i for i in args.ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.json:
        results = {exp_id: run_experiment(exp_id) for exp_id in args.ids}
        return _emit_json({"experiments": results}, args.json)
    for exp_id in args.ids:
        print(summarize_experiment(exp_id, run_experiment(exp_id), max_rows=args.max_rows))
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    core = LinearAlgebraCore(LACConfig(nr=args.nr, frequency_ghz=args.frequency))
    n = args.size
    try:
        check_size(args.kernel, n, args.nr)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.kernel == "fft":
        points = fft_point_count(n)
        print(f"note: fft simulates a {points}-point radix-4 transform "
              f"(rounded from --size {n} = {n * n} elements)")

    result = simulate_kernel(core, args.kernel, n, rng)

    print(f"kernel        : {result.name}")
    print(f"cycles        : {result.cycles}")
    print(f"MAC ops       : {result.counters.mac_ops}")
    print(f"utilisation   : {100 * result.utilization:.1f}%")
    print(f"GFLOPS @ {args.frequency:.2f} GHz: {result.gflops(args.frequency):.1f}")
    print()
    print(result.counters.summary())
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    precision = Precision.SINGLE if args.precision == "single" else Precision.DOUBLE
    design = build_lap(num_cores=args.cores, nr=args.nr, precision=precision,
                       frequency_ghz=args.frequency,
                       local_store_kbytes=args.local_store_kbytes,
                       onchip_memory_mbytes=args.onchip_mbytes)
    eff = design.efficiency(utilization=args.utilization)
    rows = [{
        "cores": args.cores,
        "nr": args.nr,
        "precision": precision.value,
        "frequency_ghz": args.frequency,
        "area_mm2": round(design.area_mm2, 1),
        "power_w": round(design.power_w(), 2),
        "peak_gflops": round(design.peak_gflops, 1),
        "gflops": round(eff.gflops, 1),
        "gflops_per_w": round(eff.gflops_per_watt, 1),
        "gflops_per_mm2": round(eff.gflops_per_mm2, 2),
    }]
    if args.json:
        return _emit_json({"design": rows[0]}, args.json)
    print(render_table(rows))
    return 0


# ------------------------------------------------------------------- sweep
def _parse_scalar(token: str):
    """CLI axis value: int if possible, else float, bool or bare string."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for convert in (int, float):
        try:
            return convert(token)
        except ValueError:
            continue
    return token


def _parse_axis(option: str, text: str) -> Dict[str, list]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"{option} expects NAME=V1,V2,... (got '{text}')")
    name, _, values = text.partition("=")
    name = name.strip()
    tokens = [t for t in values.split(",") if t.strip() != ""]
    if not name or not tokens:
        raise argparse.ArgumentTypeError(
            f"{option} expects NAME=V1,V2,... (got '{text}')")
    return {name: [_parse_scalar(t.strip()) for t in tokens]}


def _build_spec(args: argparse.Namespace) -> SweepSpec:
    spec = SweepSpec()
    constants = {}
    for text in args.set or []:
        axis = _parse_axis("--set", text)
        ((name, values),) = axis.items()
        if len(values) != 1:
            raise argparse.ArgumentTypeError(f"--set {name} takes exactly one value")
        if name in constants:
            raise argparse.ArgumentTypeError(f"sweep axis '{name}' is already defined")
        constants[name] = values[0]
    if constants:
        spec = spec.constants(**constants)
    for text in args.grid or []:
        spec = spec.grid(**_parse_axis("--grid", text))
    zip_axes: Dict[str, list] = {}
    for text in args.zip or []:
        axis = _parse_axis("--zip", text)
        ((name, values),) = axis.items()
        if name in zip_axes:
            raise argparse.ArgumentTypeError(f"sweep axis '{name}' is already defined")
        zip_axes[name] = values
    if zip_axes:
        spec = spec.zip(**zip_axes)
    return spec


def _stream_sweep(jobs, args: argparse.Namespace, cache: Optional[ResultCache],
                  objectives: List[str]):
    """Run a sweep through the streaming executor with a live progress line.

    Rows are folded into an :class:`IncrementalPareto` as they land, so the
    stderr line shows rows done, cache hit-rate and the current frontier
    size while the sweep is still executing.  Returns the same
    ``SweepResult`` the batch path produces.

    Redraws are throttled to ~10 per second (cached warm sweeps can land
    tens of thousands of rows a second, and unthrottled carriage-return
    spam dominates their wall time); the final state always renders.  When
    stderr is not a terminal the carriage-return animation degrades to
    plain newline-delimited updates, so logs capture readable progress.
    """
    import time

    executor = SweepExecutor(mode=args.mode, max_workers=args.workers,
                             batch_size=args.batch_size, cache=cache)
    pareto = IncrementalPareto(objectives) if objectives else None
    stream = executor.stream(jobs)
    done = 0
    hits = 0
    is_tty = getattr(sys.stderr, "isatty", lambda: False)()
    min_interval_s = 0.1
    last_emit = float("-inf")
    try:
        for event in stream:
            done += 1
            if event.cached:
                hits += 1
            if pareto is not None:
                pareto.add(event.row)
            now = time.monotonic()
            if done != stream.total and now - last_emit < min_interval_s:
                continue
            last_emit = now
            frontier = "" if pareto is None else f" | frontier {len(pareto)}"
            line = (f"{done}/{stream.total} rows | "
                    f"{100.0 * hits / done:.0f}% cached{frontier}")
            if is_tty:
                print(f"\r{line}", end="", file=sys.stderr, flush=True)
            else:
                print(line, file=sys.stderr, flush=True)
    finally:
        if done and is_tty:
            print(file=sys.stderr)
    return stream.result()


def _build_sweep_cache(args: argparse.Namespace,
                       cache_dir: Optional[str]) -> Optional[ResultCache]:
    """The sweep's cache tier: local disk, optionally backed by a server.

    With ``--server`` the local cache composes with the shared daemon as a
    read-through/write-behind tier; without a usable local directory the
    remote tier is skipped too (with a warning), because the remote tier
    is an extension of the local one, not a replacement.
    """
    if cache_dir is None:
        if args.server:
            print("warning: no usable local cache tier; ignoring --server "
                  "(the remote tier extends the local one)", file=sys.stderr)
        return None
    if not args.server:
        return ResultCache(cache_dir)
    from repro.serve import RemoteCache

    return RemoteCache(cache_dir, args.server)


def _submit_sweep(spec: SweepSpec, jobs, args: argparse.Namespace):
    """Run the sweep on a ``repro serve`` daemon (``--server --submit``).

    Serialises the spec, submits it, then streams the rows back as
    newline-delimited JSON (transparently reconnecting from the last row
    on a dropped connection).  Returns a :class:`SweepResult` equivalent
    to a local run resolved entirely through the server's cache, or an
    error message string when the submission cannot proceed.
    """
    from repro.serve import ServeClient, ServerUnavailable

    try:
        payload = spec.to_payload()
    except ValueError as exc:
        return f"cannot submit this sweep: {exc}"
    client = ServeClient(args.server)
    rows: List[Optional[dict]] = [None] * len(jobs)
    executed = 0
    cached = 0
    state = "failed"
    summary = None
    error = None
    import time

    started = time.perf_counter()
    try:
        sweep_id = client.submit_sweep(payload, args.runner, mode=args.mode,
                                       max_workers=args.workers,
                                       batch_size=args.batch_size)
        for event in client.iter_sweep_rows(sweep_id):
            if event.get("event") == "row":
                index = event.get("index")
                if isinstance(index, int) and 0 <= index < len(rows):
                    rows[index] = event.get("row")
                    if event.get("cached"):
                        cached += 1
                    else:
                        executed += 1
                if args.progress or args.stream:
                    done = executed + cached
                    print(f"\r{done}/{len(jobs)} rows (remote)", end="",
                          file=sys.stderr, flush=True)
            else:
                state = event.get("state", "failed")
                summary = event.get("summary")
                error = event.get("error")
    except ServerUnavailable as exc:
        if args.progress or args.stream:
            print(file=sys.stderr)
        return (f"sweep submission failed: {exc}\n"
                f"(re-run without --submit to execute locally)")
    if args.progress or args.stream:
        print(file=sys.stderr)
    if state != "done" or any(row is None for row in rows):
        detail = error or f"server reported state '{state}'"
        return (f"remote sweep did not complete: {detail}\n"
                f"(re-run without --submit to execute locally)")
    summary = summary or {}
    return SweepResult(jobs=list(jobs), rows=rows, executed=executed,
                       cached=cached, mode=str(summary.get("mode", "remote")),
                       elapsed_s=time.perf_counter() - started,
                       cache_stats=summary.get("cache"))


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not (args.grid or args.zip or args.set):
        print("the sweep expands to no jobs; add --grid/--zip/--set axes",
              file=sys.stderr)
        return 2
    try:
        spec = _build_spec(args)
    except (argparse.ArgumentTypeError, TypeError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    jobs = spec.jobs(args.runner)
    if not jobs:
        print("the sweep's filters prune every point", file=sys.stderr)
        return 2
    known = KNOWN_PARAMS.get(args.runner)
    if known:
        unknown = sorted(set(jobs[0].params_dict) - known)
        if unknown:
            print(f"warning: runner '{args.runner}' ignores parameter(s) "
                  f"{', '.join(unknown)}; it understands: {', '.join(sorted(known))}",
                  file=sys.stderr)

    progress = None
    if args.progress and not args.stream:
        def progress(done: int, total: int) -> None:
            print(f"\r{done}/{total} jobs", end="", file=sys.stderr, flush=True)

    objectives = ([o.strip() for o in args.objectives.split(",") if o.strip()]
                  if args.objectives else list(PARETO_OBJECTIVES.get(args.runner, ())))
    if args.submit and not args.server:
        print("--submit needs --server URL (the daemon that runs the sweep)",
              file=sys.stderr)
        return 2
    if args.submit:
        outcome = _submit_sweep(spec, jobs, args)
        if isinstance(outcome, str):
            print(outcome, file=sys.stderr)
            return 2
        result = outcome
    else:
        cache_dir = usable_cache_dir(None if args.no_cache else args.cache_dir)
        try:
            cache = _build_sweep_cache(args, cache_dir)
            if args.stream:
                result = _stream_sweep(jobs, args, cache, objectives)
            else:
                result = execute_jobs(jobs, mode=args.mode,
                                      max_workers=args.workers,
                                      batch_size=args.batch_size, cache=cache,
                                      progress=progress)
        except (KeyError, ValueError, OverflowError, OSError) as exc:
            if args.progress and not args.stream:
                print(file=sys.stderr)
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 2
        if args.progress and not args.stream:
            print(file=sys.stderr)

    # Persist the run's telemetry (shard wall times, job latencies, cache
    # hit-rate) next to the sweep output: an explicit --manifest path wins,
    # otherwise a --json file output gets a sibling <output>.manifest.json.
    manifest_target = args.manifest
    if manifest_target is None and args.json and args.json not in ("-", os.devnull):
        manifest_target = str(manifest_path_for(args.json))
    if manifest_target is not None:
        extra: Dict[str, object] = {"output": args.json}
        if args.server:
            extra["server"] = args.server
            extra["submitted"] = bool(args.submit)
            if args.submit:
                # The rows came from the daemon's cache/executor, not from
                # a local tier; the stock tier derivation would say "local".
                extra["cache_tier"] = "service"
        try:
            written = write_run_manifest(result, manifest_target,
                                         runner=args.runner, extra=extra)
            print(f"wrote {written}", file=sys.stderr)
        except OSError as exc:
            print(f"warning: cannot write run manifest to "
                  f"'{manifest_target}': {exc}", file=sys.stderr)

    try:
        report = (frontier_report(result.rows, objectives) if objectives
                  else {"objectives": [], "minimize": [], "num_rows": len(result.rows),
                        "frontier": [], "best": {}})
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2

    if args.json:
        payload = {
            "runner": args.runner,
            "jobs": result.total,
            "executed": result.executed,
            "cached": result.cached,
            "mode": result.mode,
            "elapsed_s": result.elapsed_s,
            "rows": result.rows,
            **report,
        }
        return _emit_json(payload, args.json)

    print(f"sweep[{args.runner}] {result.summary()}")
    print()
    if not objectives:
        print(render_table(result.rows, max_rows=args.max_rows))
        return 0
    frontier = report["frontier"]
    print(f"Pareto frontier ({', '.join(objectives)}): "
          f"{len(frontier)} of {len(result.rows)} points")
    print(render_table(frontier, max_rows=args.max_rows))
    print()
    print("best per metric:")
    axes = list(jobs[0].params_dict)
    for metric, row in report["best"].items():
        value = row[metric]
        params = ", ".join(f"{k}={format_value(row[k])}" for k in axes
                           if k in row and k != metric)
        print(f"  {metric:<16s} {value:10.2f}  ({params})")
    return 0


# ------------------------------------------------------------------- serve
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeDaemon

    cache_dir = usable_cache_dir(args.cache_dir, label="served cache directory")
    if cache_dir is None:
        return 2
    max_bytes = (int(args.max_mb * 1024 * 1024)
                 if args.max_mb is not None else None)
    try:
        daemon = ServeDaemon(cache_dir, host=args.host, port=args.port,
                             max_bytes=max_bytes, quiet=args.quiet)
    except (OSError, ValueError) as exc:
        print(f"cannot start the design-space service: {exc}", file=sys.stderr)
        return 2
    print(f"serving {cache_dir} at {daemon.url} (Ctrl-C to stop)",
          file=sys.stderr)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\nstopping", file=sys.stderr)
    finally:
        daemon.httpd.server_close()
        daemon.cache.persist_stats()
    return 0


# ------------------------------------------------------------------- cache
def _cmd_cache(args: argparse.Namespace) -> int:
    import pathlib

    from repro.engine.cache import ResultCache

    directory = pathlib.Path(args.cache_dir).expanduser()
    if not directory.is_dir():
        # Never create the directory from an inspection/management command
        # (a typo'd --cache-dir would otherwise leave an empty tree behind).
        if args.action == "stats":
            if args.json:
                return _emit_json({"cache": {"directory": str(directory),
                                             "exists": False, "entries": 0,
                                             "size_bytes": 0}}, args.json)
            print(f"directory     : {directory}")
            print("entries       : 0 (directory does not exist yet)")
            return 0
        print(f"cache directory '{directory}' does not exist; nothing to "
              f"{args.action}", file=sys.stderr)
        return 2
    max_bytes = int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None
    try:
        cache = ResultCache(directory, max_bytes=max_bytes)
    except (OSError, ValueError) as exc:
        print(f"cannot open cache '{directory}': {exc}", file=sys.stderr)
        return 2

    if args.action == "stats":
        stats = cache.stats()
        stats["size_mbytes"] = round(stats["size_bytes"] / 2 ** 20, 3)
        if args.json:
            return _emit_json({"cache": stats}, args.json)
        for key in ("directory", "code_version", "entries", "size_bytes",
                    "size_mbytes", "max_bytes"):
            print(f"{key:<14s}: {stats[key]}")
        sidecar = stats["sidecar"]
        print(f"{'replay':<14s}: {sidecar['entries']} sidecar entries, "
              f"{sidecar['size_bytes']} bytes, "
              f"{sidecar['evictions']} pruned (lifetime)")
        lifetime = stats["lifetime"]
        print(f"{'hits':<14s}: {lifetime['hits']} (lifetime)")
        print(f"{'misses':<14s}: {lifetime['misses']} (lifetime)")
        print(f"{'evictions':<14s}: {lifetime['evictions']} (lifetime)")
        print(f"{'hit_rate':<14s}: {100.0 * lifetime['hit_rate']:.1f}% (lifetime)")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        if args.json:
            return _emit_json({"cache": {"action": "clear", "removed": removed,
                                         "directory": str(cache.directory)}},
                              args.json)
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.directory}")
        return 0
    # prune
    if cache.max_bytes is None and args.max_entries is None:
        print("prune needs a limit: pass --max-mb / --max-entries or set "
              "REPRO_CACHE_MAX_MB", file=sys.stderr)
        return 2
    removed = cache.prune(max_entries=args.max_entries)
    stats = cache.stats()
    if args.json:
        return _emit_json({"cache": {"action": "prune", "removed": removed,
                                     "entries": stats["entries"],
                                     "size_bytes": stats["size_bytes"],
                                     "directory": str(cache.directory)}},
                          args.json)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}; "
          f"{stats['entries']} left ({stats['size_bytes'] / 2 ** 20:.3f} MB)")
    return 0


# ------------------------------------------------------------------- trace
def _attribution_table(attribution) -> str:
    """Render a cycle attribution as the standard report table."""
    rows = []
    for row in attribution.table_rows():
        rows.append({
            "core": row["core"],
            "tasks": row["tasks"],
            "compute": round(row["compute_cycles"], 1),
            "stall": round(row["spill_stall_cycles"], 1),
            "transfer": round(row["transfer_cycles"], 1),
            "idle": round(row["idle_cycles"], 1),
            "compute%": round(row["compute_pct"], 1),
            "stall%": round(row["stall_pct"], 1),
            "transfer%": round(row["transfer_pct"], 1),
            "idle%": round(row["idle_pct"], 1),
        })
    return render_table(rows, max_rows=len(rows))


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
    from repro.lap.runtime import LAPRuntime
    from repro.obs import Tracer, to_chrome_trace, write_chrome_trace

    tracer = Tracer()
    try:
        lap = LinearAlgebraProcessor(LAPConfig(
            num_cores=args.cores, nr=args.nr,
            onchip_memory_mbytes=args.onchip_mbytes))
        runtime = LAPRuntime(
            lap, args.tile, policy=args.policy, timing=args.timing,
            on_chip_kb=args.on_chip_kb, bandwidth_gbs=args.bandwidth_gbs,
            local_store_kb=args.local_store_kb,
            stall_overlap=args.stall_overlap, tracer=tracer,
            fast=args.fast)
        stats = runtime.run_workload(args.workload, args.n,
                                     np.random.default_rng(args.seed))
        if args.fast and not runtime.last_fast:
            # An enabled tracer needs the per-task span instrumentation of
            # the reference loop, so execute() declines the inlined path;
            # schedules are byte-identical either way, so the trace is still
            # exactly what fast=True would have computed.
            print("note: tracing takes the reference scheduler loop "
                  "(--fast produces byte-identical schedules; spans need "
                  "the instrumented loop)", file=sys.stderr)
    except (ValueError, np.linalg.LinAlgError) as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 2
    attribution = runtime.attribution()
    try:
        # Conservation is a hard export precondition: a trace whose
        # components do not tile cores x makespan is a runtime bug.
        attribution.check()
    except ValueError as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 2

    out = args.out or f"{args.workload}_n{args.n}.trace.json"
    graph = stats.get("graph", {})
    payload = to_chrome_trace(
        tracer,
        process_name=f"LAP ({args.cores} cores, {args.workload} n={args.n})",
        metadata={
            "workload": {
                "workload": args.workload, "n": args.n, "tile": args.tile,
                "num_cores": args.cores, "nr": args.nr,
                "policy": runtime.policy.name, "timing": runtime.timing.name,
                "seed": args.seed, "on_chip_kb": args.on_chip_kb,
                "bandwidth_gbs": args.bandwidth_gbs,
                "local_store_kb": args.local_store_kb,
                "stall_overlap": args.stall_overlap,
            },
            "stats": {key: value for key, value in stats.items()
                      if key != "graph"},
            "graph": graph,
            "cycle_attribution": attribution.as_dict(),
        })
    try:
        written = write_chrome_trace(payload, out)
    except (OSError, ValueError) as exc:
        print(f"trace failed: cannot export '{out}': {exc}", file=sys.stderr)
        return 2

    print(f"{args.workload} n={args.n} tile={args.tile} on {args.cores} cores "
          f"[{runtime.policy.name}/{runtime.timing.name}]: "
          f"makespan {stats['makespan_cycles']:.0f} cycles, "
          f"parallel efficiency {100 * stats['parallel_efficiency']:.1f}%")
    if stats.get("residual") is not None:
        print(f"residual      : {stats['residual']:.3e}")
    print()
    print(_attribution_table(attribution))
    print()
    print(f"wrote {written} ({len(tracer.spans)} spans, "
          f"{len(payload['traceEvents'])} events); open in Perfetto "
          f"(https://ui.perfetto.dev) or chrome://tracing")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.attribution import CycleAttribution

    if not args.trace and not args.manifest:
        print("nothing to report: pass --trace TRACE.json and/or "
              "--manifest MANIFEST.json", file=sys.stderr)
        return 2
    payload: Dict[str, object] = {}
    if args.trace:
        try:
            with open(args.trace) as handle:
                trace = json_module.load(handle)
            attribution_dict = trace["metadata"]["cycle_attribution"]
            attribution = CycleAttribution.from_dict(attribution_dict)
        except (OSError, json_module.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            print(f"cannot read attribution from '{args.trace}': {exc}",
                  file=sys.stderr)
            return 2
        payload["trace"] = {"path": args.trace,
                            "workload": trace["metadata"].get("workload"),
                            "cycle_attribution": attribution_dict}
        if not args.json:
            workload = trace["metadata"].get("workload") or {}
            label = " ".join(f"{key}={value}" for key, value in
                             sorted(workload.items()) if value is not None)
            print(f"cycle attribution [{label}]" if label
                  else "cycle attribution")
            print(_attribution_table(attribution))
            print()
    if args.manifest:
        try:
            with open(args.manifest) as handle:
                manifest = json_module.load(handle)
        except (OSError, json_module.JSONDecodeError) as exc:
            print(f"cannot read run manifest '{args.manifest}': {exc}",
                  file=sys.stderr)
            return 2
        payload["manifest"] = manifest
        if not args.json:
            print(f"sweep telemetry [{manifest.get('runner', '?')}]: "
                  f"{manifest.get('jobs', '?')} jobs, "
                  f"{manifest.get('executed', '?')} executed, "
                  f"{manifest.get('cached', '?')} cached "
                  f"[{manifest.get('mode', '?')}, "
                  f"{manifest.get('elapsed_s', 0.0):.2f}s]")
            cache_stats = manifest.get("cache")
            if cache_stats:
                print(f"cache         : {cache_stats.get('hits', 0)} hits, "
                      f"{cache_stats.get('misses', 0)} misses "
                      f"({100.0 * cache_stats.get('hit_rate', 0.0):.1f}% "
                      f"hit rate)")
            latency = manifest.get("latency") or {}
            if latency.get("count"):
                print(f"job latency   : {latency['count']} measured, "
                      f"mean {1e3 * latency['mean_s']:.1f} ms, "
                      f"max {1e3 * latency['max_s']:.1f} ms")
            streaming = manifest.get("streaming") or {}
            if streaming.get("first_row_s") is not None:
                print(f"streaming     : first row "
                      f"{1e3 * streaming['first_row_s']:.1f} ms, last row "
                      f"{1e3 * streaming['last_row_s']:.1f} ms")
            shards = manifest.get("shards") or []
            if shards:
                print()
                print(render_table(shards, max_rows=args.max_rows))
    if args.json:
        return _emit_json(payload, args.json)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="list or regenerate evaluation experiments")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: list all)")
    p_exp.add_argument("--list", action="store_true", help="only list the registry")
    p_exp.add_argument("--max-rows", type=int, default=12)
    p_exp.add_argument("--json", metavar="PATH",
                       help="write results as JSON to PATH ('-' for stdout)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser("simulate", help="run a kernel on the LAC simulator")
    p_sim.add_argument("kernel", choices=kernel_names())
    p_sim.add_argument("--size", type=int, default=16, help="problem dimension")
    p_sim.add_argument("--nr", type=int, default=4, help="core dimension")
    p_sim.add_argument("--frequency", type=float, default=1.0, help="clock in GHz")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_des = sub.add_parser("design", help="evaluate a LAP design point")
    p_des.add_argument("--cores", type=int, default=8)
    p_des.add_argument("--nr", type=int, default=4)
    p_des.add_argument("--frequency", type=float, default=1.0)
    p_des.add_argument("--precision", choices=["single", "double"], default="double")
    p_des.add_argument("--local-store-kbytes", type=float, default=16.0)
    p_des.add_argument("--onchip-mbytes", type=float, default=4.0)
    p_des.add_argument("--utilization", type=float, default=0.9)
    p_des.add_argument("--json", metavar="PATH",
                       help="write the design point as JSON to PATH ('-' for stdout)")
    p_des.set_defaults(func=_cmd_design)

    p_swp = sub.add_parser("sweep", help="run a design-space sweep through the engine")
    p_swp.add_argument("--runner", choices=runner_names(), default="design",
                       help="which evaluation each job runs (default: design)")
    p_swp.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                       help="axis crossed with every other axis (repeatable)")
    p_swp.add_argument("--zip", action="append", metavar="NAME=V1,V2,...",
                       help="axes that vary together (repeatable, equal lengths)")
    p_swp.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="constant parameter applied to every job (repeatable)")
    p_swp.add_argument("--mode", choices=["auto", "serial", "thread", "process"],
                       default="auto", help="execution backend (default: auto)")
    p_swp.add_argument("--workers", type=int, default=None, help="pool size")
    p_swp.add_argument("--batch-size", type=int, default=None, help="jobs per shard")
    p_swp.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    p_swp.add_argument("--no-cache", action="store_true",
                       help="run every job even if cached results exist")
    p_swp.add_argument("--objectives", metavar="A,B,...",
                       help="Pareto objectives (default depends on the runner)")
    p_swp.add_argument("--max-rows", type=int, default=16)
    p_swp.add_argument("--progress", action="store_true",
                       help="print job progress to stderr")
    p_swp.add_argument("--stream", action="store_true",
                       help="consume rows as they land: live stderr line "
                            "with rows done / cache hit-rate / incremental "
                            "Pareto frontier size (supersedes --progress)")
    p_swp.add_argument("--server", metavar="URL", default=None,
                       help="URL of a `repro serve` daemon used as a shared "
                            "second cache tier (read-through/write-behind; "
                            "degrades to local-only if the server goes away)")
    p_swp.add_argument("--submit", action="store_true",
                       help="with --server: run the sweep on the daemon "
                            "itself and stream the rows back over HTTP")
    p_swp.add_argument("--json", metavar="PATH",
                       help="write rows + frontier as JSON to PATH ('-' for stdout)")
    p_swp.add_argument("--manifest", metavar="PATH", default=None,
                       help="write the run manifest (shard timings, job "
                            "latencies, cache hit-rate) to PATH; defaults to "
                            "<json-output>.manifest.json when --json writes "
                            "to a file")
    p_swp.set_defaults(func=_cmd_sweep)

    p_srv = sub.add_parser("serve",
                           help="run the shared design-space service daemon")
    p_srv.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"served cache directory (default: {DEFAULT_CACHE_DIR})")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8731,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8731)")
    p_srv.add_argument("--max-mb", type=float, default=None,
                       help="size budget in MB for the served cache "
                            "(default: REPRO_CACHE_MAX_MB)")
    p_srv.add_argument("--quiet", action="store_true",
                       help="suppress per-request access log lines")
    p_srv.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser("cache", help="inspect or manage the sweep result cache")
    p_cache.add_argument("action", choices=["stats", "clear", "prune"],
                         help="stats: counters and size; clear: remove every "
                              "entry; prune: LRU-evict down to the limits")
    p_cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"cache directory (default: {DEFAULT_CACHE_DIR})")
    p_cache.add_argument("--max-mb", type=float, default=None,
                         help="size budget in MB for prune (default: "
                              "REPRO_CACHE_MAX_MB)")
    p_cache.add_argument("--max-entries", type=int, default=None,
                         help="entry-count budget for prune")
    p_cache.add_argument("--json", metavar="PATH",
                         help="write the result as JSON to PATH ('-' for stdout)")
    p_cache.set_defaults(func=_cmd_cache)

    p_trc = sub.add_parser("trace",
                           help="export a Chrome trace of one LAP workload")
    p_trc.add_argument("--workload", choices=TRACE_WORKLOADS, default="cholesky",
                       help="blocked algorithm to schedule (default: cholesky)")
    p_trc.add_argument("--n", type=int, default=512, help="problem dimension")
    p_trc.add_argument("--tile", type=int, default=64,
                       help="tile edge length (a multiple of --nr)")
    p_trc.add_argument("--cores", type=int, default=8)
    p_trc.add_argument("--nr", type=int, default=4, help="core dimension")
    p_trc.add_argument("--policy", choices=policy_names(), default="greedy")
    p_trc.add_argument("--timing", choices=timing_names(), default="memoized")
    p_trc.add_argument("--seed", type=int, default=0)
    p_trc.add_argument("--onchip-mbytes", type=float, default=4.0,
                       help="physical on-chip memory in MB")
    p_trc.add_argument("--on-chip-kb", type=float, default=None,
                       help="tile-residency capacity override in KiB "
                            "(shrink to surface spill stalls)")
    p_trc.add_argument("--bandwidth-gbs", type=float, default=None,
                       help="off-chip bandwidth override in GB/s")
    p_trc.add_argument("--local-store-kb", type=float, default=None,
                       help="per-core local store in KiB (enables the "
                            "two-level hierarchy)")
    p_trc.add_argument("--stall-overlap", type=float, default=0.0,
                       help="fraction of data-movement cycles hidden under "
                            "compute, in [0, 1] (default: 0)")
    p_trc.add_argument("--fast", action="store_true",
                       help="request the inlined fast scheduler loop; with "
                            "tracing enabled the reference loop runs instead "
                            "(byte-identical schedule) and a note is printed")
    p_trc.add_argument("--out", metavar="PATH", default=None,
                       help="trace output path (default: "
                            "<workload>_n<n>.trace.json)")
    p_trc.set_defaults(func=_cmd_trace)

    p_rep = sub.add_parser("report",
                           help="print attribution / sweep telemetry reports")
    p_rep.add_argument("--trace", metavar="PATH", default=None,
                       help="a .trace.json written by `repro trace`")
    p_rep.add_argument("--manifest", metavar="PATH", default=None,
                       help="a run manifest written by `repro sweep`")
    p_rep.add_argument("--max-rows", type=int, default=16)
    p_rep.add_argument("--json", metavar="PATH", default=None,
                       help="write the report as JSON to PATH ('-' for stdout)")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that exited early (e.g. `head`);
        # silence the traceback and exit like a well-behaved filter.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
