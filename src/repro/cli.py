"""Command-line interface for the reproduction.

Provides three sub-commands:

``experiments``
    list or regenerate the tables/figures of the evaluation
    (``python -m repro.cli experiments --list`` / ``... experiments table_5_1``).
``simulate``
    run one kernel on the cycle-level LAC simulator with a randomly generated
    operand set and report cycles, utilisation and the access counters
    (``python -m repro.cli simulate gemm --size 16``).
``design``
    print the area/power/efficiency of a LAC or LAP design point
    (``python -m repro.cli design --cores 8 --frequency 1.0``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.arch.lap_design import build_lap
from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.report import render_table, summarize_experiment
from repro.hw.fpu import Precision
from repro.kernels import (lac_cholesky, lac_fft, lac_gemm, lac_lu_panel, lac_syrk,
                           lac_trsm)
from repro.lac import LACConfig, LinearAlgebraCore


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list or not args.ids:
        for exp in REGISTRY.values():
            print(f"{exp.exp_id:<18s} [{exp.kind:<10s}] {exp.source:<22s} {exp.description}")
        if args.list:
            return 0
        if not args.ids:
            return 0
    unknown = [i for i in args.ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    for exp_id in args.ids:
        print(summarize_experiment(exp_id, run_experiment(exp_id), max_rows=args.max_rows))
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    core = LinearAlgebraCore(LACConfig(nr=args.nr, frequency_ghz=args.frequency))
    n = args.size
    if n % args.nr:
        print(f"size must be a multiple of nr={args.nr}", file=sys.stderr)
        return 2

    if args.kernel == "gemm":
        result = lac_gemm(core, rng.random((n, n)), rng.random((n, n)), rng.random((n, n)))
    elif args.kernel == "syrk":
        result = lac_syrk(core, rng.random((n, n)), rng.random((n, n)))
    elif args.kernel == "trsm":
        l = np.tril(rng.random((n, n))) + n * np.eye(n)
        result = lac_trsm(core, l, rng.random((n, n)))
    elif args.kernel == "cholesky":
        m = rng.random((n, n))
        result = lac_cholesky(core, m @ m.T + n * np.eye(n))
    elif args.kernel == "lu":
        result = lac_lu_panel(core, rng.random((max(n, args.nr), args.nr)))
    elif args.kernel == "fft":
        points = 4 ** max(1, int(round(np.log(max(n, 4) ** 2) / np.log(4))))
        x = rng.standard_normal(points) + 1j * rng.standard_normal(points)
        result = lac_fft(core, x)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.kernel)

    print(f"kernel        : {result.name}")
    print(f"cycles        : {result.cycles}")
    print(f"MAC ops       : {result.counters.mac_ops}")
    print(f"utilisation   : {100 * result.utilization:.1f}%")
    print(f"GFLOPS @ {args.frequency:.2f} GHz: {result.gflops(args.frequency):.1f}")
    print()
    print(result.counters.summary())
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    precision = Precision.SINGLE if args.precision == "single" else Precision.DOUBLE
    design = build_lap(num_cores=args.cores, nr=args.nr, precision=precision,
                       frequency_ghz=args.frequency,
                       local_store_kbytes=args.local_store_kbytes,
                       onchip_memory_mbytes=args.onchip_mbytes)
    eff = design.efficiency(utilization=args.utilization)
    rows = [{
        "cores": args.cores,
        "nr": args.nr,
        "precision": precision.value,
        "frequency_ghz": args.frequency,
        "area_mm2": round(design.area_mm2, 1),
        "power_w": round(design.power_w(), 2),
        "peak_gflops": round(design.peak_gflops, 1),
        "gflops": round(eff.gflops, 1),
        "gflops_per_w": round(eff.gflops_per_watt, 1),
        "gflops_per_mm2": round(eff.gflops_per_mm2, 2),
    }]
    print(render_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="list or regenerate evaluation experiments")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: list all)")
    p_exp.add_argument("--list", action="store_true", help="only list the registry")
    p_exp.add_argument("--max-rows", type=int, default=12)
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser("simulate", help="run a kernel on the LAC simulator")
    p_sim.add_argument("kernel", choices=["gemm", "syrk", "trsm", "cholesky", "lu", "fft"])
    p_sim.add_argument("--size", type=int, default=16, help="problem dimension")
    p_sim.add_argument("--nr", type=int, default=4, help="core dimension")
    p_sim.add_argument("--frequency", type=float, default=1.0, help="clock in GHz")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_des = sub.add_parser("design", help="evaluate a LAP design point")
    p_des.add_argument("--cores", type=int, default=8)
    p_des.add_argument("--nr", type=int, default=4)
    p_des.add_argument("--frequency", type=float, default=1.0)
    p_des.add_argument("--precision", choices=["single", "double"], default="double")
    p_des.add_argument("--local-store-kbytes", type=float, default=16.0)
    p_des.add_argument("--onchip-mbytes", type=float, default=4.0)
    p_des.add_argument("--utilization", type=float, default=0.9)
    p_des.set_defaults(func=_cmd_design)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
