"""Generators for the figure data series of the evaluation chapters.

Each function returns the data points a figure plots (as lists of dicts or
dicts of series), without any plotting dependency; the benchmark harness
prints the series and asserts the qualitative shape, and examples can feed
them to matplotlib if available.

Every multi-point sweep (core/chip GEMM utilisation, PE frequency and
local-store sweeps, on-chip bandwidth vs memory, level-3 BLAS utilisation,
factorization-kernel efficiency) expands through :mod:`repro.engine`, so
regenerating the paper artifacts inherits the engine's batching, caching
and parallelism: set ``REPRO_FIGURE_CACHE`` to a directory to make figure
regeneration incremental, and ``REPRO_FIGURE_MODE`` to
``thread``/``process`` to force a backend.  The remaining generators are
single-point constructions (breakdowns, comparisons) with nothing to fan
out.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.arch.breakdowns import (cpu_penryn_breakdown, efficiency_comparison,
                                   gpu_fermi_breakdown, gpu_tesla_breakdown, lap_breakdown)
from repro.arch.hybrid import hybrid_design_comparison
from repro.arch.lap_design import build_lap, build_pe
from repro.engine import SweepSpec, sweep
from repro.hw.fpu import Precision
from repro.hw.memory import NUCACache, OnChipMemory
from repro.hw.sfu import SFUPlacement, SpecialFunctionUnit
from repro.models.blas_model import Level3Operation
from repro.models.chip_model import ChipGEMMModel
from repro.models.core_model import CoreGEMMModel
from repro.models.fact_model import FactorizationKernel, MACExtension
from repro.models.fft_model import FFTCoreModel, FFTProblem, FFTVariant


def _engine_kwargs() -> Dict:
    """Execution options for the figure sweeps (overridable via env).

    Invalid settings degrade with a warning rather than failing figure
    regeneration: an unknown mode falls back to ``auto``, an unusable cache
    directory disables caching.
    """
    import sys

    from repro.engine import usable_cache_dir
    from repro.engine.executor import MODES

    mode = os.environ.get("REPRO_FIGURE_MODE", "auto")
    if mode not in MODES:
        print(f"warning: REPRO_FIGURE_MODE='{mode}' is not one of {MODES}; "
              f"using 'auto'", file=sys.stderr)
        mode = "auto"
    cache_dir = usable_cache_dir(os.environ.get("REPRO_FIGURE_CACHE") or None,
                                 label="REPRO_FIGURE_CACHE")
    return {"mode": mode, "cache_dir": cache_dir}


# ----------------------------------------------------------------- Fig. 3.4
def fig_3_4_core_utilization_vs_local_store(n: int = 512) -> List[Dict]:
    """Core utilisation vs local store size for several on-chip bandwidths."""
    spec = (SweepSpec()
            .constants(n=n)
            .grid(nr=(4, 8),
                  bandwidth_bytes_per_cycle=(1, 2, 3, 4, 8),
                  kc=(16, 32, 48, 64, 96, 128, 192, 256, 320, 384, 448, 512))
            .filter(lambda p: p["kc"] <= p["n"]))
    result = sweep(spec.jobs("core_gemm"), **_engine_kwargs())
    return [{
        "nr": row["nr"],
        "bandwidth_bytes_per_cycle": int(row["bandwidth_bytes_per_cycle"]),
        "local_store_kbytes_per_pe": row["local_store_kbytes_per_pe"],
        "utilization_pct": row["utilization_pct"],
    } for row in result.rows]


# ----------------------------------------------------------------- Fig. 3.5
def fig_3_5_peak_bandwidth_vs_local_store(n: int = 512) -> List[Dict]:
    """Bandwidth needed for peak performance vs resulting local store size."""
    rows: List[Dict] = []
    for nr in (4, 8):
        model = CoreGEMMModel(nr=nr)
        rows.extend(model.peak_bandwidth_vs_local_store(
            kc_values=[16, 32, 64, 96, 128, 192, 256, 384, 512], n=n))
    return rows


# ----------------------------------------------------------- Figs. 3.6/3.7
def fig_3_6_pe_efficiency_vs_frequency(precision: Precision = Precision.DOUBLE) -> List[Dict]:
    """PE efficiency metrics (mm^2/GFLOP, mW/GFLOP, energy-delay) vs frequency."""
    spec = (SweepSpec()
            .constants(precision=precision.value, local_store_kbytes=16.0)
            .grid(frequency_ghz=(0.2, 0.33, 0.5, 0.75, 0.95, 1.0, 1.2,
                                 1.4, 1.6, 1.81, 2.08)))
    result = sweep(spec.jobs("pe"), **_engine_kwargs())
    return [{
        "frequency_ghz": row["frequency_ghz"],
        "mm2_per_gflop": row["mm2_per_gflop"],
        "mw_per_gflop": row["mw_per_gflop"],
        "energy_delay": row["energy_delay"],
        "gflops_per_w": row["gflops_per_w"],
        "gflops_per_mm2": row["gflops_per_mm2"],
    } for row in result.rows]


# ----------------------------------------------------------------- Fig. 4.2
def fig_4_2_onchip_bw_vs_memory() -> List[Dict]:
    """On-chip bandwidth vs memory size for (S=8, nr=4) and (S=2, nr=8)."""
    kc_values = (32, 64, 96, 128, 192, 256, 384, 512)
    jobs = []
    for num_cores, nr in ((8, 4), (2, 8)):
        spec = (SweepSpec()
                .constants(num_cores=num_cores, nr=nr, full_overlap=True)
                .grid(n=(512, 1024, 2048), kc=kc_values)
                # The S cores each hold an mc x kc block of A covering
                # disjoint row panels of C, so S * kc cannot exceed n.
                .filter(lambda p: p["kc"] <= p["n"]
                        and p["num_cores"] * p["kc"] <= p["n"]))
        jobs.extend(spec.jobs("chip_gemm_onchip"))
    result = sweep(jobs, **_engine_kwargs())
    return [{
        "n": row["n"],
        "num_cores": row["num_cores"],
        "nr": row["nr"],
        "kc": row["kc"],
        "onchip_memory_mbytes": row["onchip_memory_mbytes"],
        "onchip_bandwidth_bytes_per_cycle": row["onchip_bandwidth_bytes_per_cycle"],
        "utilization": row["utilization"],
    } for row in result.rows]


# ----------------------------------------------------------------- Fig. 4.3
def fig_4_3_performance_vs_cores_and_bw(n: int = 1024) -> List[Dict]:
    """Relative LAP performance vs number of cores, on-chip BW and memory.

    The (num_cores, bandwidth) pairs follow the figure's four sets of curves
    with constant S/BW ratios: {S=4 BW=1, S=8 BW=2, ...} up to
    {S=4 BW=8, ..., S=16 BW=32}; bandwidths are total on-chip words/cycle.
    Performance is relative to the best single-core design point, whose
    jobs ride along in the same engine run (the first four rows).
    """
    kc_values = (32, 64, 128, 256)
    base_jobs = (SweepSpec()
                 .constants(num_cores=1, nr=4, n=n)
                 .grid(kc=kc_values)
                 .jobs("chip_gemm_onchip"))
    jobs = list(base_jobs)
    for num_cores, bw_total in ((4, 1), (8, 2), (12, 3), (16, 4),
                                (4, 2), (8, 4), (12, 6), (16, 8),
                                (4, 4), (8, 8), (12, 12), (16, 16),
                                (4, 8), (8, 16), (12, 24), (16, 32)):
        spec = (SweepSpec()
                .constants(num_cores=num_cores, nr=4, n=n,
                           onchip_bw_words_per_cycle=float(bw_total))
                .grid(kc=kc_values)
                .filter(lambda p: p["num_cores"] * p["kc"] <= p["n"]))
        jobs.extend(spec.jobs("chip_gemm_onchip"))
    result = sweep(jobs, **_engine_kwargs())
    base = min(row["total_cycles"] for row in result.rows[:len(base_jobs)])
    return [{
        "num_cores": row["num_cores"],
        "bw_words_per_cycle": int(row["onchip_bw_words_per_cycle"]),
        "onchip_memory_mbytes": row["onchip_memory_mbytes"],
        "relative_performance_pct": 100.0 * base / row["total_cycles"] if base else 0.0,
        "utilization_pct": row["utilization_pct"],
    } for row in result.rows[len(base_jobs):]]


# ----------------------------------------------------------------- Fig. 4.5
def fig_4_5_offchip_bw_vs_onchip_memory() -> List[Dict]:
    """External bandwidth vs on-chip memory size for several problem sizes."""
    rows: List[Dict] = []
    model = ChipGEMMModel(num_cores=8, nr=4)
    for n in (512, 1024, 2048):
        for divisor in (1, 2, 4, 8):
            ns = n // divisor
            if ns < 64:
                continue
            k = 1
            bw_words = model.offchip_bandwidth_blocked(n, ns, k)
            onchip_words = model.onchip_words_for_subblock(ns, mc=min(256, ns), kc=min(256, ns))
            rows.append({
                "n": n,
                "ns": ns,
                "onchip_memory_mbytes": onchip_words * 8 / 2 ** 20,
                "offchip_bandwidth_bytes_per_cycle": bw_words * 8,
            })
    return rows


# ----------------------------------------------------------------- Fig. 4.6
def fig_4_6_performance_vs_offchip_bw(frequency_ghz: float = 1.4) -> List[Dict]:
    """LAP GFLOPS vs off-chip bandwidth and on-chip memory size."""
    spec = (SweepSpec()
            .constants(nr=4, frequency_ghz=frequency_ghz)
            .grid(num_cores=(4, 8, 16),
                  n=(256, 512, 768, 1024),
                  offchip_bw_bytes_per_cycle=(4, 8, 16, 24)))
    result = sweep(spec.jobs("chip_gemm"), **_engine_kwargs())
    return [{
        "num_cores": row["num_cores"],
        "n": row["n"],
        "onchip_memory_mbytes": row["n"] * row["n"] * 8 / 2 ** 20,
        "offchip_bw_bytes_per_cycle": int(row["offchip_bw_bytes_per_cycle"]),
        "gflops": row["gflops"],
        "utilization_pct": row["utilization_pct"],
    } for row in result.rows]


# ----------------------------------------------------------- Figs. 4.7/4.8
def fig_4_7_4_8_pe_area_power_vs_local_store() -> List[Dict]:
    """PE area and power efficiency vs local store size at 45 nm."""
    spec = (SweepSpec()
            .constants(precision=Precision.DOUBLE.value, frequency_ghz=1.0)
            .grid(local_store_kbytes=(2, 4, 6, 8, 10, 12, 14, 16, 18, 20)))
    result = sweep(spec.jobs("pe"), **_engine_kwargs())
    return [{
        "local_store_kbytes": int(row["local_store_kbytes"]),
        "pe_area_mm2": row["pe_area_mm2"],
        "store_area_mm2": row["store_area_mm2"],
        "fpu_area_mm2": row["fpu_area_mm2"],
        "pe_mw_per_gflop": row["mw_per_gflop"],
        "store_mw_per_gflop": 1e3 * row["memory_power_w"] / row["peak_gflops"],
        "fpu_mw_per_gflop": 1e3 * row["fmac_power_w"] / row["peak_gflops"],
        "leakage_mw_per_gflop": 1e3 * 0.25 * (row["fmac_power_w"] + row["memory_power_w"])
        / row["peak_gflops"],
    } for row in result.rows]


# -------------------------------------------------------- Figs. 4.9 - 4.12
def fig_4_9_to_4_12_system_area_power_vs_onchip_memory(use_nuca: bool = False) -> List[Dict]:
    """Area and power of a 128-MAC system vs on-chip memory size (SRAM or NUCA)."""
    rows: List[Dict] = []
    num_cores, nr, n = 8, 4, 2048
    chip_model = ChipGEMMModel(num_cores=num_cores, nr=nr)
    for mbytes in (0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        design = build_lap(num_cores=num_cores, nr=nr, precision=Precision.DOUBLE,
                           frequency_ghz=1.0, onchip_memory_mbytes=mbytes)
        # Bandwidth the memory must sustain to keep utilisation high shrinks
        # as the memory grows (Fig. 4.5): a smaller memory forces a smaller
        # resident block of C and smaller streamed panels, so the cores pull
        # proportionally more words per cycle out of the on-chip banks.
        ns = min(n, int((mbytes * 2 ** 20 / 8) ** 0.5))
        ns = max(64, (ns // nr) * nr)
        kc_eff = max(16, min(256, (ns // 8 // nr) * nr))
        required_bw_words = chip_model.onchip_bandwidth_words_per_cycle(kc_eff, kc_eff, ns)
        cores_area = num_cores * design.core.area_mm2
        cores_power = num_cores * design.core.power_w
        if use_nuca:
            memory = NUCACache(capacity_bytes=int(mbytes * 2 ** 20), banks=num_cores,
                               frequency_ghz=1.0,
                               required_bandwidth_bytes_per_cycle=required_bw_words * 8)
            mem_area = memory.area_mm2
            mem_power = memory.dynamic_power_w(min(required_bw_words, num_cores)) \
                + memory.leakage_power_w
        else:
            memory = design.onchip_memory
            mem_area = memory.area_mm2
            mem_power = memory.dynamic_power_w(min(required_bw_words, memory.banks)) \
                + memory.leakage_power_w
        peak_gflops = design.peak_gflops
        rows.append({
            "memory_type": "nuca" if use_nuca else "sram",
            "onchip_memory_mbytes": mbytes,
            "cores_area_mm2": cores_area,
            "memory_area_mm2": mem_area,
            "chip_area_mm2": cores_area + mem_area,
            "cores_mw_per_gflop": 1e3 * cores_power / peak_gflops,
            "memory_mw_per_gflop": 1e3 * mem_power / peak_gflops,
            "chip_mw_per_gflop": 1e3 * (cores_power + mem_power) / peak_gflops,
        })
    return rows


# --------------------------------------------------------- Figs. 4.13-4.15
def fig_4_13_to_4_15_power_breakdowns() -> Dict[str, Dict[str, float]]:
    """Normalised (W/GFLOPS) power breakdowns of GPUs/CPU vs equal-throughput LAPs."""
    comparisons = {
        "GTX280_SGEMM": gpu_tesla_breakdown(),
        "LAP_vs_GTX280": lap_breakdown(410.0, Precision.SINGLE),
        "GTX480_SGEMM": gpu_fermi_breakdown(Precision.SINGLE),
        "LAP_vs_GTX480_SP": lap_breakdown(940.0, Precision.SINGLE),
        "GTX480_DGEMM": gpu_fermi_breakdown(Precision.DOUBLE),
        "LAP_vs_GTX480_DP": lap_breakdown(470.0, Precision.DOUBLE),
        "Penryn_DGEMM": cpu_penryn_breakdown(),
        "LAP_vs_Penryn": lap_breakdown(20.0, Precision.DOUBLE, frequency_ghz=1.4),
    }
    return {name: bd.normalized_by_performance() for name, bd in comparisons.items()}


# ---------------------------------------------------------------- Fig. 4.16
def fig_4_16_efficiency_comparison() -> List[Dict]:
    """GFLOPS/W of GPUs/CPU vs equal-throughput LAPs (core and chip level)."""
    return efficiency_comparison()


# ----------------------------------------------------------- Figs. 5.8/5.9
def fig_5_8_5_9_syrk_trsm_utilization(mc: int = 256) -> List[Dict]:
    """SYRK and TRSM utilisation vs local store and bandwidth."""
    spec = (SweepSpec()
            .constants(n=512)
            .grid(nr=(4, 8),
                  operation=(Level3Operation.SYRK.value, Level3Operation.TRSM.value),
                  bandwidth_bytes_per_cycle=(1, 2, 3, 4, 8),
                  kc=(16, 32, 64, 96, 128, 192, 256, 320, 384, 448, 512)))
    result = sweep(spec.jobs("blas"), **_engine_kwargs())
    return [{
        "operation": row["operation"],
        "nr": row["nr"],
        "bandwidth_bytes_per_cycle": int(row["bandwidth_bytes_per_cycle"]),
        "local_store_kbytes_per_pe": row["local_store_kbytes_per_pe"],
        "utilization_pct": row["utilization_pct"],
    } for row in result.rows]


# ---------------------------------------------------------------- Fig. 5.10
def fig_5_10_blas_utilization_comparison() -> List[Dict]:
    """Utilisation of GEMM/TRSM/SYRK/SYR2K at matched design points."""
    operations = (Level3Operation.GEMM.value, Level3Operation.TRSM.value,
                  Level3Operation.SYRK.value, Level3Operation.SYR2K.value)
    jobs = []
    for nr, bw_bytes in ((4, 4), (8, 8)):
        spec = (SweepSpec()
                .constants(nr=nr, bandwidth_bytes_per_cycle=bw_bytes, n=512)
                .grid(kc=(16, 32, 64, 96, 128, 192, 256, 320, 384, 448, 512),
                      operation=operations))
        jobs.extend(spec.jobs("blas"))
    result = sweep(jobs, **_engine_kwargs())
    return [{
        "operation": row["operation"],
        "nr": row["nr"],
        "bandwidth_bytes_per_cycle": int(row["bandwidth_bytes_per_cycle"]),
        "local_store_kbytes_per_pe": row["local_store_kbytes_per_pe"],
        "utilization_pct": row["utilization_pct"],
    } for row in result.rows]


# ----------------------------------------------------------------- Fig. 6.5
def fig_6_5_lac_area_breakdown() -> List[Dict]:
    """LAC area breakdown for the three divide/square-root options."""
    rows = []
    # The PE (and hence the MAC array area) does not depend on the SFU
    # placement, so build it once outside the sweep.
    pe = build_pe(precision=Precision.DOUBLE, frequency_ghz=1.0, local_store_kbytes=16.0)
    pes_area = 16 * pe.area_mm2
    for placement in SFUPlacement:
        sfu = SpecialFunctionUnit(placement=placement, precision=Precision.DOUBLE, nr=4)
        rows.append({
            "option": placement.value,
            "pes_area_mm2": pes_area,
            "sfu_area_mm2": sfu.area_mm2,
            "total_area_mm2": pes_area + sfu.area_mm2,
            "overhead_pct": 100.0 * sfu.area_mm2 / pes_area,
        })
    return rows


# ------------------------------------------------- Figs. 6.6/6.7, A.3-A.8
def fig_6_6_6_7_factorization_efficiency(sizes: Sequence[int] = (64, 128, 256)) -> List[Dict]:
    """Power efficiency of the vector-norm and LU inner kernels vs options.

    The ``fact_kernel`` runner derives the reference core area from the job
    parameters itself, so no per-point ``build_pe`` instantiation happens
    here and the cache keys depend only on the swept options.
    """
    placements = tuple(p.value for p in SFUPlacement)
    cases = [
        (FactorizationKernel.VECTOR_NORM,
         (MACExtension.NONE, MACExtension.COMPARATOR, MACExtension.EXPONENT)),
        (FactorizationKernel.LU, (MACExtension.NONE, MACExtension.COMPARATOR)),
    ]
    jobs = []
    for kernel, extensions in cases:
        spec = (SweepSpec()
                .constants(kernel=kernel.value, nr=4)
                .grid(k=tuple(int(k) for k in sizes),
                      sfu=placements,
                      mac_extension=tuple(e.value for e in extensions)))
        jobs.extend(spec.jobs("fact_kernel"))
    result = sweep(jobs, **_engine_kwargs())
    return [{
        "kernel": row["kernel"],
        "k": row["k"],
        "sfu": row["sfu"],
        "mac_extension": row["mac_extension"],
        "gflops_per_w": row["gflops_per_w"],
        "gflops_per_mm2": row["gflops_per_mm2"],
        "inverse_energy_delay": row["inverse_energy_delay"],
        "cycles": row["cycles"],
    } for row in result.rows]


# ----------------------------------------------------------------- Fig. 6.9
def fig_6_9_hybrid_efficiency_normalized() -> List[Dict]:
    """Efficiency of the FFT / hybrid designs normalised to the original LAC."""
    return hybrid_design_comparison()


# ------------------------------------------------------------ Figs. B.5-B.7
def fig_b_5_to_b_7_fft_requirements() -> List[Dict]:
    """FFT bandwidth / local store / average communication load."""
    model = FFTCoreModel(nr=4)
    rows: List[Dict] = []
    for block in (16, 64, 256, 1024):
        for overlap in (False, True):
            rows.append({
                "block_points": block,
                "overlap": overlap,
                "required_bw_words_per_cycle": model.required_bandwidth_words_per_cycle(
                    block, overlap),
                "local_store_words_per_pe": model.local_store_words_per_pe(block, overlap),
                "max_external_bw_words_per_cycle": model.max_external_bandwidth_words_per_cycle(),
            })
    big = FFTProblem(points=65536, variant=FFTVariant.ONE_D)
    rows.append({
        "block_points": 64,
        "overlap": True,
        "avg_comm_load_words_per_cycle": model.average_communication_load(big, 64),
        "problem": "64K 1D FFT",
    })
    return rows


# ------------------------------------------------- Runtime policy comparison
def runtime_policy_comparison(sizes: Sequence[int] = (32, 64),
                              core_counts: Sequence[int] = (1, 2, 4),
                              tile: int = 8) -> List[Dict]:
    """Makespan and parallel efficiency vs scheduling policy x cores x size.

    Schedules blocked Cholesky task graphs through the LAP runtime under
    every *registered* scheduling policy (greedy earliest-core,
    critical-path priority, locality-aware, memory-aware -- the sweep
    follows ``policy_names()``, so registering a new policy intentionally
    grows this experiment's rows and its golden), with memoized timing so
    the sweep scales to larger graphs; the ``speedup_vs_greedy`` column
    quantifies what a smarter policy buys at each design point.  Expands
    through :mod:`repro.engine` like every other multi-point figure
    (cached, parallel).
    """
    from repro.lap.policies import policy_names

    spec = (SweepSpec()
            .constants(algorithm="cholesky", tile=tile, nr=4, seed=0,
                       timing="memoized", verify=False)
            .grid(policy=tuple(policy_names()),
                  num_cores=tuple(core_counts),
                  n=tuple(sizes)))
    result = sweep(spec.jobs("lap_runtime"), **_engine_kwargs())
    greedy_makespan = {(row["n"], row["num_cores"]): row["makespan_cycles"]
                       for row in result.rows if row["policy"] == "greedy"}
    return [{
        "policy": row["policy"],
        "n": int(row["n"]),
        "num_cores": int(row["num_cores"]),
        "tile": int(row["tile"]),
        "tasks": int(row["tasks_executed"]),
        "critical_path_tasks": int(row["critical_path_tasks"]),
        "graph_width": int(row["graph_width"]),
        "makespan_cycles": int(row["makespan_cycles"]),
        "parallel_efficiency": row["parallel_efficiency"],
        "speedup_vs_greedy": (greedy_makespan[(row["n"], row["num_cores"])]
                              / row["makespan_cycles"]),
    } for row in result.rows]


# ------------------------------------------- Runtime memory-capacity sweep
def runtime_memory_capacity_sweep(on_chip_kb: Sequence[float] = (64.0, 6.0, 3.0),
                                  policies: Sequence[str] = ("greedy",
                                                             "memory_aware"),
                                  n: int = 48, tile: int = 8,
                                  num_cores: int = 2) -> List[Dict]:
    """Off-chip traffic / stalls / energy vs on-chip capacity x policy.

    The data-movement experiment of the memory-hierarchy layer: a blocked
    Cholesky task graph is scheduled under shrinking on-chip capacity (the
    first point holds the whole working set, the others force spills) with
    the plain ``greedy`` scheduler and the residency-driven ``memory_aware``
    one.  Rows report the quantities the paper optimises -- off-chip bytes,
    bandwidth-stall cycles, per-schedule energy and GFLOPS/W -- plus the
    traffic ratio against greedy at the same capacity.
    """
    spec = (SweepSpec()
            .constants(algorithm="cholesky", n=n, tile=tile, nr=4, seed=0,
                       num_cores=num_cores, timing="memoized", verify=False)
            .grid(policy=tuple(policies), on_chip_kb=tuple(on_chip_kb)))
    result = sweep(spec.jobs("lap_runtime"), **_engine_kwargs())
    greedy_traffic = {row["on_chip_kb"]: row["traffic_bytes"]
                      for row in result.rows if row["policy"] == "greedy"}

    def _vs_greedy(row):
        baseline = greedy_traffic.get(row["on_chip_kb"])
        return row["traffic_bytes"] / baseline if baseline else None

    return [{
        "policy": row["policy"],
        "on_chip_kb": float(row["on_chip_kb"]),
        "n": int(row["n"]),
        "tile": int(row["tile"]),
        "num_cores": int(row["num_cores"]),
        "traffic_bytes": int(row["traffic_bytes"]),
        "compulsory_bytes": int(row["compulsory_bytes"]),
        "spill_bytes": int(row["spill_bytes"]),
        "stall_cycles": float(row["stall_cycles"]),
        "makespan_cycles": int(row["makespan_cycles"]),
        "energy_j": float(row["energy_j"]),
        "gflops_per_w": float(row["gflops_per_w"]),
        "arithmetic_intensity": float(row["arithmetic_intensity"]),
        "traffic_vs_greedy": _vs_greedy(row),
    } for row in result.rows]


# ------------------------------------------- Runtime energy/runtime Pareto
def _memory_subsystem_leakage_w(on_chip_kb: float, local_store_kb: float,
                                num_cores: int) -> float:
    """Static power of the swept memory configuration.

    The shared level is modelled as the banked on-chip SRAM at the swept
    capacity; each per-core local store is a single-bank SRAM of its
    budget.  This is the capacity cost that trades against the dynamic
    data-movement savings of a bigger memory: leaky capacity must earn its
    keep by removing spill traffic and stalls.
    """
    shared = OnChipMemory(capacity_bytes=int(on_chip_kb * 1024))
    total = shared.leakage_power_w
    if local_store_kb > 0:
        local = OnChipMemory(capacity_bytes=int(local_store_kb * 1024), banks=1)
        total += num_cores * local.leakage_power_w
    return total


def runtime_energy_pareto(on_chip_kb: Sequence[float] = (64.0, 6.0, 3.0),
                          bandwidth_gbs: Sequence[float] = (16.0, 64.0),
                          policies: Sequence[str] = ("greedy", "memory_aware",
                                                     "affinity"),
                          stall_overlap: Sequence[float] = (0.0, 1.0),
                          core_counts: Sequence[int] = (1, 2, 4),
                          local_store_kb: float = 2.0,
                          n: int = 48, tile: int = 8) -> List[Dict]:
    """Energy/runtime Pareto frontier over capacity x bandwidth x policy x overlap.

    The co-design question of the memory hierarchy: each swept point
    schedules one blocked Cholesky through the two-level runtime and is
    scored on two axes -- total energy (the dynamic data-movement energy of
    the schedule plus the leakage of the swept memory capacities integrated
    over the makespan) and runtime (makespan cycles).  ``core_counts``
    spans the parallelism/energy trade the per-core stores create: more
    cores finish sooner but leak more local-store capacity and move more
    tiles core to core.  The engine's Pareto analysis marks the
    non-dominated points (``on_frontier``), i.e. the capacity / bandwidth /
    policy / prefetch / core-count combinations where spending more memory
    or smarter scheduling actually buys efficiency instead of just burning
    leakage.
    """
    spec = (SweepSpec()
            .constants(algorithm="cholesky", n=n, tile=tile, nr=4, seed=0,
                       timing="memoized", verify=False,
                       local_store_kb=local_store_kb)
            .grid(policy=tuple(policies), on_chip_kb=tuple(on_chip_kb),
                  bandwidth_gbs=tuple(bandwidth_gbs),
                  stall_overlap=tuple(stall_overlap),
                  num_cores=tuple(int(c) for c in core_counts)))
    result = sweep(spec.jobs("lap_runtime"), **_engine_kwargs())
    rows = []
    for row in result.rows:
        leakage_w = _memory_subsystem_leakage_w(float(row["on_chip_kb"]),
                                                float(row["local_store_kb"]),
                                                int(row["num_cores"]))
        seconds = float(row["makespan_ns"]) * 1e-9
        static_energy_j = leakage_w * seconds
        rows.append({
            "policy": row["policy"],
            "on_chip_kb": float(row["on_chip_kb"]),
            "bandwidth_gbs": float(row["bandwidth_gbs"]),
            "stall_overlap": float(row["stall_overlap"]),
            "local_store_kb": float(row["local_store_kb"]),
            "n": int(row["n"]),
            "tile": int(row["tile"]),
            "num_cores": int(row["num_cores"]),
            "makespan_cycles": int(row["makespan_cycles"]),
            "spill_bytes": int(row["spill_bytes"]),
            "local_hit_rate": float(row["local_hit_rate"]),
            "dynamic_energy_j": float(row["energy_j"]),
            "static_energy_j": static_energy_j,
            "total_energy_j": float(row["energy_j"]) + static_energy_j,
            "gflops_per_w": float(row["gflops_per_w"]),
        })
    from repro.engine import pareto_frontier

    frontier = pareto_frontier(rows,
                               objectives=("total_energy_j", "makespan_cycles"),
                               minimize=("total_energy_j", "makespan_cycles"))
    frontier_ids = {id(row) for row in frontier}
    for row in rows:
        row["on_frontier"] = id(row) in frontier_ids
    return rows
