"""Experiment registry: regenerate every table and figure of the evaluation.

* :mod:`repro.experiments.registry` -- metadata and lookup for all
  experiments (id, kind, paper location, generator).
* :mod:`repro.experiments.tables` -- generators for the numbered tables.
* :mod:`repro.experiments.figures` -- generators for the figure data series.
* :mod:`repro.experiments.report` -- plain-text rendering used by the
  benchmark harness and by EXPERIMENTS.md.
"""

from repro.experiments.registry import Experiment, REGISTRY, get_experiment, list_experiments, run_experiment

__all__ = [
    "Experiment",
    "REGISTRY",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
