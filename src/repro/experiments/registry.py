"""Registry mapping every evaluated table / figure to its generator.

Each entry records the experiment id (as referenced by DESIGN.md and
EXPERIMENTS.md), the kind (table or figure), where in the dissertation it
comes from, a one-line description, and the callable that regenerates the
data.  The benchmark harness iterates over this registry so that adding a new
experiment automatically adds a benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import figures, tables
from repro.models.validation import (predict_clearspeed_csx_utilization,
                                     predict_fermi_c2050_utilization)


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment (a table or a figure data series)."""

    exp_id: str
    kind: str                  #: "table", "figure" or "validation"
    source: str                #: chapter / section of the dissertation
    description: str
    generator: Callable[[], object]

    def run(self) -> object:
        """Execute the generator and return its data."""
        return self.generator()


def _validation_summary() -> List[Dict]:
    fermi = predict_fermi_c2050_utilization()
    csx = predict_clearspeed_csx_utilization()
    return [
        {
            "architecture": p.architecture,
            "limiting_resource": p.limiting_resource,
            "predicted_utilization_pct": 100.0 * p.predicted_utilization,
            "published_utilization_pct": 100.0 * p.published_utilization,
            "prediction_error_pct": 100.0 * p.prediction_error,
        }
        for p in (fermi, csx)
    ]


REGISTRY: Dict[str, Experiment] = {}


def _register(exp_id: str, kind: str, source: str, description: str,
              generator: Callable[[], object]) -> None:
    if exp_id in REGISTRY:
        raise ValueError(f"duplicate experiment id '{exp_id}'")
    REGISTRY[exp_id] = Experiment(exp_id=exp_id, kind=kind, source=source,
                                  description=description, generator=generator)


# ---------------------------------------------------------------- Chapter 3
_register("table_3_1", "table", "Sec. 3.6",
          "PE area/power/efficiency across frequencies (SP & DP, 16 KB store)",
          tables.table_3_1_pe_design_points)
_register("fig_3_4", "figure", "Sec. 3.5",
          "Core GEMM utilisation vs local store size and on-chip bandwidth",
          figures.fig_3_4_core_utilization_vs_local_store)
_register("fig_3_5", "figure", "Sec. 3.5",
          "Bandwidth needed for peak vs local store size",
          figures.fig_3_5_peak_bandwidth_vs_local_store)
_register("fig_3_6", "figure", "Sec. 3.6",
          "PE efficiency metrics vs frequency (sweet spot ~1 GHz)",
          figures.fig_3_6_pe_efficiency_vs_frequency)
_register("table_3_2", "table", "Sec. 3.6",
          "Core-level comparison of architectures running GEMM",
          tables.table_3_2_core_comparison)

# ---------------------------------------------------------------- Chapter 4
_register("table_4_1", "table", "Sec. 4.2",
          "Memory size / bandwidth requirements of the hierarchy layers",
          tables.table_4_1_hierarchy_requirements)
_register("fig_4_2", "figure", "Sec. 4.2.1",
          "On-chip bandwidth vs on-chip memory size",
          figures.fig_4_2_onchip_bw_vs_memory)
_register("fig_4_3", "figure", "Sec. 4.2.2",
          "LAP performance vs number of cores, bandwidth and memory",
          figures.fig_4_3_performance_vs_cores_and_bw)
_register("fig_4_5", "figure", "Sec. 4.2.3",
          "Off-chip bandwidth vs on-chip memory size",
          figures.fig_4_5_offchip_bw_vs_onchip_memory)
_register("fig_4_6", "figure", "Sec. 4.2.3",
          "LAP performance vs off-chip bandwidth and on-chip memory",
          figures.fig_4_6_performance_vs_offchip_bw)
_register("validation_4_3", "validation", "Sec. 4.3",
          "Utilisation prediction for Fermi C2050 and ClearSpeed CSX",
          _validation_summary)
_register("fig_4_7_4_8", "figure", "Sec. 4.4",
          "PE area and power efficiency vs local store size",
          figures.fig_4_7_4_8_pe_area_power_vs_local_store)
_register("fig_4_9_4_10", "figure", "Sec. 4.4",
          "Area / power of a 128-MAC system vs on-chip SRAM size",
          lambda: figures.fig_4_9_to_4_12_system_area_power_vs_onchip_memory(use_nuca=False))
_register("fig_4_11_4_12", "figure", "Sec. 4.4",
          "Area / power of a 128-MAC system vs on-chip NUCA cache size",
          lambda: figures.fig_4_9_to_4_12_system_area_power_vs_onchip_memory(use_nuca=True))
_register("fig_4_13_4_15", "figure", "Sec. 4.5",
          "Normalised power breakdowns: GTX280 / GTX480 / Penryn vs LAP",
          figures.fig_4_13_to_4_15_power_breakdowns)
_register("fig_4_16", "figure", "Sec. 4.5",
          "GFLOPS/W comparison at equal throughput",
          figures.fig_4_16_efficiency_comparison)
_register("table_4_2", "table", "Sec. 4.5",
          "Chip-level comparison of systems running GEMM",
          tables.table_4_2_chip_comparison)
_register("table_4_3", "table", "Sec. 4.5",
          "Qualitative design-choice comparison (CPU / GPU / LAP)",
          tables.table_4_3_design_choices)

# ---------------------------------------------------------------- Chapter 5
_register("fig_5_8_5_9", "figure", "Sec. 5.4",
          "SYRK and TRSM utilisation vs local store and bandwidth",
          figures.fig_5_8_5_9_syrk_trsm_utilization)
_register("fig_5_10", "figure", "Sec. 5.4",
          "Utilisation of representative level-3 BLAS operations",
          figures.fig_5_10_blas_utilization_comparison)
_register("table_5_1", "table", "Sec. 5.4",
          "LAC efficiency for level-3 BLAS algorithms at 1.1 GHz",
          tables.table_5_1_blas_efficiency)

# ------------------------------------------------- Chapter 6 / Appendix A
_register("fig_6_5", "figure", "Sec. 6.1.5",
          "LAC area breakdown with different divide/square-root extensions",
          figures.fig_6_5_lac_area_breakdown)
_register("fig_6_6_6_7", "figure", "Sec. 6.1.5 / App. A.4",
          "Power efficiency of vector-norm and LU kernels vs extensions",
          figures.fig_6_6_6_7_factorization_efficiency)
_register("table_a_2", "table", "App. A.4",
          "Cycle counts and dynamic energy for factorization kernels",
          tables.table_a_2_factorization_costs)

# ------------------------------------------------- Chapter 6.2 / Appendix B
_register("table_6_2", "table", "Sec. 6.2.3",
          "Cache-contained DP FFT: hybrid core vs alternatives",
          tables.table_6_2_fft_comparison)
_register("fig_6_9", "figure", "Sec. 6.2.3",
          "Efficiency of FFT / hybrid designs normalised to the original LAC",
          figures.fig_6_9_hybrid_efficiency_normalized)
_register("table_b_1", "table", "App. B.2.3",
          "FFT core requirements (overlap / non-overlap, 1D / 2D)",
          tables.table_b_1_fft_requirements)
_register("fig_b_5_b_7", "figure", "App. B.3.1",
          "FFT bandwidth / local store / average communication load",
          figures.fig_b_5_to_b_7_fft_requirements)
_register("table_b_2", "table", "App. B.3.3",
          "PE SRAM options: area, energy and achievable frequency",
          tables.table_b_2_pe_sram_options)
_register("table_b_3", "table", "App. B.4",
          "Dedicated LAC / dedicated FFT / hybrid PE designs",
          tables.table_b_3_pe_designs)

# ---------------------------------------------------------- runtime sweeps
_register("runtime_policies", "figure", "Ch. 5 programming env.",
          "LAP-runtime makespan/efficiency vs scheduling policy x cores x size",
          figures.runtime_policy_comparison)
_register("runtime_memory", "figure", "Sec. 4.2.3 data movement",
          "Off-chip traffic / stalls / energy vs on-chip capacity x policy",
          figures.runtime_memory_capacity_sweep)
_register("runtime_energy_pareto", "figure", "Sec. 4.4 energy trade-offs",
          "Energy/runtime Pareto over capacity x bandwidth x policy x overlap",
          figures.runtime_energy_pareto)


# ------------------------------------------------------- methodology extras
def _scaled_provenance() -> List[Dict]:
    from repro.arch.scaling import scaled_comparison_rows
    return scaled_comparison_rows()


_register("scaling_provenance", "table", "Sec. 1.3 / 4.5 methodology",
          "Published measurements and their 45 nm-scaled equivalents",
          _scaled_provenance)


def get_experiment(exp_id: str) -> Experiment:
    """Look up one experiment by id."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise KeyError(f"unknown experiment '{exp_id}'; known ids: {sorted(REGISTRY)}") from None


def list_experiments(kind: Optional[str] = None) -> List[Experiment]:
    """All registered experiments, optionally filtered by kind."""
    return [e for e in REGISTRY.values() if kind is None or e.kind == kind]


def run_experiment(exp_id: str) -> object:
    """Run one experiment and return its data."""
    return get_experiment(exp_id).run()
