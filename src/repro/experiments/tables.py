"""Generators for the numbered tables of the evaluation chapters.

Every function returns a list of dictionaries (one per table row), so the
benchmark harness, the text report and the tests can all consume the same
data without any plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.database import chip_level_specs, core_level_specs, design_choice_comparison
from repro.arch.hybrid import fft_alternatives_comparison, hybrid_design_comparison
from repro.arch.lap_design import build_lac, build_pe, pe_frequency_sweep
from repro.hw.fpu import Precision
from repro.hw.sfu import SFUPlacement
from repro.hw.sram import SRAMConfig, SRAMModel
from repro.models.blas_model import BlasCoreModel, Level3Operation
from repro.models.chip_model import ChipGEMMModel
from repro.models.fact_model import (FactorizationKernel, FactorizationKernelModel,
                                     MACExtension)
from repro.models.fft_model import FFTCoreModel


# --------------------------------------------------------------- Table 3.1
def table_3_1_pe_design_points(local_store_kbytes: float = 16.0) -> List[Dict]:
    """PE area/power/efficiency across frequencies, single and double precision."""
    rows: List[Dict] = []
    sp_freqs = [2.08, 1.32, 0.98, 0.50]
    dp_freqs = [1.81, 0.95, 0.33, 0.20]
    for precision, freqs in ((Precision.SINGLE, sp_freqs), (Precision.DOUBLE, dp_freqs)):
        for pe in pe_frequency_sweep(precision, freqs, local_store_kbytes):
            rows.append(pe.as_table_row())
    return rows


# --------------------------------------------------------------- Table 3.2
def table_3_2_core_comparison() -> List[Dict]:
    """Core-level comparison of architectures running GEMM (45 nm scaled)."""
    rows = []
    for spec in core_level_specs():
        rows.append({
            "architecture": spec.name,
            "precision": spec.precision,
            "w_per_mm2": spec.watts_per_mm2,
            "gflops_per_mm2": spec.gflops_per_mm2,
            "gflops_per_w": spec.gflops_per_watt,
            "utilization_pct": 100.0 * spec.utilization,
            "is_lap": spec.is_lap,
        })
    return rows


# --------------------------------------------------------------- Table 4.1
def table_4_1_hierarchy_requirements(num_cores: int = 8, nr: int = 4,
                                     mc: int = 256, kc: int = 256,
                                     n: int = 2048) -> List[Dict]:
    """Bandwidth and memory requirements of the memory-hierarchy layers."""
    model = ChipGEMMModel(num_cores=num_cores, nr=nr)
    rows = []
    for req in model.hierarchy_requirements(mc, kc, n):
        rows.append({
            "level": req.level,
            "overlap": req.overlap,
            "memory_words": req.memory_words,
            "memory_kbytes": req.memory_bytes() / 1024.0,
            "bandwidth_words_per_cycle": req.bandwidth_words_per_cycle,
            "bandwidth_bytes_per_cycle": req.bandwidth_bytes_per_cycle(),
        })
    return rows


# --------------------------------------------------------------- Table 4.2
def table_4_2_chip_comparison() -> List[Dict]:
    """Chip-level comparison of systems running GEMM (45 nm scaled)."""
    rows = []
    for spec in chip_level_specs():
        rows.append({
            "architecture": spec.name,
            "precision": spec.precision,
            "gflops": spec.gflops,
            "w_per_mm2": spec.watts_per_mm2,
            "gflops_per_mm2": spec.gflops_per_mm2,
            "gflops_per_w": spec.gflops_per_watt,
            "gflops2_per_w": spec.inverse_energy_delay,
            "utilization_pct": 100.0 * spec.utilization,
            "is_lap": spec.is_lap,
        })
    return rows


# --------------------------------------------------------------- Table 4.3
def table_4_3_design_choices() -> List[Dict]:
    """Qualitative design-choice comparison of CPUs, GPUs and the LAP."""
    return design_choice_comparison()


# --------------------------------------------------------------- Table 5.1
def table_5_1_blas_efficiency(frequency_ghz: float = 1.1,
                              local_store_kbytes: float = 20.0) -> List[Dict]:
    """LAC efficiency for level-3 BLAS algorithms at 1.1 GHz.

    Combines the analytical utilisation of each operation (at the design
    point of Chapter 5: ~20 KB/PE, 4 B/cycle, nr in {4, 8}) with the power
    and area of the core design point to produce W/mm^2, GFLOPS/mm^2 and
    GFLOPS/W columns.
    """
    rows: List[Dict] = []
    for nr in (4, 8):
        blas = BlasCoreModel(nr=nr)
        lac = build_lac(nr=nr, precision=Precision.DOUBLE, frequency_ghz=frequency_ghz,
                        local_store_kbytes=local_store_kbytes)
        bw = 4.0 if nr == 4 else 8.0  # bytes/cycle -> here elements: 8B elements
        bw_elements = bw / 8.0 * 8.0  # keep in elements/cycle for the model
        for op in (Level3Operation.GEMM, Level3Operation.TRSM,
                   Level3Operation.SYRK, Level3Operation.SYR2K):
            util = blas.utilization(op, mc=256, kc=256, n=512,
                                    bandwidth_elements_per_cycle=bw_elements).utilization
            eff = lac.efficiency(utilization=max(util, 1e-3))
            rows.append({
                "operation": op.value,
                "nr": nr,
                "utilization_pct": 100.0 * util,
                "w_per_mm2": eff.watts_per_mm2,
                "gflops_per_mm2": eff.gflops_per_mm2,
                "gflops_per_w": eff.gflops_per_watt,
            })
    return rows


# --------------------------------------------------------------- Table 6.2
def table_6_2_fft_comparison() -> List[Dict]:
    """Cache-contained double-precision FFT: hybrid core vs alternatives."""
    return fft_alternatives_comparison()


# --------------------------------------------------------------- Table A.2
def table_a_2_factorization_costs(sizes: Sequence[int] = (64, 128, 256)) -> List[Dict]:
    """Cycle counts and dynamic energy for the factorization inner kernels.

    Rows sweep the three divide/square-root options (columns of the paper's
    table) and the MAC-extension options (row groups) for Cholesky, LU and
    the vector norm at several panel heights.
    """
    model = FactorizationKernelModel(nr=4)
    rows: List[Dict] = []
    kernel_extensions = {
        FactorizationKernel.CHOLESKY: [MACExtension.NONE],
        FactorizationKernel.LU: [MACExtension.NONE, MACExtension.COMPARATOR],
        FactorizationKernel.VECTOR_NORM: [MACExtension.NONE, MACExtension.EXPONENT],
    }
    for kernel, extensions in kernel_extensions.items():
        for k in sizes:
            k_eff = max(k, model.nr)
            for placement in SFUPlacement:
                for ext in extensions:
                    res = model.evaluate(kernel, k_eff, placement, ext)
                    rows.append({
                        "kernel": kernel.value,
                        "k": k_eff,
                        "sfu": placement.value,
                        "mac_extension": ext.value,
                        "cycles": res.cycles,
                        "dynamic_energy_nj": res.dynamic_energy_j * 1e9,
                        "gflops_per_w": res.gflops_per_watt(model.frequency_ghz),
                    })
    return rows


# --------------------------------------------------------------- Table B.1
def table_b_1_fft_requirements(n_values: Sequence[int] = (64, 128, 256)) -> List[Dict]:
    """Core requirements for overlapped / non-overlapped 1D and 2D FFTs."""
    model = FFTCoreModel(nr=4)
    return model.table_b1_requirements(n_values)


# --------------------------------------------------------------- Table B.2
def table_b_2_pe_sram_options() -> List[Dict]:
    """PE SRAM options: area, per-access energy and achievable frequency."""
    options = [
        ("16KB single-ported", SRAMConfig(16 * 1024, ports=1, word_bytes=8)),
        ("16KB dual-ported", SRAMConfig(16 * 1024, ports=2, word_bytes=8)),
        ("8KB single-ported", SRAMConfig(8 * 1024, ports=1, word_bytes=8)),
        ("8KB dual-ported", SRAMConfig(8 * 1024, ports=2, word_bytes=8)),
        ("4KB single-ported", SRAMConfig(4 * 1024, ports=1, word_bytes=8)),
        ("2 x 8KB single-ported", SRAMConfig(16 * 1024, ports=1, word_bytes=8, banks=2)),
    ]
    rows = []
    for label, cfg in options:
        model = SRAMModel(cfg)
        rows.append({
            "option": label,
            "capacity_kbytes": cfg.capacity_kbytes,
            "ports": cfg.ports,
            "banks": cfg.banks,
            "area_mm2": model.area_mm2,
            "energy_per_access_pj": model.energy_per_access_j * 1e12,
            "max_frequency_ghz": model.max_frequency_ghz(),
            "peak_bw_bytes_per_cycle": model.peak_bandwidth_bytes_per_cycle(),
        })
    return rows


# --------------------------------------------------------------- Table B.3
def table_b_3_pe_designs() -> List[Dict]:
    """Dedicated LAC, dedicated FFT and hybrid PE designs compared."""
    return hybrid_design_comparison()
