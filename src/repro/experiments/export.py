"""Export experiment results to CSV / JSON files.

The registry generators return lists of dictionaries (or dictionaries of
series); this module serialises them so that external plotting or analysis
tools can pick the data up without importing the package.

``export_experiment`` writes one experiment; ``export_all`` writes every
registered experiment into a directory with one file per experiment plus a
manifest describing what was produced; ``write_json`` serialises one
arbitrary payload to a file or stdout (the CLI's ``--json`` flag).
"""

from __future__ import annotations

import csv
import json
import pathlib
import sys
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.experiments.registry import REGISTRY, get_experiment

PathLike = Union[str, pathlib.Path]


def write_json(payload: object, path: PathLike) -> Optional[pathlib.Path]:
    """Serialise ``payload`` as JSON to ``path``, or to stdout when ``-``.

    Returns the written path, or ``None`` for stdout.  Non-JSON values
    (enums, numpy scalars, ...) are stringified rather than rejected.
    """
    if str(path) == "-":
        json.dump(payload, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
        return None
    path = pathlib.Path(path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def _rows_to_csv(rows: Sequence[Mapping[str, object]], path: pathlib.Path) -> None:
    columns: List[str] = []
    for row in rows:
        for key in row.keys():
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})


def export_experiment(exp_id: str, directory: PathLike, fmt: str = "csv") -> pathlib.Path:
    """Run one experiment and write its data to ``directory``.

    Tabular results (lists of dicts) are written as CSV when ``fmt="csv"``;
    everything (including dict-of-series results such as the power-breakdown
    figures) can be written as JSON with ``fmt="json"``.
    Returns the path of the written file.
    """
    if fmt not in ("csv", "json"):
        raise ValueError(f"unsupported export format '{fmt}'")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    experiment = get_experiment(exp_id)
    data = experiment.run()

    if fmt == "json" or isinstance(data, Mapping):
        path = directory / f"{exp_id}.json"
        with path.open("w") as handle:
            json.dump({"experiment": exp_id, "kind": experiment.kind,
                       "source": experiment.source, "description": experiment.description,
                       "data": data}, handle, indent=2, default=str)
        return path

    if not isinstance(data, Sequence) or (data and not isinstance(data[0], Mapping)):
        raise TypeError(f"experiment '{exp_id}' does not produce tabular data; "
                        f"export it as JSON instead")
    path = directory / f"{exp_id}.csv"
    _rows_to_csv(list(data), path)
    return path


def export_all(directory: PathLike, fmt: str = "csv",
               experiment_ids: Optional[Iterable[str]] = None) -> Dict[str, str]:
    """Export every (or the selected) registered experiment.

    Returns a manifest mapping experiment id to the written file name; the
    manifest itself is also written as ``manifest.json`` in the directory.
    """
    directory = pathlib.Path(directory)
    ids = list(experiment_ids) if experiment_ids is not None else list(REGISTRY.keys())
    manifest: Dict[str, str] = {}
    for exp_id in ids:
        experiment = get_experiment(exp_id)
        data_preview = experiment.run()
        chosen_fmt = "json" if isinstance(data_preview, Mapping) else fmt
        path = export_experiment(exp_id, directory, fmt=chosen_fmt)
        manifest[exp_id] = path.name
    manifest_path = directory / "manifest.json"
    with manifest_path.open("w") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest
