"""Plain-text rendering of experiment data for benches and EXPERIMENTS.md.

Keeps the formatting logic out of the benchmark files: a list of dict rows
becomes a fixed-width text table, and a dict of named series becomes a short
listing.  No plotting libraries are required anywhere in the package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Format one cell: floats rounded, booleans as Y/N, everything else str()."""
    if isinstance(value, bool):
        return "Y" if value else "N"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
                 max_rows: Optional[int] = None, precision: int = 3) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    display_rows = rows if max_rows is None else rows[:max_rows]
    cells = [[format_value(r.get(col, ""), precision) for col in columns] for r in display_rows]
    widths = [max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
              for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "-+-".join("-" * w for w in widths)
    body = "\n".join(" | ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
                     for row in cells)
    footer = ""
    if max_rows is not None and len(rows) > max_rows:
        footer = f"\n... ({len(rows) - max_rows} more rows)"
    return f"{header}\n{sep}\n{body}{footer}"


def render_series(series: Mapping[str, Mapping[str, float]], precision: int = 4) -> str:
    """Render a dict of named value-maps (e.g. power breakdowns) as text."""
    lines: List[str] = []
    for name, values in series.items():
        lines.append(f"{name}:")
        for key, value in values.items():
            lines.append(f"  {key:<32s} {format_value(float(value), precision)}")
    return "\n".join(lines)


def summarize_experiment(exp_id: str, data: object, max_rows: int = 12) -> str:
    """One-block summary of an experiment result for bench output / reports."""
    header = f"== {exp_id} =="
    if isinstance(data, Mapping):
        return f"{header}\n{render_series(data)}"
    if isinstance(data, Sequence) and data and isinstance(data[0], Mapping):
        return f"{header}\n{render_table(data, max_rows=max_rows)}"
    return f"{header}\n{data!r}"
