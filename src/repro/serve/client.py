"""HTTP client for a ``repro serve`` design-space service.

:class:`ServeClient` wraps the daemon's JSON-over-HTTP protocol in plain
``urllib`` calls with production-grade failure handling:

* every request carries a hard **timeout** (``timeout_s``, defaulting to
  the ``REPRO_REMOTE_TIMEOUT_S`` environment knob), so a stalled server
  can never wedge a sweep;
* transient failures (connection refused/reset, timeouts, HTTP 5xx) are
  retried up to ``retries`` times (``REPRO_REMOTE_RETRIES``) with
  **exponential backoff plus jitter**, so a fleet of workers hammering a
  briefly-overloaded server does not retry in lockstep;
* a request that stays down through every retry raises
  :exc:`ServerUnavailable` -- a single exception type callers (the
  :class:`~repro.serve.remote.RemoteCache` tier) catch to degrade to
  local-only operation.

A ``GET`` that reaches the server but finds nothing (HTTP 404) returns
``None``: a cache miss is an answer, not a failure.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional

__all__ = ["ServeClient", "ServerUnavailable", "DEFAULT_TIMEOUT_S",
           "DEFAULT_RETRIES", "REMOTE_TIMEOUT_ENV", "REMOTE_RETRIES_ENV",
           "env_remote_timeout_s", "env_remote_retries"]

#: Environment knob for the per-request timeout in seconds.
REMOTE_TIMEOUT_ENV = "REPRO_REMOTE_TIMEOUT_S"

#: Environment knob for the number of retries after the first attempt.
REMOTE_RETRIES_ENV = "REPRO_REMOTE_RETRIES"

#: Per-request timeout when neither the constructor nor the environment
#: sets one.  Generous enough for a loaded server streaming a large entry,
#: small enough that a dead server degrades a sweep within seconds.
DEFAULT_TIMEOUT_S = 5.0

#: Retries after the first attempt (3 attempts total by default).
DEFAULT_RETRIES = 2

#: First backoff sleep; attempt ``k`` sleeps ``backoff_s * 2**k`` scaled by
#: a uniform [1, 2) jitter factor.
DEFAULT_BACKOFF_S = 0.05


class ServerUnavailable(Exception):
    """The server could not be reached (or kept failing) through every retry."""


def _env_float(name: str, default: float, minimum: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        print(f"warning: {name}='{raw}' is not a number; using {default}",
              file=sys.stderr)
        return default
    if value < minimum:
        print(f"warning: {name}={value} is below {minimum}; using {default}",
              file=sys.stderr)
        return default
    return value


def env_remote_timeout_s() -> float:
    """Per-request timeout from ``REPRO_REMOTE_TIMEOUT_S`` (default 5.0)."""
    return _env_float(REMOTE_TIMEOUT_ENV, DEFAULT_TIMEOUT_S, minimum=1e-3)


def env_remote_retries() -> int:
    """Retry count from ``REPRO_REMOTE_RETRIES`` (default 2)."""
    return int(_env_float(REMOTE_RETRIES_ENV, float(DEFAULT_RETRIES),
                          minimum=0.0))


class ServeClient:
    """JSON-over-HTTP client for one ``repro serve`` daemon.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8731`` (a trailing slash is
        tolerated).
    timeout_s / retries:
        Per-request timeout and retry budget; ``None`` reads the
        ``REPRO_REMOTE_TIMEOUT_S`` / ``REPRO_REMOTE_RETRIES`` environment
        knobs, falling back to 5 s / 2 retries.
    backoff_s:
        Base of the exponential backoff between retries (jittered).
    """

    def __init__(self, base_url: str, timeout_s: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff_s: float = DEFAULT_BACKOFF_S) -> None:
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.timeout_s = (timeout_s if timeout_s is not None
                          else env_remote_timeout_s())
        self.retries = retries if retries is not None else env_remote_retries()
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        self.backoff_s = backoff_s
        #: Seam for tests: the sleep used between retries.
        self._sleep = time.sleep
        #: Total request attempts / retry sleeps performed (telemetry).
        self.attempts = 0
        self.retried = 0

    # ------------------------------------------------------------ transport
    def _url(self, path: str) -> str:
        return f"{self.base_url}/{path.lstrip('/')}"

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None, stream: bool = False):
        """One retried request; parsed JSON (or the response when streaming).

        Raises :exc:`ServerUnavailable` once the retry budget is exhausted;
        an HTTP 404 returns ``None`` (a miss, not a failure); any other
        4xx raises immediately (retrying a protocol error cannot help).
        """
        url = self._url(path)
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retried += 1
                self._sleep(self.backoff_s * (2 ** (attempt - 1))
                            * (1.0 + random.random()))
            self.attempts += 1
            request = urllib.request.Request(
                url, data=body, method=method,
                headers={"Content-Type": "application/json"})
            try:
                response = urllib.request.urlopen(request,
                                                  timeout=self.timeout_s)
                if stream:
                    return response
                with response:
                    data = response.read()
                return json.loads(data) if data else None
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None
                if exc.code < 500:
                    detail = ""
                    try:
                        detail = exc.read().decode("utf-8", "replace").strip()
                    except OSError:
                        pass
                    raise ServerUnavailable(
                        f"{method} {url}: HTTP {exc.code}"
                        f"{' -- ' + detail if detail else ''}") from exc
                last_error = exc
            except (urllib.error.URLError, http.client.HTTPException,
                    TimeoutError, ConnectionError, OSError,
                    json.JSONDecodeError) as exc:
                last_error = exc
        raise ServerUnavailable(f"{method} {url}: {last_error}") from last_error

    # ----------------------------------------------------------- cache tier
    def ping(self) -> dict:
        """Server identity/liveness document (raises when unreachable)."""
        return self._request("GET", "/api/ping")

    def get_entry(self, key: str) -> Optional[dict]:
        """The raw cache entry payload under ``key``, or ``None`` on a miss."""
        return self._request("GET", f"/cache/{key}")

    def put_entry(self, key: str, payload: dict) -> None:
        """Upload one cache entry payload (idempotent by content key)."""
        self._request("PUT", f"/cache/{key}", payload=payload)

    def get_replay(self, key: str) -> Optional[dict]:
        """A replay-sidecar record by content key, or ``None`` on a miss."""
        return self._request("GET", f"/replay/{key}")

    def put_replay(self, key: str, payload: dict) -> None:
        """Upload one replay-sidecar record (best-effort optimisation data)."""
        self._request("PUT", f"/replay/{key}", payload=payload)

    def stats(self) -> dict:
        """Server-side cache statistics plus request counters."""
        return self._request("GET", "/stats")

    def prune(self, max_mb: Optional[float] = None,
              max_entries: Optional[int] = None) -> dict:
        """Ask the server to LRU-prune its store down to the given limits."""
        payload: Dict[str, object] = {}
        if max_mb is not None:
            payload["max_mb"] = max_mb
        if max_entries is not None:
            payload["max_entries"] = max_entries
        return self._request("POST", "/prune", payload=payload)

    # ----------------------------------------------------------- sweep tier
    def submit_sweep(self, spec_payload: dict, runner: str,
                     mode: str = "auto", max_workers: Optional[int] = None,
                     batch_size: Optional[int] = None) -> str:
        """Submit a serialised :class:`~repro.engine.spec.SweepSpec`.

        Returns the sweep id to poll/stream with :meth:`iter_sweep_rows`
        and :meth:`sweep_status`.
        """
        response = self._request("POST", "/sweeps", payload={
            "spec": spec_payload,
            "runner": runner,
            "mode": mode,
            "max_workers": max_workers,
            "batch_size": batch_size,
        })
        if not isinstance(response, dict) or "id" not in response:
            raise ServerUnavailable("malformed /sweeps response "
                                    f"({response!r})")
        return str(response["id"])

    def sweep_status(self, sweep_id: str) -> dict:
        """State / progress of a submitted sweep."""
        status = self._request("GET", f"/sweeps/{sweep_id}/status")
        if status is None:
            raise ServerUnavailable(f"unknown sweep id '{sweep_id}'")
        return status

    def iter_sweep_rows(self, sweep_id: str, start: int = 0) -> Iterator[dict]:
        """Stream a sweep's rows as they land (newline-delimited JSON).

        Yields one dict per row event (``{"event": "row", "index": ...,
        "row": ..., "cached": ...}``) followed by a terminal
        ``{"event": "end", "state": ...}`` document.  A connection dropped
        mid-stream transparently reconnects from the last row received
        (each reconnect spends the client's normal retry budget).
        """
        next_index = start
        while True:
            response = self._request(
                "GET", f"/sweeps/{sweep_id}?start={next_index}", stream=True)
            if response is None:  # HTTP 404: the id is not (or no longer) known
                raise ServerUnavailable(f"unknown sweep id '{sweep_id}'")
            dropped = False
            with response:
                while True:
                    try:
                        line = response.readline()
                    except (http.client.HTTPException, TimeoutError,
                            ConnectionError, OSError):
                        dropped = True
                        break
                    if not line:
                        dropped = True  # EOF without an "end" event
                        break
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        dropped = True  # torn line: reconnect and re-read
                        break
                    if event.get("event") == "row":
                        next_index += 1
                    yield event
                    if event.get("event") == "end":
                        return
            if not dropped:  # pragma: no cover - defensive
                return
