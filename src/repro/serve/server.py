"""The ``repro serve`` daemon: a shared design-space service over HTTP.

Built entirely on the stdlib (:mod:`http.server`), the daemon turns one
host's content-addressed :class:`~repro.engine.cache.ResultCache` (and its
replay :class:`~repro.engine.cache.SidecarStore`) into a shared network
store, and adds a thin submit/poll sweep API so thin clients can run
design-space sweeps without local compute:

==========================  ==================================================
``GET  /api/ping``          liveness + server identity / code version
``GET  /cache/<key>``       one result-cache entry by content key (404 = miss)
``PUT  /cache/<key>``       store one entry payload (idempotent by key)
``GET  /replay/<key>``      one replay-sidecar record by content key
``PUT  /replay/<key>``      store one replay record
``GET  /stats``             cache statistics + request counters
``POST /prune``             LRU-prune the store (``{"max_mb", "max_entries"}``)
``POST /sweeps``            submit a serialised SweepSpec; returns ``{"id"}``
``GET  /sweeps/<id>``       stream newline-delimited row events (``?start=N``)
``GET  /sweeps/<id>/status``  sweep state / progress snapshot
==========================  ==================================================

Entries are stored in exactly the on-disk layout :class:`ResultCache`
uses, so the served directory doubles as a plain local cache: server-side
sweeps, key-addressed client traffic and any co-located local runs all
deduplicate through one store, under one LRU budget.

Content keys are validated against the sha256-hex shape before touching
the filesystem, so a malformed key can never escape the fan-out
directories.  Each connection serves one request (HTTP/1.0 semantics);
sweep row streams are therefore plain write-until-EOF NDJSON, which every
HTTP client can consume incrementally.
"""

from __future__ import annotations

import http.server
import itertools
import json
import threading
import urllib.parse
from typing import Dict, List, Optional

from repro.engine.cache import PathLike, ResultCache, is_valid_key
from repro.engine.executor import MODES, StreamRow, SweepExecutor
from repro.engine.spec import SweepSpec, params_key

__all__ = ["ServeDaemon", "serialize_stream_row"]

#: Reject request bodies beyond this size (a single result row is a few KB;
#: even a large serialised spec is far below this).
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: How long the sweep-stream endpoint waits per poll for new rows before
#: re-checking the run state (short enough for prompt shutdowns).
_STREAM_POLL_S = 0.25


def serialize_stream_row(event: StreamRow) -> dict:
    """One :class:`StreamRow` as the wire-format row event."""
    return {
        "event": "row",
        "index": event.index,
        "runner": event.job.runner,
        "params": event.job.params_dict,
        "row": event.row,
        "cached": event.cached,
        "latency_s": event.latency_s,
        "elapsed_s": event.elapsed_s,
    }


class _SweepRun:
    """One submitted sweep: its jobs, its row buffer and its lifecycle."""

    def __init__(self, sweep_id: str, runner: str, jobs: list, mode: str,
                 max_workers: Optional[int], batch_size: Optional[int]) -> None:
        self.id = sweep_id
        self.runner = runner
        self.jobs = jobs
        self.mode = mode
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.rows: List[dict] = []
        self.state = "running"  # running | done | failed
        self.error: Optional[str] = None
        self.summary: Optional[dict] = None
        self.cond = threading.Condition()

    def execute(self, cache: Optional[ResultCache]) -> None:
        """Run the sweep (worker-thread target), buffering row events."""
        try:
            executor = SweepExecutor(mode=self.mode,
                                     max_workers=self.max_workers,
                                     batch_size=self.batch_size, cache=cache)
            stream = executor.stream(self.jobs)
            for event in stream:
                with self.cond:
                    self.rows.append(serialize_stream_row(event))
                    self.cond.notify_all()
            result = stream.result()
            summary = {
                "jobs": result.total,
                "executed": result.executed,
                "cached": result.cached,
                "mode": result.mode,
                "elapsed_s": result.elapsed_s,
                "cache": result.cache_stats,
            }
            with self.cond:
                self.summary = summary
                self.state = "done"
                self.cond.notify_all()
        except Exception as exc:  # noqa: BLE001 - reported to the client
            with self.cond:
                self.error = f"{type(exc).__name__}: {exc}"
                self.state = "failed"
                self.cond.notify_all()

    def status(self) -> dict:
        with self.cond:
            return {
                "id": self.id,
                "runner": self.runner,
                "state": self.state,
                "total": len(self.jobs),
                "rows_done": len(self.rows),
                "error": self.error,
                "summary": self.summary,
            }


class _RequestHandler(http.server.BaseHTTPRequestHandler):
    """Routes one request against the owning :class:`ServeDaemon`."""

    #: Injected by :meth:`ServeDaemon._build_handler`.
    daemon_ref: "ServeDaemon"

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.daemon_ref.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------- plumbing
    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body_json(self) -> Optional[dict]:
        """The request body parsed as a JSON object (None after an error
        response has been sent)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "malformed Content-Length")
            return None
        if length < 0 or length > _MAX_BODY_BYTES:
            self._send_error_json(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon_ref
        daemon.count("requests")
        path = urllib.parse.urlsplit(self.path)
        parts = [p for p in path.path.split("/") if p]
        try:
            if parts == ["api", "ping"]:
                self._send_json(200, {
                    "ok": True,
                    "server": "repro.serve/v1",
                    "code_version": daemon.cache.code_version,
                })
            elif len(parts) == 2 and parts[0] == "cache":
                self._get_entry(parts[1])
            elif len(parts) == 2 and parts[0] == "replay":
                self._get_replay(parts[1])
            elif parts == ["stats"]:
                self._send_json(200, daemon.stats())
            elif len(parts) == 2 and parts[0] == "sweeps":
                self._stream_sweep(parts[1], path.query)
            elif len(parts) == 3 and parts[0] == "sweeps" and parts[2] == "status":
                run = daemon.sweeps.get(parts[1])
                if run is None:
                    self._send_error_json(404, f"unknown sweep id '{parts[1]}'")
                else:
                    self._send_json(200, run.status())
            else:
                self._send_error_json(404, f"unknown path '{path.path}'")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon_ref
        daemon.count("requests")
        parts = [p for p in urllib.parse.urlsplit(self.path).path.split("/") if p]
        try:
            if len(parts) == 2 and parts[0] == "cache":
                self._put_entry(parts[1])
            elif len(parts) == 2 and parts[0] == "replay":
                self._put_replay(parts[1])
            else:
                self._send_error_json(404, f"unknown path '{self.path}'")
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon_ref
        daemon.count("requests")
        parts = [p for p in urllib.parse.urlsplit(self.path).path.split("/") if p]
        try:
            if parts == ["prune"]:
                self._prune()
            elif parts == ["sweeps"]:
                self._submit_sweep()
            else:
                self._send_error_json(404, f"unknown path '{self.path}'")
        except (BrokenPipeError, ConnectionResetError):
            pass

    # ----------------------------------------------------------- cache tier
    def _get_entry(self, key: str) -> None:
        daemon = self.daemon_ref
        if not is_valid_key(key):
            self._send_error_json(400, f"malformed content key '{key}'")
            return
        payload = daemon.cache.get_by_key(key)
        if payload is None:
            daemon.count("cache_misses")
            self._send_error_json(404, "miss")
            return
        daemon.count("cache_hits")
        self._send_json(200, payload)

    def _put_entry(self, key: str) -> None:
        daemon = self.daemon_ref
        if not is_valid_key(key):
            self._send_error_json(400, f"malformed content key '{key}'")
            return
        payload = self._read_body_json()
        if payload is None:
            return
        if not isinstance(payload.get("row"), dict):
            self._send_error_json(400, "entry payload must carry a 'row' object")
            return
        # Integrity check: an entry that names its runner / params / code
        # version must hash to the key it is stored under, so a buggy (or
        # hostile) client cannot poison other clients' lookups.
        runner = payload.get("runner")
        params = payload.get("params")
        if isinstance(runner, str) and isinstance(params, dict):
            try:
                expected = params_key(runner, params,
                                      salt=str(payload.get("code_version", "")))
            except (TypeError, ValueError) as exc:
                self._send_error_json(400, f"unhashable entry payload: {exc}")
                return
            if expected != key:
                self._send_error_json(400, "content key does not match the "
                                           "entry payload")
                return
        if daemon.cache.put_by_key(key, payload) is None:
            self._send_error_json(507, "cache directory is not writable")
            return
        daemon.count("cache_puts")
        self._send_json(200, {"stored": key})

    def _get_replay(self, key: str) -> None:
        daemon = self.daemon_ref
        if not is_valid_key(key):
            self._send_error_json(400, f"malformed content key '{key}'")
            return
        payload = daemon.sidecar.get_by_key(key)
        if payload is None:
            daemon.count("replay_misses")
            self._send_error_json(404, "miss")
            return
        daemon.count("replay_hits")
        self._send_json(200, payload)

    def _put_replay(self, key: str) -> None:
        daemon = self.daemon_ref
        if not is_valid_key(key):
            self._send_error_json(400, f"malformed content key '{key}'")
            return
        payload = self._read_body_json()
        if payload is None:
            return
        if daemon.sidecar.put_by_key(key, payload) is None:
            self._send_error_json(507, "replay sidecar is not writable")
            return
        daemon.count("replay_puts")
        self._send_json(200, {"stored": key})

    def _prune(self) -> None:
        daemon = self.daemon_ref
        payload = self._read_body_json()
        if payload is None:
            return
        max_mb = payload.get("max_mb")
        max_entries = payload.get("max_entries")
        try:
            max_bytes = (None if max_mb is None
                         else max(1, int(float(max_mb) * 1024 * 1024)))
            max_entries = None if max_entries is None else int(max_entries)
        except (TypeError, ValueError):
            self._send_error_json(400, "max_mb / max_entries must be numbers")
            return
        if max_bytes is None and max_entries is None \
                and daemon.cache.max_bytes is None:
            self._send_error_json(400, "prune needs a limit (max_mb / "
                                       "max_entries) or a server-side budget")
            return
        removed = daemon.cache.prune(max_bytes=max_bytes,
                                     max_entries=max_entries)
        self._send_json(200, {"removed": removed,
                              "entries": len(daemon.cache),
                              "size_bytes": daemon.cache.size_bytes()})

    # ----------------------------------------------------------- sweep tier
    def _submit_sweep(self) -> None:
        daemon = self.daemon_ref
        payload = self._read_body_json()
        if payload is None:
            return
        from repro.engine.runners import RUNNERS

        runner = payload.get("runner")
        if runner not in RUNNERS:
            self._send_error_json(400, f"unknown runner {runner!r}")
            return
        mode = payload.get("mode") or "auto"
        if mode not in MODES:
            self._send_error_json(400, f"mode must be one of {MODES}")
            return
        try:
            spec = SweepSpec.from_payload(payload.get("spec"))
            jobs = spec.jobs(runner)
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"bad sweep spec: {exc}")
            return
        max_workers = payload.get("max_workers")
        batch_size = payload.get("batch_size")
        try:
            max_workers = None if max_workers is None else int(max_workers)
            batch_size = None if batch_size is None else int(batch_size)
        except (TypeError, ValueError):
            self._send_error_json(400, "max_workers / batch_size must be "
                                       "integers")
            return
        try:
            run = daemon.submit(runner, jobs, mode, max_workers, batch_size)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(202, {"id": run.id, "total": len(jobs)})

    def _stream_sweep(self, sweep_id: str, query: str) -> None:
        daemon = self.daemon_ref
        run = daemon.sweeps.get(sweep_id)
        if run is None:
            self._send_error_json(404, f"unknown sweep id '{sweep_id}'")
            return
        params = urllib.parse.parse_qs(query)
        try:
            start = int(params.get("start", ["0"])[0])
        except ValueError:
            self._send_error_json(400, "start must be an integer")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        index = max(0, start)
        while True:
            with run.cond:
                while len(run.rows) <= index and run.state == "running":
                    run.cond.wait(timeout=_STREAM_POLL_S)
                events = list(run.rows[index:])
                state = run.state
                summary = run.summary
                error = run.error
            for event in events:
                self.wfile.write(json.dumps(event, default=str).encode("utf-8")
                                 + b"\n")
            if events:
                self.wfile.flush()
            index += len(events)
            if state != "running" and index >= len(run.rows):
                end = {"event": "end", "state": state, "rows": index,
                       "summary": summary, "error": error}
                self.wfile.write(json.dumps(end, default=str).encode("utf-8")
                                 + b"\n")
                self.wfile.flush()
                return


class ServeDaemon:
    """One shared-cache + sweep-service daemon over a cache directory.

    Parameters
    ----------
    cache_dir:
        Directory of the served :class:`ResultCache` (created if missing);
        its ``replay/`` sidecar is served alongside.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (see :attr:`url`).
    code_version / max_bytes:
        Forwarded to the served cache (``max_bytes`` bounds the store under
        the usual LRU policy; ``REPRO_CACHE_MAX_MB`` applies when unset).
    quiet:
        Suppress the per-request access log lines.

    Use :meth:`serve_forever` in a foreground process (the CLI), or
    :meth:`start` / :meth:`stop` to run the daemon on a background thread
    (tests, embedding).
    """

    def __init__(self, cache_dir: PathLike, host: str = "127.0.0.1",
                 port: int = 0, code_version: Optional[str] = None,
                 max_bytes: Optional[int] = None, quiet: bool = False) -> None:
        self.cache = ResultCache(cache_dir, code_version=code_version,
                                 max_bytes=max_bytes)
        self.sidecar = self.cache.sidecar()
        self.quiet = quiet
        self.sweeps: Dict[str, _SweepRun] = {}
        self._sweep_ids = itertools.count(1)
        self._counters_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "requests": 0, "cache_hits": 0, "cache_misses": 0,
            "cache_puts": 0, "replay_hits": 0, "replay_misses": 0,
            "replay_puts": 0, "sweeps_submitted": 0,
        }
        handler = type("BoundRequestHandler", (_RequestHandler,),
                       {"daemon_ref": self})
        self.httpd = http.server.ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self.httpd.serve_forever()

    def start(self) -> "ServeDaemon":
        """Serve on a daemon background thread; returns ``self``."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name=f"repro-serve:{self.port}",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.cache.persist_stats()

    # ------------------------------------------------------------- services
    def count(self, key: str) -> None:
        with self._counters_lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    def submit(self, runner: str, jobs: list, mode: str = "auto",
               max_workers: Optional[int] = None,
               batch_size: Optional[int] = None) -> _SweepRun:
        """Register and start one sweep run on a worker thread."""
        if not jobs:
            raise ValueError("the sweep expands to no jobs")
        sweep_id = f"sweep-{next(self._sweep_ids)}"
        run = _SweepRun(sweep_id, runner, jobs, mode, max_workers, batch_size)
        self.sweeps[sweep_id] = run
        self.count("sweeps_submitted")
        thread = threading.Thread(target=run.execute, args=(self.cache,),
                                  name=f"repro-sweep:{sweep_id}", daemon=True)
        thread.start()
        return run

    def stats(self) -> dict:
        """The stats document of ``GET /stats``."""
        with self._counters_lock:
            counters = dict(self.counters)
        return {
            "server": "repro.serve/v1",
            "url": self.url,
            "counters": counters,
            "sweeps": [run.status() for run in self.sweeps.values()],
            "cache": self.cache.stats(),
        }
