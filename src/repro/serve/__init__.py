"""Design-space service: shared network cache + sweep submission.

``repro.serve`` turns one host's content-addressed result cache into a
shared fleet resource:

* :class:`ServeDaemon` -- the stdlib :mod:`http.server` daemon behind the
  ``repro serve`` CLI verb, exposing a :class:`~repro.engine.cache.ResultCache`
  (and its replay sidecar) over HTTP plus a submit/poll sweep API;
* :class:`ServeClient` -- the JSON-over-HTTP client with per-request
  timeouts and jittered-backoff retries;
* :class:`RemoteCache` -- a read-through / write-behind cache tier
  (local disk first, then the server) that degrades to local-only
  operation -- with a single warning, never a failure -- when the server
  goes away mid-sweep.

Tuning knobs: ``REPRO_REMOTE_TIMEOUT_S`` (per-request timeout, default
5 s) and ``REPRO_REMOTE_RETRIES`` (retries after the first attempt,
default 2).
"""

from repro.serve.client import (DEFAULT_RETRIES, DEFAULT_TIMEOUT_S,
                                REMOTE_RETRIES_ENV, REMOTE_TIMEOUT_ENV,
                                ServeClient, ServerUnavailable)
from repro.serve.remote import RemoteCache
from repro.serve.server import ServeDaemon

__all__ = ["ServeDaemon", "ServeClient", "RemoteCache", "ServerUnavailable",
           "REMOTE_TIMEOUT_ENV", "REMOTE_RETRIES_ENV", "DEFAULT_TIMEOUT_S",
           "DEFAULT_RETRIES"]
