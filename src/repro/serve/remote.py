"""Read-through / write-behind cache tier over a ``repro serve`` daemon.

:class:`RemoteCache` *is a* :class:`~repro.engine.cache.ResultCache` (the
local on-disk tier keeps working exactly as before) composed with a shared
network store:

* ``get`` tries the local tier first; on a local miss it asks the server
  by content key, and a remote hit is written back into the local tier
  (read-through), so each entry crosses the network at most once per
  client;
* ``put`` stores locally first, then uploads the entry to the server
  (write-behind, best effort) so every worker's fresh rows deduplicate
  future work fleet-wide.

Robustness is the point of this tier: all remote traffic runs through a
:class:`~repro.serve.client.ServeClient` (per-request timeouts, bounded
retries with exponential backoff + jitter), and the first request that
stays down through its retry budget flips the tier into **degraded**
local-only mode with a single warning -- mirroring how the executor
handles a mid-run local ``cache.put`` failure.  A sweep never loses rows
and never fails because the server went away; it just stops deduplicating
across hosts.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, Mapping, Optional

from repro.engine.cache import PathLike, ResultCache
from repro.serve.client import ServeClient, ServerUnavailable

__all__ = ["RemoteCache"]


class RemoteCache(ResultCache):
    """A :class:`ResultCache` backed by a shared ``repro serve`` store.

    Parameters
    ----------
    directory:
        Local cache tier (same semantics as :class:`ResultCache`).
    server_url:
        Root URL of the ``repro serve`` daemon.
    code_version / max_bytes:
        Forwarded to the local tier.  The content keys sent to the server
        include ``code_version``, so clients and servers built from
        different code versions share a store without ever mixing rows.
    timeout_s / retries:
        Remote-request budget, forwarded to :class:`ServeClient` (default:
        the ``REPRO_REMOTE_TIMEOUT_S`` / ``REPRO_REMOTE_RETRIES`` knobs).
    client:
        Pre-built :class:`ServeClient` (overrides ``server_url`` /
        ``timeout_s`` / ``retries``); the seam tests use to inject fakes.
    """

    def __init__(self, directory: PathLike, server_url: str = "",
                 code_version: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: Optional[int] = None,
                 client: Optional[ServeClient] = None) -> None:
        super().__init__(directory, code_version=code_version,
                         max_bytes=max_bytes)
        if client is None:
            if not server_url:
                raise ValueError("RemoteCache needs a server_url (or a "
                                 "pre-built client)")
            client = ServeClient(server_url, timeout_s=timeout_s,
                                 retries=retries)
        self.client = client
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_puts = 0
        #: True once the server has been written off for this run; all
        #: subsequent operations are local-only (no per-job retry storms).
        self.degraded = False

    # ----------------------------------------------------------- degradation
    def _degrade(self, exc: ServerUnavailable) -> None:
        """Flip to local-only mode with a single warning (idempotent)."""
        if self.degraded:
            return
        self.degraded = True
        print(f"warning: cache server unavailable ({exc}); "
              f"continuing with the local cache only", file=sys.stderr)

    @property
    def tier(self) -> str:
        """Human-readable tier description for manifests and stats."""
        return "local" if self.degraded else "local+remote"

    # -------------------------------------------------------------- storage
    def get(self, job) -> Optional[dict]:
        """Local tier first, then the server; remote hits fill the local tier."""
        row = super().get(job)
        if row is not None or self.degraded:
            return row
        try:
            payload = self.client.get_entry(self.key_for(job))
        except ServerUnavailable as exc:
            self._degrade(exc)
            return None
        remote_row = payload.get("row") if isinstance(payload, Mapping) else None
        if not isinstance(remote_row, dict):
            # Miss -- or a malformed entry, which is treated as one.
            self.remote_misses += 1
            return None
        self.remote_hits += 1
        # The lookup as a whole was a hit: undo the local tier's miss.
        self.misses -= 1
        self.hits += 1
        try:
            # Read-through fill: next time this entry is a pure disk read.
            ResultCache.put(self, job, remote_row)
        except OSError:
            pass
        return remote_row

    def put(self, job, row: Mapping) -> pathlib.Path:
        """Store locally, then upload to the shared store (write-behind).

        Local failures propagate (the executor handles them); remote
        failures only degrade the tier.
        """
        path = super().put(job, row)
        if not self.degraded:
            payload = {
                "runner": job.runner,
                "params": job.params_dict,
                "code_version": self.code_version,
                "row": dict(row),
            }
            try:
                self.client.put_entry(self.key_for(job), payload)
                self.remote_puts += 1
            except ServerUnavailable as exc:
                self._degrade(exc)
        return path

    # ----------------------------------------------------------- telemetry
    @property
    def remote_hit_rate(self) -> float:
        """Fraction of remote lookups the server answered (0.0 if none)."""
        total = self.remote_hits + self.remote_misses
        return self.remote_hits / total if total else 0.0

    def counters(self) -> Dict[str, object]:
        """Live counters, extended with the remote tier's hit/put telemetry."""
        counters = super().counters()
        counters.update({
            "tier": self.tier,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "remote_puts": self.remote_puts,
            "remote_hit_rate": self.remote_hit_rate,
            "degraded": self.degraded,
        })
        return counters

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats.update({
            "tier": self.tier,
            "server": self.client.base_url,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "remote_puts": self.remote_puts,
            "remote_hit_rate": self.remote_hit_rate,
            "degraded": self.degraded,
        })
        return stats
