"""repro: a reproduction of the Linear Algebra Processor (LAP) codesign study.

This package rebuilds, in Python, the system described in "Algorithm/
Architecture Codesign of Low Power and High Performance Linear Algebra
Compute Fabrics" (Pedram, 2013):

* hardware component models (:mod:`repro.hw`),
* a cycle-level functional simulator of the Linear Algebra Core
  (:mod:`repro.lac`) and the multi-core Linear Algebra Processor
  (:mod:`repro.lap`),
* the kernel mappings -- GEMM, level-3 BLAS, matrix factorizations and FFT --
  onto that core (:mod:`repro.kernels`),
* the analytical performance / power / efficiency models of the evaluation
  chapters (:mod:`repro.models`),
* the comparison-architecture database and design-point builders
  (:mod:`repro.arch`), and
* an experiment registry that regenerates every table and figure of the
  evaluation (:mod:`repro.experiments`).

Quickstart
----------
>>> import numpy as np
>>> from repro.lac import LinearAlgebraCore
>>> from repro.kernels import lac_gemm
>>> core = LinearAlgebraCore()
>>> c = np.zeros((8, 8)); a = np.ones((8, 8)); b = np.ones((8, 8))
>>> result = lac_gemm(core, c, a, b)
>>> bool(np.allclose(result.output, a @ b))
True
"""

from repro.lac import LinearAlgebraCore, LACConfig
from repro.lap import LinearAlgebraProcessor, LAPConfig
from repro.models import CoreGEMMModel, ChipGEMMModel
from repro.hw import Precision

__version__ = "1.0.0"

__all__ = [
    "LinearAlgebraCore",
    "LACConfig",
    "LinearAlgebraProcessor",
    "LAPConfig",
    "CoreGEMMModel",
    "ChipGEMMModel",
    "Precision",
    "__version__",
]
