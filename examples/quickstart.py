#!/usr/bin/env python
"""Quickstart: simulate GEMM on a Linear Algebra Core and inspect the result.

This example walks through the three things a new user of the library does
first:

1. build a LAC simulator and run a small GEMM on it,
2. verify the result against NumPy and look at the cycle/access counters,
3. compare the measured utilisation with the analytical core model and turn
   the measured activity into a power estimate.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.hw.fpu import FMACUnit, Precision
from repro.hw.sram import pe_store_a, pe_store_b
from repro.kernels import lac_gemm
from repro.lac import LACConfig, LinearAlgebraCore
from repro.models import CoreGEMMModel
from repro.models.power import PowerComponent, PowerModel


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ 1.
    # A 4x4 LAC with default PE configuration (16 KB store A, 2 KB store B).
    core = LinearAlgebraCore(LACConfig(nr=4, frequency_ghz=1.0))
    mc, kc, n = 16, 32, 16
    a = rng.random((mc, kc))
    b = rng.random((kc, n))
    c = rng.random((mc, n))

    result = lac_gemm(core, c, a, b)

    # ------------------------------------------------------------------ 2.
    expected = c + a @ b
    assert np.allclose(result.output, expected), "simulator result mismatch!"
    print("GEMM on the LAC simulator")
    print(f"  problem              : C[{mc}x{n}] += A[{mc}x{kc}] B[{kc}x{n}]")
    print(f"  numerically correct  : {np.allclose(result.output, expected)}")
    print(f"  cycles               : {result.cycles}")
    print(f"  MAC operations       : {result.counters.mac_ops}")
    print(f"  utilisation          : {100 * result.utilization:.1f}% of peak")
    print(f"  achieved (at 1 GHz)  : {result.gflops(1.0):.1f} GFLOPS")
    print()
    print("Access counters:")
    print("  " + result.counters.summary().replace("\n", "\n  "))
    print()

    # ------------------------------------------------------------------ 3.
    model = CoreGEMMModel(nr=4)
    analytic = model.cycles(mc, kc, n, bandwidth_elements_per_cycle=4.0)
    print("Analytical core model at 4 elements/cycle of on-chip bandwidth:")
    print(f"  predicted utilisation: {100 * analytic.utilization:.1f}%")
    print(f"  local store per PE   : {analytic.local_store_bytes_per_pe / 1024:.1f} KB")
    print()

    # Turn the measured activity into a power estimate for the core.
    factors = result.counters.activity_factors(core.num_pes)
    fmac = FMACUnit(precision=Precision.DOUBLE, frequency_ghz=1.0)
    store_a = pe_store_a(16 * 1024)
    store_b = pe_store_b(2 * 1024)
    components = [
        PowerComponent("MAC units", 16 * fmac.dynamic_power_w, factors["mac"]),
        PowerComponent("PE store A", 16 * store_a.dynamic_power_w(1.0, 1.0), factors["store_a"]),
        PowerComponent("PE store B", 16 * store_b.dynamic_power_w(1.0, 1.0), factors["store_b"]),
    ]
    seconds = result.cycles / 1e9
    gflops = result.flops / seconds / 1e9
    breakdown = PowerModel(idle_ratio=0.25).breakdown("LAC (measured activity)",
                                                      components, gflops=gflops)
    print("Power estimate driven by the measured activity factors:")
    for name, watts in breakdown.by_component().items():
        print(f"  {name:<16s} {1e3 * watts:7.1f} mW")
    print(f"  total            {1e3 * breakdown.total_power_w:7.1f} mW")
    print(f"  efficiency       {breakdown.gflops_per_watt:7.1f} GFLOPS/W")


if __name__ == "__main__":
    main()
