#!/usr/bin/env python
"""Level-3 BLAS and matrix factorizations on the LAC.

The scenario: a solver pipeline for a symmetric positive definite system
``A x = b`` (the workload that motivates the dissertation's generalisation
chapters).  Every building block runs on the cycle-level LAC simulator:

* SYRK builds the Gram matrix ``A = G G^T + delta I`` from a data matrix G,
* Cholesky factors ``A = L L^T``,
* two triangular solves produce the solution,
* a QR panel factorization and a vector norm show the Chapter-6 kernels.

Along the way the script reports cycles and utilisation per kernel and
compares them with the analytical utilisation models of Chapter 5.

Run with:  python examples/blas_and_factorizations.py
"""

from __future__ import annotations

import numpy as np

from repro.kernels import (lac_cholesky, lac_gemm, lac_householder_qr_panel, lac_syrk,
                           lac_trsm, lac_vector_norm)
from repro.lac import LinearAlgebraCore
from repro.models.blas_model import BlasCoreModel, Level3Operation


def fresh_core() -> LinearAlgebraCore:
    return LinearAlgebraCore()


def report(name: str, result, reference=None) -> None:
    ok = "" if reference is None else (
        "ok" if np.allclose(np.asarray(result.output, dtype=float), reference,
                            rtol=1e-9, atol=1e-9) else "MISMATCH")
    print(f"  {name:<22s} cycles={result.cycles:>8d}  "
          f"utilisation={100 * result.utilization:5.1f}%  {ok}")


def main() -> None:
    rng = np.random.default_rng(7)
    n, k, nrhs = 16, 24, 8

    print("Solver pipeline for an SPD system on the LAC simulator")
    print(f"  G is {n}x{k}, A = G G^T + {n} I, {nrhs} right-hand sides")
    print()

    # 1. Build the Gram matrix with SYRK (only the lower triangle is computed).
    g = rng.random((n, k))
    syrk = lac_syrk(fresh_core(), np.zeros((n, n)), g)
    a_lower = np.tril(syrk.output) + n * np.eye(n)
    a_full = a_lower + np.tril(a_lower, -1).T
    report("SYRK (Gram matrix)", syrk, np.tril(g @ g.T))

    # 2. Cholesky factorization A = L L^T.
    chol = lac_cholesky(fresh_core(), a_full)
    l = chol.output
    report("Cholesky", chol, np.linalg.cholesky(a_full))

    # 3. Forward and backward substitution with TRSM.
    b = rng.random((n, nrhs))
    fwd = lac_trsm(fresh_core(), l, b)
    report("TRSM (forward)", fwd, np.linalg.solve(np.tril(l), b))
    flip = np.eye(n)[::-1]
    bwd = lac_trsm(fresh_core(), flip @ l.T @ flip, flip @ fwd.output)
    x = flip @ bwd.output
    report("TRSM (backward)", bwd)
    residual = np.linalg.norm(a_full @ x - b) / np.linalg.norm(b)
    print(f"  -> relative residual of the solve: {residual:.2e}")
    print()

    # 4. The Chapter-6 kernels: a QR panel and an overflow-safe vector norm.
    panel = rng.random((32, 4))
    qr = lac_householder_qr_panel(fresh_core(), panel)
    r_ref = np.abs(np.triu(np.linalg.qr(panel, mode="r")))
    report("QR panel (k=32)", qr)
    print(f"  -> |R| matches NumPy: "
          f"{np.allclose(np.abs(np.triu(qr.output[:4, :])), r_ref, rtol=1e-9)}")

    vec = rng.standard_normal(128) * 1e150      # would overflow a naive sum of squares
    norm = lac_vector_norm(fresh_core(), vec, use_exponent_extension=False)
    print(f"  vector norm (guarded)  cycles={norm.cycles:>8d}  "
          f"value ok: {np.isclose(norm.output, np.linalg.norm(vec))}")
    print()

    # 5. Compare with the analytical utilisation model at a realistic design point.
    model = BlasCoreModel(nr=4)
    print("Analytical utilisation at the Chapter-5 design point (20 KB/PE, 4 B/cycle):")
    for op in (Level3Operation.GEMM, Level3Operation.TRSM, Level3Operation.SYRK,
               Level3Operation.SYR2K):
        res = model.utilization(op, mc=256, kc=256, n=512, bandwidth_elements_per_cycle=0.5)
        print(f"  {op.value:<6s} {100 * res.utilization:5.1f}%")


if __name__ == "__main__":
    main()
