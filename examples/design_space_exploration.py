#!/usr/bin/env python
"""Design-space exploration: size a LAP for a target GEMM workload.

This is the workflow of Chapters 3 and 4: pick the core dimension and local
store, then size the number of cores, the on-chip memory and the off-chip
bandwidth of the chip, and finally compare the resulting design against
published CPUs and GPUs.

The chip-level sweeps run through the :mod:`repro.engine` sweep engine, so
they can fan out over worker processes (``--mode process``) and reuse
previous results from an on-disk cache (``--cache-dir .sweep-cache``).

Run with:  python examples/design_space_exploration.py [--target-gflops 600]
"""

from __future__ import annotations

import argparse

from repro.arch.database import chip_level_specs
from repro.arch.lap_design import build_pe, find_sweet_spot_frequency
from repro.engine import (SweepSpec, best_per_metric, pareto_frontier, sweep,
                          usable_cache_dir)
from repro.experiments.report import render_table
from repro.hw.fpu import Precision
from repro.models.core_model import CoreGEMMModel


def explore_core(frequency: float) -> dict:
    """Pick the smallest local store that sustains peak at 4 bytes/cycle."""
    model = CoreGEMMModel(nr=4)
    bw_elements = 4.0 / 8.0
    kc = model.smallest_kc_for_peak(bw_elements, n=512)
    store_kb = model.local_store_bytes_per_pe(kc, kc, full_overlap=True) / 1024.0
    pe = build_pe(Precision.DOUBLE, frequency, local_store_kbytes=store_kb)
    return {"kc": kc, "local_store_kbytes": round(store_kb, 1),
            "pe_area_mm2": round(pe.area_mm2, 3),
            "pe_power_mw": round(1e3 * pe.total_power_w, 1)}


def explore_chip(target_gflops: float, frequency: float, mode: str,
                 cache_dir: str) -> list:
    """Sweep core counts and off-chip bandwidths to hit the target throughput."""
    spec = (SweepSpec()
            .constants(nr=4, n=2048, frequency_ghz=frequency)
            .grid(num_cores=(4, 8, 12, 16, 24, 32),
                  offchip_bw_bytes_per_cycle=(8, 16, 24, 32)))
    result = sweep(spec.jobs("chip_gemm"), mode=mode, cache_dir=cache_dir)
    print(f"   engine: {result.summary()}")
    return [{
        "cores": row["num_cores"],
        "offchip_B_per_cycle": int(row["offchip_bw_bytes_per_cycle"]),
        "onchip_MB": round(row["onchip_memory_mbytes"], 1),
        "utilization_pct": round(row["utilization_pct"], 1),
        "gflops": round(row["gflops"], 1),
        "meets_target": row["gflops"] >= target_gflops,
    } for row in result.rows]


def evaluate_designs(rows: list, frequency: float, local_store_kbytes: float,
                     mode: str, cache_dir: str) -> list:
    """Evaluate area/power/efficiency of every feasible chip configuration."""
    spec = (SweepSpec()
            .constants(nr=4, precision="double", frequency_ghz=frequency,
                       local_store_kbytes=local_store_kbytes)
            .zip(cores=[r["cores"] for r in rows],
                 onchip_mbytes=[max(0.5, r["onchip_MB"]) for r in rows],
                 utilization=[r["utilization_pct"] / 100.0 for r in rows]))
    result = sweep(spec.jobs("design"), mode=mode, cache_dir=cache_dir)
    return result.rows


def verify_runtime_and_factorizations(mode: str, cache_dir: str) -> list:
    """Cross-check the chosen design with the cycle-level schedulers.

    Runs blocked GEMM task graphs through the LAP runtime (sweeping core
    counts), the Cholesky/LU/QR tile graphs under every scheduling policy,
    and the three blocked factorizations on the LAC simulator; every row
    carries a ``residual`` against the numpy reference, so the analytical
    sweep above is backed by verified executions.
    """
    runtime_jobs = (SweepSpec()
                    .constants(tile=8, nr=4, n=16, seed=0)
                    .grid(algorithm=("gemm",), num_cores=(1, 2, 4))
                    .jobs("lap_runtime"))
    # Every factorization workload of the task-graph runtime under every
    # scheduling policy (memoized timing: one functional warm-up per tile
    # kernel shape, the rest is pure scheduling).
    policy_jobs = (SweepSpec()
                   .constants(tile=8, nr=4, n=16, seed=0, num_cores=2,
                              timing="memoized")
                   .grid(algorithm=("cholesky", "lu", "qr"),
                         policy=("greedy", "critical_path", "locality"))
                   .jobs("lap_runtime"))
    fact_jobs = (SweepSpec()
                 .constants(nr=4, n=8, seed=0)
                 .grid(method=("cholesky", "lu", "qr"))
                 .jobs("blocked_fact"))
    result = sweep(runtime_jobs + policy_jobs + fact_jobs, mode=mode,
                   cache_dir=cache_dir)
    print(f"   engine: {result.summary()}")
    rows = []
    for row in result.rows[:len(runtime_jobs)]:
        rows.append({"what": f"gemm tasks on {row['num_cores']} core(s)",
                     "cycles": row["makespan_cycles"],
                     "efficiency_pct": round(100 * row["parallel_efficiency"], 1),
                     "residual": f"{row['residual']:.1e}"})
    for row in result.rows[len(runtime_jobs):len(runtime_jobs) + len(policy_jobs)]:
        rows.append({"what": f"{row['algorithm']} graph, {row['policy']} policy",
                     "cycles": row["makespan_cycles"],
                     "efficiency_pct": round(100 * row["parallel_efficiency"], 1),
                     "residual": f"{row['residual']:.1e}"})
    for row in result.rows[len(runtime_jobs) + len(policy_jobs):]:
        rows.append({"what": f"blocked {row['method']}",
                     "cycles": row["cycles"],
                     "efficiency_pct": round(100 * row["utilization"], 1),
                     "residual": f"{row['residual']:.1e}"})
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target-gflops", type=float, default=600.0,
                        help="target double-precision GEMM throughput")
    parser.add_argument("--mode", choices=["auto", "serial", "thread", "process"],
                        default="auto", help="sweep engine execution backend")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse sweep results from this directory")
    args = parser.parse_args()
    args.cache_dir = usable_cache_dir(args.cache_dir)

    sweet = find_sweet_spot_frequency(Precision.DOUBLE)
    print(f"1. PE sweet-spot frequency: {sweet:.2f} GHz")
    core_choice = explore_core(sweet)
    print(f"2. Core design point: {core_choice}")
    print()

    print(f"3. Chip-level sweep toward {args.target_gflops:.0f} DP GFLOPS:")
    rows = explore_chip(args.target_gflops, sweet, args.mode, args.cache_dir)
    feasible = [r for r in rows if r["meets_target"]]
    print(render_table(rows, max_rows=16))
    print()
    if not feasible:
        print("   no configuration meets the target; increase cores or bandwidth")
        return
    best = min(feasible, key=lambda r: (r["cores"], r["offchip_B_per_cycle"]))
    print(f"   smallest feasible configuration: {best}")
    print()

    designs = evaluate_designs(feasible, sweet, core_choice["local_store_kbytes"],
                               args.mode, args.cache_dir)
    chosen = next(d for d in designs if d["cores"] == best["cores"])
    print("4. Resulting LAP design point:")
    print(f"   area        : {chosen['area_mm2']:8.1f} mm^2")
    print(f"   power       : {chosen['power_w']:8.1f} W")
    print(f"   throughput  : {chosen['gflops']:8.1f} GFLOPS")
    print(f"   efficiency  : {chosen['gflops_per_w']:8.1f} GFLOPS/W, "
          f"{chosen['gflops_per_mm2']:.1f} GFLOPS/mm^2")
    print()

    frontier = pareto_frontier(designs)
    print(f"   Pareto frontier of the {len(designs)} feasible designs "
          f"(GFLOPS, GFLOPS/W, GFLOPS/mm^2): {len(frontier)} points")
    print(render_table(frontier,
                       columns=["cores", "onchip_mbytes", "area_mm2", "power_w",
                                "gflops", "gflops_per_w", "gflops_per_mm2"]))
    winners = best_per_metric(designs)
    for metric, row in winners.items():
        print(f"   best {metric:<15s}: cores={row['cores']}, "
              f"{row[metric]:.1f}")
    print()

    print("5. Published chips running DGEMM (45 nm scaled), for comparison:")
    comparison = [{"architecture": s.name, "gflops": s.gflops,
                   "gflops_per_w": s.gflops_per_watt,
                   "gflops_per_mm2": s.gflops_per_mm2}
                  for s in chip_level_specs("double") if not s.is_lap]
    print(render_table(comparison))
    print()

    print("6. Cycle-level verification (LAP runtime + blocked factorizations):")
    checks = verify_runtime_and_factorizations(args.mode, args.cache_dir)
    print(render_table(checks))


if __name__ == "__main__":
    main()
