#!/usr/bin/env python
"""Design-space exploration: size a LAP for a target GEMM workload.

This is the workflow of Chapters 3 and 4: pick the core dimension and local
store, then size the number of cores, the on-chip memory and the off-chip
bandwidth of the chip, and finally compare the resulting design against
published CPUs and GPUs.

Run with:  python examples/design_space_exploration.py [--target-gflops 600]
"""

from __future__ import annotations

import argparse

from repro.arch.database import chip_level_specs
from repro.arch.lap_design import build_lap, build_pe, find_sweet_spot_frequency
from repro.experiments.report import render_table
from repro.hw.fpu import Precision
from repro.models.chip_model import ChipGEMMModel
from repro.models.core_model import CoreGEMMModel


def explore_core(frequency: float) -> dict:
    """Pick the smallest local store that sustains peak at 4 bytes/cycle."""
    model = CoreGEMMModel(nr=4)
    bw_elements = 4.0 / 8.0
    kc = model.smallest_kc_for_peak(bw_elements, n=512)
    store_kb = model.local_store_bytes_per_pe(kc, kc, full_overlap=True) / 1024.0
    pe = build_pe(Precision.DOUBLE, frequency, local_store_kbytes=store_kb)
    return {"kc": kc, "local_store_kbytes": round(store_kb, 1),
            "pe_area_mm2": round(pe.area_mm2, 3),
            "pe_power_mw": round(1e3 * pe.total_power_w, 1)}


def explore_chip(target_gflops: float, frequency: float) -> list:
    """Sweep core counts and off-chip bandwidths to hit the target throughput."""
    rows = []
    for num_cores in (4, 8, 12, 16, 24, 32):
        chip = ChipGEMMModel(num_cores=num_cores, nr=4)
        for offchip_bytes_per_cycle in (8, 16, 24, 32):
            res = chip.cycles_offchip(n=2048, offchip_bandwidth_words_per_cycle=
                                      offchip_bytes_per_cycle / 8.0)
            achieved = res.gflops(frequency)
            rows.append({
                "cores": num_cores,
                "offchip_B_per_cycle": offchip_bytes_per_cycle,
                "onchip_MB": round(res.onchip_memory_mbytes(), 1),
                "utilization_pct": round(100 * res.utilization, 1),
                "gflops": round(achieved, 1),
                "meets_target": achieved >= target_gflops,
            })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target-gflops", type=float, default=600.0,
                        help="target double-precision GEMM throughput")
    args = parser.parse_args()

    sweet = find_sweet_spot_frequency(Precision.DOUBLE)
    print(f"1. PE sweet-spot frequency: {sweet:.2f} GHz")
    core_choice = explore_core(sweet)
    print(f"2. Core design point: {core_choice}")
    print()

    print(f"3. Chip-level sweep toward {args.target_gflops:.0f} DP GFLOPS:")
    rows = explore_chip(args.target_gflops, sweet)
    feasible = [r for r in rows if r["meets_target"]]
    print(render_table(rows, max_rows=16))
    print()
    if not feasible:
        print("   no configuration meets the target; increase cores or bandwidth")
        return
    best = min(feasible, key=lambda r: (r["cores"], r["offchip_B_per_cycle"]))
    print(f"   smallest feasible configuration: {best}")
    print()

    design = build_lap(num_cores=best["cores"], precision=Precision.DOUBLE,
                       frequency_ghz=sweet,
                       local_store_kbytes=core_choice["local_store_kbytes"],
                       onchip_memory_mbytes=best["onchip_MB"])
    eff = design.efficiency(utilization=best["utilization_pct"] / 100.0)
    print("4. Resulting LAP design point:")
    print(f"   area        : {design.area_mm2:8.1f} mm^2")
    print(f"   power       : {design.power_w():8.1f} W")
    print(f"   throughput  : {eff.gflops:8.1f} GFLOPS")
    print(f"   efficiency  : {eff.gflops_per_watt:8.1f} GFLOPS/W, "
          f"{eff.gflops_per_mm2:.1f} GFLOPS/mm^2")
    print()

    print("5. Published chips running DGEMM (45 nm scaled), for comparison:")
    comparison = [{"architecture": s.name, "gflops": s.gflops,
                   "gflops_per_w": s.gflops_per_watt,
                   "gflops_per_mm2": s.gflops_per_mm2}
                  for s in chip_level_specs("double") if not s.is_lap]
    print(render_table(comparison))


if __name__ == "__main__":
    main()
