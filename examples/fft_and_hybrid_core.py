#!/usr/bin/env python
"""FFT on the LAC and the hybrid LAC/FFT core trade-off.

Scenario: a signal-processing pipeline (spectral analysis of a block of
samples) that the baseline LAC was not designed for.  The script

1. runs radix-4 FFTs of several sizes on the cycle-level simulator and
   verifies them against NumPy,
2. evaluates the analytical FFT model's bandwidth/local-store requirements
   for streamed large transforms (the Appendix-B analysis), and
3. compares the dedicated-LAC, dedicated-FFT and hybrid PE designs on both
   workload classes.

Run with:  python examples/fft_and_hybrid_core.py
"""

from __future__ import annotations

import numpy as np

from repro.arch.hybrid import PEDesignVariant, build_variant, hybrid_design_comparison
from repro.experiments.report import render_table
from repro.kernels import lac_fft
from repro.lac import LinearAlgebraCore
from repro.models.fft_model import FFTCoreModel, FFTProblem, FFTVariant


def main() -> None:
    rng = np.random.default_rng(3)

    print("1. Radix-4 FFTs on the LAC simulator")
    for n in (64, 256, 1024):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        result = lac_fft(LinearAlgebraCore(), x)
        ok = np.allclose(result.output, np.fft.fft(x), rtol=1e-9, atol=1e-9)
        print(f"   {n:>5d} points: cycles={result.cycles:>7d}  "
              f"FMA issue rate={100 * result.utilization:5.1f}%  correct={ok}")
    print()

    print("2. Streaming a 64K-point 1D transform through the core (Appendix B)")
    model = FFTCoreModel(nr=4)
    problem = FFTProblem(points=65536, variant=FFTVariant.ONE_D)
    for overlap in (False, True):
        req = model.large_fft_requirements(problem, block_points=64, overlap=overlap)
        print(f"   overlap={str(overlap):<5s} "
              f"core FFTs={req['core_ffts']:>5d}  "
              f"local store/PE={req['local_store_words_per_pe'] * 8 / 1024:5.1f} KB  "
              f"required BW={req['required_bw_words_per_cycle']:.2f} words/cycle "
              f"(cap {model.max_external_bandwidth_words_per_cycle():.0f})")
    print(f"   achieved at 1 GHz with overlap: "
          f"{model.gflops(problem, 1.0, overlap=True):.1f} GFLOPS")
    print()

    print("3. Dedicated vs hybrid PE designs (1 GHz, double precision)")
    rows = hybrid_design_comparison()
    print(render_table(rows, columns=["variant", "area_mm2", "power_gemm_w", "power_fft_w",
                                      "gemm_gflops_per_w", "fft_gflops_per_w",
                                      "gemm_eff_vs_lac"]))
    print()
    hybrid = build_variant(PEDesignVariant.HYBRID)
    lac = build_variant(PEDesignVariant.DEDICATED_LAC)
    print(f"   hybrid PE area overhead over the LAC PE : "
          f"{100 * (hybrid.area_mm2 / lac.area_mm2 - 1):+.1f}%")
    print(f"   hybrid GEMM efficiency vs dedicated LAC : "
          f"{100 * hybrid.gemm_efficiency:.0f}%")
    print(f"   hybrid FFT efficiency vs dedicated FFT  : "
          f"{100 * hybrid.fft_efficiency:.0f}%")


if __name__ == "__main__":
    main()
