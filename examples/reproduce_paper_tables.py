#!/usr/bin/env python
"""Regenerate every table and figure of the evaluation from the registry.

Run with:
    python examples/reproduce_paper_tables.py              # everything
    python examples/reproduce_paper_tables.py table_3_1    # one experiment
    python examples/reproduce_paper_tables.py --list       # list experiment ids
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.report import summarize_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to regenerate (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument("--max-rows", type=int, default=12,
                        help="maximum rows to print per table")
    args = parser.parse_args(argv)

    if args.list:
        for exp in REGISTRY.values():
            print(f"{exp.exp_id:<18s} [{exp.kind:<10s}] {exp.source:<20s} {exp.description}")
        return 0

    ids = args.experiments or list(REGISTRY.keys())
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2

    for exp_id in ids:
        data = run_experiment(exp_id)
        print(summarize_experiment(exp_id, data, max_rows=args.max_rows))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
