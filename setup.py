"""Setuptools shim for environments without the 'wheel' package.

The canonical build configuration lives in pyproject.toml; this file only
enables legacy editable installs (`pip install -e . --no-use-pep517` or
`python setup.py develop`) on machines where PEP 660 editable wheels cannot
be built because the `wheel` package is unavailable.
"""

from setuptools import setup

setup()
