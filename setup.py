"""Setuptools configuration for the LAP codesign reproduction.

Installs the ``repro`` package from ``src/`` and exposes the command-line
interface as a ``repro`` console script (equivalent to
``python -m repro.cli``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _version() -> str:
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-lap",
    version=_version(),
    description=("Reproduction of the Linear Algebra Processor (LAP) "
                 "algorithm/architecture codesign study"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
