"""Benchmarks of the design-space service: remote-tier and submit overhead.

Measures what sharing a cache over HTTP costs: the per-entry round-trip
latency of the key-addressed store, a sweep resolved entirely through the
remote tier (fresh local cache, warm server) versus a purely local warm
run, and the submit/stream path end to end.  The headline assertion is the
service's reason to exist: a client with an *empty* local cache executes
zero jobs when the server has seen the sweep before.
"""

import json
import shutil
import tempfile
import time

import pytest

from repro.engine import ResultCache, SweepSpec, execute_jobs
from repro.engine.spec import params_key
from repro.serve import RemoteCache, ServeClient, ServeDaemon


def _spec():
    return (SweepSpec().constants(nr=4)
            .grid(cores=(2, 4, 8), frequency_ghz=(1.0, 1.2, 1.4)))


def _jobs():
    return _spec().jobs("design")


@pytest.fixture(scope="module")
def daemon():
    directory = tempfile.mkdtemp(prefix="repro-bench-serve-")
    daemon = ServeDaemon(directory, quiet=True).start()
    # Warm the served store once so remote-tier runs measure pure lookups.
    warm_dir = tempfile.mkdtemp(prefix="repro-bench-warm-")
    cache = RemoteCache(warm_dir, daemon.url, timeout_s=10.0, retries=0)
    execute_jobs(_jobs(), mode="serial", cache=cache)
    yield daemon
    daemon.stop()
    shutil.rmtree(directory, ignore_errors=True)
    shutil.rmtree(warm_dir, ignore_errors=True)


def test_remote_entry_roundtrip(benchmark, daemon, bench_json):
    """One put + get round trip of the key-addressed HTTP store."""
    client = ServeClient(daemon.url, timeout_s=10.0, retries=0)
    key = params_key("design", {"bench": "roundtrip"}, salt="bench")
    payload = {"row": {"bench": 1.0}}

    def run():
        client.put_entry(key, payload)
        return client.get_entry(key)

    stored = benchmark(run)
    assert stored["row"] == payload["row"]
    ops = client.attempts
    elapsed = benchmark.stats.stats.mean if hasattr(benchmark, "stats") else 0.0
    bench_json("serve_entry_roundtrip", {
        "mean_roundtrip_s": elapsed,
        "requests": ops,
    })


def test_remote_tier_sweep_executes_nothing(benchmark, daemon, bench_json):
    """A fresh client against a warm server resolves the sweep remotely."""
    jobs = _jobs()
    last = {}

    def run():
        local_dir = tempfile.mkdtemp(prefix="repro-bench-client-")
        try:
            cache = RemoteCache(local_dir, daemon.url, timeout_s=10.0,
                                retries=0)
            started = time.perf_counter()
            result = execute_jobs(jobs, mode="serial", cache=cache)
            last["elapsed"] = time.perf_counter() - started
            last["remote_hits"] = cache.remote_hits
            return result
        finally:
            shutil.rmtree(local_dir, ignore_errors=True)

    result = benchmark(run)
    assert result.executed == 0
    assert result.cached == len(jobs)
    assert last["remote_hits"] == len(jobs)
    bench_json("serve_remote_tier_sweep", {
        "jobs": len(jobs),
        "sweep_seconds": last["elapsed"],
        "rows_per_second": len(jobs) / last["elapsed"],
    })


def test_local_warm_sweep_baseline(benchmark, tmp_path, bench_json):
    """The purely local warm run the remote tier is compared against."""
    jobs = _jobs()
    cache = ResultCache(tmp_path, code_version="bench")
    execute_jobs(jobs, mode="serial", cache=cache)
    last = {}

    def run():
        started = time.perf_counter()
        result = execute_jobs(jobs, mode="serial", cache=cache)
        last["elapsed"] = time.perf_counter() - started
        return result

    result = benchmark(run)
    assert result.executed == 0
    bench_json("serve_local_warm_baseline", {
        "jobs": len(jobs),
        "sweep_seconds": last["elapsed"],
    })


def test_submit_and_stream_rows(benchmark, daemon, bench_json):
    """Submit/poll path end to end against the warm server."""
    client = ServeClient(daemon.url, timeout_s=10.0, retries=0)
    payload = _spec().to_payload()
    total = len(_jobs())
    last = {}

    def run():
        started = time.perf_counter()
        sweep_id = client.submit_sweep(payload, "design", mode="serial")
        rows = [event for event in client.iter_sweep_rows(sweep_id)
                if event["event"] == "row"]
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(run)
    assert len(rows) == total
    assert all(event["cached"] for event in rows)
    reference = execute_jobs(_jobs(), mode="serial").rows
    assert json.dumps([e["row"] for e in sorted(rows, key=lambda e: e["index"])]) \
        == json.dumps(reference)
    bench_json("serve_submit_stream", {
        "jobs": total,
        "stream_seconds": last["elapsed"],
        "rows_per_second": total / last["elapsed"],
    })
