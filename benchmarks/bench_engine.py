"""Benchmarks of the sweep engine: serial vs parallel vs warm-cache runs.

Measures the same 12-point cycle-level simulation sweep (4 kernels x 3
problem sizes) through the three execution paths the engine offers, and
asserts the headline property of the subsystem: a warm cache turns a sweep
into pure lookups (zero executed jobs), which is far cheaper than
recomputing even a small sweep.
"""

import json
import time

import pytest

from repro.engine import ResultCache, SweepSpec, execute_jobs, sweep
from repro.engine.runners import code_fingerprint


def _jobs():
    spec = (SweepSpec()
            .constants(nr=4, frequency_ghz=1.0, seed=0)
            .grid(kernel=("gemm", "syrk", "trsm", "cholesky"),
                  size=(8, 16, 24)))
    return spec.jobs("simulate")


def test_sweep_serial(benchmark, bench_json):
    jobs = _jobs()
    last = {}

    def run():
        started = time.perf_counter()
        result = execute_jobs(jobs, mode="serial")
        last["elapsed"] = time.perf_counter() - started
        return result

    result = benchmark(run)
    assert result.executed == len(jobs)
    assert all(row["utilization"] > 0 for row in result.rows)
    measured = [lat for lat in result.job_latency_s if lat is not None]
    bench_json("engine_sweep_serial", {
        "jobs": len(jobs),
        "sweep_seconds": last["elapsed"],
        "mean_job_latency_s": sum(measured) / len(measured),
        "max_job_latency_s": max(measured),
    })


def test_sweep_parallel_matches_serial(benchmark):
    jobs = _jobs()
    result = benchmark(lambda: execute_jobs(jobs, mode="thread", max_workers=4))
    serial = execute_jobs(jobs, mode="serial")
    assert json.dumps(result.rows) == json.dumps(serial.rows)


def test_sweep_warm_cache(benchmark, tmp_path):
    jobs = _jobs()
    cache = ResultCache(tmp_path, code_version=code_fingerprint())
    cold = execute_jobs(jobs, mode="serial", cache=cache)
    assert cold.executed == len(jobs)

    warm = benchmark(lambda: execute_jobs(
        jobs, mode="serial",
        cache=ResultCache(tmp_path, code_version=code_fingerprint())))
    assert warm.executed == 0
    assert warm.cached == len(jobs)
    assert json.dumps(warm.rows) == json.dumps(cold.rows)
    # The warm run skips every simulation, so it must be much faster than
    # the cold run was.
    assert warm.elapsed_s < cold.elapsed_s


def test_sweep_process_pool_if_available(benchmark):
    """Process fan-out stays byte-identical to serial (and falls back
    gracefully where process pools are unavailable)."""
    jobs = _jobs()
    result = benchmark(lambda: execute_jobs(jobs, mode="process",
                                            max_workers=2, batch_size=3))
    serial = execute_jobs(jobs, mode="serial")
    assert json.dumps(result.rows) == json.dumps(serial.rows)


def test_sweep_lap_runtime_runner(benchmark):
    """The LAP-runtime runner schedules verified task graphs per job."""
    jobs = (SweepSpec()
            .constants(tile=8, nr=4, seed=0)
            .grid(algorithm=("gemm",), num_cores=(1, 2), n=(16, 24))
            .jobs("lap_runtime"))
    result = benchmark(lambda: execute_jobs(jobs, mode="serial"))
    assert all(row["residual"] < 1e-9 for row in result.rows)
    # More cores never lengthen the makespan of the same task graph.
    by_point = {(row["n"], row["num_cores"]): row["makespan_cycles"]
                for row in result.rows}
    for n in (16, 24):
        assert by_point[(n, 2)] <= by_point[(n, 1)]


def test_sweep_blocked_fact_runner(benchmark):
    """The blocked-factorization runner verifies every factorization row."""
    jobs = (SweepSpec()
            .constants(nr=4, seed=0, n=8)
            .grid(method=("cholesky", "lu", "qr"))
            .jobs("blocked_fact"))
    result = benchmark(lambda: execute_jobs(jobs, mode="serial"))
    assert all(row["residual"] < 1e-8 for row in result.rows)
    assert all(row["cycles"] > 0 for row in result.rows)


def test_cache_prune_keeps_sweeps_bounded(benchmark, tmp_path):
    """LRU pruning bounds the store without touching the newest entries."""
    from repro.engine.spec import Job

    cache = ResultCache(tmp_path, code_version="v1")
    for i in range(256):
        cache.put(Job.create("design", {"cores": i}), {"cores": i, "pad": "x" * 128})
    entry_bytes = cache.size_bytes() // 256

    def refill_and_prune():
        for i in range(256):
            cache.put(Job.create("design", {"cores": i}),
                      {"cores": i, "pad": "x" * 128})
        return cache.prune(max_bytes=64 * entry_bytes)

    benchmark(refill_and_prune)
    assert len(cache) <= 64
    assert cache.size_bytes() <= 64 * entry_bytes
