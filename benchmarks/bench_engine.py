"""Benchmarks of the sweep engine: serial vs parallel vs warm-cache runs.

Measures the same 12-point cycle-level simulation sweep (4 kernels x 3
problem sizes) through the three execution paths the engine offers, and
asserts the headline property of the subsystem: a warm cache turns a sweep
into pure lookups (zero executed jobs), which is far cheaper than
recomputing even a small sweep.
"""

import json
import math
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import ResultCache, SweepExecutor, SweepSpec, execute_jobs, sweep
from repro.engine.runners import RUNNERS, code_fingerprint


def _jobs():
    spec = (SweepSpec()
            .constants(nr=4, frequency_ghz=1.0, seed=0)
            .grid(kernel=("gemm", "syrk", "trsm", "cholesky"),
                  size=(8, 16, 24)))
    return spec.jobs("simulate")


def test_sweep_serial(benchmark, bench_json):
    jobs = _jobs()
    last = {}

    def run():
        started = time.perf_counter()
        result = execute_jobs(jobs, mode="serial")
        last["elapsed"] = time.perf_counter() - started
        return result

    result = benchmark(run)
    assert result.executed == len(jobs)
    assert all(row["utilization"] > 0 for row in result.rows)
    measured = [lat for lat in result.job_latency_s if lat is not None]
    bench_json("engine_sweep_serial", {
        "jobs": len(jobs),
        "sweep_seconds": last["elapsed"],
        "mean_job_latency_s": sum(measured) / len(measured),
        "max_job_latency_s": max(measured),
    })


def test_sweep_parallel_matches_serial(benchmark):
    jobs = _jobs()
    result = benchmark(lambda: execute_jobs(jobs, mode="thread", max_workers=4))
    serial = execute_jobs(jobs, mode="serial")
    assert json.dumps(result.rows) == json.dumps(serial.rows)


def test_sweep_warm_cache(benchmark, tmp_path):
    jobs = _jobs()
    cache = ResultCache(tmp_path, code_version=code_fingerprint())
    cold = execute_jobs(jobs, mode="serial", cache=cache)
    assert cold.executed == len(jobs)

    warm = benchmark(lambda: execute_jobs(
        jobs, mode="serial",
        cache=ResultCache(tmp_path, code_version=code_fingerprint())))
    assert warm.executed == 0
    assert warm.cached == len(jobs)
    assert json.dumps(warm.rows) == json.dumps(cold.rows)
    # The warm run skips every simulation, so it must be much faster than
    # the cold run was.
    assert warm.elapsed_s < cold.elapsed_s


def test_sweep_process_pool_if_available(benchmark):
    """Process fan-out stays byte-identical to serial (and falls back
    gracefully where process pools are unavailable)."""
    jobs = _jobs()
    result = benchmark(lambda: execute_jobs(jobs, mode="process",
                                            max_workers=2, batch_size=3))
    serial = execute_jobs(jobs, mode="serial")
    assert json.dumps(result.rows) == json.dumps(serial.rows)


def test_sweep_lap_runtime_runner(benchmark):
    """The LAP-runtime runner schedules verified task graphs per job."""
    jobs = (SweepSpec()
            .constants(tile=8, nr=4, seed=0)
            .grid(algorithm=("gemm",), num_cores=(1, 2), n=(16, 24))
            .jobs("lap_runtime"))
    result = benchmark(lambda: execute_jobs(jobs, mode="serial"))
    assert all(row["residual"] < 1e-9 for row in result.rows)
    # More cores never lengthen the makespan of the same task graph.
    by_point = {(row["n"], row["num_cores"]): row["makespan_cycles"]
                for row in result.rows}
    for n in (16, 24):
        assert by_point[(n, 2)] <= by_point[(n, 1)]


def test_sweep_blocked_fact_runner(benchmark):
    """The blocked-factorization runner verifies every factorization row."""
    jobs = (SweepSpec()
            .constants(nr=4, seed=0, n=8)
            .grid(method=("cholesky", "lu", "qr"))
            .jobs("blocked_fact"))
    result = benchmark(lambda: execute_jobs(jobs, mode="serial"))
    assert all(row["residual"] < 1e-8 for row in result.rows)
    assert all(row["cycles"] > 0 for row in result.rows)


def test_streaming_beats_sharded_batch_on_stragglers(bench_json):
    """Streaming work-stealing hides stragglers that stall a sharded batch.

    Synthetic straggler mix: one 500 ms job plus 28 cheap 10 ms jobs.  The
    legacy sharded-batch executor pre-cut the job list into fixed shards and
    put a barrier after them, so *every* row only became available once the
    straggler shard finished -- per-row availability latency equals the batch
    wall for all rows.  The streaming executor yields each row as it lands,
    so the cheap rows are available long before the straggler completes.

    Asserts the two headline numbers from the issue: streaming
    time-to-first-row under 10% of the batch wall, and a >= 1.5x improvement
    in tail (p95) row-availability latency.
    """
    from repro.engine.spec import Job

    STRAGGLER_S = 0.5
    CHEAP_S = 0.01
    CHEAP_JOBS = 28
    WORKERS = 4

    def _bench_runner(params):
        time.sleep(params["cost_s"])
        return {"index": params["index"], "cost_s": params["cost_s"]}

    # Registered in RUNNERS only -- deliberately NOT in RUNNER_VERSIONS, so
    # code_fingerprint() (and hence every cache namespace) is unchanged.
    RUNNERS["_stream_bench"] = _bench_runner
    try:
        jobs = [Job.create("_stream_bench", {"index": 0, "cost_s": STRAGGLER_S})]
        jobs += [Job.create("_stream_bench", {"index": i, "cost_s": CHEAP_S})
                 for i in range(1, CHEAP_JOBS + 1)]

        def p95(latencies):
            ordered = sorted(latencies)
            return ordered[int(0.95 * (len(ordered) - 1))]

        # Legacy baseline: pre-cut shards + barrier.  Rows are only surfaced
        # after every shard future resolves, so availability == batch wall.
        shard_size = max(1, math.ceil(len(jobs) / (WORKERS * 4)))
        shards = [jobs[i:i + shard_size] for i in range(0, len(jobs), shard_size)]
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            futures = [pool.submit(
                lambda shard: [_bench_runner(job.params_dict) for job in shard],
                shard) for shard in shards]
            batch_rows = [row for future in futures for row in future.result()]
        batch_wall = time.perf_counter() - started
        batch_latencies = [batch_wall] * len(jobs)

        # Streaming run: record when each row actually becomes available.
        executor = SweepExecutor(mode="thread", max_workers=WORKERS)
        stream_latencies = [0.0] * len(jobs)
        started = time.perf_counter()
        stream = executor.stream(jobs)
        for item in stream:
            stream_latencies[item.index] = time.perf_counter() - started
        stream_wall = time.perf_counter() - started
        result = stream.result()

        assert len(batch_rows) == len(result.rows) == len(jobs)
        assert result.executed == len(jobs)
        stream_ttfr = min(lat for lat in stream_latencies if lat > 0)
        tail_improvement = p95(batch_latencies) / p95(stream_latencies)

        bench_json("engine_stream", {
            "jobs": len(jobs),
            "workers": WORKERS,
            "straggler_s": STRAGGLER_S,
            "cheap_job_s": CHEAP_S,
            "batch_wall_s": batch_wall,
            "batch_time_to_first_row_s": batch_wall,
            "batch_p95_row_latency_s": p95(batch_latencies),
            "stream_wall_s": stream_wall,
            "stream_time_to_first_row_s": stream_ttfr,
            "stream_p95_row_latency_s": p95(stream_latencies),
            "tail_latency_improvement": tail_improvement,
        })

        # Headline claims: first row lands almost immediately, and the tail
        # of the availability distribution collapses from "batch wall" down
        # to roughly the cheap-job timescale.
        assert stream_ttfr < 0.1 * batch_wall
        assert tail_improvement >= 1.5
    finally:
        RUNNERS.pop("_stream_bench", None)


def test_cache_prune_keeps_sweeps_bounded(benchmark, tmp_path):
    """LRU pruning bounds the store without touching the newest entries."""
    from repro.engine.spec import Job

    cache = ResultCache(tmp_path, code_version="v1")
    for i in range(256):
        cache.put(Job.create("design", {"cores": i}), {"cores": i, "pad": "x" * 128})
    entry_bytes = cache.size_bytes() // 256

    def refill_and_prune():
        for i in range(256):
            cache.put(Job.create("design", {"cores": i}),
                      {"cores": i, "pad": "x" * 128})
        return cache.prune(max_bytes=64 * entry_bytes)

    benchmark(refill_and_prune)
    assert len(cache) <= 64
    assert cache.size_bytes() <= 64 * entry_bytes
