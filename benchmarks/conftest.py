"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the evaluation, asserts its
headline qualitative claim, and (when ``--print-experiments`` is given or the
environment variable ``REPRO_PRINT_EXPERIMENTS`` is set) prints the rendered
table so that EXPERIMENTS.md can be refreshed from the bench output.

Benchmarks that track a perf trajectory across PRs additionally emit
machine-readable ``BENCH_<name>.json`` files through the :func:`bench_json`
fixture (directory: ``$REPRO_BENCH_JSON_DIR``, default
``benchmarks/results/``), so CI runs can be diffed mechanically.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.experiments.report import summarize_experiment


def pytest_addoption(parser):
    parser.addoption("--print-experiments", action="store_true", default=False,
                     help="print every regenerated table/figure to stdout")


@pytest.fixture
def report(request):
    """Callable fixture: report(exp_id, data) prints the rendered experiment."""
    enabled = (request.config.getoption("--print-experiments")
               or bool(os.environ.get("REPRO_PRINT_EXPERIMENTS")))

    def _report(exp_id: str, data) -> None:
        if enabled:
            print()
            print(summarize_experiment(exp_id, data))

    return _report


@pytest.fixture
def bench_json(request):
    """Callable fixture: ``bench_json(name, payload)`` persists one result.

    Writes ``BENCH_<name>.json`` (JSON: bench name, originating test, repro
    version, unix timestamp, payload) into ``$REPRO_BENCH_JSON_DIR`` or
    ``benchmarks/results/`` and returns the path, so the perf trajectory of
    a benchmark can be compared across PRs without scraping pytest output.
    """
    from repro import __version__

    def _write(name: str, payload: dict) -> pathlib.Path:
        out_dir = pathlib.Path(os.environ.get(
            "REPRO_BENCH_JSON_DIR",
            pathlib.Path(__file__).resolve().parent / "results"))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{name}.json"
        record = {
            "bench": name,
            "test": request.node.nodeid,
            "repro_version": __version__,
            "timestamp": time.time(),
            "payload": payload,
        }
        path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        return path

    return _write
