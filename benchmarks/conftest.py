"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the evaluation, asserts its
headline qualitative claim, and (when ``--print-experiments`` is given or the
environment variable ``REPRO_PRINT_EXPERIMENTS`` is set) prints the rendered
table so that EXPERIMENTS.md can be refreshed from the bench output.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.report import summarize_experiment


def pytest_addoption(parser):
    parser.addoption("--print-experiments", action="store_true", default=False,
                     help="print every regenerated table/figure to stdout")


@pytest.fixture
def report(request):
    """Callable fixture: report(exp_id, data) prints the rendered experiment."""
    enabled = (request.config.getoption("--print-experiments")
               or bool(os.environ.get("REPRO_PRINT_EXPERIMENTS")))

    def _report(exp_id: str, data) -> None:
        if enabled:
            print()
            print(summarize_experiment(exp_id, data))

    return _report
