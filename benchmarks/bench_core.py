"""Benchmarks regenerating the core-level experiments (Chapter 3).

Each benchmark times the generator (so pytest-benchmark records the cost of
regenerating the experiment) and asserts the qualitative claims the
corresponding table/figure supports in the dissertation.
"""

import time

import pytest

from repro.experiments.registry import run_experiment


def test_table_3_1(benchmark, report, bench_json):
    """PE design points: DP power efficiency tens of GFLOPS/W, SP ~2x better."""
    last = {}

    def regenerate():
        started = time.perf_counter()
        rows = run_experiment("table_3_1")
        last["elapsed"] = time.perf_counter() - started
        return rows

    rows = benchmark(regenerate)
    report("table_3_1", rows)
    bench_json("core_table_3_1", {
        "rows": len(rows),
        "regenerate_seconds": last["elapsed"],
        "best_dp_gflops_per_w": max(r["gflops_per_w"] for r in rows
                                    if r["precision"] == "DP"),
    })
    sp = [r for r in rows if r["precision"] == "SP"]
    dp = [r for r in rows if r["precision"] == "DP"]
    assert len(sp) == 4 and len(dp) == 4
    # Every design point: positive area, power, efficiency.
    assert all(r["area_mm2"] > 0 and r["pe_mw"] > 0 and r["gflops_per_w"] > 0 for r in rows)
    # SP is substantially more power-efficient than DP at comparable clocks.
    sp_1ghz = next(r for r in sp if abs(r["frequency_ghz"] - 0.98) < 0.1)
    dp_1ghz = next(r for r in dp if abs(r["frequency_ghz"] - 0.95) < 0.1)
    assert sp_1ghz["gflops_per_w"] > 1.8 * dp_1ghz["gflops_per_w"]
    # DP at ~1 GHz sits in the tens of GFLOPS/W (paper: ~46 GFLOPS/W per PE).
    assert 25.0 <= dp_1ghz["gflops_per_w"] <= 70.0
    # Power efficiency falls monotonically with frequency within a precision.
    dp_sorted = sorted(dp, key=lambda r: r["frequency_ghz"])
    effs = [r["gflops_per_w"] for r in dp_sorted]
    assert all(a >= b for a, b in zip(effs, effs[1:]))


def test_fig_3_4(benchmark, report):
    """Core utilisation vs local store & bandwidth: more of either never hurts."""
    rows = benchmark(lambda: run_experiment("fig_3_4"))
    report("fig_3_4", rows)
    assert all(0.0 < r["utilization_pct"] <= 100.0 for r in rows)
    # At 8 B/cycle and a generous local store the nr=4 core reaches ~100%.
    best = [r for r in rows if r["nr"] == 4 and r["bandwidth_bytes_per_cycle"] == 8
            and r["local_store_kbytes_per_pe"] > 15]
    assert best and all(r["utilization_pct"] > 95.0 for r in best)
    # At a fixed bandwidth, utilisation is monotone in the local store size.
    series = sorted((r for r in rows if r["nr"] == 4 and r["bandwidth_bytes_per_cycle"] == 2),
                    key=lambda r: r["local_store_kbytes_per_pe"])
    utils = [r["utilization_pct"] for r in series]
    assert all(b >= a - 1e-9 for a, b in zip(utils, utils[1:]))
    # Starved bandwidth (1 B/cycle) with a small store cannot reach peak.
    starved = [r for r in rows if r["nr"] == 4 and r["bandwidth_bytes_per_cycle"] == 1
               and r["local_store_kbytes_per_pe"] < 4]
    assert starved and all(r["utilization_pct"] < 95.0 for r in starved)


def test_fig_3_5(benchmark, report):
    """Bandwidth needed for peak falls as the local store grows; nr=8 needs more."""
    rows = benchmark(lambda: run_experiment("fig_3_5"))
    report("fig_3_5", rows)
    for nr in (4, 8):
        series = sorted((r for r in rows if r["nr"] == nr),
                        key=lambda r: r["local_store_kbytes_per_pe"])
        bws = [r["bandwidth_bytes_per_cycle"] for r in series]
        assert all(a >= b - 1e-9 for a, b in zip(bws, bws[1:]))
    # At matched local store, the 8x8 core demands more bandwidth than the 4x4.
    by_kc_4 = {round(r["local_store_kbytes_per_pe"]): r["bandwidth_bytes_per_cycle"]
               for r in rows if r["nr"] == 4}
    for r in rows:
        if r["nr"] == 8:
            partner = by_kc_4.get(round(r["local_store_kbytes_per_pe"]))
            if partner is not None:
                assert r["bandwidth_bytes_per_cycle"] > partner


def test_fig_3_6_3_7(benchmark, report):
    """PE metric sweep: ~1 GHz is the sweet spot between the competing metrics."""
    rows = benchmark(lambda: run_experiment("fig_3_6"))
    report("fig_3_6", rows)
    by_f = {r["frequency_ghz"]: r for r in rows}
    # Energy-delay keeps improving with frequency; area efficiency too.
    assert by_f[1.0]["energy_delay"] < by_f[0.33]["energy_delay"]
    assert by_f[1.0]["mm2_per_gflop"] < by_f[0.33]["mm2_per_gflop"]
    # Power efficiency degrades sharply beyond ~1 GHz (40%+ worse at 1.81 GHz).
    assert by_f[1.81]["gflops_per_w"] < 0.75 * by_f[0.95]["gflops_per_w"]
    # The sweet-spot finder lands near 1 GHz.
    from repro.arch.lap_design import find_sweet_spot_frequency
    from repro.hw.fpu import Precision
    assert 0.5 <= find_sweet_spot_frequency(Precision.DOUBLE) <= 1.6


def test_table_3_2(benchmark, report):
    """Core-level comparison: the LAC leads every competitor in GFLOPS/W."""
    rows = benchmark(lambda: run_experiment("table_3_2"))
    report("table_3_2", rows)
    lac_sp = next(r for r in rows if r["architecture"] == "LAC (SP)")
    lac_dp = next(r for r in rows if r["architecture"] == "LAC (DP)")
    competitors_sp = [r for r in rows if not r["is_lap"] and r["precision"] == "single"]
    competitors_dp = [r for r in rows if not r["is_lap"] and r["precision"] == "double"]
    assert all(lac_sp["gflops_per_w"] > r["gflops_per_w"] for r in competitors_sp)
    assert all(lac_dp["gflops_per_w"] > r["gflops_per_w"] for r in competitors_dp)
    # An order of magnitude against GPU streaming multiprocessors.
    gtx280 = next(r for r in rows if r["architecture"] == "Nvidia GTX280 SM")
    assert lac_sp["gflops_per_w"] > 10 * gtx280["gflops_per_w"]
    # Area efficiency (GFLOPS/mm^2) of the LAC is also the best in class.
    assert all(lac_sp["gflops_per_mm2"] >= r["gflops_per_mm2"] for r in competitors_sp)
