"""Benchmarks of the layered task-graph runtime (TaskGraph / scheduler / timing).

Covers the three scaling claims of the runtime refactor:

* building and analysing a large tiled-Cholesky task graph is cheap
  (thousands of tasks per second through the IR),
* the event-driven ready-heap scheduler sustains a high task throughput on
  a large graph once the timing model is warm,
* memoized timing makes a 2048^2 blocked Cholesky (tile 128) schedule at
  least 10x faster than the functional path, whose cost is estimated from
  the measured per-signature warm-up runs rather than paid in full.
"""

import time

import numpy as np

from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import AlgorithmsByBlocks, TaskKind


def test_taskgraph_build_and_analytics(benchmark, bench_json):
    """Building + analysing a 5984-task Cholesky graph stays interactive."""
    # The JSON payload records the duration of one call (timed inside the
    # callable): benchmark() may run many calibration rounds when
    # pytest-benchmark is enabled, so timing around it would inflate the
    # recorded trajectory.
    last = {}

    def build():
        started = time.perf_counter()
        graph = AlgorithmsByBlocks(tile=128).cholesky_tasks(4096)
        summary = graph.summary()
        last["elapsed"] = time.perf_counter() - started
        return graph, summary

    graph, summary = benchmark(build)
    elapsed = last["elapsed"]
    nb = 4096 // 128
    assert summary["num_tasks"] == len(graph) == nb * (nb + 1) * (nb + 2) // 6
    assert summary["kind_counts"][TaskKind.CHOLESKY.value] == nb
    assert summary["critical_path_tasks"] == 3 * (nb - 1) + 1
    assert summary["width"] >= nb
    bench_json("taskgraph_build", {
        "num_tasks": summary["num_tasks"],
        "build_and_analytics_seconds": elapsed,
        "tasks_per_second": summary["num_tasks"] / elapsed if elapsed else None,
    })


def test_scheduler_throughput_on_large_graph(benchmark, bench_json):
    """The ready-heap loop schedules a warm 816-task graph in well under a
    second (the old O(V^2) rescan was the bottleneck at this size)."""
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                           onchip_memory_mbytes=4.0))
    runtime = LAPRuntime(lap, tile=32, timing="memoized")
    rng = np.random.default_rng(0)
    # Warm the per-signature cycle cache once outside the measured region.
    runtime.run_blocked_cholesky(512, rng, verify=False)

    # Per-call timing inside the callable: the JSON payload must not be
    # inflated by pytest-benchmark's calibration rounds.
    last = {}

    def schedule():
        started = time.perf_counter()
        stats = runtime.run_blocked_cholesky(512, np.random.default_rng(1),
                                             verify=False)
        last["elapsed"] = time.perf_counter() - started
        return stats

    stats = benchmark(schedule)
    elapsed = last["elapsed"]
    assert stats["tasks_executed"] == 816
    assert stats["parallel_efficiency"] > 0.5
    # Warm scheduling throughput: hundreds of tasks per second at minimum
    # (in practice thousands); guards against reintroducing the O(V^2) scan.
    assert elapsed < 30.0
    bench_json("scheduler_throughput", {
        "tasks_executed": stats["tasks_executed"],
        "elapsed_seconds": elapsed,
        "tasks_per_second": stats["tasks_executed"] / elapsed if elapsed else None,
        "parallel_efficiency": stats["parallel_efficiency"],
    })


def test_memoized_2048_cholesky_10x_faster_than_functional(bench_json):
    """Acceptance: a 2048^2 blocked Cholesky at tile 128 schedules >= 10x
    faster under memoized timing than the functional path would cost.

    The functional cost is estimated per task signature from the warm-up
    runs the memoized model performs anyway (each later task repeats the
    measured kernel shape), so the assertion compares real measurements
    without spending the hours the full functional path would take.
    """
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                           onchip_memory_mbytes=8.0))
    runtime = LAPRuntime(lap, tile=128, timing="memoized")
    rng = np.random.default_rng(0)

    started = time.perf_counter()
    stats = runtime.run_blocked_cholesky(2048, rng, verify=False)
    memoized_seconds = time.perf_counter() - started

    timing = runtime.timing
    nb = 2048 // 128
    assert stats["tasks_executed"] == nb * (nb + 1) * (nb + 2) // 6 == 816
    assert stats["makespan_cycles"] > 0
    # One functional warm-up per (kind, shape) signature; everything else hit.
    assert timing.warm_runs == 4
    assert timing.hits == 816 - 4
    functional_estimate = timing.estimated_functional_seconds()
    assert functional_estimate > 0
    assert memoized_seconds * 10 <= functional_estimate, (
        f"memoized schedule took {memoized_seconds:.2f}s, estimated "
        f"functional path only {functional_estimate:.2f}s")
    # Makespan fidelity of the fast path is covered by
    # tests/test_lap_taskgraph.py::TestTimingModels.
    bench_json("memoized_cholesky_2048", {
        "tasks_executed": stats["tasks_executed"],
        "memoized_seconds": memoized_seconds,
        "estimated_functional_seconds": functional_estimate,
        "speedup": functional_estimate / memoized_seconds,
        "warm_runs": timing.warm_runs,
    })


def test_tracing_overhead_disabled_under_5pct(bench_json):
    """Acceptance: instrumentation left in the scheduler hot loop costs < 5%
    when tracing is off (``tracer=None`` baseline vs a disabled Tracer).

    Both variants are timed min-of-5 on a warm memoized 512^2 Cholesky
    (120 tasks), so the comparison measures the per-task tracer checks, not
    the kernel warm-up or timing noise.
    """
    from repro.obs.tracer import Tracer

    def schedule_seconds(tracer):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                               onchip_memory_mbytes=4.0))
        runtime = LAPRuntime(lap, tile=64, timing="memoized", tracer=tracer)
        rng = np.random.default_rng(0)
        runtime.run_blocked_cholesky(512, rng, verify=False)  # warm cache
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            stats = runtime.run_blocked_cholesky(512, rng, verify=False)
            best = min(best, time.perf_counter() - started)
        return best, stats

    untraced_s, untraced_stats = schedule_seconds(None)
    disabled_s, disabled_stats = schedule_seconds(Tracer(enabled=False))
    # A disabled tracer must not change the schedule at all.
    assert disabled_stats["makespan_cycles"] == untraced_stats["makespan_cycles"]
    overhead = disabled_s / untraced_s - 1.0
    assert overhead < 0.05, (
        f"disabled instrumentation costs {100 * overhead:.1f}% "
        f"({disabled_s:.4f}s vs {untraced_s:.4f}s untraced)")
    bench_json("tracing_overhead", {
        "untraced_seconds": untraced_s,
        "disabled_tracer_seconds": disabled_s,
        "overhead_fraction": overhead,
        "tasks": untraced_stats["tasks_executed"],
    })
