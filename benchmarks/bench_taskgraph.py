"""Benchmarks of the layered task-graph runtime (TaskGraph / scheduler / timing).

Covers the three scaling claims of the runtime refactor:

* building and analysing a large tiled-Cholesky task graph is cheap
  (thousands of tasks per second through the IR),
* the event-driven ready-heap scheduler sustains a high task throughput on
  a large graph once the timing model is warm,
* memoized timing makes a 2048^2 blocked Cholesky (tile 128) schedule at
  least 10x faster than the functional path, whose cost is estimated from
  the measured per-signature warm-up runs rather than paid in full.
"""

import os
import time

import numpy as np
import pytest

from repro.lap.chip import LAPConfig, LinearAlgebraProcessor
from repro.lap.runtime import LAPRuntime
from repro.lap.taskgraph import AlgorithmsByBlocks, TaskKind


def test_taskgraph_build_and_analytics(benchmark, bench_json):
    """Building + analysing a 5984-task Cholesky graph stays interactive."""
    # The JSON payload records the duration of one call (timed inside the
    # callable): benchmark() may run many calibration rounds when
    # pytest-benchmark is enabled, so timing around it would inflate the
    # recorded trajectory.
    last = {}

    def build():
        started = time.perf_counter()
        graph = AlgorithmsByBlocks(tile=128).cholesky_tasks(4096)
        summary = graph.summary()
        last["elapsed"] = time.perf_counter() - started
        return graph, summary

    graph, summary = benchmark(build)
    elapsed = last["elapsed"]
    nb = 4096 // 128
    assert summary["num_tasks"] == len(graph) == nb * (nb + 1) * (nb + 2) // 6
    assert summary["kind_counts"][TaskKind.CHOLESKY.value] == nb
    assert summary["critical_path_tasks"] == 3 * (nb - 1) + 1
    assert summary["width"] >= nb
    bench_json("taskgraph_build", {
        "num_tasks": summary["num_tasks"],
        "build_and_analytics_seconds": elapsed,
        "tasks_per_second": summary["num_tasks"] / elapsed if elapsed else None,
    })


def test_scheduler_throughput_on_large_graph(benchmark, bench_json):
    """The ready-heap loop schedules a warm 816-task graph in well under a
    second (the old O(V^2) rescan was the bottleneck at this size)."""
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                           onchip_memory_mbytes=4.0))
    runtime = LAPRuntime(lap, tile=32, timing="memoized")
    rng = np.random.default_rng(0)
    # Warm the per-signature cycle cache once outside the measured region.
    runtime.run_blocked_cholesky(512, rng, verify=False)

    # Per-call timing inside the callable: the JSON payload must not be
    # inflated by pytest-benchmark's calibration rounds.
    last = {}

    def schedule():
        started = time.perf_counter()
        stats = runtime.run_blocked_cholesky(512, np.random.default_rng(1),
                                             verify=False)
        last["elapsed"] = time.perf_counter() - started
        return stats

    stats = benchmark(schedule)
    elapsed = last["elapsed"]
    assert stats["tasks_executed"] == 816
    assert stats["parallel_efficiency"] > 0.5
    # Warm scheduling throughput: hundreds of tasks per second at minimum
    # (in practice thousands); guards against reintroducing the O(V^2) scan.
    assert elapsed < 30.0
    bench_json("scheduler_throughput", {
        "tasks_executed": stats["tasks_executed"],
        "elapsed_seconds": elapsed,
        "tasks_per_second": stats["tasks_executed"] / elapsed if elapsed else None,
        "parallel_efficiency": stats["parallel_efficiency"],
    })


def test_memoized_2048_cholesky_10x_faster_than_functional(bench_json):
    """Acceptance: a 2048^2 blocked Cholesky at tile 128 schedules >= 10x
    faster under memoized timing than the functional path would cost.

    The functional cost is estimated per task signature from the warm-up
    runs the memoized model performs anyway (each later task repeats the
    measured kernel shape), so the assertion compares real measurements
    without spending the hours the full functional path would take.
    """
    lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                           onchip_memory_mbytes=8.0))
    runtime = LAPRuntime(lap, tile=128, timing="memoized")
    rng = np.random.default_rng(0)

    started = time.perf_counter()
    stats = runtime.run_blocked_cholesky(2048, rng, verify=False)
    memoized_seconds = time.perf_counter() - started

    timing = runtime.timing
    nb = 2048 // 128
    assert stats["tasks_executed"] == nb * (nb + 1) * (nb + 2) // 6 == 816
    assert stats["makespan_cycles"] > 0
    # One functional warm-up per (kind, shape) signature; everything else hit.
    assert timing.warm_runs == 4
    assert timing.hits == 816 - 4
    functional_estimate = timing.estimated_functional_seconds()
    assert functional_estimate > 0
    assert memoized_seconds * 10 <= functional_estimate, (
        f"memoized schedule took {memoized_seconds:.2f}s, estimated "
        f"functional path only {functional_estimate:.2f}s")
    # Makespan fidelity of the fast path is covered by
    # tests/test_lap_taskgraph.py::TestTimingModels.
    bench_json("memoized_cholesky_2048", {
        "tasks_executed": stats["tasks_executed"],
        "memoized_seconds": memoized_seconds,
        "estimated_functional_seconds": functional_estimate,
        "speedup": functional_estimate / memoized_seconds,
        "warm_runs": timing.warm_runs,
    })


def test_tracing_overhead_disabled_under_5pct(bench_json):
    """Acceptance: instrumentation left in the scheduler hot loop costs < 5%
    when tracing is off (``tracer=None`` baseline vs a disabled Tracer).

    Both variants are timed min-of-5 on a warm memoized 512^2 Cholesky
    (120 tasks), so the comparison measures the per-task tracer checks, not
    the kernel warm-up or timing noise.
    """
    from repro.obs.tracer import Tracer

    def schedule_seconds(tracer):
        lap = LinearAlgebraProcessor(LAPConfig(num_cores=8, nr=4,
                                               onchip_memory_mbytes=4.0))
        runtime = LAPRuntime(lap, tile=64, timing="memoized", tracer=tracer)
        rng = np.random.default_rng(0)
        runtime.run_blocked_cholesky(512, rng, verify=False)  # warm cache
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            stats = runtime.run_blocked_cholesky(512, rng, verify=False)
            best = min(best, time.perf_counter() - started)
        return best, stats

    untraced_s, untraced_stats = schedule_seconds(None)
    disabled_s, disabled_stats = schedule_seconds(Tracer(enabled=False))
    # A disabled tracer must not change the schedule at all.
    assert disabled_stats["makespan_cycles"] == untraced_stats["makespan_cycles"]
    overhead = disabled_s / untraced_s - 1.0
    assert overhead < 0.05, (
        f"disabled instrumentation costs {100 * overhead:.1f}% "
        f"({disabled_s:.4f}s vs {untraced_s:.4f}s untraced)")
    bench_json("tracing_overhead", {
        "untraced_seconds": untraced_s,
        "disabled_tracer_seconds": disabled_s,
        "overhead_fraction": overhead,
        "tasks": untraced_stats["tasks_executed"],
    })


# --------------------------------------------------------------- fast path
def _cholesky_graph_and_tiles(n, tile=128):
    """A fresh (cache-miss) blocked-Cholesky graph plus synthetic tiles.

    Every block aliases one SPD identity tile: under memoized timing only
    the per-signature warm-ups read tile *values*, so sharing the array
    keeps a 64x64-block operand at one tile of memory.
    """
    from repro.lap.taskgraph import clear_graph_cache

    clear_graph_cache()
    started = time.perf_counter()
    graph = AlgorithmsByBlocks(tile=tile).cholesky_tasks(n)
    build_seconds = time.perf_counter() - started
    nb = n // tile
    block = np.eye(tile) * tile
    blocks = {(i, j): block for i in range(nb) for j in range(nb)}
    tiles = {name: dict(blocks) for name in ("A", "B", "C", "L")}
    return graph, tiles, build_seconds


def _measure_fastpath(n, iterations=3, tile=128, policy="greedy",
                      local_store_kb=None):
    """Interleaved best-of-N reference-vs-fast loop timings on one graph.

    Both runtimes share one memoized timing table and are warmed (kernel
    signatures, graph fast-arrays, schedule metadata) before the measured
    region; gc is disabled around each timed run so collector pauses do
    not land inside one side of the comparison.  ``policy`` /
    ``local_store_kb`` select the scheduler and the two-level hierarchy
    (both runtimes identically configured).
    """
    import gc

    graph, tiles, build_seconds = _cholesky_graph_and_tiles(n, tile=tile)
    lap_cfg = dict(num_cores=8, nr=4, onchip_memory_mbytes=8.0)
    rt_cfg = dict(timing="memoized", policy=policy,
                  local_store_kb=local_store_kb)
    ref_rt = LAPRuntime(LinearAlgebraProcessor(LAPConfig(**lap_cfg)),
                        tile, **rt_cfg)
    fast_rt = LAPRuntime(LinearAlgebraProcessor(LAPConfig(**lap_cfg)),
                         tile, fast=True, **rt_cfg)
    fast_rt.timing = ref_rt.timing  # one shared cycle table, like a sweep
    ref_rt.execute(graph, tiles, verify=False)    # warm kernels + summary
    fast_stats = fast_rt.execute(graph, tiles, verify=False)  # warm arrays
    assert fast_rt.last_fast

    ref_best = fast_best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(iterations):
            started = time.perf_counter()
            ref_stats = ref_rt.execute(graph, tiles, verify=False)
            ref_best = min(ref_best, time.perf_counter() - started)
            started = time.perf_counter()
            fast_stats = fast_rt.execute(graph, tiles, verify=False)
            fast_best = min(fast_best, time.perf_counter() - started)
    finally:
        gc.enable()
    assert ref_stats["makespan_cycles"] == fast_stats["makespan_cycles"]
    assert ref_stats["energy_j"] == fast_stats["energy_j"]
    assert ref_stats["tasks_executed"] == fast_stats["tasks_executed"] == len(graph)
    return {
        "n": n,
        "tile": tile,
        "policy": policy,
        "local_store_kb": local_store_kb,
        "tasks": len(graph),
        "graph_build_seconds": build_seconds,
        "reference_loop_seconds": ref_best,
        "fast_loop_seconds": fast_best,
        "loop_speedup": ref_best / fast_best,
        "reference_tasks_per_second": len(graph) / ref_best,
        "fast_tasks_per_second": len(graph) / fast_best,
        # One schedule sweep point cost: the PR 6 runner rebuilt the task
        # graph and ran the reference loop for every point; with the graph
        # cache and the fast loop a warm point costs fast_loop_seconds.
        "sweep_point_baseline_seconds": build_seconds + ref_best,
        "sweep_point_fast_seconds": fast_best,
        "sweep_point_speedup": (build_seconds + ref_best) / fast_best,
    }


def test_fastpath_speedup_8k_cholesky(bench_json):
    """Acceptance: on a >= 8k^2 blocked Cholesky (45760 tasks) the fast
    path schedules a warm sweep point >= 10x faster than the PR 6 baseline
    (which re-built the graph and ran the reference loop per point), and
    the inlined loop alone is several times faster than the reference loop
    at identical output.

    The loop-only floor is deliberately conservative (CI machines are
    noisy); the measured ratios land around 8-10x loop-only and 13-17x per
    sweep point on a quiet machine -- the recorded JSON keeps both.
    """
    record = _measure_fastpath(8192)
    assert record["tasks"] == 45760
    assert record["loop_speedup"] >= 3.0, record
    assert record["sweep_point_speedup"] >= 10.0, record
    bench_json("taskgraph", record)


def test_policy_fastpath_speedup_8k_cholesky(bench_json):
    """Acceptance: the vectorized fast path carries every non-greedy policy,
    not just the specialized greedy loop.  On an 8k^2 blocked Cholesky
    (45760 tasks) the dynamic, memory-keyed policies -- ``memory_aware``
    (single-level) and ``affinity`` (two-level local stores) -- schedule a
    warm sweep point >= 5x faster than the per-point baseline at identical
    output; the static ``critical_path`` / ``locality`` policies ride the
    same loop and are recorded at 4k^2 for the trajectory."""
    records = []
    for policy, local_store_kb, n in (("critical_path", None, 4096),
                                      ("locality", None, 4096),
                                      ("memory_aware", None, 8192),
                                      ("affinity", 64.0, 8192)):
        record = _measure_fastpath(n, iterations=2, policy=policy,
                                   local_store_kb=local_store_kb)
        records.append(record)
        if n == 8192:
            assert record["tasks"] == 45760
            assert record["sweep_point_speedup"] >= 5.0, record
    bench_json("policy_fastpath", {"cases": records})


@pytest.mark.scale_smoke
def test_scale_smoke_4k_cholesky_wall_time(bench_json):
    """Scale-regression gate: building and fast-scheduling a 4k^2 Cholesky
    (5984 tasks) must stay far inside an interactive budget.  The budget is
    generous (the run takes ~2s warm on a laptop-class core) so only a
    genuine algorithmic regression -- an accidental O(V^2) rescan, a
    per-task reference-kernel call -- can trip it."""
    budget_seconds = 60.0
    started = time.perf_counter()
    graph, tiles, build_seconds = _cholesky_graph_and_tiles(4096)
    runtime = LAPRuntime(LinearAlgebraProcessor(
        LAPConfig(num_cores=8, nr=4, onchip_memory_mbytes=8.0)),
        128, timing="memoized", fast=True)
    stats = runtime.execute(graph, tiles, verify=False)
    elapsed = time.perf_counter() - started
    assert runtime.last_fast
    assert stats["tasks_executed"] == len(graph) == 5984
    assert elapsed < budget_seconds, (
        f"4k^2 Cholesky took {elapsed:.1f}s (budget {budget_seconds:.0f}s): "
        f"the scheduler hot path has regressed")
    bench_json("scale_smoke", {
        "n": 4096,
        "tasks": len(graph),
        "graph_build_seconds": build_seconds,
        "total_seconds": elapsed,
        "budget_seconds": budget_seconds,
        "tasks_per_second": len(graph) / elapsed,
    })


@pytest.mark.scale
@pytest.mark.skipif(not os.environ.get("REPRO_SCALE_BENCH"),
                    reason="heavy scaling run; opt in with REPRO_SCALE_BENCH=1")
def test_fastpath_speedup_16k_cholesky(bench_json):
    """Opt-in heavy point: 16k^2 (357760 tasks) pins the asymptotic per-task
    cost of the fast loop (a few microseconds) where the reference loop's
    per-task constant keeps growing."""
    record = _measure_fastpath(16384, iterations=2)
    assert record["tasks"] == 357760
    assert record["loop_speedup"] >= 3.0, record
    assert record["sweep_point_speedup"] >= 10.0, record
    bench_json("taskgraph_16k", record)
