"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each benchmark isolates one design decision of the LAC/LAP and quantifies its
effect with the component/analytical models (and, where possible, the
simulator), asserting the direction and rough magnitude the dissertation
attributes to it:

* delayed-normalization MAC units (single-cycle accumulation) save ~15% power,
* replicating the B panel in the PE stores frees the column buses for
  prefetching (full overlap) and is what enables ~100% GEMM utilisation,
* the local accumulator avoids register-file traffic that a conventional SIMD
  organisation would pay on every MAC,
* the choice of divide/square-root placement trades a few percent of core
  area against large inner-kernel speedups,
* plain banked SRAM beats a NUCA cache as the on-chip memory,
* the 2D mesh-with-broadcast-buses scales to nr = 8 with quadratic compute
  growth for linear bus-length growth.
"""

import numpy as np
import pytest

from repro.arch.lap_design import build_pe
from repro.hw.bus import BroadcastBus
from repro.hw.fpu import FMACUnit, Precision
from repro.hw.sfu import SFUPlacement, SpecialFunctionUnit, SpecialOp
from repro.hw.sram import pe_store_b
from repro.models.core_model import CoreGEMMModel
from repro.models.fact_model import (FactorizationKernel, FactorizationKernelModel,
                                     MACExtension)


def test_ablation_delayed_normalization(benchmark, bench_json):
    """Single-cycle accumulation with delayed normalization saves ~15% MAC power."""
    def build():
        with_dn = FMACUnit(precision=Precision.DOUBLE, delayed_normalization=True)
        without = FMACUnit(precision=Precision.DOUBLE, delayed_normalization=False)
        return with_dn.dynamic_power_w, without.dynamic_power_w

    power_with, power_without = benchmark(build)
    saving = 1.0 - power_with / power_without
    assert 0.10 <= saving <= 0.20
    bench_json("ablation_delayed_normalization", {
        "power_with_dn_w": power_with,
        "power_without_dn_w": power_without,
        "power_saving_fraction": saving,
    })


def test_ablation_replicated_b_enables_full_overlap(benchmark):
    """Replicating B in MEM B (freeing the column buses) buys peak utilisation.

    Without the replicated copy the column buses must carry the B broadcasts,
    so prefetching of the next operands cannot overlap with computation --
    modelled as the partial-overlap variant of the core model.
    """
    model = CoreGEMMModel(nr=4)

    def evaluate():
        partial = model.cycles(mc=128, kc=128, n=512, bandwidth_elements_per_cycle=0.6,
                               full_overlap=False)
        full = model.cycles(mc=128, kc=128, n=512, bandwidth_elements_per_cycle=0.6,
                            full_overlap=True)
        return partial, full

    partial, full = benchmark(evaluate)
    assert full.utilization > partial.utilization
    assert full.utilization > 0.95
    # The price of replication: a second (small, dual-ported) PE store.
    replicated_store = pe_store_b(2 * 1024)
    pe = build_pe(Precision.DOUBLE, 1.0, local_store_kbytes=16.0)
    assert replicated_store.area_mm2 < 0.25 * pe.area_mm2


def test_ablation_accumulator_avoids_register_file_traffic(benchmark):
    """Keeping C in the MAC accumulator removes two RF accesses per MAC.

    A conventional SIMD datapath reads and writes the accumulating register
    through the register file every cycle; the LAC touches its accumulator
    register inside the MAC unit instead.  Using the SRAM model's per-access
    energy for a small multi-ported RF-like structure bounds the saving from
    below -- it is a significant fraction of the MAC energy itself.
    """
    from repro.hw.sram import SRAMConfig, SRAMModel

    def evaluate():
        fmac = FMACUnit(precision=Precision.DOUBLE, frequency_ghz=1.0)
        rf = SRAMModel(SRAMConfig(capacity_bytes=2048, ports=4, word_bytes=8))
        rf_energy_per_mac = 2.0 * rf.energy_per_access_j      # one read + one write
        return fmac.energy_per_mac_j, rf_energy_per_mac

    mac_energy, rf_energy = benchmark(evaluate)
    # Even this conservative estimate (only the C read + write, SRAM-like cell
    # energy) is ~10% of the MAC energy on every single cycle; a real
    # multi-ported SIMD register file with operand reads pays several times more.
    assert rf_energy > 0.08 * mac_energy


@pytest.mark.parametrize("kernel", [FactorizationKernel.LU, FactorizationKernel.VECTOR_NORM])
def test_ablation_sfu_placement(benchmark, kernel):
    """Hardware divide/sqrt costs <5% core area but speeds inner kernels up a lot."""
    model = FactorizationKernelModel(nr=4)

    def evaluate():
        sw = model.evaluate(kernel, 128, SFUPlacement.SOFTWARE, MACExtension.NONE)
        diag = model.evaluate(kernel, 128, SFUPlacement.DIAGONAL, MACExtension.NONE)
        return sw, diag

    sw, diag = benchmark(evaluate)
    speedup = sw.cycles / diag.cycles
    assert speedup > 1.05
    area_overhead = SpecialFunctionUnit(placement=SFUPlacement.DIAGONAL, nr=4).area_mm2
    core_area = 16 * build_pe(Precision.DOUBLE, 1.0, 16.0).area_mm2
    assert area_overhead < 0.05 * core_area


def test_ablation_sram_vs_nuca_onchip_memory(benchmark):
    """The plain banked SRAM beats the NUCA cache in both area and access energy."""
    from repro.hw.memory import NUCACache, OnChipMemory

    def evaluate():
        sram = OnChipMemory(capacity_bytes=4 * 2 ** 20, banks=8)
        nuca = NUCACache(capacity_bytes=4 * 2 ** 20, banks=8,
                         required_bandwidth_bytes_per_cycle=32.0)
        return sram, nuca

    sram, nuca = benchmark(evaluate)
    assert nuca.area_mm2 > 1.1 * sram.area_mm2
    assert nuca.energy_per_access_j() > 1.5 * sram.energy_per_access_j()


def test_ablation_core_dimension_scaling(benchmark):
    """Growing the mesh from 4x4 to 8x8 quadruples compute for 2x bus length.

    The broadcast buses still meet timing (> 1.4 GHz) at nr = 8, which is the
    scalability argument for the 2D arrangement; the cost is the quadrupled
    bandwidth demand at a fixed local store (Fig. 3.5).
    """
    def evaluate():
        bus4 = BroadcastBus(span_pes=4)
        bus8 = BroadcastBus(span_pes=8)
        m4 = CoreGEMMModel(nr=4)
        m8 = CoreGEMMModel(nr=8)
        return bus4, bus8, m4, m8

    bus4, bus8, m4, m8 = benchmark(evaluate)
    assert m8.peak_gflops(1.0) == pytest.approx(4.0 * m4.peak_gflops(1.0))
    assert bus8.length_mm == pytest.approx(2.0 * bus4.length_mm)
    assert bus8.max_frequency_ghz > 1.4
    bw4 = m4.required_bandwidth_for_peak(mc=128, kc=128, full_overlap=False)
    bw8 = m8.required_bandwidth_for_peak(mc=128, kc=128, full_overlap=False)
    assert bw8 == pytest.approx(4.0 * bw4)


def test_ablation_mac_extensions_cost_vs_benefit(benchmark):
    """The comparator / exponent MAC extensions cost a few percent, save many cycles."""
    model = FactorizationKernelModel(nr=4)

    def evaluate():
        base_unit = FMACUnit(precision=Precision.DOUBLE)
        ext_unit = base_unit.with_extensions(comparator=True, extended_exponent=True)
        lu_base = model.evaluate(FactorizationKernel.LU, 256, SFUPlacement.DIAGONAL,
                                 MACExtension.NONE)
        lu_ext = model.evaluate(FactorizationKernel.LU, 256, SFUPlacement.DIAGONAL,
                                MACExtension.COMPARATOR)
        vn_base = model.evaluate(FactorizationKernel.VECTOR_NORM, 256,
                                 SFUPlacement.DIAGONAL, MACExtension.NONE)
        vn_ext = model.evaluate(FactorizationKernel.VECTOR_NORM, 256,
                                SFUPlacement.DIAGONAL, MACExtension.EXPONENT)
        return base_unit, ext_unit, lu_base, lu_ext, vn_base, vn_ext

    base_unit, ext_unit, lu_base, lu_ext, vn_base, vn_ext = benchmark(evaluate)
    assert ext_unit.area_mm2 < 1.06 * base_unit.area_mm2
    assert lu_ext.cycles < lu_base.cycles
    assert vn_ext.cycles < 0.75 * vn_base.cycles
